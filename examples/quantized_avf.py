"""Quantized AVF: sequential vulnerability as a time series.

Combines two of the authors' techniques: windowed port AVFs (Quantized
AVF, SELSE 2009) plug into SART's closed-form equations (MICRO 2015,
Section 5.2), giving the average sequential AVF of every execution window
with a single walk of the design.

The workload is phase-shifting on purpose — a compute-heavy stretch, an
idle stretch, then a memory-bound stretch — so the time series should
visibly track the phases.

Run:  python examples/quantized_avf.py
"""

from repro import SartConfig, run_sart
from repro.ace.lifetime import AceLifetimeAnalyzer
from repro.ace.portavf import ports_from_analysis
from repro.ace.quantized import TeeRecorder, WindowedPortCounter, quantized_seq_avf
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.perfmodel.pipeline import Pipeline, PipelineConfig
from repro.perfmodel.trace import mark_ace, merge_traces
from repro.workloads.generator import WorkloadSpec, generate_trace

WINDOW = 250


def phased_trace():
    phases = [
        WorkloadSpec(name="compute", length=3000, frac_alu=0.7, frac_load=0.1,
                     frac_store=0.1, frac_branch=0.1, frac_nop=0.0,
                     frac_prefetch=0.0, dead_fraction=0.02, seed=1),
        WorkloadSpec(name="idle", length=3000, frac_alu=0.25, frac_nop=0.4,
                     frac_prefetch=0.15, frac_load=0.1, frac_store=0.05,
                     frac_branch=0.05, dead_fraction=0.5, seed=2),
        WorkloadSpec(name="memory", length=3000, frac_alu=0.3, frac_load=0.4,
                     frac_store=0.2, frac_branch=0.1, frac_nop=0.0,
                     frac_prefetch=0.0, dead_fraction=0.1, seed=3),
    ]
    return mark_ace(merge_traces("phased", [generate_trace(s) for s in phases]))


def main():
    print("building bigcore, walking once...")
    design = build_bigcore(BigcoreConfig(scale=0.5))

    trace = phased_trace()
    lifetime = AceLifetimeAnalyzer()
    windows = WindowedPortCounter(window=WINDOW)
    pipeline = Pipeline(trace, PipelineConfig(), recorder=TeeRecorder(lifetime, windows))
    for s in pipeline.structures:
        lifetime.register(s.name, s.entries, s.bits_per_entry, s.nread, s.nwrite)
        windows.register(s.name, s.nread, s.nwrite)
    stats = pipeline.run()
    structures = lifetime.finish(stats.cycles)

    # One SART walk at whole-run pAVFs; the windows plug into its equations.
    whole_run = map_structure_ports(design, ports_from_analysis(structures))
    result = run_sart(design.module, whole_run, SartConfig(partition_by_fub=False))
    closed = result.closed_form()
    tables = [
        map_structure_ports(design, t) for t in windows.window_ports(stats.cycles)
    ]
    series = quantized_seq_avf(closed, tables)

    print(f"\n{stats.cycles} cycles in {len(series)} windows of {WINDOW}; "
          f"whole-run avg {result.report.weighted_seq_avf:.3f}\n")
    peak = max(series) or 1.0
    for i, avf in enumerate(series):
        bar = "#" * max(1, int(40 * avf / peak))
        print(f"  window {i:2d} [{i*WINDOW:5d}..{min((i+1)*WINDOW, stats.cycles):5d})"
              f"  {avf:.3f}  {bar}")
    print("\nphases (compute / idle / memory) are visible as AVF level shifts;")
    print("no re-walk was needed for any window (closed-form plug-in only).")


if __name__ == "__main__":
    main()
