"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad connection, duplicate name...)."""


class ExlifParseError(NetlistError):
    """Malformed EXLIF text input."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """A netlist failed structural validation (lint)."""


class SimulationError(ReproError):
    """Gate-level simulation could not proceed (e.g. combinational loop)."""


class AssemblerError(ReproError):
    """Error while assembling a tinycore program."""


class TraceError(ReproError):
    """Malformed workload trace for the performance model."""


class AceError(ReproError):
    """Error in ACE analysis (inconsistent events, unknown structure...)."""


class SartError(ReproError):
    """Error in the sequential-AVF resolution flow."""


class MappingError(SartError):
    """ACE-structure bit could not be mapped to an RTL bit."""


class ConvergenceError(SartError):
    """Relaxation failed to converge within the iteration budget."""


class CampaignError(ReproError):
    """Fault-injection campaign misconfiguration or unrecoverable failure."""


class CheckpointError(CampaignError):
    """A campaign checkpoint file could not be used.

    Raised when the file named by ``resume=`` is missing, unreadable, or
    corrupt beyond its final (possibly torn) record, when its versioned
    header does not match the runtime's checkpoint format version, when
    its fingerprint belongs to a different campaign configuration, or
    when a fresh campaign would overwrite an existing checkpoint.
    """


class PipelineError(ReproError):
    """Error in the staged analysis pipeline (registry, store, runner)."""


class DesignRefError(PipelineError):
    """A design reference could not be resolved to a provider.

    References take the form ``tinycore:<program>``,
    ``bigcore[@scale=...,seed=...]``, or ``exlif:<path>[@top=...]``;
    this is raised for unknown schemes, unknown programs, malformed
    parameter lists, and missing EXLIF files.
    """


class SpecError(PipelineError):
    """A declarative run-spec file is malformed or inconsistent."""


class CacheDegradedWarning(UserWarning):
    """The artifact store degraded to a cache miss instead of failing.

    Emitted when a cached entry is corrupt (and dropped) or when the
    cache directory cannot be written (and the result is computed
    without being persisted). The run's correctness is unaffected; only
    reuse across runs is lost, which is worth a visible warning.
    """


class WarmStartDegradedWarning(UserWarning):
    """An incremental (ECO) solve fell back to a cold solve.

    Emitted when an optimistic warm relaxation exhausts its iteration
    budget before quiescing: a truncated warm trajectory is not
    comparable to a truncated cold one, so the solve restarts cold to
    keep results bit-identical with non-ECO runs. Correctness is
    unaffected; only the incremental speedup is lost.
    """


class ServeError(ReproError):
    """Error in the AVF job server (admission, journal, scheduling)."""


class JobJournalError(ServeError):
    """The server's job journal could not be used.

    Raised when the journal file named by the server's state directory
    has an unreadable or mismatched header, or is corrupt anywhere
    before its final (possibly torn) record — the same tolerance the
    campaign checkpoint reader applies.
    """


class QueueFullError(ServeError):
    """Job admission rejected: the bounded queue is at capacity.

    ``retry_after`` is the backpressure hint (seconds) that the HTTP
    layer surfaces as a 429 response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServerDrainingError(ServeError):
    """Job admission rejected: the server is draining for shutdown."""


class PassTimeoutError(CampaignError):
    """A campaign pass exceeded its soft timeout budget.

    The fault-tolerant runtime normally records stragglers as structured
    ``timeout`` failures and keeps going; this is raised only by callers
    that demand every pass result (e.g. :func:`repro.sfi.parallel
    .parallel_map`'s all-or-nothing contract).
    """
