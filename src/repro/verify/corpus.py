"""Golden regression corpus: committed designs with expected AVFs.

Each corpus entry is one JSON file under ``src/repro/verify/corpus/``
pairing a :class:`~repro.verify.cases.CaseSpec` with the per-FUB and
per-node AVFs the compiled engine produced when the golden was blessed,
plus a tolerance. The entry is *content-addressed*: its ``fingerprint``
field is the :func:`repro.pipeline.fingerprint.fingerprint` of the spec
and the corpus format version, so a hand-edited spec whose expectations
were not regenerated is flagged as *stale* rather than silently
compared against the wrong design.

Update/review workflow::

    repro-sart verify --update-goldens          # regenerate in place
    git diff src/repro/verify/corpus/           # review the deltas

A golden only changes when the algorithm's numeric output changes, so
the diff *is* the review artifact: an intentional algorithm change
shows up as a reviewed value drift, an accidental one as a red CI run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

from repro.core.report import average_seq_avf
from repro.core.sart import SartConfig, run_sart
from repro.ser.derating import analytic_derating
from repro.pipeline.fingerprint import fingerprint
from repro.verify.cases import CaseSpec, build_case
from repro.verify.oracles import Violation

CORPUS_VERSION = 2
ORACLE_NAME = "golden-corpus"
DEFAULT_TOLERANCE = 1e-9

#: The shipped corpus: named specs chosen to cover every special role
#: (structures wide and absent, all three loop topologies, control
#: registers, single- and multi-FUB partitioning).
DEFAULT_CORPUS: tuple[tuple[str, CaseSpec], ...] = (
    ("pipeline-basic", CaseSpec(seed=101, n_fubs=1, flops_per_fub=10,
                                struct_width=2, fsm_loops=0, stall_loops=0,
                                pointer_loops=0, ctrl_regs=0, env_seed=11)),
    ("loops-all-kinds", CaseSpec(seed=202, n_fubs=2, flops_per_fub=8,
                                 struct_width=2, fsm_loops=2, stall_loops=2,
                                 pointer_loops=1, ctrl_regs=0, env_seed=22)),
    ("ctrl-heavy", CaseSpec(seed=303, n_fubs=2, flops_per_fub=6,
                            struct_width=1, fsm_loops=1, stall_loops=0,
                            pointer_loops=0, ctrl_regs=3, env_seed=33)),
    ("multi-fub-relax", CaseSpec(seed=404, n_fubs=4, flops_per_fub=9,
                                 struct_width=3, fsm_loops=1, stall_loops=1,
                                 pointer_loops=1, ctrl_regs=2, env_seed=44)),
    ("structless", CaseSpec(seed=505, n_fubs=2, flops_per_fub=7,
                            struct_width=0, fsm_loops=1, stall_loops=1,
                            pointer_loops=0, ctrl_regs=1, env_seed=55)),
)


def default_corpus_dir() -> Path:
    """The committed corpus shipped inside the package."""
    return Path(__file__).parent / "corpus"


def spec_fingerprint(spec: CaseSpec) -> str:
    return fingerprint("verify-corpus", CORPUS_VERSION, spec.to_json())


def compute_expected(spec: CaseSpec) -> dict:
    """The blessed values for one spec (compiled engine, default flow)."""
    case = build_case(spec)
    result = run_sart(case.module, case.structures,
                      SartConfig(loop_pavf=spec.loop_pavf))
    nets = sorted(result.node_avfs)
    stride = max(1, len(nets) // 8)
    sample = {net: result.node_avfs[net].avf for net in nets[::stride][:8]}
    return {
        "weighted_seq_avf": result.report.weighted_seq_avf,
        "average_seq_avf": average_seq_avf(result.node_avfs),
        "avg_logic_derating": analytic_derating(case.module).mean(),
        "fub_seq_avf": {row.fub: row.seq_avg_avf
                        for row in result.report.fubs},
        "nodes": sample,
    }


def make_entry(name: str, spec: CaseSpec,
               tolerance: float = DEFAULT_TOLERANCE) -> dict:
    return {
        "name": name,
        "corpus_version": CORPUS_VERSION,
        "spec": spec.to_json(),
        "fingerprint": spec_fingerprint(spec),
        "tolerance": tolerance,
        "expected": compute_expected(spec),
    }


def write_entry(directory: Path, entry: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry['name']}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def update_corpus(directory: Path | None = None,
                  corpus: Iterable[tuple[str, CaseSpec]] = DEFAULT_CORPUS,
                  ) -> list[Path]:
    """Regenerate every golden in *directory* (the blessing step)."""
    directory = Path(directory) if directory else default_corpus_dir()
    existing = load_entries(directory)
    if existing:
        # Re-bless what is on disk (keeps locally added entries alive);
        # their specs are authoritative, expectations are recomputed.
        corpus = [(e["name"], CaseSpec.from_json(e["spec"])) for e in existing]
    return [write_entry(directory, make_entry(name, spec))
            for name, spec in corpus]


def load_entries(directory: Path | None = None) -> list[dict]:
    directory = Path(directory) if directory else default_corpus_dir()
    entries = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        entries.append(json.loads(path.read_text()))
    return entries


def check_corpus(directory: Path | None = None,
                 corrupt: Callable[[dict], dict] | None = None,
                 ) -> tuple[list[Violation], int]:
    """Re-run every golden and compare against its stored expectations.

    Returns ``(violations, entries_checked)``. *corrupt* is the
    mutation-kill seam: it sees each loaded entry before comparison,
    exactly as on-disk bitrot or an unreviewed hand edit would.
    """
    entries = load_entries(directory)
    violations: list[Violation] = []
    for entry in entries:
        if corrupt is not None:
            entry = corrupt(entry)
        name = entry.get("name", "?")
        case_label = f"golden:{name}"
        if entry.get("corpus_version") != CORPUS_VERSION:
            violations.append(Violation(
                ORACLE_NAME, case_label,
                f"corpus_version {entry.get('corpus_version')!r} does not "
                f"match harness version {CORPUS_VERSION}; regenerate with "
                "--update-goldens"))
            continue
        spec = CaseSpec.from_json(entry["spec"])
        if entry.get("fingerprint") != spec_fingerprint(spec):
            violations.append(Violation(
                ORACLE_NAME, case_label,
                "stale fingerprint: the spec was edited without "
                "regenerating expectations (--update-goldens)"))
            continue
        tol = float(entry.get("tolerance", DEFAULT_TOLERANCE))
        actual = compute_expected(spec)
        expected = entry["expected"]
        for key in ("weighted_seq_avf", "average_seq_avf",
                    "avg_logic_derating"):
            violations.extend(_compare_scalar(
                case_label, key, expected.get(key), actual[key], tol))
        for fub, want in expected.get("fub_seq_avf", {}).items():
            got = actual["fub_seq_avf"].get(fub)
            violations.extend(_compare_scalar(
                case_label, f"fub_seq_avf[{fub}]", want, got, tol))
        for net, want in expected.get("nodes", {}).items():
            got = actual["nodes"].get(net)
            if got is None:
                got = _node_avf(spec, net)
            violations.extend(_compare_scalar(
                case_label, f"node[{net}]", want, got, tol))
    return violations, len(entries)


def _node_avf(spec: CaseSpec, net: str) -> float | None:
    case = build_case(spec)
    result = run_sart(case.module, case.structures,
                      SartConfig(loop_pavf=spec.loop_pavf))
    node = result.node_avfs.get(net)
    return node.avf if node is not None else None


def _compare_scalar(case_label: str, key: str, want, got,
                    tol: float) -> list[Violation]:
    if want is None:
        return []
    if got is None:
        return [Violation(ORACLE_NAME, case_label,
                          f"{key}: expected {want!r} but the value is "
                          "missing from the rebuilt design")]
    if abs(float(want) - float(got)) > tol:
        return [Violation(
            ORACLE_NAME, case_label,
            f"{key}: got {got!r}, golden says {want!r} "
            f"(|delta| {abs(float(want) - float(got)):.3e} > tol {tol:.0e}); "
            "if the algorithm change is intentional, regenerate with "
            "--update-goldens and review the git diff")]
    return []
