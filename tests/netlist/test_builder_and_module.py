"""Tests for Module/Instance datatypes and the ModuleBuilder API."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import ModuleBuilder, bus
from repro.netlist.netlist import INPUT, OUTPUT, Instance, Module, Port


def test_bus_naming():
    assert bus("x", 3) == ["x[0]", "x[1]", "x[2]"]


def test_port_direction_validated():
    with pytest.raises(NetlistError):
        Port("p", "sideways")


def test_duplicate_port_rejected():
    m = Module("m")
    m.add_port("a", INPUT)
    with pytest.raises(NetlistError):
        m.add_port("a", OUTPUT)


def test_duplicate_instance_rejected():
    m = Module("m")
    m.add_instance(Instance("i", "BUF", {"a": "x", "y": "y"}))
    with pytest.raises(NetlistError):
        m.add_instance(Instance("i", "BUF", {"a": "x", "y": "z"}))


def test_multiply_driven_net_detected():
    m = Module("m")
    m.add_instance(Instance("i1", "BUF", {"a": "x", "y": "y"}))
    m.add_instance(Instance("i2", "BUF", {"a": "x", "y": "y"}))
    with pytest.raises(NetlistError):
        m.drivers()


def test_variadic_input_pins_ordered():
    inst = Instance("g", "AND", {"a2": "c", "a0": "a", "a10": "k", "a1": "b", "y": "y"})
    assert inst.input_pins() == ["a0", "a1", "a2", "a10"]


def test_builder_gate_arity_checks():
    b = ModuleBuilder("m")
    x = b.input("x")
    with pytest.raises(NetlistError):
        b.gate("MUX2", [x])  # needs 3 pins
    with pytest.raises(NetlistError):
        b.gate("AND", [])  # variadic needs >= 1
    with pytest.raises(NetlistError):
        b.gate("DFF", [x])  # sequential is not a gate


def test_builder_default_attrs_merge():
    b = ModuleBuilder("m", default_attrs={"fub": "IEU"})
    x = b.input("x")
    y = b.gate("BUF", [x], attrs={"extra": "1"})
    inst = next(iter(b.module.instances.values()))
    assert inst.attrs == {"fub": "IEU", "extra": "1"}
    assert y in b.module.nets


def test_dff_bus_init_spread():
    b = ModuleBuilder("m")
    d = b.input_bus("d", 4)
    q = b.dff_bus(d, name="r", init=0b1010)
    insts = [b.module.instances[f"r[{i}]"] for i in range(4)]
    assert [i.params["init"] for i in insts] == [0, 1, 0, 1]
    assert q == [i.conn["q"] for i in insts]


def test_mem_width_checks():
    b = ModuleBuilder("m")
    ra = b.input_bus("ra", 2)
    wa = b.input_bus("wa", 2)
    wd = b.input_bus("wd", 4)
    we = b.input("we")
    with pytest.raises(NetlistError):
        b.mem(4, 4, [ra], wa[:1], wd, we)  # waddr too narrow
    with pytest.raises(NetlistError):
        b.mem(4, 4, [ra], wa, wd[:2], we)  # wdata too narrow
    rdata = b.mem(4, 4, [ra], wa, wd, we)
    assert len(rdata) == 1 and len(rdata[0]) == 4


def test_sequential_instances_and_stats():
    b = ModuleBuilder("m")
    x = b.input("x")
    q = b.dff(x)
    b.dff(q)
    m = b.done()
    assert len(m.sequential_instances()) == 2
    stats = m.stats()
    assert stats["DFF"] == 2
    assert stats["instances"] == 2
