"""Pipeline behaviour: throughput, stalls, structure events, determinism."""

import pytest

from repro.ace.lifetime import AceLifetimeAnalyzer
from repro.errors import TraceError
from repro.perfmodel.isa import Inst
from repro.perfmodel.machine import MachineConfig, run_workload
from repro.perfmodel.pipeline import Pipeline
from repro.perfmodel.trace import Trace, mark_ace
from repro.workloads.generator import WorkloadSpec, generate_trace


def _alu_chain(n, serial: bool) -> Trace:
    insts = []
    for i in range(n):
        srcs = (1,) if serial else ()
        insts.append(Inst(seq=i, op="alu", dst=1 if serial else i % 8, srcs=srcs))
    t = Trace("chain", insts)
    t.validate()
    return t


def test_requires_marked_trace():
    t = _alu_chain(10, serial=False)
    with pytest.raises(TraceError, match="ACE-marked"):
        Pipeline(t, MachineConfig())


def test_all_instructions_commit():
    t = mark_ace(_alu_chain(500, serial=False))
    res = run_workload(t)
    assert res.stats.committed == 500
    assert res.cycles > 0


def test_serial_chain_is_slower_than_parallel():
    serial = run_workload(mark_ace(_alu_chain(400, serial=True)))
    parallel = run_workload(mark_ace(_alu_chain(400, serial=False)))
    assert serial.ipc < parallel.ipc
    assert parallel.ipc > 1.5  # 4-wide machine on independent ALU ops


def test_memory_misses_slow_execution():
    spec = WorkloadSpec(name="m", length=3000, frac_load=0.5, frac_alu=0.4,
                        frac_store=0.05, frac_branch=0.05, frac_nop=0, frac_prefetch=0)
    trace = generate_trace(spec)
    fast = run_workload(trace, MachineConfig(miss_rate=0.0))
    trace2 = generate_trace(spec)
    slow = run_workload(trace2, MachineConfig(miss_rate=0.5, miss_latency=40))
    assert slow.cycles > fast.cycles * 1.3


def test_mispredicts_cost_cycles():
    spec = WorkloadSpec(name="b", length=3000, frac_branch=0.3, frac_alu=0.6,
                        frac_load=0.05, frac_store=0.05, frac_nop=0, frac_prefetch=0,
                        mispredict_rate=0.0)
    clean = run_workload(generate_trace(spec))
    spec_bad = WorkloadSpec(name="b2", length=3000, frac_branch=0.3, frac_alu=0.6,
                            frac_load=0.05, frac_store=0.05, frac_nop=0, frac_prefetch=0,
                            mispredict_rate=0.3, seed=spec.seed)
    dirty = run_workload(generate_trace(spec_bad))
    assert dirty.cycles > clean.cycles
    assert dirty.stats.mispredict_bubbles > 0


def test_determinism():
    spec = WorkloadSpec(name="d", length=2000, seed=42)
    a = run_workload(generate_trace(spec))
    b = run_workload(generate_trace(spec))
    assert a.cycles == b.cycles
    assert a.structures["rob"].ace_bit_cycles == b.structures["rob"].ace_bit_cycles


def test_narrow_machine_is_slower():
    t = generate_trace(WorkloadSpec(name="w", length=3000))
    wide = run_workload(t, MachineConfig())
    t2 = generate_trace(WorkloadSpec(name="w", length=3000))
    narrow = run_workload(
        t2,
        MachineConfig(fetch_width=1, dispatch_width=1, issue_width=1, commit_width=1),
    )
    assert narrow.cycles > wide.cycles * 1.5


def test_structure_events_balance():
    """Every structure ends the run with no leaked entries except the
    architectural register file (live-out state)."""
    t = generate_trace(WorkloadSpec(name="bal", length=2000))
    res = run_workload(t)
    rob = res.structures["rob"]
    assert rob.total_writes == 2000
    assert rob.total_reads == 2000
    iq = res.structures["inst_queue"]
    assert iq.total_writes == iq.total_reads == 2000
    fb = res.structures["fetch_buffer"]
    # Wrong-path placeholders add un-ACE writes that are never read.
    assert fb.total_reads == 2000
    assert fb.total_writes == 2000 + res.stats.wrong_path_fetched


def test_occupancy_tracked():
    t = generate_trace(WorkloadSpec(name="occ", length=2000))
    res = run_workload(t)
    assert 0 < res.occupancy["rob"] <= 64
    assert res.occupancy["fetch_buffer"] > 0


def test_rob_full_backpressure():
    # A long-latency head-of-ROB op must fill the ROB behind it.
    insts = [Inst(seq=0, op="load", dst=1, srcs=(), addr=3)]
    for i in range(1, 200):
        insts.append(Inst(seq=i, op="alu", dst=2 + (i % 4), srcs=(1,)))
    t = Trace("backpressure", insts)
    t.validate()
    res = run_workload(t, MachineConfig(miss_rate=1.0, miss_latency=100, rob_entries=16))
    assert res.stats.dispatch_stall_cycles > 0


def test_wrong_path_traffic_is_unace():
    spec = WorkloadSpec(name="wp", length=3000, frac_branch=0.25, frac_alu=0.55,
                        frac_load=0.1, frac_store=0.1, frac_nop=0, frac_prefetch=0,
                        mispredict_rate=0.2)
    on = run_workload(generate_trace(spec), MachineConfig(model_wrong_path=True))
    off = run_workload(generate_trace(spec), MachineConfig(model_wrong_path=False))
    assert on.stats.wrong_path_fetched > 0
    assert off.stats.wrong_path_fetched == 0
    fb_on = on.structures["fetch_buffer"]
    fb_off = off.structures["fetch_buffer"]
    # Wrong-path entries carry no ACE bits: ACE counters are unchanged...
    assert fb_on.ace_writes == fb_off.ace_writes
    # ...while raw write traffic grows by exactly the wrong-path count.
    assert fb_on.total_writes == fb_off.total_writes + on.stats.wrong_path_fetched
    # Squashed-unconsumed entries contribute zero ACE residency.
    assert fb_on.ace_bit_cycles == fb_off.ace_bit_cycles


def test_store_buffer_head_of_line_no_deadlock():
    """Regression: SB entries must allocate at dispatch (program order).

    With issue-time allocation, younger ready stores could consume every
    store-buffer entry while the ROB-head store waited on a slow
    producer; in-order commit could then never drain the SB and the
    machine deadlocked. Found by hypothesis on a store-heavy,
    serial-dependence workload.
    """
    spec = WorkloadSpec(
        name="sbdead", length=400, seed=34,
        frac_alu=0.2, frac_load=0.246, frac_store=0.246,
        frac_branch=0.054, frac_nop=0.07,
        dep_distance=1, dead_fraction=0.395, mispredict_rate=0.136,
    )
    res = run_workload(generate_trace(spec), MachineConfig(max_cycles=100_000))
    assert res.stats.committed == 400
    sb = res.structures["store_buffer"]
    assert sb.total_writes == sb.total_reads  # every store drained
