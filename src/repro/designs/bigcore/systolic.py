"""Systolic MAC-array generator: the 10^6-node scale substrate.

An output-stationary ``rows x cols`` multiply-accumulate array, the kind
of datapath fabric that dominates node counts in real designs. Each
processing element (PE) carries:

* an **activation pipeline register** (``data_width`` DFFs) shifting
  operands east,
* a **weight buffer** (``data_width`` enabled DFFs) loaded over a
  north-south shift chain and tagged ``@struct``/``@bit`` per tile — an
  ACE structure the walker must cut,
* a **product stage** (``data_width`` AND gates), and
* an **accumulator** (``acc_width`` DFFs behind a ripple adder) whose
  self-feedback makes every accumulator bit a genuine propagation loop.

PEs are grouped into ``tile x tile`` FUBs (``TILE_{tr}_{tc}``); each
tile owns a ``cfg_wload_*`` register on a config shift chain, matching
the control-register naming convention. Per-column OR chains reduce the
accumulator sign bits to primary outputs.

The same emitter drives two sinks: :class:`ModuleSink` materializes a
:class:`~repro.netlist.netlist.Module` (for the registry / pipeline
path), :class:`ExlifSink` streams EXLIF text straight to a file — byte
for byte what ``write_exlif`` would produce for the Module — so
mega-scale netlists can be generated and re-read through
:func:`repro.netlist.stream.stream_graph` without ever holding a
per-node object model in memory.

Node counts: ``~(3*data_width + acc_width + adder) + 1`` graph nodes
per PE (:func:`node_count` is exact); ``rows = cols = 102`` at the
default widths crosses 10^6.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import IO

from repro.netlist.netlist import INPUT, OUTPUT, Instance, Module
from repro.netlist.validate import validate_module


@dataclass(frozen=True)
class SystolicConfig:
    """Generator parameters (deterministic; no RNG involved)."""

    rows: int = 8
    cols: int = 8
    data_width: int = 8
    acc_width: int = 16
    tile: int = 8               # PEs per FUB edge

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("systolic array needs rows >= 1 and cols >= 1")
        if self.acc_width < self.data_width:
            raise ValueError("acc_width must be >= data_width")
        if self.tile < 1:
            raise ValueError("tile must be >= 1")


@dataclass
class SystolicDesign:
    """The generated array plus its inventory."""

    module: Module
    config: SystolicConfig
    structures: list[str]       # WBUF_T* structure names (one per tile)


def node_count(config: SystolicConfig) -> int:
    """Exact node count of the extracted graph for *config*."""
    c = config
    dw, aw = c.data_width, c.acc_width
    per_pe = dw * 3 + aw + (5 * dw - 3 + 2 * (aw - dw)) + 1  # +1: column OR/BUF
    tiles = _ceil_div(c.rows, c.tile) * _ceil_div(c.cols, c.tile)
    inputs = c.rows * dw + c.cols * dw + 1               # act, weight, cfg_in
    return c.rows * c.cols * per_pe + tiles + inputs


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------

class ModuleSink:
    """Collects emitted cells into a :class:`Module`."""

    def __init__(self, name: str):
        self.module = Module(name)

    def ports(self, inputs: list[str], outputs: list[str]) -> None:
        for net in inputs:
            self.module.add_port(net, INPUT)
        for net in outputs:
            self.module.add_port(net, OUTPUT)

    def gate(self, kind: str, name: str, conn: dict[str, str],
             attrs: dict[str, str]) -> None:
        self.module.add_instance(Instance(name, kind, conn, attrs=attrs))

    def latch(self, name: str, conn: dict[str, str],
              attrs: dict[str, str]) -> None:
        self.module.add_instance(
            Instance(name, "DFF", conn, params={"init": 0}, attrs=attrs)
        )

    def finish(self) -> Module:
        return self.module


class ExlifSink:
    """Streams emitted cells as EXLIF text.

    Emits exactly the bytes :func:`repro.netlist.exlif.write_exlif`
    produces for the equivalent Module (same field order, sorted pins
    and attributes), so the two generation paths are interchangeable.
    """

    def __init__(self, name: str, handle: IO[str]):
        self._out = handle
        self._out.write("# exlif-1\n")
        self._out.write(f".model {name}\n")

    def ports(self, inputs: list[str], outputs: list[str]) -> None:
        if inputs:
            self._out.write(".inputs " + " ".join(inputs) + "\n")
        if outputs:
            self._out.write(".outputs " + " ".join(outputs) + "\n")

    @staticmethod
    def _attr_text(attrs: dict[str, str]) -> str:
        return "".join(f" @{k}={v}" for k, v in sorted(attrs.items()))

    def gate(self, kind: str, name: str, conn: dict[str, str],
             attrs: dict[str, str]) -> None:
        fields = " ".join(f"{pin}={net}" for pin, net in sorted(conn.items()))
        self._out.write(
            f".gate {kind} {name} {fields}{self._attr_text(attrs)}\n"
        )

    def latch(self, name: str, conn: dict[str, str],
              attrs: dict[str, str]) -> None:
        fields = [f"d={conn['d']}", f"q={conn['q']}"]
        if "en" in conn:
            fields.append(f"en={conn['en']}")
        fields.append("init=0")
        self._out.write(
            f".latch {name} " + " ".join(fields) + self._attr_text(attrs) + "\n"
        )

    def finish(self) -> None:
        self._out.write(".end\n")


# ----------------------------------------------------------------------
# the emitter
# ----------------------------------------------------------------------

def _emit(config: SystolicConfig, sink) -> list[str]:
    """Drive *sink* through the whole array; return structure names."""
    c = config
    dw, aw, tile = c.data_width, c.acc_width, c.tile
    rows, cols = c.rows, c.cols

    act_in = [[f"act_in_r{r}[{i}]" for i in range(dw)] for r in range(rows)]
    w_in = [[f"w_in_c{q}[{i}]" for i in range(dw)] for q in range(cols)]
    inputs = [net for bus in act_in for net in bus]
    inputs += [net for bus in w_in for net in bus]
    inputs.append("cfg_in")
    outputs = [f"y_c{q}" for q in range(cols)]
    sink.ports(inputs, outputs)

    def fub_of(r: int, q: int) -> str:
        return f"TILE_{r // tile}_{q // tile}"

    # Config shift chain: one weight-load enable register per tile.
    tile_en: dict[tuple[int, int], str] = {}
    structures: list[str] = []
    prev = "cfg_in"
    for tr in range(_ceil_div(rows, tile)):
        for tc in range(_ceil_div(cols, tile)):
            net = f"cfg_wload_T{tr}_{tc}"
            sink.latch(net, {"d": prev, "q": net},
                       {"fub": f"TILE_{tr}_{tc}"})
            tile_en[(tr, tc)] = net
            structures.append(f"WBUF_T{tr}_{tc}")
            prev = net

    for r in range(rows):
        for q in range(cols):
            fub = {"fub": fub_of(r, q)}
            pe = f"pe{r}_{q}"
            en = tile_en[(r // tile, q // tile)]
            # Weight-buffer flat bit index within the tile's structure.
            local = (r % tile) * min(tile, cols - (q // tile) * tile) + (q % tile)
            sname = f"WBUF_T{r // tile}_{q // tile}"

            act_q, w_q, prod = [], [], []
            for i in range(dw):
                # Activation pipeline: operands shift east.
                a = f"{pe}/act{i}"
                d = act_in[r][i] if q == 0 else f"pe{r}_{q - 1}/act{i}"
                sink.latch(a, {"d": d, "q": a}, fub)
                act_q.append(a)
                # Weight buffer: enabled shift chain south, ACE-tagged.
                w = f"{pe}/w{i}"
                wd = w_in[q][i] if r == 0 else f"pe{r - 1}_{q}/w{i}"
                sink.latch(
                    w, {"d": wd, "q": w, "en": en},
                    {**fub, "struct": sname, "bit": str(local * dw + i)},
                )
                w_q.append(w)
            for i in range(dw):
                p = f"{pe}/p{i}"
                sink.gate("AND", p, {"a0": act_q[i], "a1": w_q[i], "y": p}, fub)
                prod.append(p)

            # Output-stationary accumulator: acc <= acc + prod. The
            # ripple adder feeds every accumulator bit back to itself,
            # so each bit forms a propagation loop the SCC pass must cut.
            carry = None
            for j in range(aw):
                acc = f"{pe}/acc{j}"
                if j < dw:
                    s1 = f"{pe}/s{j}"
                    sink.gate("XOR", s1, {"a0": acc, "a1": prod[j], "y": s1}, fub)
                    ca = f"{pe}/ca{j}"
                    sink.gate("AND", ca, {"a0": acc, "a1": prod[j], "y": ca}, fub)
                    if carry is None:
                        d, new_carry = s1, ca
                    else:
                        d = f"{pe}/d{j}"
                        sink.gate("XOR", d, {"a0": s1, "a1": carry, "y": d}, fub)
                        cb = f"{pe}/cb{j}"
                        sink.gate("AND", cb, {"a0": s1, "a1": carry, "y": cb}, fub)
                        new_carry = f"{pe}/cy{j}"
                        sink.gate("OR", new_carry,
                                  {"a0": ca, "a1": cb, "y": new_carry}, fub)
                else:
                    d = f"{pe}/d{j}"
                    sink.gate("XOR", d, {"a0": acc, "a1": carry, "y": d}, fub)
                    new_carry = f"{pe}/cy{j}"
                    sink.gate("AND", new_carry,
                              {"a0": acc, "a1": carry, "y": new_carry}, fub)
                sink.latch(acc, {"d": d, "q": acc}, fub)
                carry = new_carry

    # Column OR chains over the accumulator sign bits -> primary outputs.
    msb = aw - 1
    for q in range(cols):
        chain = f"pe0_{q}/acc{msb}"
        for r in range(1, rows):
            nxt = f"or_c{q}_r{r}"
            sink.gate("OR", nxt,
                      {"a0": chain, "a1": f"pe{r}_{q}/acc{msb}", "y": nxt},
                      {"fub": fub_of(r, q)})
            chain = nxt
        sink.gate("BUF", f"y_c{q}", {"a": chain, "y": f"y_c{q}"},
                  {"fub": fub_of(rows - 1, q)})

    return structures


def build_systolic(config: SystolicConfig | None = None) -> SystolicDesign:
    """Generate the array as a validated :class:`Module`."""
    config = config or SystolicConfig()
    sink = ModuleSink("systolic")
    structures = _emit(config, sink)
    module = sink.finish()
    validate_module(module)
    return SystolicDesign(module=module, config=config, structures=structures)


def write_systolic_exlif(
    config: SystolicConfig, target: str | os.PathLike | IO[str]
) -> None:
    """Stream the array as EXLIF text without building a Module.

    *target* is a path or an open text handle. Peak memory is one line
    of text — pair with :func:`repro.netlist.stream.stream_graph` for an
    end-to-end object-free path to the compiled engine.
    """
    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", buffering=1 << 20) as handle:
            sink = ExlifSink("systolic", handle)
            _emit(config, sink)
            sink.finish()
        return
    sink = ExlifSink("systolic", target)
    _emit(config, sink)
    sink.finish()


def systolic_exlif_text(config: SystolicConfig) -> str:
    """The EXLIF text of the array (small configs / tests)."""
    out = io.StringIO()
    write_systolic_exlif(config, out)
    return out.getvalue()
