"""Compiled propagation core: CSR kernels, SolvePlan reuse, parallel relax.

The compiled engine must be indistinguishable from the dict-based seed
engine — same annotation sets monolithically, same per-node AVFs (within
1e-9) under partitioned relaxation, same relaxation trace — while being
reusable across environments and deterministic at any worker count.
"""

import pytest

from repro.core.compiled import HAVE_NUMPY, SetEvaluator, SolvePlan, resolve_ids
from repro.core.graphmodel import StructurePorts
from repro.core.pavf import Atom, LOOP, PavfEnv
from repro.core.sart import SartConfig, build_env, build_plan, run_sart
from repro.errors import SartError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.graph import extract_graph


def _pipeline(n_fubs=4, stages_per_fub=3, fan=2):
    """Multi-FUB pipeline with fan-out and a hold loop in the middle."""
    b = ModuleBuilder("pipe")
    tie = b.input("tie_in")
    en = b.input("en_in")
    cur = b.dff(tie, name="src", attrs={"struct": "SRC", "bit": "0", "fub": "FUB0"})
    for f in range(n_fubs):
        fub = f"FUB{f}"
        for s in range(stages_per_fub):
            nxt = b.dff(cur, name=f"f{f}s{s}", attrs={"fub": fub})
            if s == 1 and fan > 1:
                side = b.and_(cur, nxt, attrs={"fub": fub})
                nxt = b.or_(nxt, side, attrs={"fub": fub})
            cur = nxt
        if f == 1:
            # enabled flop: self edge after extraction -> loop boundary
            cur = b.dff(cur, en=en, name=f"hold{f}", attrs={"fub": fub})
    b.dff(cur, name="snk",
          attrs={"struct": "SNK", "bit": "0", "fub": f"FUB{n_fubs - 1}"})
    return b.done()


STRUCTS = {
    "SRC": StructurePorts("SRC", pavf_r=0.3, pavf_w=0.0, avf=0.5),
    "SNK": StructurePorts("SNK", pavf_r=0.0, pavf_w=0.1, avf=0.5),
}


@pytest.fixture(scope="module")
def tinycore_module():
    from repro.designs.tinycore.core import build_tinycore
    from repro.designs.tinycore.programs import default_dmem, program

    words, dmem = program("fib"), default_dmem("fib")
    return build_tinycore(words, dmem).module


@pytest.fixture(scope="module")
def bigcore_half_graph():
    from repro.designs.bigcore import BigcoreConfig, build_bigcore

    design = build_bigcore(BigcoreConfig(scale=0.5, seed=42))
    return extract_graph(design.module)


def _assert_results_match(a, b, tol=1e-9):
    assert a.node_avfs.keys() == b.node_avfs.keys()
    for net, na in a.node_avfs.items():
        nb = b.node_avfs[net]
        assert abs(na.avf - nb.avf) <= tol, net
        assert abs(na.forward - nb.forward) <= tol, net
        assert abs(na.backward - nb.backward) <= tol, net
        assert na.visited == nb.visited, net
        assert na.role == nb.role and na.kind == nb.kind and na.fub == nb.fub


class TestEquivalence:
    def test_monolithic_sets_identical(self, tinycore_module):
        cfg = dict(partition_by_fub=False)
        a = run_sart(tinycore_module, config=SartConfig(engine="dataflow", **cfg))
        b = run_sart(tinycore_module, config=SartConfig(engine="compiled", **cfg))
        # Not just values: the interned annotation sets are the same sets.
        assert a.f_sets == b.f_sets
        assert a.b_sets == b.b_sets
        _assert_results_match(a, b)

    def test_partitioned_avfs_and_trace(self, tinycore_module):
        a = run_sart(tinycore_module, config=SartConfig(engine="dataflow"))
        b = run_sart(tinycore_module, config=SartConfig(engine="compiled"))
        _assert_results_match(a, b)
        assert b.trace is not None
        assert b.trace.iterations == a.trace.iterations
        assert b.trace.converged == a.trace.converged
        assert b.trace.max_delta == pytest.approx(a.trace.max_delta)
        for fub, avgs in a.trace.fub_avg.items():
            assert b.trace.fub_avg[fub] == pytest.approx(avgs)

    def test_partitioned_bigcore_within_1e9(self, bigcore_half_graph):
        a = run_sart(bigcore_half_graph, config=SartConfig(engine="dataflow"))
        b = run_sart(bigcore_half_graph, config=SartConfig(engine="compiled"))
        _assert_results_match(a, b, tol=1e-9)

    def test_walk_agreement_preserved(self):
        # dangling="top" removes the one refinement walks can't express.
        module = _pipeline()
        cfg = dict(partition_by_fub=False, dangling="top")
        w = run_sart(module, STRUCTS, SartConfig(engine="walk", **cfg))
        c = run_sart(module, STRUCTS, SartConfig(engine="compiled", **cfg))
        for net, nw in w.node_avfs.items():
            assert c.node_avfs[net].avf == pytest.approx(nw.avf), net


class TestRelaxation:
    def test_partitioned_matches_monolithic_tinycore(self, tinycore_module):
        mono = run_sart(
            tinycore_module,
            config=SartConfig(engine="compiled", partition_by_fub=False),
        )
        part = run_sart(tinycore_module, config=SartConfig(engine="compiled"))
        assert part.trace.converged
        tol = part.config.tol
        for net, nm in mono.node_avfs.items():
            assert abs(part.node_avfs[net].avf - nm.avf) <= tol, net

    def test_partitioned_matches_monolithic_bigcore(self, bigcore_half_graph):
        mono = run_sart(
            bigcore_half_graph,
            config=SartConfig(engine="compiled", partition_by_fub=False),
        )
        part = run_sart(bigcore_half_graph, config=SartConfig(engine="compiled"))
        assert part.trace.converged
        tol = part.config.tol
        for net, nm in mono.node_avfs.items():
            assert abs(part.node_avfs[net].avf - nm.avf) <= tol, net

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_does_not_change_results(self, workers):
        # min_parallel_nodes=0 forces the pool path on this tiny design.
        module = _pipeline()
        base = run_sart(module, STRUCTS, SartConfig(engine="compiled", workers=1))
        multi = run_sart(
            module,
            STRUCTS,
            SartConfig(engine="compiled", workers=workers, min_parallel_nodes=0),
        )
        # Bit-exact: the pool path must be a pure execution detail.
        assert base.node_avfs == multi.node_avfs
        assert base.trace.max_delta == multi.trace.max_delta
        assert base.trace.fub_avg == multi.trace.fub_avg

    def test_pool_workers_match_on_tinycore(self, tinycore_module):
        base = run_sart(tinycore_module, config=SartConfig(engine="compiled"))
        multi = run_sart(
            tinycore_module,
            config=SartConfig(
                engine="compiled", workers=2, min_parallel_nodes=0
            ),
        )
        assert base.node_avfs == multi.node_avfs

    def test_small_design_auto_serial_warns(self):
        # Default threshold: a tiny design ignores workers>1 (pool overhead
        # dominates) and says so.
        from repro.core.compiled import SmallDesignSerialWarning

        module = _pipeline()
        base = run_sart(module, STRUCTS, SartConfig(engine="compiled", workers=1))
        with pytest.warns(SmallDesignSerialWarning, match="parallel threshold"):
            auto = run_sart(
                module, STRUCTS, SartConfig(engine="compiled", workers=4)
            )
        assert base.node_avfs == auto.node_avfs
        assert base.trace.max_delta == auto.trace.max_delta

    def test_pool_start_failure_degrades_to_serial(self, monkeypatch):
        # The relaxation pool rides the fault-tolerant campaign runtime:
        # an unspawnable pool warns and falls back to the serial kernels
        # instead of raising, with bit-identical results.
        import warnings

        import repro.sfi.runtime as runtime

        module = _pipeline()
        base = run_sart(module, STRUCTS, SartConfig(engine="compiled", workers=1))

        class Unspawnable:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused")

        monkeypatch.setattr(runtime, "ProcessPoolExecutor", Unspawnable)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = run_sart(
                module,
                STRUCTS,
                SartConfig(engine="compiled", workers=3, min_parallel_nodes=0),
            )
        assert any(
            isinstance(w.message, runtime.DegradedExecutionWarning) for w in caught
        )
        assert base.node_avfs == degraded.node_avfs
        assert base.trace.max_delta == degraded.trace.max_delta


class TestSolvePlan:
    def test_plan_reuse_matches_fresh_runs(self, tinycore_module):
        plan = build_plan(tinycore_module)
        for loop_pavf in (0.0, 0.3, 1.0):
            cfg = SartConfig(engine="compiled", loop_pavf=loop_pavf)
            fresh = run_sart(tinycore_module, config=cfg)
            reused = run_sart(tinycore_module, config=cfg, plan=plan)
            _assert_results_match(fresh, reused, tol=0.0)
            assert reused.stats["plan_reused"] == 1.0
            assert fresh.stats["plan_reused"] == 0.0

    def test_monolithic_reuse_is_cached(self, tinycore_module):
        plan = build_plan(tinycore_module)
        cfg = dict(engine="compiled", partition_by_fub=False)
        run_sart(tinycore_module, config=SartConfig(**cfg), plan=plan)
        sets_before = len(plan.interner)
        run_sart(
            tinycore_module, config=SartConfig(loop_pavf=0.7, **cfg), plan=plan
        )
        # The second environment re-evaluated cached vectors: no new sets.
        assert len(plan.interner) == sets_before

    def test_structural_mismatch_rejected(self, tinycore_module):
        plan = build_plan(tinycore_module)
        with pytest.raises(SartError, match="structural"):
            run_sart(
                tinycore_module,
                config=SartConfig(engine="compiled", detect_ctrl=False),
                plan=plan,
            )

    def test_plan_rejected_by_other_engines(self, tinycore_module):
        plan = build_plan(tinycore_module)
        with pytest.raises(SartError, match="SolvePlan"):
            run_sart(
                tinycore_module, config=SartConfig(engine="dataflow"), plan=plan
            )

    def test_environment_knobs_are_free(self, tinycore_module):
        plan = build_plan(tinycore_module)
        cfg = SartConfig(
            engine="compiled",
            loop_pavf=0.9,
            ctrl_pavf=0.5,
            const_pavf=0.2,
            iterations=5,
            max_terms=64,
            dangling="top",
            partition_by_fub=False,
        )
        res = run_sart(tinycore_module, config=cfg, plan=plan)
        assert 0.0 <= res.report.weighted_seq_avf <= 1.0


class TestSetEvaluator:
    def _random_env_and_sets(self):
        import random

        rng = random.Random(7)
        plan = SolvePlan()  # bare interner holder
        interner = plan.interner
        atoms = [Atom(LOOP, f"n{i}") for i in range(40)]
        env = PavfEnv(unbound_default=1.0)
        for a in atoms:
            env.bind(a, rng.random() * 0.1)
        sids = [
            interner.id_of(frozenset(rng.sample(atoms, rng.randint(1, 12))))
            for _ in range(200)
        ]
        return interner, env, sids

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_and_python_paths_bit_identical(self):
        interner, env, sids = self._random_env_and_sets()
        py = SetEvaluator(interner, env, use_numpy=False)
        np_ = SetEvaluator(interner, env, use_numpy=True)
        py.fill(sids)
        np_.fill(sids)
        for sid in sids:
            # Bit-identical, not approx: both sum the same sorted atoms
            # left to right (reduceat applies the ufunc sequentially).
            assert py.value(sid) == np_.value(sid)

    def test_values_cap_at_one(self):
        interner, env, sids = self._random_env_and_sets()
        ev = SetEvaluator(interner, env)
        big = interner.id_of(frozenset(Atom(LOOP, f"m{i}") for i in range(30)))
        assert ev.value(big) == 1.0  # 30 unbound atoms at 1.0 each, capped
        for sid in sids:
            assert 0.0 <= ev.value(sid) <= 1.0


def test_resolve_ids_matches_resolve(tinycore_module):
    from repro.core.resolve import resolve

    plan = build_plan(tinycore_module)
    env = build_env(plan.model, SartConfig())
    f_ids, b_ids = plan.solve_monolithic()
    got = resolve_ids(plan, f_ids, b_ids, env)
    want = resolve(plan.model, plan.sets_dict(f_ids), plan.sets_dict(b_ids), env)
    assert got.keys() == want.keys()
    for net, nw in want.items():
        ng = got[net]
        assert ng.avf == pytest.approx(nw.avf)
        assert ng.forward == pytest.approx(nw.forward)
        assert ng.backward == pytest.approx(nw.backward)
        assert (ng.kind, ng.fub, ng.role, ng.visited) == (
            nw.kind,
            nw.fub,
            nw.role,
            nw.visited,
        )
