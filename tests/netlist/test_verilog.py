"""Structural Verilog export / strict-subset import."""

import pytest

from repro.errors import ExlifParseError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.graph import extract_graph
from repro.netlist.verilog import parse_structural_verilog, write_verilog
from repro.rtlsim.simulator import Simulator
from tests.conftest import make_fig7


def _gate_soup():
    b = ModuleBuilder("soup")
    a = b.input("a")
    c = b.input("c")
    s = b.input("s")
    n1 = b.and_(a, c)
    n2 = b.nor_(n1, s)
    n3 = b.xor_(a, n2, c)
    n4 = b.mux2(n1, n3, s)
    n5 = b.not_(n4)
    q = b.dff(n5, init=1)
    q2 = b.dff(q, en=s)
    b.output("y")
    b.gate("BUF", [q2], out="y")
    return b.done()


def test_write_contains_expected_idioms():
    text, names = write_verilog(_gate_soup())
    assert text.startswith("// generated")
    assert "module soup(" in text
    assert "always @(posedge clk)" in text
    assert "if (" in text          # enabled flop
    assert "? " in text            # mux ternary
    assert "initial" in text       # init values
    assert text.strip().endswith("endmodule")
    # every net has a mangled name and no illegal characters remain
    for mangled in names.values():
        assert "[" not in mangled and "$" not in mangled and "/" not in mangled


def test_name_mangling_collisions_resolved():
    b = ModuleBuilder("m")
    b.input("x[0]")
    b.input("x_0")
    b.output("y")
    b.gate("OR", ["x[0]", "x_0"], out="y")
    text, names = write_verilog(b.done())
    assert len(set(names.values())) == len(names)


def test_roundtrip_behavioural_equivalence():
    """Export -> parse -> simulate both, compare cycle by cycle."""
    original = _gate_soup()
    text, names = write_verilog(original)
    again = parse_structural_verilog(text)

    sim_a = Simulator(original, lanes=1)
    sim_b = Simulator(again, lanes=1)
    for step in range(24):
        stim = [(step >> 0) & 1, (step >> 1) & 1, (step >> 2) & 1]
        sim_a.poke("a", stim[0]); sim_a.poke("c", stim[1]); sim_a.poke("s", stim[2])
        sim_b.poke(names["a"], stim[0]); sim_b.poke(names["c"], stim[1])
        sim_b.poke(names["s"], stim[2])
        assert sim_a.peek("y") == sim_b.peek(names["y"]), step
        sim_a.step(); sim_b.step()


def test_roundtrip_preserves_structure_counts():
    original = _gate_soup()
    text, _ = write_verilog(original)
    again = parse_structural_verilog(text)
    orig_stats = original.stats()
    new_stats = again.stats()
    assert new_stats["DFF"] == orig_stats["DFF"]
    assert sum(v for k, v in new_stats.items() if k in ("AND", "NOR", "XOR"))\
        == sum(v for k, v in orig_stats.items() if k in ("AND", "NOR", "XOR"))


def test_mem_export_emits_array():
    b = ModuleBuilder("m")
    ra = b.input_bus("ra", 2)
    wa = b.input_bus("wa", 2)
    wd = b.input_bus("wd", 4)
    we = b.input("we")
    rd = b.mem(4, 4, [ra], wa, wd, we, name="arr", init=[1, 2, 3])[0]
    for i in range(4):
        b.output(f"y[{i}]")
        b.gate("BUF", [rd[i]], out=f"y[{i}]")
    text, _ = write_verilog(b.done())
    assert "reg [3:0] arr_mem [0:3];" in text
    assert "arr_mem[0] = 4'd1;" in text
    assert "always @(posedge clk) if (we) arr_mem[" in text


def test_parser_rejects_garbage():
    with pytest.raises(ExlifParseError, match="no module header"):
        parse_structural_verilog("this is not verilog")
    bad = "module m(clk);\n  input clk;\n  assign y = a + b;\nendmodule\n"
    with pytest.raises(ExlifParseError, match="unsupported expression"):
        parse_structural_verilog(bad)


def test_fig7_exports_cleanly():
    module, _ = make_fig7()
    text, names = write_verilog(module)
    again = parse_structural_verilog(text)
    assert len(again.sequential_instances()) == len(module.sequential_instances())
    # graph extraction works on the re-imported netlist too
    g = extract_graph(again)
    assert len(g.seq_nets()) == len(module.sequential_instances())
