"""Property tests: EXLIF and Verilog round-trips on random circuits."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.exlif import parse_exlif, write_exlif
from repro.netlist.verilog import parse_structural_verilog, write_verilog
from repro.rtlsim.simulator import Simulator
from tests.rtlsim.test_random_circuits import _random_module


@settings(max_examples=15)
@given(st.integers(0, 10_000))
def test_exlif_roundtrip_random(seed):
    module = _random_module(seed, n_gates=20, n_dffs=4)
    again = parse_exlif(write_exlif(module))[module.name]
    assert set(again.instances) == set(module.instances)
    for name, inst in module.instances.items():
        got = again.instances[name]
        assert got.kind == inst.kind
        assert got.conn == inst.conn
    assert set(again.ports) == set(module.ports)


@settings(max_examples=10)
@given(st.integers(0, 10_000), st.integers(0, 2**30))
def test_verilog_roundtrip_behaviour_random(seed, stim_seed):
    module = _random_module(seed, n_gates=18, n_dffs=4)
    text, names = write_verilog(module)
    again = parse_structural_verilog(text)

    sim_a = Simulator(module, lanes=1)
    sim_b = Simulator(again, lanes=1)
    rng = random.Random(stim_seed)
    inputs = module.input_ports()
    outputs = module.output_ports()
    for _ in range(8):
        for net in inputs:
            bit = rng.randint(0, 1)
            sim_a.poke(net, bit)
            sim_b.poke(names[net], bit)
        for net in outputs:
            assert sim_a.peek(net) == sim_b.peek(names[net])
        sim_a.step()
        sim_b.step()


@settings(max_examples=15)
@given(st.integers(0, 10_000))
def test_exlif_roundtrip_simulates_identically(seed):
    module = _random_module(seed, n_gates=15, n_dffs=3)
    again = parse_exlif(write_exlif(module))[module.name]
    sim_a = Simulator(module, lanes=1)
    sim_b = Simulator(again, lanes=1)
    rng = random.Random(seed)
    for _ in range(8):
        for net in module.input_ports():
            bit = rng.randint(0, 1)
            sim_a.poke(net, bit)
            sim_b.poke(net, bit)
        for net in module.output_ports():
            assert sim_a.peek(net) == sim_b.peek(net)
        sim_a.step()
        sim_b.step()
