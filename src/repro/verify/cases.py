"""Seeded random case generation for the verification harness.

Two families of cases feed the oracle library
(:mod:`repro.verify.oracles`):

* **Design cases** — randomized multi-FUB netlists exercising everything
  the SART flow special-cases: structure read/write ports, FSM rings,
  stall (enable-hold) loops, pointer (counter) loops, control registers
  matching the name conventions of :mod:`repro.core.controlregs`, and a
  randomized port-pAVF environment. They go well beyond the single-FUB
  shapes in ``tests/core/test_sart_properties.py``.
* **Circuit cases** — randomized gate/flop/memory circuits plus a
  deterministic stimulus and fault schedule, used for bit-exact
  cross-backend simulation checks.

Both are built from small frozen *specs* that are trivially
JSON-serializable. That is what makes shrinking and replay work: a
failing case is reported as its spec, the shrinker mutates spec fields
downward, and ``repro-sart verify --replay`` rebuilds the exact case
from the saved JSON. Construction is deterministic: the same spec always
yields the same module, environment, and stimulus.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.core.graphmodel import StructurePorts
from repro.netlist.builder import ModuleBuilder, bus
from repro.netlist.netlist import Module
from repro.netlist.validate import validate_module

_GATES2 = ("AND", "OR", "XOR", "NAND", "NOR", "XNOR")


# ----------------------------------------------------------------------
# design cases
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CaseSpec:
    """Genome of one randomized SART design case (JSON-safe)."""

    seed: int
    n_fubs: int = 3
    flops_per_fub: int = 8
    struct_width: int = 2       # bits per structure (0 disables structures)
    fsm_loops: int = 1          # 3-flop rings with gated feedback
    stall_loops: int = 1        # enable-hold flops (self edge)
    pointer_loops: int = 1      # 3-bit counters (multi-node SCC)
    ctrl_regs: int = 1          # name-matched cfg registers per design
    env_seed: int = 0           # drives the random port-pAVF environment
    loop_pavf: float = 0.3

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "CaseSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class DesignCase:
    """A built design case: the module plus its pAVF environment."""

    spec: CaseSpec
    module: Module
    structures: dict[str, StructurePorts]
    # Net names of features the generator placed, for oracle targeting.
    ctrl_names: list[str] = field(default_factory=list)
    loop_seeds: list[str] = field(default_factory=list)

    def describe(self) -> str:
        s = self.spec
        return (f"case(seed={s.seed}, fubs={s.n_fubs}, "
                f"flops={s.flops_per_fub}, structs={s.struct_width}b, "
                f"loops={s.fsm_loops}f/{s.stall_loops}s/{s.pointer_loops}p, "
                f"ctrl={s.ctrl_regs}, env={s.env_seed})")


def random_spec(rng: random.Random) -> CaseSpec:
    """Draw a random (small, fast) case spec."""
    return CaseSpec(
        seed=rng.randrange(1_000_000),
        n_fubs=rng.randint(1, 4),
        flops_per_fub=rng.randint(3, 12),
        struct_width=rng.randint(0, 3),
        fsm_loops=rng.randint(0, 2),
        stall_loops=rng.randint(0, 2),
        pointer_loops=rng.randint(0, 1),
        ctrl_regs=rng.randint(0, 2),
        env_seed=rng.randrange(1_000_000),
    )


def build_case(spec: CaseSpec) -> DesignCase:
    """Deterministically build the design a spec describes.

    Layout: each FUB owns a slice of structures, a random combinational
    fabric over the nets visible to it (its own nets plus the previous
    FUB's exports), and its share of the requested loop topologies and
    control registers. Source structures sit in the first FUB, sink
    structures in the last, so pAVF traffic genuinely crosses FUB
    boundaries and partitioned relaxation has work to do.
    """
    rng = random.Random(spec.seed)
    b = ModuleBuilder(f"vcase{spec.seed}")
    tie = b.input("tie_in")

    ctrl_names: list[str] = []
    loop_seeds: list[str] = []
    structures: dict[str, StructurePorts] = {}
    exports: list[str] = [tie]     # nets visible to the next FUB

    n_fubs = max(1, spec.n_fubs)
    for f in range(n_fubs):
        fub = f"F{f}"
        with b.attrs(fub=fub):
            pool = list(exports)

            # Source structures (first FUB): read ports feeding the fabric.
            if f == 0 and spec.struct_width > 0:
                for bit in range(spec.struct_width):
                    q = b.dff(tie, name=f"{fub}/src[{bit}]",
                              attrs={"struct": "SRC", "bit": str(bit)})
                    pool.append(q)

            # Loop topologies, spread round-robin across FUBs.
            for k in range(spec.fsm_loops):
                if k % n_fubs != f:
                    continue
                ring = _fsm_ring(b, rng, pool, tag=f"{fub}/fsm{k}")
                loop_seeds.append(ring[0])
                pool.extend(ring)
            for k in range(spec.stall_loops):
                if k % n_fubs != f:
                    continue
                q = _stall_flop(b, rng, pool, tag=f"{fub}/stall{k}")
                loop_seeds.append(q)
                pool.append(q)
            for k in range(spec.pointer_loops):
                if k % n_fubs != f:
                    continue
                ptr = _pointer_counter(b, rng, pool, tag=f"{fub}/ptr{k}")
                loop_seeds.extend(ptr)
                pool.extend(ptr)

            # Control registers: the cfg name convention triggers the
            # pattern matcher in repro.core.controlregs.
            for k in range(spec.ctrl_regs):
                if k % n_fubs != f:
                    continue
                q = b.dff(tie, name=f"{fub}/cfg_mode{k}")
                ctrl_names.append(q)
                pool.append(q)

            # Random combinational fabric + pipeline flops.
            for i in range(spec.flops_per_fub):
                if rng.random() < 0.55 and len(pool) >= 2:
                    net = b.gate(rng.choice(_GATES2),
                                 [rng.choice(pool), rng.choice(pool)])
                elif rng.random() < 0.3 and len(pool) >= 3:
                    net = b.gate("MUX2", [rng.choice(pool) for _ in range(3)])
                else:
                    net = rng.choice(pool)
                pool.append(b.dff(net, name=f"{fub}/p{i}"))

            # Sink structures (last FUB): write ports draining the fabric.
            if f == n_fubs - 1 and spec.struct_width > 0:
                for bit in range(spec.struct_width):
                    b.dff(rng.choice(pool), name=f"{fub}/snk[{bit}]",
                          attrs={"struct": "SNK", "bit": str(bit)})

            # Export a handful of nets to the next FUB / the outputs.
            n_exports = min(len(pool), 4)
            exports = [pool[-(i + 1)] for i in range(n_exports)]

    for i, net in enumerate(exports[:2]):
        port = f"out{i}"
        b.output(port)
        b.gate("BUF", [net], out=port, attrs={"fub": f"F{n_fubs - 1}"})

    module = b.done()
    validate_module(module)

    erng = random.Random(spec.env_seed)
    if spec.struct_width > 0:
        structures["SRC"] = StructurePorts(
            "SRC",
            pavf_r=[round(erng.random() * 0.6, 6)
                    for _ in range(spec.struct_width)],
            pavf_w=0.0,
            avf=round(erng.random(), 6),
        )
        structures["SNK"] = StructurePorts(
            "SNK",
            pavf_r=0.0,
            pavf_w=[round(erng.random() * 0.6, 6)
                    for _ in range(spec.struct_width)],
            avf=round(erng.random(), 6),
        )

    return DesignCase(spec=spec, module=module, structures=structures,
                      ctrl_names=ctrl_names, loop_seeds=loop_seeds)


def _fsm_ring(b: ModuleBuilder, rng: random.Random, pool: list[str],
              tag: str) -> list[str]:
    """A 3-flop ring with external excitation (a multi-node seq SCC)."""
    nets = [f"{tag}_q{i}" for i in range(3)]
    for net in nets:
        b.module.add_net(net)
    stim = rng.choice(pool)
    mix = b.xor_(nets[2], stim)
    b.dff(mix, q=nets[0], name=f"{tag}_r0")
    b.dff(nets[0], q=nets[1], name=f"{tag}_r1")
    b.dff(nets[1], q=nets[2], name=f"{tag}_r2")
    return nets


def _stall_flop(b: ModuleBuilder, rng: random.Random, pool: list[str],
                tag: str) -> str:
    """An enable-hold flop: extraction gives it a self edge (stall loop)."""
    q = f"{tag}_q"
    b.module.add_net(q)
    en = rng.choice(pool)
    d = rng.choice(pool)
    b.dff(d, en=en, q=q, name=f"{tag}_r")
    return q


def _pointer_counter(b: ModuleBuilder, rng: random.Random, pool: list[str],
                     tag: str) -> list[str]:
    """A 3-bit incrementing pointer: each bit toggles on carry-in."""
    qs = [f"{tag}_q{i}" for i in range(3)]
    for net in qs:
        b.module.add_net(net)
    step = rng.choice(pool)
    carry = step
    for i, q in enumerate(qs):
        nxt = b.xor_(q, carry)
        carry = b.and_(q, carry)
        b.dff(nxt, q=q, name=f"{tag}_r{i}")
    return qs


# ----------------------------------------------------------------------
# circuit cases (cross-backend simulation)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CircuitSpec:
    """Genome of one cross-backend simulation case (JSON-safe)."""

    seed: int
    n_inputs: int = 4
    n_gates: int = 24
    n_dffs: int = 6
    with_mem: bool = False
    lanes: int = 5
    cycles: int = 12
    n_faults: int = 3           # random lane/net flips during the run
    stim_seed: int = 0

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "CircuitSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def random_circuit_spec(rng: random.Random) -> CircuitSpec:
    return CircuitSpec(
        seed=rng.randrange(1_000_000),
        n_inputs=rng.randint(2, 5),
        n_gates=rng.randint(8, 40),
        n_dffs=rng.randint(2, 8),
        with_mem=rng.random() < 0.4,
        lanes=rng.randint(2, 9),
        cycles=rng.randint(6, 16),
        n_faults=rng.randint(0, 4),
        stim_seed=rng.randrange(1_000_000),
    )


def build_circuit(spec: CircuitSpec) -> Module:
    """Deterministically build the circuit a spec describes.

    Beyond ``tests/rtlsim/test_random_circuits.py`` this also drops in a
    small MEM array (write port fed from the fabric, read address from
    flops), which exercises the backends' memory fast paths.
    """
    rng = random.Random(spec.seed)
    b = ModuleBuilder(f"vcirc{spec.seed}")
    pool = [b.input(f"in{i}") for i in range(spec.n_inputs)]
    q_nets = []
    for i in range(max(2, spec.n_dffs)):
        net = f"q{i}"
        b.module.add_net(net)
        q_nets.append(net)
        pool.append(net)
    for _ in range(spec.n_gates):
        kind = rng.choice(_GATES2 + ("NOT", "BUF", "MUX2"))
        if kind in ("NOT", "BUF"):
            net = b.gate(kind, [rng.choice(pool)])
        elif kind == "MUX2":
            net = b.gate(kind, [rng.choice(pool) for _ in range(3)])
        else:
            net = b.gate(kind, [rng.choice(pool), rng.choice(pool)])
        pool.append(net)
    if spec.with_mem:
        addr_bits = 2
        raddr = [rng.choice(q_nets) for _ in range(addr_bits)]
        waddr = [rng.choice(pool) for _ in range(addr_bits)]
        wdata = [rng.choice(pool) for _ in range(2)]
        wen = rng.choice(pool)
        rdata = b.mem(depth=4, width=2, raddrs=[raddr], waddr=waddr,
                      wdata=wdata, wen=wen, name="vmem",
                      init=[rng.randrange(4) for _ in range(4)])
        pool.extend(rdata[0])
    for i, q in enumerate(q_nets):
        d = rng.choice(pool)
        en = rng.choice(pool) if rng.random() < 0.4 else None
        b.dff(d, en=en, q=q, name=f"ff{i}", init=rng.randint(0, 1))
    for i in range(2):
        b.output(f"out{i}")
        b.gate("BUF", [rng.choice(pool)], out=f"out{i}")
    module = b.done()
    validate_module(module)
    return module


def circuit_schedule(spec: CircuitSpec, module: Module):
    """Deterministic stimulus + fault schedule for a circuit case.

    Returns ``(stimulus, faults)`` where ``stimulus[cycle]`` maps input
    nets to bits and ``faults`` is a list of ``(cycle, net, lane_mask)``
    flips (never lane 0, so the golden lane stays clean).
    """
    rng = random.Random(spec.stim_seed)
    inputs = module.input_ports()
    flippable = sorted(module.nets)
    stimulus = [
        {net: rng.randint(0, 1) for net in inputs} for _ in range(spec.cycles)
    ]
    faults = []
    for _ in range(spec.n_faults):
        lane = rng.randrange(1, max(2, spec.lanes))
        faults.append((
            rng.randrange(spec.cycles),
            rng.choice(flippable),
            1 << lane,
        ))
    return stimulus, faults
