"""Tinycore design provider for the analysis pipeline.

Adapts a tinycore benchmark program to the uniform
:class:`~repro.pipeline.registry.DesignProvider` protocol: a stable
fingerprint over the actual program image (words + data memory + parity
variant, not just the name) and a :class:`~repro.pipeline.artifacts
.DesignArtifact` carrying the simulable netlist for the gate-level
branches (golden run, SFI, beam) alongside the flattened module SART
analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.programs import PROGRAMS, default_dmem, program
from repro.errors import DesignRefError
from repro.pipeline.artifacts import DesignArtifact
from repro.pipeline.fingerprint import stage_fingerprint


@dataclass(frozen=True)
class TinycoreProvider:
    """``tinycore:<program>[@parity=1]`` — a benchmark on the real core."""

    program: str
    parity: bool = False

    @property
    def ref(self) -> str:
        suffix = "@parity=1" if self.parity else ""
        return f"tinycore:{self.program}{suffix}"

    def words(self) -> tuple[list[int], list[int] | None]:
        if self.program not in PROGRAMS:
            raise DesignRefError(
                f"unknown program {self.program!r}; have {sorted(PROGRAMS)}"
            )
        return program(self.program), default_dmem(self.program)

    def fingerprint(self) -> str:
        words, dmem = self.words()
        return stage_fingerprint(
            "design", "tinycore", self.program, self.parity, words, dmem
        )

    def build(self) -> DesignArtifact:
        words, dmem = self.words()
        netlist = build_tinycore(words, dmem, parity=self.parity)
        return DesignArtifact(
            ref=self.ref,
            kind="tinycore",
            fingerprint=self.fingerprint(),
            module=netlist.module,
            netlist=netlist,
            program=tuple(words),
            dmem=tuple(dmem) if dmem is not None else None,
            program_name=self.program,
        )
