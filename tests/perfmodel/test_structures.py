"""Direct unit tests for SimStructure (occupancy, events, errors)."""

import pytest

from repro.ace.lifetime import AceLifetimeAnalyzer
from repro.errors import AceError
from repro.perfmodel.structures import SimStructure


def _structure(recorder=None, entries=3):
    return SimStructure("s", entries, 8, recorder=recorder)


def test_alloc_until_full():
    s = _structure()
    entries = [s.alloc(0, True) for _ in range(3)]
    assert None not in entries and len(set(entries)) == 3
    assert s.is_full()
    assert s.alloc(1, True) is None
    s.release(entries[0], 2)
    assert not s.is_full()
    assert s.alloc(3, True) is not None


def test_occupancy_sampling():
    s = _structure()
    s.alloc(0, True)
    s.sample_occupancy()
    s.alloc(1, True)
    s.sample_occupancy()
    assert s.occupancy() == 2
    assert s.mean_occupancy() == pytest.approx(1.5)
    assert _structure().mean_occupancy() == 0.0


def test_errors_on_unallocated():
    s = _structure()
    with pytest.raises(AceError):
        s.read(0, 0, True)
    with pytest.raises(AceError):
        s.release(0, 0)
    with pytest.raises(AceError):
        s.write(0, 0, True)


def test_events_reach_recorder():
    analyzer = AceLifetimeAnalyzer()
    analyzer.register("s", 3, 8)
    s = _structure(recorder=analyzer)
    entry = s.alloc(0, True)
    s.read(entry, 4, True)
    s.release(entry, 6, consumed=True)
    stats = analyzer.finish(10)["s"]
    assert stats.total_writes == 1
    assert stats.total_reads == 1
    assert stats.ace_bit_cycles == 4 * 8


def test_silent_alloc_defers_write_event():
    analyzer = AceLifetimeAnalyzer()
    analyzer.register("s", 3, 8)
    s = _structure(recorder=analyzer)
    entry = s.alloc(0, ace=False, record=False)  # rename-style reservation
    s.write(entry, 5, ace=True)                  # data arrives later
    s.read(entry, 9, ace=True)
    s.release(entry, 9, consumed=True)
    stats = analyzer.finish(10)["s"]
    assert stats.total_writes == 1               # only the real write counted
    assert stats.ace_bit_cycles == 4 * 8
