"""EXLIF serialization round-trips and parse errors."""

import pytest

from repro.errors import ExlifParseError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.exlif import parse_exlif, write_exlif
from tests.conftest import make_fig7


def _roundtrip(module):
    text = write_exlif(module)
    return parse_exlif(text)[module.name]


def test_roundtrip_preserves_everything():
    module, _ = make_fig7()
    again = _roundtrip(module)
    assert set(again.ports) == set(module.ports)
    assert set(again.instances) == set(module.instances)
    for name, inst in module.instances.items():
        got = again.instances[name]
        assert got.kind == inst.kind
        assert got.conn == inst.conn
        assert got.attrs == inst.attrs
        if inst.kind == "DFF":
            assert got.params["init"] == inst.params.get("init", 0)


def test_roundtrip_mem_with_init():
    b = ModuleBuilder("m")
    ra = b.input_bus("ra", 2)
    wa = b.input_bus("wa", 2)
    wd = b.input_bus("wd", 4)
    we = b.input("we")
    b.mem(4, 4, [ra], wa, wd, we, name="arr", init=[1, 2, 3, 4], attrs={"struct": "S"})
    again = _roundtrip(b.done())
    inst = again.instances["arr"]
    assert inst.params == {"depth": 4, "width": 4, "nread": 1, "init": [1, 2, 3, 4]}
    assert inst.attrs == {"struct": "S"}


def test_multiple_models_in_one_file():
    a, _ = make_fig7()
    b = ModuleBuilder("other")
    x = b.input("x")
    b.output("y")
    b.gate("BUF", [x], out="y")
    text = write_exlif({"fig7": a, "other": b.done()})
    mods = parse_exlif(text)
    assert list(mods) == ["fig7", "other"]


def test_subckt_roundtrip():
    b = ModuleBuilder("top")
    x = b.input("x")
    b.output("y")
    b.subckt("child", {"a": x, "z": "y"}, name="u0", attrs={"fub": "F"})
    again = _roundtrip(b.done())
    inst = again.instances["u0"]
    assert inst.kind == "child"
    assert inst.conn == {"a": "x", "z": "y"}


def test_comments_and_blank_lines_ignored():
    text = """
# header comment
.model m
.inputs a
.outputs y   # trailing comment
.gate BUF b0 a=a y=y
.end
"""
    mod = parse_exlif(text)["m"]
    assert "b0" in mod.instances


@pytest.mark.parametrize(
    "text,match",
    [
        (".gate AND g a0=x y=y\n", "outside .model"),
        (".model m\n.model n\n", "nested"),
        (".model m\n.latch r q=q\n.end\n", "requires d="),
        (".model m\n.gate WIBBLE g a0=x y=y\n.end\n", "unknown combinational"),
        (".model m\n.gate AND g a0\n.end\n", "malformed field"),
        (".model m\n.frobnicate x\n.end\n", "unknown directive"),
        (".model m\n.mem r width=2 nread=1 wen=w\n.end\n", "missing parameter"),
        (".model m\n", "not terminated"),
        (".model m\n.end\n.model m\n.end\n", "duplicate module"),
        (".model m\n.gate AND g a0=x a0=z y=y\n.end\n", "duplicate field"),
    ],
)
def test_parse_errors(text, match):
    with pytest.raises(ExlifParseError, match=match):
        parse_exlif(text)


def test_line_numbers_reported():
    text = ".model m\n.gate AND g a0\n.end\n"
    with pytest.raises(ExlifParseError, match="line 2"):
        parse_exlif(text)
