"""E7 — the speed claim: analytical SART vs brute-force SFI.

"A processor with 100,000 sequentials running a 10,000 cycle simulation
would require 1,000,000 RTL simulations to inject into every potential
fault for complete coverage" — while SART "generates AVFs for each and
every functional sequential in the entire design in a single run."

We measure, on tinycore: the wall time of one SART run (all 233
sequentials resolved) vs an SFI campaign sized for comparable per-node
confidence, then report the extrapolated full-coverage cost ratio.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program
from repro.netlist.graph import extract_graph
from repro.sfi import plan_campaign, run_sfi_campaign

PROGRAM = "lattice2d"
INJECTIONS_PER_NODE = 30  # for a useful per-node Wilson interval


@pytest.fixture(scope="module")
def setup():
    words, dmem = program(PROGRAM), default_dmem(PROGRAM)
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    ports, _, _ = tinycore_structure_ports(PROGRAM, words, dmem, gate_cycles=golden.cycles)
    return words, dmem, netlist, golden, ports


def test_bench_sart_single_run(benchmark, setup):
    words, dmem, netlist, golden, ports = setup
    result = benchmark(lambda: run_sart(netlist.module, ports, SartConfig(partition_by_fub=False)))
    assert result.stats["sequentials"] == 233


def test_bench_speed_ratio(setup):
    words, dmem, netlist, golden, ports = setup
    seqs = extract_graph(netlist.module).seq_nets()

    started = time.perf_counter()
    sart = run_sart(netlist.module, ports, SartConfig(partition_by_fub=False))
    sart_seconds = time.perf_counter() - started

    # SFI over a 12-node sample, then extrapolate to all nodes.
    sample = seqs[:: max(1, len(seqs) // 12)][:12]
    plans = plan_campaign(sample, golden.cycles - 2, INJECTIONS_PER_NODE,
                          per_node=True, seed=23)
    campaign = run_sfi_campaign(words, dmem, plans, netlist=netlist)
    sfi_sample_seconds = campaign.elapsed_seconds
    sfi_full_seconds = sfi_sample_seconds * len(seqs) / len(sample)

    ratio = sfi_full_seconds / max(sart_seconds, 1e-9)
    print_table(
        "SART vs SFI cost for whole-design per-node AVFs (lattice2d)",
        ["method", "nodes covered", "injections", "seconds"],
        [
            ["SART (one run)", len(seqs), 0, sart_seconds],
            [f"SFI sample ({len(sample)} nodes)", len(sample),
             len(plans), sfi_sample_seconds],
            ["SFI extrapolated (all nodes)", len(seqs),
             INJECTIONS_PER_NODE * len(seqs), sfi_full_seconds],
        ],
    )
    print(f"speedup: {ratio:,.0f}x for one workload "
          f"(paper: 3-4 orders of magnitude on a real core; grows with "
          f"design size and workload count — SART is one graph solve, SFI "
          f"re-simulates per injection)")
    assert ratio > 20  # tinycore is tiny; the gap widens with scale


def test_bench_speed_scales_with_design(bigcore_design, bigcore_ports):
    """SART wall time on the 7.8k-flop bigcore stays in seconds; SFI's
    simulation count would scale as nodes x cycles x workloads."""
    started = time.perf_counter()
    result = run_sart(bigcore_design.module, bigcore_ports,
                      SartConfig(partition_by_fub=True, iterations=20))
    elapsed = time.perf_counter() - started
    seqs = int(result.stats["sequentials"])
    print(f"\nbigcore: {seqs} sequentials resolved in {elapsed:.2f}s "
          f"({seqs / elapsed:,.0f} nodes/s); equivalent full-coverage SFI at "
          f"30 injections/node would be {30 * seqs:,} RTL simulations")
    assert elapsed < 60
