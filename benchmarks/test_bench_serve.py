"""Job-server benchmark: requests/s, latency percentiles, dedup proof.

Boots a real :class:`~repro.serve.server.ServeApp` (real pipeline
executions of cheap tinycore SART specs, warm artifact cache), drives
it with the load generator, and flushes the metrics to
``BENCH_serve.json``. The dedup-burst block is the acceptance check for
the serving layer: 8 identical concurrent requests must coalesce onto
one job and exactly one pipeline execution, proven from outside the
process via the ``executions`` counter in ``/stats``.
"""

from __future__ import annotations

from repro.serve.loadgen import run_load
from repro.serve.server import ServeApp


def test_serve_throughput_and_dedup(tmp_path, bench_serve_json):
    app = ServeApp(
        str(tmp_path / "state"),
        cache_dir=str(tmp_path / "cache"),
        queue_limit=64,
    ).start_background()
    try:
        doc = run_load(app.url, clients=4, requests=6, dedup_burst=8)
    finally:
        app.drain()

    assert doc["errors"] == []
    assert doc["completed"] == 6
    assert doc["requests_per_second"] > 0
    assert doc["latency_p50_seconds"] <= doc["latency_p99_seconds"]
    # Later jobs reuse the design/golden/plan artifacts of earlier ones.
    assert doc["cache_hit_rate"] > 0

    burst = doc["dedup_burst"]
    assert burst["requests"] == 8
    assert burst["distinct_jobs"] == 1
    assert burst["executions"] == 1      # N identical requests, 1 execution

    bench_serve_json["serve"] = doc
