"""Seeded synthetic trace generation.

A :class:`WorkloadSpec` describes a workload's statistical character; the
generator turns it into a concrete dynamic trace with a realistic register
dataflow: destinations are drawn from a small working set of registers,
sources prefer recently-written registers (short dependence distances for
low-ILP codes, long for high-ILP codes), and a configurable fraction of
results is deliberately dead (written, never consumed) to exercise the
un-ACE machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.perfmodel.isa import (
    Inst,
    OP_ALU,
    OP_BRANCH,
    OP_LOAD,
    OP_MUL,
    OP_NOP,
    OP_OUTPUT,
    OP_PREFETCH,
    OP_STORE,
)
from repro.perfmodel.trace import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one synthetic workload."""

    name: str
    length: int = 10_000
    seed: int = 1
    # Instruction mix (normalized internally).
    frac_alu: float = 0.45
    frac_mul: float = 0.05
    frac_load: float = 0.22
    frac_store: float = 0.12
    frac_branch: float = 0.12
    frac_nop: float = 0.02
    frac_prefetch: float = 0.02
    # Dataflow character.
    regs: int = 24
    dep_distance: int = 4       # how far back sources reach (smaller = serial)
    dead_fraction: float = 0.15  # results intentionally never consumed
    # Memory behaviour.
    working_set: int = 4096      # distinct addresses touched
    stride: int = 8
    random_access_fraction: float = 0.3
    # Control behaviour.
    taken_fraction: float = 0.55
    mispredict_rate: float = 0.05
    imm_fraction: float = 0.35
    # Fraction of outputs (architecturally visible ACE roots).
    output_every: int = 512

    def mix(self) -> list[tuple[str, float]]:
        raw = [
            (OP_ALU, self.frac_alu),
            (OP_MUL, self.frac_mul),
            (OP_LOAD, self.frac_load),
            (OP_STORE, self.frac_store),
            (OP_BRANCH, self.frac_branch),
            (OP_NOP, self.frac_nop),
            (OP_PREFETCH, self.frac_prefetch),
        ]
        total = sum(w for _, w in raw)
        if total <= 0:
            raise TraceError(f"{self.name}: empty instruction mix")
        return [(op, w / total) for op, w in raw]


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate the dynamic trace described by *spec* (deterministic)."""
    rng = random.Random(spec.seed)
    mix = spec.mix()
    ops = [op for op, _ in mix]
    weights = [w for _, w in mix]
    trace = Trace(name=spec.name)

    recent_writes: list[int] = []   # registers written recently, newest last
    dead_regs = set(range(spec.regs - max(1, int(spec.regs * 0.2)), spec.regs))
    addr_cursor = rng.randrange(spec.working_set)

    def pick_src() -> int:
        if recent_writes and rng.random() > 0.2:
            window = recent_writes[-spec.dep_distance:]
            return rng.choice(window)
        return rng.randrange(spec.regs)

    def pick_dst(will_be_dead: bool) -> int:
        if will_be_dead and dead_regs:
            return rng.choice(sorted(dead_regs))
        return rng.randrange(spec.regs - len(dead_regs)) if spec.regs > len(dead_regs) else 0

    def next_addr() -> int:
        nonlocal addr_cursor
        if rng.random() < spec.random_access_fraction:
            addr_cursor = rng.randrange(spec.working_set)
        else:
            addr_cursor = (addr_cursor + spec.stride) % spec.working_set
        return addr_cursor

    for seq in range(spec.length):
        if spec.output_every > 0 and seq > 0 and seq % spec.output_every == 0:
            op = OP_OUTPUT
        else:
            op = rng.choices(ops, weights)[0]
        inst = Inst(seq=seq, op=op)
        if op in (OP_ALU, OP_MUL):
            dead = rng.random() < spec.dead_fraction
            inst.dst = pick_dst(dead)
            nsrc = 2 if rng.random() > spec.imm_fraction else 1
            inst.srcs = tuple(pick_src() for _ in range(nsrc))
            inst.imm = nsrc == 1
            if not dead:
                recent_writes.append(inst.dst)
        elif op == OP_LOAD:
            dead = rng.random() < spec.dead_fraction
            inst.dst = pick_dst(dead)
            inst.srcs = (pick_src(),)
            inst.addr = next_addr()
            if not dead:
                recent_writes.append(inst.dst)
        elif op == OP_STORE:
            inst.srcs = (pick_src(), pick_src())
            inst.addr = next_addr()
        elif op == OP_PREFETCH:
            inst.addr = next_addr()
        elif op == OP_BRANCH:
            inst.srcs = (pick_src(),)
            inst.taken = rng.random() < spec.taken_fraction
            inst.mispredicted = rng.random() < spec.mispredict_rate
        elif op == OP_OUTPUT:
            inst.srcs = (pick_src(),)
        trace.insts.append(inst)
        if len(recent_writes) > 64:
            del recent_writes[:32]

    trace.validate()
    return trace
