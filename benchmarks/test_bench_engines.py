"""Ablation — walk engine vs dataflow fixpoint engine.

DESIGN.md commits to two interchangeable propagation engines: the
faithful walk mechanics of Section 4.1 and a single-pass topological
fixpoint. This bench pins their equivalence on a real design and
measures the speed difference (the reason the fixpoint engine is the
default).
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program


@pytest.fixture(scope="module")
def setup():
    words, dmem = program("md5mix"), default_dmem("md5mix")
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    ports, _, _ = tinycore_structure_ports("md5mix", words, dmem, gate_cycles=golden.cycles)
    return netlist, ports


def test_bench_dataflow_engine(benchmark, setup):
    netlist, ports = setup
    benchmark(lambda: run_sart(
        netlist.module, ports,
        SartConfig(engine="dataflow", partition_by_fub=False, dangling="top"),
    ))


def test_bench_walk_engine(benchmark, setup):
    netlist, ports = setup
    benchmark.pedantic(
        lambda: run_sart(
            netlist.module, ports,
            SartConfig(engine="walk", partition_by_fub=False),
        ),
        rounds=2, iterations=1,
    )


def test_bench_engines_equivalent(setup):
    netlist, ports = setup
    # dangling="top" matches the walk engine's unvisited-stays-conservative
    # behaviour (the dataflow default refines dead logic to AVF 0).
    df = run_sart(netlist.module, ports,
                  SartConfig(engine="dataflow", partition_by_fub=False, dangling="top"))
    wk = run_sart(netlist.module, ports,
                  SartConfig(engine="walk", partition_by_fub=False))

    t0 = time.perf_counter()
    run_sart(netlist.module, ports,
             SartConfig(engine="dataflow", partition_by_fub=False, dangling="top"))
    df_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_sart(netlist.module, ports, SartConfig(engine="walk", partition_by_fub=False))
    wk_s = time.perf_counter() - t0

    diffs = [net for net in df.node_avfs
             if abs(df.avf(net) - wk.avf(net)) > 1e-9]
    print_table(
        "Engine ablation (tinycore, md5mix)",
        ["engine", "seconds", "rounds", "mismatching nodes"],
        [
            ["dataflow fixpoint", df_s, 1, len(diffs)],
            ["faithful walks", wk_s, wk.walker_rounds_used, len(diffs)],
        ],
    )
    assert not diffs, diffs[:5]
    assert df_s < wk_s
