"""Whole-core assembly of synthetic FUBs.

Fourteen FUB templates approximate the block structure of a large OoO
core front end / back end / memory subsystem. FUBs are wired in a
pipeline-with-feedback pattern: each FUB's inputs come from the previous
two FUBs' outputs (plus a top-level input bundle for the first), and a
few late FUBs feed back to early ones so that cross-partition relaxation
genuinely needs multiple iterations to converge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.designs.bigcore.fubs import FubResult, FubTemplate, generate_fub
from repro.errors import NetlistError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.netlist import Instance, Module
from repro.netlist.validate import validate_module

# Template set: (relative sizing tuned so scale=1.0 gives ~7k sequentials).
_TEMPLATES: tuple[FubTemplate, ...] = (
    FubTemplate("IFU", arrays=2, array_width=32, fabric_flops=420, ctrl_regs=10,
                fsms=2, structure_kind="fetch_buffer"),
    FubTemplate("BPU", arrays=2, array_width=24, fabric_flops=380, ctrl_regs=8,
                fsms=3, structure_kind="fetch_buffer"),
    FubTemplate("IDU", arrays=3, array_width=28, fabric_flops=520, ctrl_regs=12,
                fsms=2, structure_kind="inst_queue"),
    FubTemplate("RAT", arrays=2, array_width=20, fabric_flops=360, ctrl_regs=6,
                fsms=2, structure_kind="inst_queue"),
    FubTemplate("RSV", arrays=3, array_width=36, fabric_flops=560, ctrl_regs=8,
                fsms=3, structure_kind="inst_queue"),
    FubTemplate("IEU0", arrays=2, array_width=32, fabric_flops=480, ctrl_regs=6,
                fsms=1, structure_kind="regfile"),
    FubTemplate("IEU1", arrays=2, array_width=32, fabric_flops=480, ctrl_regs=6,
                fsms=1, structure_kind="regfile"),
    FubTemplate("FPU", arrays=2, array_width=40, fabric_flops=540, ctrl_regs=8,
                fsms=1, structure_kind="regfile"),
    FubTemplate("AGU", arrays=2, array_width=24, fabric_flops=340, ctrl_regs=4,
                fsms=2, structure_kind="load_queue"),
    FubTemplate("LSU", arrays=3, array_width=28, fabric_flops=520, ctrl_regs=8,
                fsms=3, structure_kind="load_queue"),
    FubTemplate("DCU", arrays=3, array_width=32, fabric_flops=540, ctrl_regs=10,
                fsms=2, structure_kind="store_buffer"),
    FubTemplate("ROB", arrays=3, array_width=36, fabric_flops=560, ctrl_regs=6,
                fsms=3, structure_kind="rob"),
    FubTemplate("RET", arrays=2, array_width=24, fabric_flops=360, ctrl_regs=6,
                fsms=2, structure_kind="rob"),
    FubTemplate("MSU", arrays=1, array_width=16, fabric_flops=280, ctrl_regs=24,
                fsms=2, structure_kind="store_buffer"),
)


@dataclass(frozen=True)
class BigcoreConfig:
    """Generator parameters."""

    seed: int = 42
    scale: float = 1.0         # multiplies fabric size and array width
    fub_count: int | None = None  # use only the first N templates
    feedback_fubs: int = 3     # how many late FUBs feed back to early ones
    # ECO probe: name of one FUB to re-buffer post-generation (see
    # _apply_fub_edit). None builds the pristine design.
    edit: str | None = None


@dataclass
class BigcoreDesign:
    """The generated design plus its inventory."""

    module: Module
    fubs: list[FubResult]
    config: BigcoreConfig
    structure_kinds: dict[str, str] = field(default_factory=dict)  # array -> perf-model kind

    def array_names(self) -> list[str]:
        return [name for fub in self.fubs for name, _w in fub.arrays]

    def seq_count(self) -> int:
        return sum(f.seq_count for f in self.fubs)


def build_bigcore(config: BigcoreConfig | None = None) -> BigcoreDesign:
    """Generate the synthetic core (deterministic per config)."""
    config = config or BigcoreConfig()
    rng = random.Random(config.seed)
    templates = _TEMPLATES[: config.fub_count] if config.fub_count else _TEMPLATES
    templates = [_scaled(t, config.scale) for t in templates]

    b = ModuleBuilder("bigcore")
    # Top-level stimulus bundle (the RTL boundary pseudo-structure).
    top_in = b.input_bus("core_in", templates[0].inputs)

    results: list[FubResult] = []
    kinds: dict[str, str] = {}
    available: list[str] = list(top_in)
    for idx, template in enumerate(templates):
        sources = list(available)
        rng.shuffle(sources)
        result = generate_fub(b, template, rng, sources)
        results.append(result)
        for name, _w in result.arrays:
            kinds[name] = template.structure_kind
        # Next FUB consumes this one's outputs plus some of the previous.
        available = list(result.output_ports)
        if idx >= 1:
            available += results[idx - 1].output_ports[: template.inputs // 2]

    # Feedback: wire a few late-FUB outputs back into early FUBs through
    # staging flops (creates cross-partition cycles for the relaxation).
    for k in range(min(config.feedback_fubs, len(results) - 1)):
        late = results[-(k + 1)]
        early = results[k]
        at = {"fub": early.name}
        for i, net in enumerate(late.output_ports[:4]):
            b.dff(net, name=f"{early.name}/fb{k}_{i}", attrs=at)

    # Expose the last FUB's outputs as primary outputs.
    for i, net in enumerate(results[-1].output_ports):
        port = f"core_out[{i}]"
        b.output(port)
        b.gate("BUF", [net], out=port, attrs={"fub": results[-1].name})

    module = b.done()
    if config.edit:
        _apply_fub_edit(module, config.edit)
    validate_module(module)
    return BigcoreDesign(module=module, fubs=results, config=config, structure_kinds=kinds)


def _apply_fub_edit(module: Module, fub: str) -> None:
    """The canonical one-FUB ECO: re-buffer one pipeline flop's input.

    Inserts a double inverter in front of the data pin of the
    first-by-name plain flop (no struct/ctrlreg role) inside *fub* —
    the netlist-level shape of a timing/drive-strength fix. Annotation
    sets pass through single-input combinational gates verbatim, so the
    converged solution of every pre-existing node is unchanged; that
    makes this edit the canonical probe for incremental re-solve (a
    correct ECO run must re-solve the edited FUB, find its boundary
    exports unchanged, and stop) and keeps warm-vs-cold comparisons
    meaningful at every scale.
    """
    target = min(
        (
            inst
            for inst in module.instances.values()
            if inst.kind == "DFF"
            and inst.attrs.get("fub") == fub
            and "struct" not in inst.attrs
            and "ctrlreg" not in inst.attrs
            and "d" in inst.conn
        ),
        key=lambda inst: inst.name,
        default=None,
    )
    if target is None:
        raise NetlistError(
            f"edit={fub!r}: no plain DFF to edit in that FUB "
            "(unknown FUB name, or only structure/control bits)"
        )
    source = target.conn["d"]
    mid = module.add_net(f"{fub}/eco$1")
    out = module.add_net(f"{fub}/eco$2")
    module.add_instance(Instance(
        f"{fub}/eco_inv1", "NOT", {"a": source, "y": mid}, attrs={"fub": fub}
    ))
    module.add_instance(Instance(
        f"{fub}/eco_inv2", "NOT", {"a": mid, "y": out}, attrs={"fub": fub}
    ))
    target.conn["d"] = out


def _scaled(template: FubTemplate, scale: float) -> FubTemplate:
    if scale == 1.0:
        return template
    return replace(
        template,
        fabric_flops=max(20, int(template.fabric_flops * scale)),
        array_width=max(4, int(template.array_width * min(scale, 2.0))),
        ctrl_regs=max(2, int(template.ctrl_regs * min(scale, 2.0))),
        fsms=max(1, int(template.fsms * min(scale, 2.0))),
    )
