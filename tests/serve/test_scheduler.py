"""Scheduler tests: dedup under concurrency, backpressure, chaos.

Workers that must survive pickling into pool processes (the chaos test
runs ``workers=2``) are module level; everything else runs in-process
(``workers=1`` uses the runtime's serial path), so closures are fine.
"""

import os
import threading

import pytest

from repro.errors import QueueFullError, ServerDrainingError, SpecError
from repro.serve.jobs import DONE, FAILED
from repro.serve.scheduler import JobScheduler

SPEC = {"design": "tinycore:fib", "sart": {"monolithic": True}}
OTHER_SPEC = {"design": "tinycore:fib", "sart": {"monolithic": False}}

_GATE = threading.Event()


def _ok_worker(task):
    return {"ok": True, "design": task["spec"]["design"]}


def _gated_worker(task):
    _GATE.wait(timeout=30)
    return {"ok": True}


def _chaos_worker(task):
    """Crash the worker process once, then fail normally (forever)."""
    scratch = task["cache_dir"]
    if task["spec"]["sart"]["loop_pavf"] == 0.666:
        marker = os.path.join(scratch, "crashed-once")
        if not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(11)        # simulate a segfaulting worker
        raise RuntimeError("chaos: permanently broken")
    return {"ok": True}


def _scheduler(tmp_path, **kwargs):
    kwargs.setdefault("worker", _ok_worker)
    return JobScheduler(str(tmp_path / "state"), **kwargs)


def test_concurrent_identical_requests_share_one_execution(tmp_path):
    sched = _scheduler(tmp_path)
    sched.start()
    try:
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def submit():
            barrier.wait()
            job, created = sched.submit(dict(SPEC))
            with lock:
                outcomes.append((job, created))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        jobs = {job.id for job, _ in outcomes}
        assert len(outcomes) == 8 and len(jobs) == 1
        assert sum(created for _, created in outcomes) == 1
        job = outcomes[0][0]
        assert job.await_terminal(timeout=30) and job.state == DONE

        counters = sched.counters.snapshot()
        assert counters["requests"] == 8
        assert counters["dedup_hits"] == 7
        assert counters["executions"] == 1
        assert counters["completed"] == 1
    finally:
        sched.drain(grace=5)


def test_dedup_serves_completed_job_without_reexecution(tmp_path):
    sched = _scheduler(tmp_path)
    sched.start()
    try:
        job, created = sched.submit(dict(SPEC))
        assert created and job.await_terminal(timeout=30)
        again, created2 = sched.submit(dict(SPEC))
        assert again is job and not created2
        assert sched.counters.snapshot()["executions"] == 1
    finally:
        sched.drain(grace=5)


def test_dedup_ignores_execution_only_campaign_knobs(tmp_path):
    sched = _scheduler(tmp_path)
    sched.start()
    try:
        spec_a = {"design": "tinycore:fib", "sfi": {"injections": 4},
                  "campaign": {"workers": 1, "max_retries": 3}}
        spec_b = {"design": "tinycore:fib", "sfi": {"injections": 4},
                  "campaign": {"workers": 4, "max_retries": 1,
                               "pass_timeout": 9.0}}
        job_a, _ = sched.submit(spec_a)
        job_b, created = sched.submit(spec_b)
        assert job_b is job_a and not created
        # ...but result-shaping knobs still split jobs
        job_c, created = sched.submit(
            {"design": "tinycore:fib", "sfi": {"injections": 5},
             "campaign": {"workers": 1}})
        assert created and job_c is not job_a
    finally:
        sched.drain(grace=5)


def test_invalid_spec_rejected_at_admission(tmp_path):
    sched = _scheduler(tmp_path)
    sched.start()
    try:
        with pytest.raises(SpecError, match="unknown"):
            sched.submit({"design": "tinycore:fib", "bogus": {}})
        assert sched.counters.snapshot()["requests"] == 0
    finally:
        sched.drain(grace=5)


def test_backpressure_rejects_when_queue_full(tmp_path):
    _GATE.clear()
    sched = _scheduler(tmp_path, worker=_gated_worker, queue_limit=1)
    sched.start()
    try:
        job, _ = sched.submit(dict(SPEC))
        with pytest.raises(QueueFullError) as excinfo:
            sched.submit(dict(OTHER_SPEC))
        assert excinfo.value.retry_after >= 1.0
        # Identical requests still coalesce: dedup costs no queue slot.
        again, created = sched.submit(dict(SPEC))
        assert again is job and not created
        assert sched.counters.snapshot()["rejected"] == 1
        _GATE.set()
        assert job.await_terminal(timeout=30) and job.state == DONE
        # Capacity freed: the previously rejected spec is admitted now.
        job2, created = sched.submit(dict(OTHER_SPEC))
        assert created and job2.await_terminal(timeout=30)
    finally:
        _GATE.set()
        sched.drain(grace=5)


def test_failed_job_resubmission_reexecutes(tmp_path):
    calls = {"n": 0}

    def flaky(task):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("flaky boom")
        return {"ok": True}

    sched = _scheduler(tmp_path, worker=flaky, max_retries=1)
    sched.start()
    try:
        job, _ = sched.submit(dict(SPEC))
        assert job.await_terminal(timeout=30) and job.state == FAILED
        assert "flaky boom" in job.error

        again, created = sched.submit(dict(SPEC))
        assert again is job and created     # failed jobs re-queue
        assert job.await_terminal(timeout=30) and job.state == DONE
        counters = sched.counters.snapshot()
        assert counters["retries"] == 1
        assert counters["executions"] == 2
    finally:
        sched.drain(grace=5)


def test_drain_rejects_new_work_and_finishes_in_flight(tmp_path):
    _GATE.clear()
    sched = _scheduler(tmp_path, worker=_gated_worker)
    sched.start()
    job, _ = sched.submit(dict(SPEC))
    drained = []
    drainer = threading.Thread(target=lambda: drained.append(sched.drain(30)))
    drainer.start()
    try:
        deadline = threading.Event()
        for _ in range(100):
            if sched.draining:
                break
            deadline.wait(0.05)
        assert sched.draining
        with pytest.raises(ServerDrainingError):
            sched.submit(dict(OTHER_SPEC))
    finally:
        _GATE.set()
        drainer.join(timeout=30)
    assert drained == [True]
    assert job.state == DONE


@pytest.mark.slow
def test_worker_crash_degrades_job_not_server(tmp_path):
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    crash_spec = {"design": "tinycore:fib",
                  "sart": {"monolithic": True, "loop_pavf": 0.666}}
    good_spec = {"design": "tinycore:fib",
                 "sart": {"monolithic": True, "loop_pavf": 0.25}}
    sched = _scheduler(tmp_path, worker=_chaos_worker, workers=2,
                       max_retries=1, cache_dir=str(scratch))
    # Submit both before starting so they land in one pool batch (a
    # single-task batch would run serially in-process, where os._exit
    # would take the whole test down).
    bad, _ = sched.submit(crash_spec)
    good, _ = sched.submit(good_spec)
    sched.start()
    try:
        assert bad.await_terminal(timeout=60) and bad.state == FAILED
        assert "chaos: permanently broken" in bad.error
        assert good.await_terminal(timeout=60) and good.state == DONE
        assert sched.pool.restarts >= 1      # the crash respawned workers
        assert (scratch / "crashed-once").exists()

        # The server is still healthy: new work is admitted and runs.
        third, created = sched.submit(
            {"design": "tinycore:fib",
             "sart": {"monolithic": True, "loop_pavf": 0.5}})
        assert created
        assert third.await_terminal(timeout=60) and third.state == DONE
        counters = sched.counters.snapshot()
        assert counters["failed"] == 1 and counters["completed"] == 2
    finally:
        sched.drain(grace=10)


def _eco_worker(task):
    """A job whose summary carries an ECO block (warm or cold by knob)."""
    warm = task["spec"]["sart"]["loop_pavf"] > 0.5
    return {
        "ok": True,
        "eco": {"warm": warm, "fub_hits": 4 if warm else 0,
                "fub_misses": 2, "dirty_fubs": ["LSU"]},
    }


def test_eco_counters_accumulate_from_job_results(tmp_path):
    sched = _scheduler(tmp_path, worker=_eco_worker)
    sched.start()
    try:
        warm_spec = {"design": "tinycore:fib", "sart": {"loop_pavf": 0.9}}
        cold_spec = {"design": "tinycore:fib", "sart": {"loop_pavf": 0.1}}
        for spec in (warm_spec, cold_spec):
            job, _ = sched.submit(dict(spec))
            assert job.await_terminal(timeout=30) and job.state == DONE
        counters = sched.counters.snapshot()
        assert counters["eco_jobs"] == 2
        assert counters["warm_solves"] == 1
        assert counters["cold_solves"] == 1
        assert counters["fub_hits"] == 4
        assert counters["fub_misses"] == 4
        # The /stats document surfaces the same counters.
        assert sched.stats()["counters"]["eco_jobs"] == 2
    finally:
        sched.drain(grace=5)


def test_jobs_without_eco_blocks_leave_counters_untouched(tmp_path):
    sched = _scheduler(tmp_path)          # _ok_worker: no eco block
    sched.start()
    try:
        job, _ = sched.submit(dict(SPEC))
        assert job.await_terminal(timeout=30) and job.state == DONE
        counters = sched.counters.snapshot()
        assert counters["eco_jobs"] == 0
        assert counters["warm_solves"] == counters["cold_solves"] == 0
    finally:
        sched.drain(grace=5)
