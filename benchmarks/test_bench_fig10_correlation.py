"""E4 — Figure 10: model vs (simulated) silicon measurement.

The paper's beam-tested workloads were Lattice and MD5Sum. Before the
sequential-AVF work their SDC model over-predicted the measurement by
nearly 100 % (structure AVFs used as a proxy for sequential AVFs); the
computed sequential AVFs were ~63 % lower than the proxy and improved the
correlation by ~66 %.

We reproduce the experiment end to end: tinycore runs lattice2d and
md5mix under a simulated proton beam (Poisson strikes, Poisson error
bars); Eq 1 models the SDC rate with (a) the structure-AVF proxy and
(b) SART sequential AVFs. Values print in arbitrary units normalized to
the measurement, like the paper's plot.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.ser.beam import BeamConfig
from repro.ser.correlation import correlate_workloads

BEAM = BeamConfig(flux=1e-5, exposures=378, seed=77)


@pytest.fixture(scope="module")
def rows():
    return correlate_workloads(("lattice2d", "md5mix"), beam_config=BEAM)


def test_bench_fig10_correlation(benchmark):
    result = benchmark.pedantic(
        lambda: correlate_workloads(("lattice2d", "md5mix"), beam_config=BEAM),
        rounds=1, iterations=1,
    )

    table = []
    for row in result:
        norm = row.normalized()
        lo, hi = row.measured.rate_interval()
        table.append([
            row.workload,
            f"{row.measured.sdc_events}/{row.measured.exposures}",
            1.0,
            f"[{lo / (row.measured_rate or 1):.2f},{hi / (row.measured_rate or 1):.2f}]",
            norm["proxy"],
            norm["sart"],
            f"{row.correlation_improvement:.0%}",
        ])
    print_table(
        "Figure 10 — SDC SER in arbitrary units (measured = 1.0)",
        ["workload", "events", "measured", "meas 95% CI", "proxy model", "seq-AVF model", "corr. gain"],
        table,
    )
    mean_gain = sum(r.correlation_improvement for r in result) / len(result)
    mean_reduction = sum(r.sequential_avf_reduction for r in result) / len(result)
    print(f"paper: proxy off by ~100%, seq AVFs ~63% lower, correlation ~66% better")
    print(f"measured: mean corr. improvement {mean_gain:.0%}, "
          f"mean sequential-AVF reduction {mean_reduction:.0%}")

    for row in result:
        # Shape 1: the proxy over-predicts strongly (paper: ~2x).
        assert row.normalized()["proxy"] > 1.5
        # Shape 2: sequential AVFs close most of the gap...
        assert row.normalized()["sart"] < row.normalized()["proxy"]
        assert row.correlation_improvement > 0.25
        # ...while the model stays conservative (never below measurement).
        assert row.modeled_sart >= row.measured_rate * 0.95
    assert mean_gain > 0.4


def test_bench_fig10_sequential_avf_drop(rows):
    """The computed sequential AVFs sit well below the proxy values."""
    table = [
        [r.workload, r.seq_avf_proxy, r.seq_avf_sart, f"{r.sequential_avf_reduction:.0%}"]
        for r in rows
    ]
    print_table(
        "Sequential AVF: structure proxy vs computed (paper: ~63% lower)",
        ["workload", "proxy AVF", "SART seq AVF", "reduction"],
        table,
    )
    for r in rows:
        assert r.seq_avf_sart < r.seq_avf_proxy * 0.85
