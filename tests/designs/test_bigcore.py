"""bigcore generator tests: determinism, inventory, SART integration."""

import pytest

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, run_sart
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.errors import MappingError
from repro.netlist.graph import extract_graph
from repro.netlist.validate import validate_module

SMALL = BigcoreConfig(scale=0.15, fub_count=5, seed=3)


@pytest.fixture(scope="module")
def small():
    return build_bigcore(SMALL)


def _fake_model_ports():
    kinds = ["fetch_buffer", "inst_queue", "rob", "regfile", "load_queue", "store_buffer"]
    return {
        k: StructurePorts(k, pavf_r=0.1 + 0.05 * i, pavf_w=0.1 + 0.04 * i, avf=0.3)
        for i, k in enumerate(kinds)
    }


def test_determinism():
    a = build_bigcore(SMALL)
    b = build_bigcore(SMALL)
    assert set(a.module.instances) == set(b.module.instances)
    assert a.seq_count() == b.seq_count()


def test_seed_changes_fabric():
    a = build_bigcore(SMALL)
    b = build_bigcore(BigcoreConfig(scale=0.15, fub_count=5, seed=4))
    conns_a = {i.name: tuple(sorted(i.conn.items())) for i in a.module.instances.values()}
    conns_b = {i.name: tuple(sorted(i.conn.items())) for i in b.module.instances.values()}
    assert conns_a != conns_b


def test_structural_validity(small):
    validate_module(small.module)


def test_scale_grows_design():
    big = build_bigcore(BigcoreConfig(scale=0.4, fub_count=5, seed=3))
    assert big.seq_count() > build_bigcore(SMALL).seq_count() * 1.5


def test_inventory(small):
    assert len(small.fubs) == 5
    assert small.array_names()
    g = extract_graph(small.module)
    fubs = set(g.nets_by_fub())
    assert {"IFU", "BPU", "IDU", "RAT", "RSV"} <= fubs


def test_mapping(small):
    ports = map_structure_ports(small, _fake_model_ports(), jitter=0.2, seed=1)
    assert set(ports) == set(small.array_names())
    for p in ports.values():
        assert 0.0 <= _scalar(p.pavf_r) <= 1.0
    # jitter=0 reproduces the base values exactly
    flat = map_structure_ports(small, _fake_model_ports(), jitter=0.0)
    kinds = small.structure_kinds
    base = _fake_model_ports()
    for name, p in flat.items():
        assert _scalar(p.pavf_r) == pytest.approx(base[kinds[name]].pavf_r)


def test_mapping_missing_kind(small):
    with pytest.raises(MappingError):
        map_structure_ports(small, {"rob": StructurePorts("rob")})


def test_sart_runs_on_bigcore(small):
    ports = map_structure_ports(small, _fake_model_ports())
    res = run_sart(small.module, ports, SartConfig(partition_by_fub=True, iterations=20))
    assert res.trace is not None and res.trace.converged
    assert res.report.visited_fraction > 0.93
    # loop fraction matches the paper's few-percent regime
    frac = res.stats["loop_bits"] / res.stats["sequentials"]
    assert 0.005 < frac < 0.10
    assert 0.0 < res.report.weighted_seq_avf < 0.5
    # control registers found by naming convention
    assert res.stats["ctrl_bits"] > 0


def test_partitioned_equals_monolithic(small):
    ports = map_structure_ports(small, _fake_model_ports())
    mono = run_sart(small.module, ports, SartConfig(partition_by_fub=False))
    part = run_sart(small.module, ports, SartConfig(partition_by_fub=True, iterations=30))
    worst = max(abs(mono.avf(n) - part.avf(n)) for n in mono.node_avfs)
    assert worst < 0.02


def _scalar(v):
    return v if isinstance(v, (int, float)) else sum(v) / len(v)
