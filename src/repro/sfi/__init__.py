"""Statistical fault injection into the gate-level model (paper §3.1).

The paper's baseline: "SFI works by running two copies of the RTL
simulation. A fault is injected into one copy by artificially flipping a
random bit at a random timestep... The sequential AVF is computed as the
number of errors seen at the observation points divided by the number of
injected faults", plus an *unknown* component for faults still resident
at simulation end (Eq 2).

Our implementation exploits the lane-parallel simulator: lane 0 is the
golden copy and up to 63 faulty replicas run in the same pass, which is
what makes node-resolution SFI feasible in pure Python. Classification:

* ``masked`` — no architectural or microarchitectural difference remains;
* ``sdc`` — the program's output stream (or halt behaviour) differs;
* ``unknown`` — outputs match but state still differs at the end of the
  observation window (latent faults, Eq 2's unknown term).
"""

from repro.sfi.campaign import FaultPlan, InjectionOutcome, plan_campaign
from repro.sfi.injector import CampaignResult, run_sfi_campaign
from repro.sfi.results import (
    NodeAvfEstimate,
    PassFailure,
    aggregate_by_node,
    overall_avf,
    wilson_interval,
)
from repro.sfi.runtime import RunReport, RuntimeOptions, run_passes

__all__ = [
    "CampaignResult",
    "FaultPlan",
    "InjectionOutcome",
    "NodeAvfEstimate",
    "PassFailure",
    "RunReport",
    "RuntimeOptions",
    "aggregate_by_node",
    "overall_avf",
    "plan_campaign",
    "run_passes",
    "run_sfi_campaign",
    "wilson_interval",
]
