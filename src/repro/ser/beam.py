"""Simulated accelerated beam testing.

Runs the gate-level core repeatedly while injecting Poisson-distributed
single-bit upsets into *all* storage — every flip-flop and every bit of
the register file and data memory — at an accelerated flux, and measures
the rate of silent data corruption at the program outputs. The paper's
physical equivalent was "a 200 MeV proton beam with variable flux" at the
Indiana University Cyclotron; the statistical structure of the
measurement (Poisson event counts, hence sqrt(N) error bars) is the same.

Each simulator pass exposes a batch of independent "devices" (fault
lanes) to the beam while lane 0 stays golden; a device shows SDC when its
output stream (or halt behaviour) diverges. All strikes are planned up
front from the seed — one (cycle, target, bit) plan per device — so the
measurement is deterministic no matter how passes are grouped or how many
worker processes execute them. The measured rate comes with a Poisson
confidence interval — Figure 10's "statistical error of the measured
value".
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.designs.tinycore.core import TinycoreNetlist, build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.errors import CampaignError
from repro.netlist.graph import extract_graph
from repro.rtlsim.backends import DEFAULT_BACKEND, BaseSimulator, make_simulator
from repro.sfi.campaign import resolve_lanes_per_pass
from repro.sfi.results import PassFailure
from repro.sfi.runtime import RuntimeOptions, campaign_fingerprint, run_passes


@dataclass
class BeamConfig:
    """Beam-run parameters."""

    flux: float = 2e-5          # upset probability per storage bit per cycle
    exposures: int = 252        # device-runs under the beam (4 passes of 63)
    seed: int = 2024
    lanes_per_pass: int | None = 63  # None: the backend's preferred width
    max_cycles: int = 100_000
    # Arrays are parity/ECC protected in the modelled product (their
    # strikes become DUE, not SDC) — matching the paper's setup, which
    # deliberately minimized array contributions to the beam SDC signal.
    include_arrays: bool = False
    include_irom: bool = False   # program ROM assumed hardened/reloadable
    # Continuous beam operation: corruption still in architectural state
    # when a run ends is consumed by subsequent runs, so it counts as SDC.
    count_architectural_state: bool = True
    # Build the parity-protected core: array strikes raise DUE instead of
    # silently corrupting data (enable include_arrays to exercise it).
    parity: bool = False


@dataclass
class BeamResult:
    """Measured beam statistics."""

    sdc_events: int = 0
    due_events: int = 0
    exposures: int = 0
    cycles_per_run: int = 0
    strikes: int = 0
    storage_bits: int = 0
    flux: float = 0.0
    elapsed_seconds: float = 0.0
    # Fault-tolerant runtime bookkeeping: passes that failed permanently
    # (their devices are excluded from `exposures`), pool respawns, and
    # whether execution degraded to serial / resumed from a checkpoint.
    failures: list[PassFailure] = field(default_factory=list)
    pool_restarts: int = 0
    degraded: bool = False
    resumed_passes: int = 0

    @property
    def sdc_rate_per_cycle(self) -> float:
        """Measured SDC events per device-cycle."""
        total_cycles = self.exposures * self.cycles_per_run
        return self.sdc_events / total_cycles if total_cycles else 0.0

    @property
    def due_rate_per_cycle(self) -> float:
        """Measured DUE events per device-cycle (parity variant)."""
        total_cycles = self.exposures * self.cycles_per_run
        return self.due_events / total_cycles if total_cycles else 0.0

    def rate_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Poisson (sqrt-N) interval on the per-cycle SDC rate."""
        total_cycles = self.exposures * self.cycles_per_run
        if total_cycles == 0:
            return (0.0, 0.0)
        n = self.sdc_events
        margin = z * math.sqrt(max(n, 1))
        return (max(0.0, (n - margin)) / total_cycles, (n + margin) / total_cycles)

    def to_summary(self) -> dict:
        """Machine-readable beam summary (shared result-emission layer)."""
        lo, hi = self.rate_interval()
        return {
            "kind": "beam",
            "exposures": self.exposures,
            "cycles_per_run": self.cycles_per_run,
            "strikes": self.strikes,
            "storage_bits": self.storage_bits,
            "flux": self.flux,
            "sdc_events": self.sdc_events,
            "due_events": self.due_events,
            "sdc_rate_per_cycle": self.sdc_rate_per_cycle,
            "sdc_rate_interval": [lo, hi],
            "due_rate_per_cycle": self.due_rate_per_cycle,
            "elapsed_seconds": self.elapsed_seconds,
            "failed_passes": len(self.failures),
            "pool_restarts": self.pool_restarts,
            "degraded": self.degraded,
            "resumed_passes": self.resumed_passes,
        }


@dataclass(frozen=True)
class BeamStrike:
    """One planned particle strike in one device's exposure."""

    cycle: int
    kind: str        # "flop" or "mem"
    target: str      # net name (flop) or MEM instance name
    addr: int = 0    # mem only
    bit: int = 0     # mem only


def plan_beam_exposures(
    config: BeamConfig,
    targets: list[tuple[str, str]],
    weights: list[int],
    mem_sizes: dict[str, tuple[int, int]],
    storage_bits: int,
    cycles_per_run: int,
) -> list[list[BeamStrike]]:
    """Sample every device's strikes up front from the seed.

    Each device draws a Poisson number of strikes for the whole exposure
    and every strike is fully resolved (cycle, target, and for arrays the
    struck word and bit) at plan time, so execution order — batching,
    workers — cannot perturb the measurement.
    """
    rng = random.Random(config.seed)
    expected = config.flux * storage_bits * cycles_per_run
    plans: list[list[BeamStrike]] = []
    for _ in range(config.exposures):
        strikes = []
        for _ in range(_poisson(rng, expected)):
            cycle = rng.randrange(max(1, cycles_per_run - 1))
            kind, target = rng.choices(targets, weights)[0]
            if kind == "mem":
                depth, width = mem_sizes[target]
                strikes.append(BeamStrike(cycle, kind, target,
                                          rng.randrange(depth), rng.randrange(width)))
            else:
                strikes.append(BeamStrike(cycle, kind, target))
        plans.append(strikes)
    return plans


@dataclass
class _BeamPayload:
    """Everything a worker process needs to run beam passes on its own."""

    program: list[int]
    dmem_init: list[int] | None
    netlist: TinycoreNetlist
    backend: str
    max_cycles: int
    count_architectural_state: bool


class _BeamContext:
    def __init__(self, payload: _BeamPayload):
        self.payload = payload
        self._sims: dict[int, BaseSimulator] = {}

    def sim_for(self, lanes: int) -> BaseSimulator:
        sim = self._sims.get(lanes)
        if sim is None:
            sim = make_simulator(
                self.payload.netlist.module, lanes=lanes, backend=self.payload.backend
            )
            self._sims[lanes] = sim
        return sim


_BEAM_CTX: _BeamContext | None = None


def _init_beam_worker(payload: _BeamPayload) -> None:
    global _BEAM_CTX
    _BEAM_CTX = _BeamContext(payload)


def _run_beam_pass(group: list[list[BeamStrike]]) -> tuple[int, int, int]:
    """Expose one batch of devices; return (sdc_events, due_events, devices)."""
    ctx = _BEAM_CTX
    assert ctx is not None, "worker used before initialization"
    payload = ctx.payload
    lanes = len(group) + 1
    sim = ctx.sim_for(lanes)
    strikes_by_cycle: dict[int, list[tuple[BeamStrike, int]]] = {}
    for lane_offset, strikes in enumerate(group):
        for s in strikes:
            strikes_by_cycle.setdefault(s.cycle, []).append((s, lane_offset + 1))

    def strike(simulator: BaseSimulator, cycle: int) -> None:
        for s, lane in strikes_by_cycle.get(cycle, ()):
            if s.kind == "flop":
                simulator.flip(s.target, 1 << lane)
            else:
                simulator.mems[s.target].flip_bit(lane, s.addr, s.bit)

    run = run_gate_level(
        payload.program, payload.dmem_init, netlist=payload.netlist, sim=sim,
        max_cycles=payload.max_cycles, on_cycle=strike,
    )
    golden_arch = run.architectural_state(0)
    due_net = payload.netlist.due
    due_bits = run.sim.peek(due_net) if due_net is not None else 0
    sdc = due = 0
    for lane in range(1, lanes):
        if due_net is not None and (due_bits >> lane) & 1 and not (due_bits & 1):
            due += 1  # detected: the machine signals
            continue
        halted_matches = (lane in run.halted_lanes) == (0 in run.halted_lanes)
        faulted = run.outputs[lane] != run.outputs[0] or not halted_matches
        if not faulted and payload.count_architectural_state:
            faulted = run.architectural_state(lane) != golden_arch
        if faulted:
            sdc += 1
    return sdc, due, lanes - 1


def run_beam_test(
    program: list[int],
    dmem_init: list[int] | None,
    config: BeamConfig | None = None,
    *,
    netlist: TinycoreNetlist | None = None,
    backend: str = DEFAULT_BACKEND,
    workers: int = 1,
    runtime: RuntimeOptions | None = None,
) -> BeamResult:
    """Expose the core to the simulated beam and measure the SDC rate.

    *backend* selects the simulation backend and *workers* > 1 fans the
    independent passes out across processes; for a fixed seed the counts
    are identical at any worker count. *runtime* enables the
    fault-tolerant execution layer — checkpoint/resume, bounded retry,
    pool respawn with serial degradation, soft pass timeouts (see
    docs/ROBUSTNESS.md); a resumed measurement is bit-identical to an
    uninterrupted one.
    """
    config = config or BeamConfig()
    if config.flux <= 0:
        raise CampaignError("flux must be positive")
    lanes_per_pass = resolve_lanes_per_pass(config.lanes_per_pass, backend)
    started = time.perf_counter()
    if netlist is None:
        netlist = build_tinycore(program, dmem_init, parity=config.parity)
    graph = extract_graph(netlist.module)
    seq_nets = graph.seq_nets()

    # Enumerate strikable storage bits: (kind, target) tuples.
    targets: list[tuple[str, str]] = [("flop", net) for net in seq_nets]
    bits = len(seq_nets)
    if config.include_arrays:
        for inst, mem in graph.mems.items():
            if not config.include_irom and inst == "u_irom":
                continue
            targets.append(("mem", inst))
            bits += mem.depth * mem.width
    mem_sizes = {
        inst: (m.depth, m.width) for inst, m in graph.mems.items()
    }
    # Selection weights: each memory counts as depth*width bits.
    weights = [1] * len(seq_nets) + [
        mem_sizes[t][0] * mem_sizes[t][1]
        for kind, t in targets[len(seq_nets):]
    ]

    result = BeamResult(flux=config.flux, storage_bits=bits)
    golden = run_gate_level(program, dmem_init, netlist=netlist, backend=backend)
    result.cycles_per_run = golden.cycles

    exposures = plan_beam_exposures(
        config, targets, weights, mem_sizes, bits, golden.cycles
    )
    result.strikes = sum(len(p) for p in exposures)
    groups = [
        exposures[i:i + lanes_per_pass]
        for i in range(0, len(exposures), lanes_per_pass)
    ]
    payload = _BeamPayload(
        program=list(program),
        dmem_init=list(dmem_init) if dmem_init is not None else None,
        netlist=netlist,
        backend=backend,
        max_cycles=config.max_cycles,
        count_architectural_state=config.count_architectural_state,
    )
    fingerprint = campaign_fingerprint(
        "beam", payload.program, payload.dmem_init, backend, config.flux,
        config.exposures, config.seed, config.max_cycles,
        config.include_arrays, config.include_irom,
        config.count_architectural_state, config.parity,
        [len(g) for g in groups],
    )
    report = run_passes(
        _run_beam_pass, _init_beam_worker, payload, groups,
        workers=workers, options=runtime, fingerprint=fingerprint,
        decode=tuple,  # JSON round-trips the (sdc, due, devices) tuple as a list
    )
    for pass_result in report.results:
        if pass_result is None:
            continue  # recorded in result.failures
        sdc, due, devices = pass_result
        result.sdc_events += sdc
        result.due_events += due
        result.exposures += devices
    result.failures = report.failures
    result.pool_restarts = report.pool_restarts
    result.degraded = report.degraded
    result.resumed_passes = report.resumed

    result.elapsed_seconds = time.perf_counter() - started
    return result


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth sampling (lam is small here: a handful of strikes per run)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1
        if k > 10_000:  # numeric guard for absurd fluxes
            return k
