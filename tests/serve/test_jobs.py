"""Job model and journal unit tests (durability + torn-write tolerance)."""

import json
import threading

import pytest

from repro.errors import JobJournalError
from repro.serve.jobs import (
    DONE,
    FAILED,
    QUEUED,
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    Job,
    JobJournal,
    job_id_for,
    load_journal,
    replay_journal,
    stable_result,
)


def _job(fp="a" * 64):
    return Job(id=job_id_for(fp), fingerprint=fp, spec={"design": "d"})


# -- Job -------------------------------------------------------------------

def test_transition_bumps_version_and_wakes_waiters():
    job = _job()
    assert job.state == QUEUED and job.version == 0
    seen = []

    def waiter():
        seen.append(job.await_terminal(timeout=10))

    thread = threading.Thread(target=waiter)
    thread.start()
    job.transition("running")
    job.transition(DONE, result={"x": 1})
    thread.join(timeout=10)
    assert seen == [True]
    assert job.version == 2
    assert job.started_at is not None and job.finished_at is not None


def test_await_terminal_times_out():
    assert _job().await_terminal(timeout=0.05) is False


def test_snapshot_round_trips_through_json():
    job = _job()
    job.transition(FAILED, error="boom")
    doc = json.loads(json.dumps(job.snapshot(include_spec=True)))
    assert doc["state"] == FAILED
    assert doc["error"] == "boom"
    assert doc["spec"] == {"design": "d"}
    assert "result" not in doc


def test_reset_for_retry_requeues():
    job = _job()
    job.transition(FAILED, error="boom")
    job.reset_for_retry()
    assert job.state == QUEUED
    assert job.error is None and job.finished_at is None


# -- journal ---------------------------------------------------------------

def test_journal_round_trip(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path)
    journal.record(event="submitted", job="job-1", fingerprint="f",
                   spec={"design": "d"}, time=1.0)
    journal.record(event=DONE, job="job-1", result={"x": 1}, time=2.0)
    journal.close()
    records = load_journal(path)
    assert [r["event"] for r in records] == ["submitted", DONE]

    jobs = list(replay_journal(records))
    assert len(jobs) == 1
    assert jobs[0].state == DONE
    assert jobs[0].result == {"x": 1}
    assert jobs[0].recovered


def test_journal_missing_file_is_empty(tmp_path):
    assert load_journal(tmp_path / "nope.jsonl") == []


def test_journal_reopen_appends_not_truncates(tmp_path):
    path = tmp_path / "jobs.jsonl"
    JobJournal(path).record(event="submitted", job="job-1")
    journal = JobJournal(path)   # reopen: no second header
    journal.record(event=DONE, job="job-1")
    journal.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    assert json.loads(lines[0])["format"] == JOURNAL_FORMAT


def test_journal_tolerates_torn_final_record(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path)
    journal.record(event="submitted", job="job-1", spec={}, fingerprint="f")
    journal.close()
    with open(path, "a") as handle:
        handle.write('{"event": "done", "job": "job-1", "resu')  # SIGKILL
    records = load_journal(path)
    assert [r["event"] for r in records] == ["submitted"]
    jobs = list(replay_journal(records))
    assert jobs[0].state == QUEUED   # unfinished: will re-execute


def test_journal_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "jobs.jsonl"
    header = json.dumps({"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION})
    path.write_text(header + "\n{garbage\n" + '{"event": "done", "job": "j"}\n')
    with pytest.raises(JobJournalError, match="corrupt line 2"):
        load_journal(path)


def test_journal_rejects_foreign_file(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text('{"format": "something-else", "version": 1}\n')
    with pytest.raises(JobJournalError, match="not a serve job journal"):
        load_journal(path)


def test_journal_rejects_future_version(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text(json.dumps({"format": JOURNAL_FORMAT, "version": 99}) + "\n")
    with pytest.raises(JobJournalError, match="unsupported version"):
        load_journal(path)


def test_replay_resubmission_after_failure_wins(tmp_path):
    records = [
        {"event": "submitted", "job": "job-1", "fingerprint": "f",
         "spec": {"design": "d"}, "time": 1.0},
        {"event": FAILED, "job": "job-1", "error": "boom", "time": 2.0},
        {"event": "submitted", "job": "job-1", "fingerprint": "f",
         "spec": {"design": "d"}, "time": 3.0},
        {"event": DONE, "job": "job-1", "result": {"x": 1}, "time": 4.0},
    ]
    jobs = list(replay_journal(records))
    assert len(jobs) == 1
    assert jobs[0].state == DONE and jobs[0].result == {"x": 1}


# -- stable_result ---------------------------------------------------------

def test_stable_result_strips_volatile_keys_recursively():
    payload = {
        "weighted_seq_avf": 0.25,
        "elapsed_seconds": 1.23,
        "sfi": {"avf": 0.3, "resumed_passes": 4, "pool_restarts": 1,
                "intervals": [{"lo": 0.1, "elapsed_seconds": 9.0}]},
        "cached_stages": ["golden"],
    }
    assert stable_result(payload) == {
        "weighted_seq_avf": 0.25,
        "sfi": {"avf": 0.3, "intervals": [{"lo": 0.1}]},
    }


def test_stable_result_is_identity_for_scalars_and_lists():
    assert stable_result([1, "x", 2.5]) == [1, "x", 2.5]
    assert stable_result("plain") == "plain"
