"""Run-specs: parsing, validation, and spec-driven execution."""

import json

import pytest

from repro.errors import SpecError
from repro.pipeline.spec import (
    CampaignSpec,
    RunSpec,
    SartSpec,
    load_spec,
    spec_from_mapping,
)


def test_minimal_spec_defaults_to_sart():
    spec = spec_from_mapping({"design": "tinycore:fib"})
    assert spec.design == "tinycore:fib"
    assert spec.stages() == ["sart"]
    assert spec.campaign == CampaignSpec()


def test_stage_inference():
    spec = spec_from_mapping({"design": "tinycore:fib", "sfi": {}})
    assert spec.stages() == ["sfi"]
    spec = spec_from_mapping(
        {"design": "tinycore:fib", "sart": {}, "sfi": {}, "beam": {}}
    )
    assert spec.stages() == ["sart", "sfi", "beam"]
    spec = spec_from_mapping({"design": "bigcore", "sweep": {"points": 4}})
    assert spec.stages() == ["sweep"]


def test_toml_loading(tmp_path):
    path = tmp_path / "run.toml"
    path.write_text(
        'design = "bigcore@scale=0.2"\n'
        "[workloads]\nper_class = 1\nlength = 600\n"
        "[sart]\nloop_pavf = 0.4\nmonolithic = true\n"
        "[campaign]\nworkers = 2\n"
    )
    spec = load_spec(str(path))
    assert spec.design == "bigcore@scale=0.2"
    assert spec.workloads.per_class == 1
    assert spec.sart == SartSpec(loop_pavf=0.4, monolithic=True)
    assert spec.campaign.workers == 2


def test_json_loading(tmp_path):
    path = tmp_path / "run.json"
    path.write_text(json.dumps({
        "design": "tinycore:fib",
        "sfi": {"injections": 30, "seed": 1},
    }))
    spec = load_spec(str(path))
    assert spec.sfi.injections == 30
    assert spec.stages() == ["sfi"]


def test_validation_errors(tmp_path):
    with pytest.raises(SpecError, match="needs a design reference"):
        spec_from_mapping({"sfi": {}})
    with pytest.raises(SpecError, match="unknown section"):
        spec_from_mapping({"design": "tinycore:fib", "sif": {}})
    with pytest.raises(SpecError, match=r"unknown key\(s\) \['injection'\]"):
        spec_from_mapping({"design": "tinycore:fib", "sfi": {"injection": 5}})
    with pytest.raises(SpecError, match="must be a table"):
        spec_from_mapping({"design": "tinycore:fib", "sart": 3})
    with pytest.raises(SpecError, match="cannot read"):
        load_spec(str(tmp_path / "missing.toml"))
    bad = tmp_path / "bad.toml"
    bad.write_text("design = [unclosed")
    with pytest.raises(SpecError, match="malformed"):
        load_spec(str(bad))


def test_ports_section_forms():
    spec = spec_from_mapping({"design": "exlif:x", "ports": "ports.txt"})
    assert spec.ports_file == "ports.txt"
    spec = spec_from_mapping(
        {"design": "exlif:x", "ports": {"file": "ports.txt"}}
    )
    assert spec.ports_file == "ports.txt"
    with pytest.raises(SpecError, match=r"in \[ports\]"):
        spec_from_mapping({"design": "exlif:x", "ports": {"path": "p"}})


# ----------------------------------------------------------------------
# spec-driven execution reproduces the hand-flagged flows
# ----------------------------------------------------------------------

def _normalize(text: str) -> str:
    import re

    text = re.sub(r"elapsed=\d+\.\d+s", "elapsed=T", text)
    text = re.sub(r"in \d+\.\d+s", "in T", text)
    text = re.sub(r"\d+\.\d{3}\s*$", "T", text, flags=re.M)
    return text


def test_run_spec_reproduces_tinycore_sfi(tmp_path, capsys):
    from repro.cli import main

    assert main(["tinycore", "fib", "--sfi", "25"]) == 0
    via_flags = capsys.readouterr().out

    path = tmp_path / "tiny.toml"
    path.write_text(
        'design = "tinycore:fib"\n'
        "[sart]\n"
        "[sfi]\ninjections = 25\nseed = 1\n"
    )
    assert main(["run", str(path)]) == 0
    via_spec = capsys.readouterr().out

    # The banners differ in shape, but every number must be reproduced:
    # structure ports, the whole per-FUB table, and the campaign stats.
    import re

    spec_lines = set(_normalize(via_spec).splitlines())
    for line in _normalize(via_flags).splitlines():
        if line.startswith("  structure"):
            assert line in spec_lines, line

    def table_block(text):
        lines = _normalize(text).splitlines()
        start = next(i for i, l in enumerate(lines) if l.startswith("FUB"))
        stop = next(i for i, l in enumerate(lines)
                    if l.startswith("relaxation"))
        return lines[start:stop + 1]

    assert table_block(via_flags) == table_block(via_spec)
    assert "166 cycles, ACE fraction 1.00" in via_spec
    m = re.search(r"AVF=(\S+ \[\S+\]) counts=(\{[^}]*\})", via_flags)
    assert m, via_flags
    assert f"SDC AVF={m.group(1)}" in via_spec
    assert f"counts: {m.group(2)}" in via_spec


def test_run_spec_reproduces_sweep(tmp_path, capsys):
    from repro.cli import main

    args = ["sweep", "--points", "3", "--scale", "0.2",
            "--workloads-per-class", "1", "--workload-length", "600"]
    assert main(args) == 0
    via_flags = capsys.readouterr().out

    path = tmp_path / "sweep.toml"
    path.write_text(
        'design = "bigcore@scale=0.2"\n'
        "[workloads]\nper_class = 1\nlength = 600\n"
        "[sweep]\npoints = 3\n"
    )
    assert main(["run", str(path)]) == 0
    via_spec = capsys.readouterr().out
    flag_rows = [l for l in _normalize(via_flags).splitlines()
                 if l.strip() and l[0].isdigit() or l.startswith(" ")]
    spec_text = _normalize(via_spec)
    for row in flag_rows:
        assert row in spec_text, row


def test_execute_spec_directly():
    from repro.pipeline import RunSpec, SfiSpec, execute

    spec = RunSpec(design="tinycore:fib", sfi=SfiSpec(injections=20, seed=3))
    outcome = execute(spec)
    assert outcome.sfi is not None
    assert outcome.sfi.injections == 20
    assert outcome.golden is not None and outcome.golden.halted
    assert outcome.sart is None  # sfi-only spec skips the report
    assert [e.stage for e in outcome.events] == ["design", "golden", "sfi"]


# ----------------------------------------------------------------------
# [eco] — incremental re-solve sections
# ----------------------------------------------------------------------

def test_eco_section_parses_and_infers_sart():
    from repro.pipeline.spec import EcoSpec

    spec = spec_from_mapping({
        "design": "bigcore@scale=0.1,edit=LSU",
        "eco": {"baseline": "bigcore@scale=0.1", "check": True},
    })
    assert spec.eco == EcoSpec(baseline="bigcore@scale=0.1", check=True)
    # An eco section implies a SART solve even without [sart].
    assert spec.stages() == ["sart"]


def test_eco_section_round_trips_through_mapping():
    spec = spec_from_mapping({
        "design": "bigcore@scale=0.1,edit=LSU",
        "eco": {"baseline": "bigcore@scale=0.1"},
    })
    doc = spec.to_mapping()
    assert doc["eco"] == {"baseline": "bigcore@scale=0.1", "check": False}
    assert spec_from_mapping(doc) == spec


def test_eco_toml_loading_and_validation(tmp_path):
    path = tmp_path / "eco.toml"
    path.write_text(
        'design = "bigcore@scale=0.1,edit=LSU"\n'
        '[eco]\nbaseline = "bigcore@scale=0.1"\ncheck = true\n'
    )
    spec = load_spec(str(path))
    assert spec.eco.baseline == "bigcore@scale=0.1"
    assert spec.eco.check is True
    with pytest.raises(SpecError, match=r"unknown key\(s\) \['basis'\]"):
        spec_from_mapping({
            "design": "bigcore", "eco": {"basis": "bigcore"},
        })
    with pytest.raises(SpecError):
        spec_from_mapping({"design": "bigcore", "eco": {}})


def test_derating_section_parses_and_infers_sart():
    from repro.pipeline.spec import DeratingSpec

    spec = spec_from_mapping({"design": "tinycore:fib", "derating": {}})
    assert spec.derating == DeratingSpec()
    # Derating multiplies the sequential AVFs, so it implies a solve.
    assert spec.stages() == ["sart", "derating"]
    spec = spec_from_mapping({
        "design": "tinycore:fib",
        "derating": {"mc_trials": 16, "mc_seed": 3},
    })
    assert spec.derating == DeratingSpec(mc_trials=16, mc_seed=3)


def test_derating_section_round_trips_through_mapping():
    spec = spec_from_mapping({
        "design": "tinycore:fib", "derating": {"mc_trials": 16},
    })
    doc = spec.to_mapping()
    assert doc["derating"] == {"mc_trials": 16, "mc_seed": 11}
    assert spec_from_mapping(doc) == spec
    with pytest.raises(SpecError, match=r"unknown key\(s\) \['trials'\]"):
        spec_from_mapping({"design": "tinycore:fib",
                           "derating": {"trials": 5}})
