"""Workload generator and suite tests."""

import pytest

from repro.errors import TraceError
from repro.perfmodel.trace import mark_ace
from repro.workloads.generator import WorkloadSpec, generate_trace
from repro.workloads.suite import SUITE_CLASSES, default_suite, make_suite, suite_by_class


def test_determinism():
    spec = WorkloadSpec(name="x", length=1000, seed=9)
    a = generate_trace(spec)
    b = generate_trace(spec)
    assert [(i.op, i.dst, i.srcs, i.addr) for i in a] == [
        (i.op, i.dst, i.srcs, i.addr) for i in b
    ]


def test_different_seeds_differ():
    a = generate_trace(WorkloadSpec(name="x", length=1000, seed=1))
    b = generate_trace(WorkloadSpec(name="x", length=1000, seed=2))
    assert [i.op for i in a] != [i.op for i in b]


def test_mix_approximately_respected():
    spec = WorkloadSpec(name="x", length=20_000, frac_load=0.4, frac_alu=0.4,
                        frac_store=0.1, frac_branch=0.1, frac_nop=0, frac_prefetch=0,
                        frac_mul=0, output_every=0)
    t = generate_trace(spec)
    loads = sum(1 for i in t if i.op == "load") / len(t)
    assert loads == pytest.approx(0.4, abs=0.03)


def test_empty_mix_rejected():
    spec = WorkloadSpec(name="x", frac_alu=0, frac_mul=0, frac_load=0,
                        frac_store=0, frac_branch=0, frac_nop=0, frac_prefetch=0)
    with pytest.raises(TraceError):
        generate_trace(spec)


def test_dead_fraction_influences_ace():
    clean = mark_ace(generate_trace(WorkloadSpec(name="c", length=8000, dead_fraction=0.0)))
    dirty = mark_ace(generate_trace(WorkloadSpec(name="d", length=8000, dead_fraction=0.6)))
    assert dirty.ace_fraction() < clean.ace_fraction()


def test_working_set_bounds_addresses():
    t = generate_trace(WorkloadSpec(name="x", length=5000, working_set=64))
    addrs = {i.addr for i in t if i.addr is not None}
    assert addrs and max(addrs) < 64


def test_make_suite_counts_and_names():
    specs = make_suite(per_class=3, length=500)
    assert len(specs) == 3 * len(SUITE_CLASSES)
    names = [s.name for s in specs]
    assert len(set(names)) == len(names)
    seeds = [s.seed for s in specs]
    assert len(set(seeds)) == len(seeds)


def test_default_suite_generates_valid_traces():
    traces = default_suite(per_class=1, length=400)
    assert len(traces) == len(SUITE_CLASSES)
    for t in traces:
        t.validate()
        assert len(t) == 400


def test_suite_by_class():
    traces = suite_by_class("oltp", count=2, length=300)
    assert len(traces) == 2
    assert all(t.name.startswith("oltp") for t in traces)


def test_classes_have_distinct_characters():
    idle = mark_ace(suite_by_class("idle", count=1, length=5000)[0])
    kernel = mark_ace(suite_by_class("kernel", count=1, length=5000)[0])
    assert idle.ace_fraction() < kernel.ace_fraction()
