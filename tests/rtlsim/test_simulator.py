"""Gate-level simulator tests: lane parallelism, flops, memories, faults."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netlist import wordlib
from repro.netlist.builder import ModuleBuilder
from repro.rtlsim.levelize import levelize
from repro.rtlsim.probes import Probe, StateSnapshot
from repro.rtlsim.simulator import Simulator


def _counter(width=4):
    """Free-running counter: q <= q + 1 each cycle."""
    b = ModuleBuilder("ctr")
    b.input("unused")
    q_nets = [f"q[{i}]" for i in range(width)]
    for n in q_nets:
        b.module.add_net(n)
    nxt = wordlib.increment(b, q_nets)
    for i in range(width):
        b.dff(nxt[i], q=q_nets[i], name=f"ff{i}")
    return b.done(), q_nets


def test_counter_counts():
    module, q = _counter()
    sim = Simulator(module, lanes=3)
    for expected in range(20):
        assert sim.peek_word(q, 0) == expected % 16
        assert sim.peek_word(q, 2) == expected % 16
        sim.step()


def test_dff_init_values():
    b = ModuleBuilder("m")
    x = b.input("x")
    q0 = b.dff(x, init=0)
    q1 = b.dff(x, init=1)
    sim = Simulator(b.done(), lanes=2)
    assert sim.peek(q0) == 0
    assert sim.peek(q1) == 0b11  # init=1 in every lane


def test_enabled_dff_holds():
    b = ModuleBuilder("m")
    d = b.input("d")
    en = b.input("en")
    q = b.dff(d, en=en)
    sim = Simulator(b.done(), lanes=1)
    sim.poke("d", 1)
    sim.poke("en", 0)
    sim.step()
    assert sim.peek(q) == 0  # held
    sim.poke("en", 1)
    sim.step()
    assert sim.peek(q) == 1  # loaded
    sim.poke("d", 0)
    sim.poke("en", 0)
    sim.step()
    assert sim.peek(q) == 1  # held again


def test_lanes_are_independent_after_flip():
    module, q = _counter()
    sim = Simulator(module, lanes=4)
    sim.step(3)
    sim.flip(q[0], 0b0100)  # lane 2 only
    assert sim.peek_word(q, 0) == 3
    assert sim.peek_word(q, 2) == 2
    sim.step()
    assert sim.peek_word(q, 0) == 4
    assert sim.peek_word(q, 2) == 3
    assert sim.lanes_differing_from(0) == {2}


def test_reset_restores_everything():
    module, q = _counter()
    sim = Simulator(module, lanes=2)
    sim.step(7)
    sim.flip(q[1], 0b10)
    sim.reset()
    assert sim.cycle == 0
    assert sim.peek_word(q, 0) == 0
    assert sim.peek_word(q, 1) == 0
    assert sim.lanes_differing_from(0) == set()


class TestMemory:
    def _mem_module(self):
        b = ModuleBuilder("m")
        ra = b.input_bus("ra", 3)
        wa = b.input_bus("wa", 3)
        wd = b.input_bus("wd", 8)
        we = b.input("we")
        rd = b.mem(8, 8, [ra], wa, wd, we, name="arr", init=[10, 20, 30])[0]
        for i in range(8):
            b.output(f"rd[{i}]")
            b.gate("BUF", [rd[i]], out=f"rd[{i}]")
        return b.done(), ra, wa, wd

    def test_init_and_write_read(self):
        module, ra, wa, wd = self._mem_module()
        sim = Simulator(module, lanes=2)
        rd = [f"rd[{i}]" for i in range(8)]
        sim.poke_word(ra, 1)
        assert sim.peek_word(rd, 0) == 20
        sim.poke_word(wa, 5)
        sim.poke_word(wd, 99)
        sim.poke_all_lanes("we", 1)
        sim.step()
        sim.poke_all_lanes("we", 0)
        sim.poke_word(ra, 5)
        assert sim.peek_word(rd, 0) == 99
        assert sim.peek_word(rd, 1) == 99

    def test_diverged_lane_write(self):
        module, ra, wa, wd = self._mem_module()
        sim = Simulator(module, lanes=2)
        rd = [f"rd[{i}]" for i in range(8)]
        # lane 1 writes different data than lane 0 at the same address
        sim.poke_word(wa, 3)
        sim.poke("wd[0]", 0b01)  # lane0: bit0=1, lane1: bit0=0
        for net in wd[1:]:
            sim.poke(net, 0)
        sim.poke_all_lanes("we", 1)
        sim.step()
        sim.poke_all_lanes("we", 0)
        sim.poke_word(ra, 3)
        assert sim.peek_word(rd, 0) == 1
        assert sim.peek_word(rd, 1) == 0
        assert sim.lanes_differing_from(0) == {1}
        # converge again: both lanes write the same value
        sim.poke_word(wd, 42)
        sim.poke_word(wa, 3)
        sim.poke_all_lanes("we", 1)
        sim.step()
        assert sim.lanes_differing_from(0) == set()

    def test_diverged_address_read(self):
        module, ra, wa, wd = self._mem_module()
        sim = Simulator(module, lanes=2)
        rd = [f"rd[{i}]" for i in range(8)]
        # lane0 reads addr 0 (10), lane1 reads addr 1 (20)
        sim.poke("ra[0]", 0b10)
        sim.poke("ra[1]", 0)
        sim.poke("ra[2]", 0)
        assert sim.peek_word(rd, 0) == 10
        assert sim.peek_word(rd, 1) == 20


def test_probe_and_snapshot():
    module, q = _counter()
    sim = Simulator(module, lanes=2)
    probe = Probe(nets=q)
    for _ in range(4):
        probe.sample(sim)
        sim.step()
    assert probe.history[0] == [(0, 0), (1, 1), (2, 2), (3, 3)]
    assert probe.lanes_mismatching(0) == set()
    sim.flip(q[0], 0b10)
    probe.sample(sim)
    assert probe.lanes_mismatching(0) == {1}
    snap0 = StateSnapshot.capture(sim, 0)
    snap1 = StateSnapshot.capture(sim, 1)
    assert snap0.differs_from(snap1)
    assert not snap0.differs_from(snap0)


def test_combinational_cycle_raises():
    b = ModuleBuilder("m")
    a = b.input("a")
    b.module.add_net("n2")
    b.gate("AND", [a, "n2"], out="n1")
    b.gate("BUF", ["n1"], out="n2")
    with pytest.raises(SimulationError, match="cycle"):
        Simulator(b.done())


def test_levelize_orders_dependencies():
    b = ModuleBuilder("m")
    a = b.input("a")
    n1 = b.gate("NOT", [a])
    n2 = b.gate("AND", [a, n1])
    b.gate("OR", [n2, n1])
    order = [inst.name for kind, inst, _ in levelize(b.done())]
    assert order.index(order[0]) == 0
    produced = set()
    module = b.done()
    for kind, inst, _ in levelize(module):
        for pin in inst.input_pins():
            net = inst.conn[pin]
            assert net in produced or net in module.input_ports()
        for pin in inst.output_pins():
            produced.add(inst.conn[pin])


@settings(max_examples=25)
@given(st.integers(0, 255), st.integers(0, 255), st.integers(1, 5))
def test_pipeline_delays_data(x, z, depth):
    b = ModuleBuilder("m")
    a = b.input_bus("a", 8)
    cur = a
    for _ in range(depth):
        cur = b.dff_bus(cur)
    sim = Simulator(b.done(), lanes=1)
    sim.poke_word(a, x)
    sim.step(depth)
    sim.poke_word(a, z)
    assert sim.peek_word(cur, 0) == x
    sim.step(depth)
    assert sim.peek_word(cur, 0) == z
