"""Compiled-Python integer backend.

A net value is one Python integer: bit ``k`` is the net's boolean value
in lane ``k``. Python bigints give arbitrary lane counts for free — a
256-lane pass simply carries 256-bit integers — and the compiled
straight-line statements (one per gate) stay an order of magnitude
faster than interpreting the netlist gate by gate. Per-gate cost grows
sublinearly with lane count (CPython bigint limbs), so wider passes
amortize the fixed per-cycle interpreter overhead.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.netlist.netlist import Instance
from repro.rtlsim.backends.base import BaseSimulator


class PythonSimulator(BaseSimulator):
    """Pure-Python lane-parallel simulator (no dependencies)."""

    backend_name = "python"
    # Historical sweet spot: golden + 63 fault lanes fit one machine word,
    # but any lane count works (values become multi-limb bigints).
    preferred_fault_lanes = 63

    # ------------------------------------------------------------------
    # state + codec
    # ------------------------------------------------------------------
    def _alloc_state(self) -> None:
        n = len(self.index)
        self.values: list[int] = [0] * n
        self._next: list[int] = [0] * n

    def _clear_state(self) -> None:
        values = self.values
        for i in range(len(values)):
            values[i] = 0

    def _set_uniform(self, idx: int, bit: int) -> None:
        self.values[idx] = self.mask if bit else 0

    def _commit(self) -> None:
        v = self.values
        nv = self._next
        for q in self._commit_pairs:
            v[q] = nv[q]

    def value_int(self, v, idx: int) -> int:
        return v[idx]

    def set_value_int(self, v, idx: int, value: int) -> None:
        v[idx] = value

    def lane_bit(self, v, idx: int, lane: int) -> int:
        return (v[idx] >> lane) & 1

    # Direct-indexing overrides (skip one method dispatch on hot paths).
    def peek(self, net: str) -> int:
        self.settle()
        return self.values[self.index[net]]

    def poke(self, net: str, value: int) -> None:
        self.values[self.index[net]] = value & self.mask
        self._dirty = True

    def flip(self, net: str, lane_mask: int) -> None:
        self.values[self.index[net]] ^= lane_mask & self.mask
        self._dirty = True

    # ------------------------------------------------------------------
    # code generation
    # ------------------------------------------------------------------
    def _gate_expr(self, inst: Instance) -> str:
        conn = inst.conn
        idx = self.index
        kind = inst.kind
        mask = self.mask

        def pin(name: str) -> str:
            return f"v[{idx[conn[name]]}]"

        if kind == "BUF":
            return pin("a")
        if kind == "NOT":
            return f"{mask} ^ {pin('a')}"
        if kind in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR"):
            op = {"AND": " & ", "NAND": " & ", "OR": " | ", "NOR": " | ",
                  "XOR": " ^ ", "XNOR": " ^ "}[kind]
            terms = op.join(f"v[{idx[n]}]" for n in (conn[p] for p in inst.input_pins()))
            if kind in ("NAND", "NOR", "XNOR"):
                return f"{mask} ^ ({terms})"
            return terms
        if kind == "MUX2":
            a, b, s = pin("a"), pin("b"), pin("s")
            return f"({a} & ({mask} ^ {s})) | ({b} & {s})"
        raise SimulationError(f"no expression for cell {kind!r}")

    def _gate_lines(self, inst: Instance) -> list[str]:
        out = self.index[inst.conn["y"]]
        return [f"v[{out}] = {self._gate_expr(inst)}"]

    def _dff_lines(self, inst: Instance) -> list[str]:
        q = self.index[inst.conn["q"]]
        d = self.index[inst.conn["d"]]
        if "en" in inst.conn:
            en = self.index[inst.conn["en"]]
            expr = f"(v[{d}] & v[{en}]) | (v[{q}] & ({self.mask} ^ v[{en}]))"
        else:
            expr = f"v[{d}]"
        return [f"nv[{q}] = {expr}"]
