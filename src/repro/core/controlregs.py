"""Configuration control-register identification (paper Sections 4 and 5.1).

"SART attempts to identify configuration control-register bits, usually by
the RTL name or the driving clock. These bits are assigned a pAVF_R of
100%. Since writes to these control registers are relatively rare, the
pAVF_W will approach 0%. As a result, we can omit walks up from these
write-ports."

Identification here uses, in order:

1. the explicit ``ctrlreg`` instance attribute set by the design,
2. configurable name patterns (``cfg``/``csr``/``ctrl`` conventions),

mirroring the paper's name-based convention. Driving-clock identification
has no equivalent in our single-clock substrate.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.netlist.graph import NetGraph

DEFAULT_PATTERNS: tuple[str, ...] = (
    r"(^|[_/])cfg([_/\[]|$)",
    r"(^|[_/])csr([_/\[]|$)",
    r"(^|[_/])ctrlreg([_/\[]|$)",
)


def find_control_registers(
    graph: NetGraph,
    patterns: Iterable[str] = DEFAULT_PATTERNS,
    exclude: Iterable[str] = (),
) -> set[str]:
    """Nets of sequential nodes identified as control-register bits.

    *exclude* removes nets already claimed by another role (e.g. structure
    bits — a latch array named ``cfg_table`` stays a structure).
    """
    compiled = [re.compile(p) for p in patterns]
    excluded = set(exclude)
    found: set[str] = set()
    for net, inst, attrs in graph.seq_items():
        if net in excluded:
            continue
        if attrs.get("ctrlreg"):
            found.add(net)
            continue
        subject = f"{inst or ''} {net}"
        if any(rx.search(subject) for rx in compiled):
            found.add(net)
    return found
