"""repro — sequential-bit AVF computation via port-AVF propagation.

A full reproduction of Raasch, Biswas, Stephan, Racunas & Emer, "A Fast
and Accurate Analytical Technique to Compute the AVF of Sequential Bits
in a Processor" (MICRO-48, 2015), including every substrate the paper
depends on:

* :mod:`repro.core` — SART, the paper's contribution: pAVF propagation
  through an RTL node graph with loop breaking, control-register
  injection, per-FUB relaxation and closed-form re-evaluation.
* :mod:`repro.netlist` / :mod:`repro.rtlsim` — the RTL substrate: a
  bit-level netlist model, EXLIF interchange format, and a lane-parallel
  gate-level simulator.
* :mod:`repro.perfmodel` / :mod:`repro.ace` — the performance-model side:
  a trace-driven OoO pipeline with ACE lifetime analysis, bit-field
  analysis, Hamming-distance-1 analysis and port-AVF extraction.
* :mod:`repro.designs` — tinycore (a real, simulable 16-bit pipelined
  CPU) and bigcore (a synthetic Xeon-scale netlist generator).
* :mod:`repro.sfi` / :mod:`repro.ser` — the baselines and validation:
  statistical fault injection and a simulated accelerated beam test with
  Eq 1 FIT modelling.

Quickstart::

    from repro import SartConfig, StructurePorts, run_sart
    from repro.netlist.builder import ModuleBuilder

    b = ModuleBuilder("pipe")
    tie = b.input("tie_in")
    src = b.dff(tie, name="s1", attrs={"struct": "S1", "bit": "0"})
    q = b.dff(src, name="stage")
    b.dff(q, name="s2", attrs={"struct": "S2", "bit": "0"})
    result = run_sart(
        b.done(),
        {
            "S1": StructurePorts("S1", pavf_r=0.2, pavf_w=0.0, avf=0.4),
            "S2": StructurePorts("S2", pavf_r=0.0, pavf_w=0.1, avf=0.4),
        },
    )
    print(result.avf(q))  # MIN(0.2, 0.1) = 0.1
"""

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, SartResult, run_sart
from repro.core.report import DesignReport, FubReport, average_seq_avf, fub_report
from repro.core.symbolic import ClosedForm
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ClosedForm",
    "DesignReport",
    "FubReport",
    "ReproError",
    "SartConfig",
    "SartResult",
    "StructurePorts",
    "average_seq_avf",
    "fub_report",
    "run_sart",
    "__version__",
]
