"""Request deduplication and the serve-level observability counters.

The dedup index maps result fingerprints (spec identity minus
execution-only campaign knobs — see
:func:`repro.pipeline.spec.spec_fingerprint`) onto live
:class:`~repro.serve.jobs.Job` objects. Admission is a single critical
section, so N identical requests arriving concurrently all land on the
same job and exactly one pipeline execution happens; the acceptance
criterion "8 identical concurrent requests → 1 execution" is enforced
here and *counted* here, so the load generator and ``/stats`` can prove
it from the outside.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.serve.jobs import FAILED, Job, job_id_for


@dataclass
class ServeCounters:
    """Monotonic event counters, one instance per server process.

    ``executions`` counts pipeline dispatches, not requests: it is the
    number the concurrent-dedup acceptance test pins to 1.
    """

    requests: int = 0          # admitted POST /jobs calls
    dedup_hits: int = 0        # requests coalesced onto an existing job
    executions: int = 0        # jobs actually dispatched to the pipeline
    completed: int = 0
    failed: int = 0
    rejected: int = 0          # 429 backpressure rejections
    recovered: int = 0         # jobs replayed from the journal on boot
    resumed: int = 0           # recovered jobs that had to re-execute
    retries: int = 0           # job-level retry attempts
    # ECO mode: jobs whose SART solve touched the per-FUB solution
    # store or an explicit warm-start baseline.
    eco_jobs: int = 0          # completed jobs that reported an eco block
    fub_hits: int = 0          # per-(FUB, direction) store hits across jobs
    fub_misses: int = 0        # per-(FUB, direction) store misses
    warm_solves: int = 0       # eco jobs solved from a warm start
    cold_solves: int = 0       # eco jobs that still ran cold (all misses)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "dedup_hits": self.dedup_hits,
                "executions": self.executions,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "recovered": self.recovered,
                "resumed": self.resumed,
                "retries": self.retries,
                "eco_jobs": self.eco_jobs,
                "fub_hits": self.fub_hits,
                "fub_misses": self.fub_misses,
                "warm_solves": self.warm_solves,
                "cold_solves": self.cold_solves,
            }


class DedupIndex:
    """Fingerprint → job map with atomic get-or-create admission."""

    def __init__(self, counters: ServeCounters | None = None):
        self._lock = threading.Lock()
        self._by_fingerprint: dict[str, Job] = {}
        self._by_id: dict[str, Job] = {}
        self.counters = counters or ServeCounters()

    def admit(self, fingerprint: str, spec: dict) -> tuple[Job, bool]:
        """Return ``(job, created)`` for *fingerprint*, atomically.

        The second and every later caller with the same fingerprint gets
        the first caller's job (``created=False``) — including callers
        arriving after the job finished, which are served the stored
        result. A *failed* job is the one exception: resubmitting it
        re-queues the same job for a fresh execution.
        """
        with self._lock:
            job = self._by_fingerprint.get(fingerprint)
            if job is not None:
                self.counters.bump("requests")
                if job.state == FAILED:
                    job.reset_for_retry()
                    self.counters.bump("retries")
                    return job, True
                self.counters.bump("dedup_hits")
                return job, False
            job = Job(id=job_id_for(fingerprint), fingerprint=fingerprint,
                      spec=spec)
            self._by_fingerprint[fingerprint] = job
            self._by_id[job.id] = job
            self.counters.bump("requests")
            return job, True

    def adopt(self, job: Job) -> None:
        """Register a journal-replayed job without counting a request."""
        with self._lock:
            self._by_fingerprint[job.fingerprint] = job
            self._by_id[job.id] = job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._by_id.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs, in admission order."""
        with self._lock:
            return list(self._by_id.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)
