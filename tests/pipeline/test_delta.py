"""Design deltas and per-FUB incremental re-solve (ECO mode).

The contract under test: a warm-started solve of an edited design is
bit-identical — node AVFs *and* annotation sets — to a cold solve of
the same design, while re-solving only the FUBs the edit can actually
influence. Store keys must invalidate exactly the edited FUB plus its
per-direction reachable set.
"""

import dataclasses
import multiprocessing
import os

import pytest

from repro.core.graphmodel import StructurePorts
from repro.core.relaxation import WarmStart
from repro.core.sart import SartConfig, build_plan, run_sart
from repro.pipeline.delta import (
    DesignDelta,
    FubSolution,
    diff_plans,
    dirty_fub_indices,
    eco_context_fingerprint,
    extract_fub_solutions,
    fub_closures,
    fub_fingerprints,
    fub_solution_keys,
    save_fub_solutions,
    warm_start_from_result,
    warm_start_from_store,
)
from repro.pipeline.store import ArtifactStore

STRUCTS = {
    "SRC": StructurePorts("SRC", pavf_r=0.3, pavf_w=0.0, avf=0.5),
    "SNK": StructurePorts("SNK", pavf_r=0.0, pavf_w=0.1, avf=0.5),
}

CFG = SartConfig(engine="compiled", partition_by_fub=True, iterations=20)


def _design(
    edit=None,
    value_edit=None,
    rewire_b=False,
    c_name="C",
    with_d=True,
    ctrl_fub="B",
):
    """A FUB chain A -> B -> C plus an independent FUB D.

    *edit* inserts a double inverter (numerically neutral) inside the
    named FUB; *value_edit* mixes the raw input into the named FUB's
    datapath (changes downstream values); *rewire_b* feeds B straight
    from the input (raises B's exports to the TOP value, exercising the
    saturation rule of the optimistic merge); *ctrl_fub* places the
    control register (a ``cfg``-named flop) in that FUB.
    """
    from repro.netlist.builder import ModuleBuilder

    b = ModuleBuilder("eco")
    tie = b.input("tie_in")
    cur = b.dff(tie, q="src_q", name="src",
                attrs={"struct": "SRC", "bit": "0", "fub": "A"})
    for fub in ("A", "B", c_name):
        logical = "C" if fub == c_name else fub
        for s in range(2):
            d = cur
            if rewire_b and logical == "B" and s == 0:
                d = tie
            cur = b.dff(d, q=f"{logical}_s{s}", name=f"{logical}_r{s}",
                        attrs={"fub": fub})
            if edit == logical and s == 0:
                eco1 = b.not_(cur, out=f"{logical}_eco1",
                              name=f"{logical}_i1", attrs={"fub": fub})
                cur = b.not_(eco1, out=f"{logical}_eco2",
                             name=f"{logical}_i2", attrs={"fub": fub})
            if value_edit == logical and s == 0:
                cur = b.and_(cur, tie, out=f"{logical}_mix",
                             name=f"{logical}_mixer", attrs={"fub": fub})
        if logical == "B":
            gate = b.dff(cur, q="cfg_gate", name="cfg_gate_reg",
                         attrs={"fub": ctrl_fub})
            cur = b.and_(cur, gate, out="B_gated", name="B_gater",
                         attrs={"fub": fub})
    b.dff(cur, q="snk_q", name="snk",
          attrs={"struct": "SNK", "bit": "0", "fub": c_name})
    if with_d:
        d_in = b.input("d_in")
        q = b.dff(d_in, q="D_s0", name="D_r0", attrs={"fub": "D"})
        b.dff(q, q="D_s1", name="D_r1", attrs={"fub": "D"})
    return b.done()


def _plan(module):
    return build_plan(module, STRUCTS, CFG)


def _solve(module, plan=None, warm_start=None, config=CFG):
    return run_sart(module, STRUCTS, config,
                    plan=plan or _plan(module), warm_start=warm_start)


def _assert_identical(warm, cold):
    assert warm.node_avfs == cold.node_avfs
    assert warm.f_sets == cold.f_sets
    assert warm.b_sets == cold.b_sets
    assert warm.report == cold.report


def _idx(plan, fub):
    return plan.fub_names.index(fub)


# ----------------------------------------------------------------------
# per-FUB fingerprints
# ----------------------------------------------------------------------

class TestFingerprints:
    def test_stable_across_rebuilds(self):
        fps_a = fub_fingerprints(_plan(_design()))
        fps_b = fub_fingerprints(_plan(_design()))
        assert fps_a == fps_b

    def test_internal_edit_changes_only_the_edited_fub(self):
        base = fub_fingerprints(_plan(_design()))
        edited = fub_fingerprints(_plan(_design(edit="B")))
        assert base.keys() == edited.keys()
        changed = {f for f in base if base[f] != edited[f]}
        assert changed == {"B"}

    def test_neighbor_fub_is_part_of_the_interface(self):
        # Moving a node to another FUB (no renames!) changes both FUBs'
        # fingerprints *and* those of neighbors reading the moved node,
        # because which side of the partition a fan-in sits on decides
        # whether it is read locally or through a FUBIO boundary.
        base = fub_fingerprints(_plan(_design()))
        moved = fub_fingerprints(_plan(_design(ctrl_fub="C")))
        assert base["B"] != moved["B"]
        assert base["C"] != moved["C"]
        assert base["A"] == moved["A"]
        assert base["D"] == moved["D"]


# ----------------------------------------------------------------------
# dependency closures and dirty sets
# ----------------------------------------------------------------------

class TestClosures:
    def test_chain_closures_follow_the_dataflow(self):
        plan = _plan(_design())
        f_clo, b_clo = fub_closures(plan)
        a, b, c, d = (_idx(plan, f) for f in "ABCD")
        # Forward: C depends on everything upstream, A on nothing below.
        assert {a, b, c} <= f_clo[c]
        assert b in f_clo[b] and a in f_clo[b]
        assert b not in f_clo[a] and c not in f_clo[a]
        # Backward mirrors it.
        assert {a, b, c} <= b_clo[a]
        assert a not in b_clo[c] and b not in b_clo[c]
        # D is disconnected from the chain in both directions.
        assert f_clo[d] == {d} == b_clo[d]
        for f in (a, b, c):
            assert d not in f_clo[f] and d not in b_clo[f]

    def test_dirty_fub_indices_are_per_direction(self):
        plan = _plan(_design())
        a, b, c, d = (_idx(plan, f) for f in "ABCD")
        f_dirty, b_dirty = dirty_fub_indices(plan, {b})
        assert b in f_dirty and c in f_dirty and a not in f_dirty
        assert b in b_dirty and a in b_dirty and c not in b_dirty
        assert d not in f_dirty and d not in b_dirty


# ----------------------------------------------------------------------
# diff_plans
# ----------------------------------------------------------------------

class TestDiff:
    def test_noop_diff(self):
        delta = diff_plans(_plan(_design()), _plan(_design()))
        assert delta.is_noop()
        assert not delta.dirty and not delta.touched
        assert delta.dirty_fraction == 0.0

    def test_internal_edit(self):
        plan_a, plan_b = _plan(_design()), _plan(_design(edit="B"))
        delta = diff_plans(plan_a, plan_b, ref_a="base", ref_b="edit")
        assert delta.changed == ("B",)
        assert not delta.added and not delta.removed
        assert delta.touched == {"B"}
        # Static dirtiness unions both directions: the whole chain, but
        # never the disconnected FUB D.
        assert {"A", "B", "C"} <= set(delta.dirty)
        assert "D" not in delta.dirty

    def test_renamed_fub_is_removed_plus_added(self):
        delta = diff_plans(_plan(_design()), _plan(_design(c_name="C2")))
        assert delta.added == ("C2",)
        assert delta.removed == ("C",)
        # B reads/feeds the renamed FUB, so its interface changed too.
        assert "B" in delta.changed

    def test_removed_fub(self):
        delta = diff_plans(_plan(_design()), _plan(_design(with_d=False)))
        assert delta.removed == ("D",)
        assert not delta.added
        # D's input pin vanished with it, so the top-level FUB changed;
        # the chain FUBs are untouched.
        assert set(delta.changed) <= {""}
        assert {"A", "B", "C"} <= set(delta.unchanged)
        assert delta.is_noop() is False

    def test_ctrl_reg_moved_across_fubs(self):
        delta = diff_plans(_plan(_design()), _plan(_design(ctrl_fub="C")))
        assert {"B", "C"} <= set(delta.changed)
        assert "A" not in delta.changed and "D" not in delta.changed

    def test_table_and_mapping(self):
        delta = diff_plans(
            _plan(_design()), _plan(_design(edit="B")),
            ref_a="base", ref_b="edit",
        )
        text = delta.table()
        assert "changed" in text and "unchanged" in text
        assert "(top)" in text            # the top-level FUB renders
        assert f"dirty set {len(delta.dirty)}/{delta.n_fubs}" in text
        doc = delta.to_mapping()
        assert doc["ref_a"] == "base" and doc["ref_b"] == "edit"
        assert doc["changed"] == ["B"]
        assert doc["n_fubs"] == delta.n_fubs
        assert 0.0 < doc["dirty_fraction"] <= 1.0

    def test_precomputed_fingerprints_are_honored(self):
        plan_a, plan_b = _plan(_design()), _plan(_design(edit="B"))
        fps_a, fps_b = fub_fingerprints(plan_a), fub_fingerprints(plan_b)
        delta = diff_plans(plan_a, plan_b,
                           fingerprints_a=fps_a, fingerprints_b=fps_b)
        assert delta.changed == ("B",)


# ----------------------------------------------------------------------
# optimistic warm start (the delta path)
# ----------------------------------------------------------------------

class TestWarmStartFromResult:
    def _warm_vs_cold(self, base_module, target_module, config=CFG):
        plan_a, plan_b = _plan(base_module), _plan(target_module)
        baseline = _solve(base_module, plan=plan_a, config=config)
        delta = diff_plans(plan_a, plan_b)
        warm_start = warm_start_from_result(plan_b, delta.touched, baseline)
        assert warm_start is not None and warm_start.optimistic
        warm = _solve(target_module, plan=plan_b,
                      warm_start=warm_start, config=config)
        cold = _solve(target_module, plan=plan_b, config=config)
        _assert_identical(warm, cold)
        return warm, cold

    def test_neutral_edit_resolves_only_the_edited_fub(self):
        warm, _ = self._warm_vs_cold(_design(), _design(edit="B"))
        assert warm.trace.warm and warm.trace.converged
        assert warm.trace.resolved_fubs == 1
        assert warm.trace.iterations < 3

    def test_value_edit_is_bit_identical(self):
        warm, cold = self._warm_vs_cold(_design(), _design(value_edit="B"))
        assert warm.trace.warm
        # The value change propagates beyond B but never into D.
        assert warm.trace.resolved_fubs >= 2
        assert warm.trace.resolved_fubs < warm.trace.warm_fubs + \
            warm.trace.dirty_fubs

    def test_saturating_edit_is_bit_identical(self):
        # Rewiring B to the raw input raises its exports to the TOP
        # value: the merge must re-saturate to the canonical TOP set,
        # not keep an equal-valued computed set.
        self._warm_vs_cold(_design(), _design(rewire_b=True))

    def test_refuses_non_converged_baseline(self):
        tight = dataclasses.replace(CFG, iterations=1)
        module = _design()
        baseline = _solve(module, config=tight)
        assert not baseline.trace.converged
        assert warm_start_from_result(_plan(module), set(), baseline) is None

    def test_refuses_baseline_without_boundaries(self):
        module = _design()
        baseline = _solve(module)
        stripped = dataclasses.replace(baseline, f_boundary=None)
        assert warm_start_from_result(_plan(module), set(), stripped) is None
        mono = run_sart(
            module, STRUCTS,
            dataclasses.replace(CFG, partition_by_fub=False),
        )
        assert warm_start_from_result(_plan(module), set(), mono) is None

    def test_uncovered_fub_is_folded_into_the_dirty_set(self):
        # D exists only in the target; the baseline has nothing to seed
        # it with, so it must re-solve even though the delta computed
        # against a D-less baseline never marked it touched.
        base_module = _design(with_d=False)
        target_module = _design()
        plan_b = _plan(target_module)
        baseline = _solve(base_module)
        delta = diff_plans(_plan(base_module), plan_b)
        warm_start = warm_start_from_result(plan_b, delta.touched, baseline)
        assert "D" in warm_start.dirty_fubs
        warm = _solve(target_module, plan=plan_b, warm_start=warm_start)
        _assert_identical(warm, _solve(target_module, plan=plan_b))

    def test_non_convergent_warm_start_falls_back_cold(self):
        from repro.errors import WarmStartDegradedWarning

        base_module, target_module = _design(), _design(value_edit="B")
        plan_b = _plan(target_module)
        baseline = _solve(base_module)
        delta = diff_plans(_plan(base_module), plan_b)
        warm_start = warm_start_from_result(plan_b, delta.touched, baseline)
        # One iteration is not enough for the value change to propagate
        # to quiescence: the optimistic run must not return a truncated
        # warm trajectory, it restarts cold.
        tight = dataclasses.replace(CFG, iterations=1)
        with pytest.warns(WarmStartDegradedWarning, match="restarting cold"):
            warm = _solve(target_module, plan=plan_b,
                          warm_start=warm_start, config=tight)
        cold = _solve(target_module, plan=plan_b, config=tight)
        assert warm.node_avfs == cold.node_avfs
        assert not warm.trace.warm


# ----------------------------------------------------------------------
# per-(FUB, direction) store keys and round trips
# ----------------------------------------------------------------------

class TestStoreKeys:
    def test_edit_invalidates_only_the_reachable_keys(self):
        plan_a, plan_b = _plan(_design()), _plan(_design(edit="B"))
        ctx = eco_context_fingerprint(CFG, None)
        keys_a = fub_solution_keys(plan_a, ctx)
        keys_b = fub_solution_keys(plan_b, ctx)
        # B itself: both directions invalid.
        assert keys_a["B"]["f"] != keys_b["B"]["f"]
        assert keys_a["B"]["b"] != keys_b["B"]["b"]
        # A feeds B: its forward solution is unaffected, its backward
        # solution reads B's exports.
        assert keys_a["A"]["f"] == keys_b["A"]["f"]
        assert keys_a["A"]["b"] != keys_b["A"]["b"]
        # C mirrors A.
        assert keys_a["C"]["f"] != keys_b["C"]["f"]
        assert keys_a["C"]["b"] == keys_b["C"]["b"]
        # D is disconnected: both keys survive.
        assert keys_a["D"] == keys_b["D"]

    def test_context_fingerprint_tracks_solve_knobs_not_workers(self):
        base = eco_context_fingerprint(CFG, None)
        assert eco_context_fingerprint(
            dataclasses.replace(CFG, workers=8), None) == base
        assert eco_context_fingerprint(
            dataclasses.replace(CFG, loop_pavf=0.7), None) != base
        assert eco_context_fingerprint(CFG, "ports-fp") != base

    def test_round_trip_serves_hits_and_stays_identical(self, tmp_path):
        module = _design()
        plan = _plan(module)
        store = ArtifactStore(tmp_path / "cache")
        keys = fub_solution_keys(plan, eco_context_fingerprint(CFG, None))
        cold = _solve(module, plan=plan)
        written = save_fub_solutions(store, plan, cold, keys)
        assert written == 2 * plan.n_fubs

        warm_start, hits, misses, hit_pairs = warm_start_from_store(
            ArtifactStore(tmp_path / "cache"), plan, keys
        )
        assert hits == 2 * plan.n_fubs and misses == 0
        assert not warm_start.dirty_fubs and not warm_start.optimistic
        warm = _solve(module, plan=plan, warm_start=warm_start)
        _assert_identical(warm, cold)
        assert warm.trace.warm and warm.trace.resolved_fubs == 0
        assert warm.trace.iterations == 1

    def test_partial_hits_after_an_edit(self, tmp_path):
        base_module, target_module = _design(), _design(edit="B")
        plan_a, plan_b = _plan(base_module), _plan(target_module)
        ctx = eco_context_fingerprint(CFG, None)
        store = ArtifactStore(tmp_path / "cache")
        save_fub_solutions(
            store, plan_a, _solve(base_module, plan=plan_a),
            fub_solution_keys(plan_a, ctx),
        )

        keys_b = fub_solution_keys(plan_b, ctx)
        warm_start, hits, misses, hit_pairs = warm_start_from_store(
            store, plan_b, keys_b
        )
        # The unreachable halves survive the edit: A forward, C
        # backward, D both, plus the structure-less top FUB.
        assert {("A", "f"), ("C", "b"), ("D", "f"), ("D", "b")} <= set(
            hit_pairs
        )
        assert ("B", "f") not in hit_pairs and ("B", "b") not in hit_pairs
        assert hits + misses == 2 * plan_b.n_fubs
        assert {"A", "B", "C"} <= set(warm_start.dirty_fubs)
        assert "D" not in warm_start.dirty_fubs

        cold = _solve(target_module, plan=plan_b)
        warm = _solve(target_module, plan=plan_b, warm_start=warm_start)
        _assert_identical(warm, cold)
        # Back-filling skips the served hits.
        wrote = save_fub_solutions(store, plan_b, warm, keys_b,
                                   skip=hit_pairs)
        assert wrote == 2 * plan_b.n_fubs - hits

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        module = _design()
        plan = _plan(module)
        store = ArtifactStore(tmp_path / "cache")
        keys = fub_solution_keys(plan, eco_context_fingerprint(CFG, None))
        save_fub_solutions(store, plan, _solve(module, plan=plan), keys)
        # Overwrite B's forward entry with a blob whose node coverage
        # does not match the plan.
        store.save("fubsol", keys["B"]["f"], FubSolution(
            fub="B", direction="f", sets={"bogus": frozenset()}, boundary={}
        ))
        _, hits, misses, hit_pairs = warm_start_from_store(store, plan, keys)
        assert misses == 1 and ("B", "f") not in hit_pairs

    def test_all_misses_mean_no_warm_start(self, tmp_path):
        plan = _plan(_design())
        keys = fub_solution_keys(plan, eco_context_fingerprint(CFG, None))
        warm_start, hits, misses, hit_pairs = warm_start_from_store(
            ArtifactStore(tmp_path / "cache"), plan, keys
        )
        assert warm_start is None and hits == 0 and not hit_pairs
        assert misses == 2 * plan.n_fubs

    def test_extract_refuses_unusable_results(self):
        module = _design()
        mono = run_sart(module, STRUCTS,
                        dataclasses.replace(CFG, partition_by_fub=False))
        assert extract_fub_solutions(_plan(module), mono) == {}
        part = _solve(module)
        assert extract_fub_solutions(
            _plan(module), dataclasses.replace(part, b_boundary=None)
        ) == {}


# ----------------------------------------------------------------------
# chaos: a worker crash mid-incremental-solve must not cost correctness
# ----------------------------------------------------------------------

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool tests assume fork workers",
)

_REAL_SOLVE_FUB = None


def _crashy_solve_fub(task):
    """Kill the first worker process to touch a task, then behave."""
    from repro.core import compiled

    scratch = os.environ["ECO_CHAOS_SCRATCH"]
    marker = os.path.join(scratch, "crashed")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        os.close(fd)
        os._exit(13)
    return _REAL_SOLVE_FUB(task)


@needs_fork
def test_pool_crash_mid_incremental_solve_resumes_bit_identical(
    tmp_path, monkeypatch
):
    global _REAL_SOLVE_FUB

    from repro.core import compiled

    base_module, target_module = _design(), _design(value_edit="B")
    plan_b = _plan(target_module)
    baseline = _solve(base_module)
    # Over-marking dirty FUBs is allowed; here it guarantees the first
    # iteration has more than one task, so the pool actually dispatches.
    warm_start = warm_start_from_result(plan_b, {"A", "B"}, baseline)
    cold = _solve(target_module, plan=plan_b)

    parallel = dataclasses.replace(
        CFG, workers=2, min_parallel_nodes=0
    )
    monkeypatch.setenv("ECO_CHAOS_SCRATCH", str(tmp_path))
    _REAL_SOLVE_FUB = compiled._pool_solve_fub
    monkeypatch.setattr(compiled, "_pool_solve_fub", _crashy_solve_fub)
    warm = _solve(target_module, plan=plan_b,
                  warm_start=warm_start, config=parallel)

    assert os.path.exists(str(tmp_path / "crashed")), "no crash happened"
    assert warm.trace.warm and warm.trace.converged
    _assert_identical(warm, cold)


