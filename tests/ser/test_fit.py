"""Unit tests for the Eq 1 FIT accumulator (`ser/fit.py`)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.ser.fit import FitModel, GroupFit, sdc_rate_per_cycle


def test_eq1_accumulation():
    model = FitModel(intrinsic_fit_per_bit=2e-5)
    model.add("sequentials", 0.5, bits=100)
    model.add("arrays", 0.25, bits=1000)
    assert model.group_fit("sequentials") == pytest.approx(0.5 * 100 * 2e-5)
    assert model.group_fit("arrays") == pytest.approx(0.25 * 1000 * 2e-5)
    assert model.total_fit() == pytest.approx(
        model.group_fit("sequentials") + model.group_fit("arrays"))
    assert model.total_bits() == 1100


def test_derating_scales_fit_not_bits():
    model = FitModel(intrinsic_fit_per_bit=1.0)
    model.add("seq", 1.0, bits=10, derating=0.5)
    assert model.group_fit("seq") == pytest.approx(5.0)
    assert model.total_bits() == 10


def test_add_rejects_out_of_range_avf():
    model = FitModel()
    with pytest.raises(ReproError, match="out of range"):
        model.add("seq", 1.5)
    with pytest.raises(ReproError, match="out of range"):
        model.add("seq", -0.1)
    with pytest.raises(ReproError, match="negative bit"):
        model.add("seq", 0.5, bits=-1)
    assert model.groups == {}  # nothing partially recorded


def test_boundary_avfs_accepted():
    model = FitModel(intrinsic_fit_per_bit=1.0)
    model.add("seq", 0.0, bits=5)
    model.add("seq", 1.0, bits=5)
    assert model.group_fit("seq") == pytest.approx(5.0)


def test_empty_model_degenerates_to_zero():
    model = FitModel()
    assert model.total_fit() == 0.0
    assert model.total_bits() == 0
    assert model.group_fit("anything") == 0.0
    assert model.normalized() == {}
    assert sdc_rate_per_cycle(model) == 0.0


def test_zero_avf_model_normalizes_to_zeros():
    # All-zero AVFs give total FIT 0: normalized() must not divide by it.
    model = FitModel()
    model.add("seq", 0.0, bits=10)
    model.add("arrays", 0.0, bits=10)
    assert model.normalized() == {"seq": 0.0, "arrays": 0.0}


def test_normalized_against_total_and_reference():
    model = FitModel(intrinsic_fit_per_bit=1.0)
    model.add("seq", 0.5, bits=2)      # fit 1.0
    model.add("arrays", 1.0, bits=3)   # fit 3.0
    by_total = model.normalized()
    assert by_total["TOTAL"] == pytest.approx(1.0)
    assert by_total["seq"] == pytest.approx(0.25)
    by_ref = model.normalized(reference=2.0)
    assert by_ref["seq"] == pytest.approx(0.5)
    assert by_ref["TOTAL"] == pytest.approx(2.0)


def test_group_average_avf_zero_denominator():
    empty = GroupFit(group="seq")
    assert empty.average_avf(1e-3) == 0.0
    assert empty.average_avf(0.0) == 0.0
    filled = GroupFit(group="seq", bits=10, fit=5e-3)
    assert filled.average_avf(1e-3) == pytest.approx(0.5)


def test_single_component_model():
    # The single-FUB degenerate case: one group, one bit.
    model = FitModel(intrinsic_fit_per_bit=1e-3)
    model.add("seq", 0.7)
    assert model.total_fit() == pytest.approx(7e-4)
    assert model.normalized()["seq"] == pytest.approx(1.0)
    assert model.groups["seq"].average_avf(1e-3) == pytest.approx(0.7)


def test_sdc_rate_scales_with_flux():
    model = FitModel(intrinsic_fit_per_bit=1e-3)
    model.add("seq", 0.5, bits=4)
    assert sdc_rate_per_cycle(model) == pytest.approx(2e-3)
    assert sdc_rate_per_cycle(model, flux_scale=10) == pytest.approx(2e-2)
