"""Case generators: determinism, JSON round-trips, feature placement."""

from __future__ import annotations

import random

import pytest

from repro.netlist.exlif import write_exlif
from repro.netlist.validate import validate_module
from repro.verify.cases import (
    CaseSpec,
    CircuitSpec,
    build_case,
    build_circuit,
    circuit_schedule,
    random_circuit_spec,
    random_spec,
)


def test_case_spec_json_roundtrip():
    spec = CaseSpec(seed=7, n_fubs=2, struct_width=1, env_seed=9)
    assert CaseSpec.from_json(spec.to_json()) == spec


def test_case_spec_from_json_ignores_unknown_keys():
    data = CaseSpec(seed=3).to_json()
    data["future_field"] = 1
    assert CaseSpec.from_json(data) == CaseSpec(seed=3)


def test_circuit_spec_json_roundtrip():
    spec = CircuitSpec(seed=5, with_mem=True, lanes=3)
    assert CircuitSpec.from_json(spec.to_json()) == spec


def test_build_case_deterministic():
    spec = CaseSpec(seed=11, env_seed=4)
    a, b = build_case(spec), build_case(spec)
    assert write_exlif(a.module) == write_exlif(b.module)
    assert a.structures.keys() == b.structures.keys()
    for name in a.structures:
        assert a.structures[name] == b.structures[name]
    assert a.ctrl_names == b.ctrl_names


def test_build_case_places_requested_features():
    spec = CaseSpec(seed=13, n_fubs=2, struct_width=2, fsm_loops=1,
                    stall_loops=1, pointer_loops=1, ctrl_regs=2)
    case = build_case(spec)
    assert len(case.ctrl_names) == 2
    assert case.loop_seeds  # at least one loop net recorded
    assert set(case.structures) == {"SRC", "SNK"}
    fubs = {inst.attrs.get("fub") for inst in case.module.instances.values()}
    assert {"F0", "F1"} <= fubs


def test_build_case_minimal_spec():
    case = build_case(CaseSpec(seed=1, n_fubs=1, flops_per_fub=1,
                               struct_width=0, fsm_loops=0, stall_loops=0,
                               pointer_loops=0, ctrl_regs=0))
    validate_module(case.module)
    assert case.structures == {}
    assert case.ctrl_names == []


@pytest.mark.parametrize("seed", range(6))
def test_random_specs_build_valid_modules(seed):
    rng = random.Random(seed)
    case = build_case(random_spec(rng))
    validate_module(case.module)


def test_build_circuit_deterministic_and_valid():
    spec = CircuitSpec(seed=21, with_mem=True)
    a, b = build_circuit(spec), build_circuit(spec)
    assert write_exlif(a) == write_exlif(b)
    validate_module(a)
    assert "vmem" in {i.name for i in a.instances.values()}


def test_circuit_schedule_never_hits_golden_lane():
    rng = random.Random(3)
    for _ in range(10):
        spec = random_circuit_spec(rng)
        module = build_circuit(spec)
        stimulus, faults = circuit_schedule(spec, module)
        assert len(stimulus) == spec.cycles
        for cycle, net, mask in faults:
            assert 0 <= cycle < spec.cycles
            assert net in module.nets
            assert mask & 1 == 0, "lane 0 is the golden lane"


def test_circuit_schedule_deterministic():
    spec = CircuitSpec(seed=8, stim_seed=77, n_faults=4)
    module = build_circuit(spec)
    assert circuit_schedule(spec, module) == circuit_schedule(spec, module)
