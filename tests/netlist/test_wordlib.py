"""Word-level building blocks, verified by simulation against Python ints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import wordlib
from repro.netlist.builder import ModuleBuilder
from repro.rtlsim.simulator import Simulator

WIDTH = 8
MASK = (1 << WIDTH) - 1


def _build_and_sim(make_outputs):
    """Build a module whose outputs are produced by *make_outputs(b, a, c)*."""
    b = ModuleBuilder("m")
    a = b.input_bus("a", WIDTH)
    c = b.input_bus("c", WIDTH)
    outs = make_outputs(b, a, c)
    for i, net in enumerate(outs):
        b.output(f"y[{i}]")
        b.gate("BUF", [net], out=f"y[{i}]")
    sim = Simulator(b.done(), lanes=1)
    ybus = [f"y[{i}]" for i in range(len(outs))]

    def run(x, z):
        sim.poke_word(a, x)
        sim.poke_word(c, z)
        return sim.peek_word(ybus, 0)

    return run


@settings(max_examples=40)
@given(st.integers(0, MASK), st.integers(0, MASK))
def test_ripple_add_matches_python(x, z):
    run = _ripple_add_runner()
    assert run(x, z) == (x + z) & MASK


def _ripple_add_runner():
    # One simulator per test run would be slow under hypothesis; cache it.
    if not hasattr(_ripple_add_runner, "run"):
        _ripple_add_runner.run = _build_and_sim(
            lambda b, a, c: wordlib.ripple_add(b, a, c)[0]
        )
    return _ripple_add_runner.run


@settings(max_examples=40)
@given(st.integers(0, MASK), st.integers(0, MASK))
def test_ripple_sub_matches_python(x, z):
    if not hasattr(test_ripple_sub_matches_python, "run"):
        test_ripple_sub_matches_python.run = _build_and_sim(
            lambda b, a, c: wordlib.ripple_sub(b, a, c)[0]
        )
    assert test_ripple_sub_matches_python.run(x, z) == (x - z) & MASK


@pytest.mark.parametrize(
    "op,py",
    [
        (wordlib.word_and, lambda x, z: x & z),
        (wordlib.word_or, lambda x, z: x | z),
        (wordlib.word_xor, lambda x, z: x ^ z),
    ],
)
def test_bitwise_words(op, py):
    run = _build_and_sim(lambda b, a, c: op(b, a, c))
    for x, z in [(0, 0), (MASK, 0x5A), (0x33, 0xCC), (MASK, MASK)]:
        assert run(x, z) == py(x, z)


def test_word_not():
    run = _build_and_sim(lambda b, a, c: wordlib.word_not(b, a))
    assert run(0x5A, 0) == (~0x5A) & MASK


def test_increment():
    run = _build_and_sim(lambda b, a, c: wordlib.increment(b, a))
    assert run(0, 0) == 1
    assert run(MASK, 0) == 0
    assert run(0x7F, 0) == 0x80


def test_is_zero_and_eq():
    def make(b, a, c):
        return [wordlib.is_zero(b, a), wordlib.word_eq(b, a, c)]

    run = _build_and_sim(make)
    assert run(0, 7) == 0b01
    assert run(9, 9) == 0b10
    assert run(0, 0) == 0b11


def test_word_eq_const():
    run = _build_and_sim(lambda b, a, c: [wordlib.word_eq_const(b, a, 0xA5)])
    assert run(0xA5, 0) == 1
    assert run(0xA4, 0) == 0


def test_constant_shifts_and_rotate():
    def make(b, a, c):
        return (
            wordlib.shift_left_const(b, a, 3)
            + wordlib.shift_right_const(b, a, 2)
            + wordlib.rotate_left_const(b, a, 1)
        )

    run = _build_and_sim(make)
    x = 0b1011_0110
    got = run(x, 0)
    left = got & MASK
    right = (got >> WIDTH) & MASK
    rot = (got >> (2 * WIDTH)) & MASK
    assert left == (x << 3) & MASK
    assert right == x >> 2
    assert rot == ((x << 1) | (x >> (WIDTH - 1))) & MASK


@settings(max_examples=30)
@given(st.integers(0, MASK), st.integers(0, 7))
def test_barrel_shifters(x, amount):
    if not hasattr(test_barrel_shifters, "run"):
        def make(b, a, c):
            amt = c[:3]
            return wordlib.barrel_shift_left(b, a, amt) + wordlib.barrel_shift_right(b, a, amt)
        test_barrel_shifters.run = _build_and_sim(make)
    got = test_barrel_shifters.run(x, amount)
    assert got & MASK == (x << amount) & MASK
    assert (got >> WIDTH) & MASK == x >> amount


def test_parity_and_decoder():
    def make(b, a, c):
        return [wordlib.parity(b, a)] + wordlib.decoder(b, a[:3])

    run = _build_and_sim(make)
    got = run(5, 0)  # 5 = 0b101, parity 0 over 8 bits? 5 has two bits -> even
    assert got & 1 == 0
    onehot = got >> 1
    assert onehot == 1 << 5


def test_word_mux_tree():
    def make(b, a, c):
        words = [wordlib.const_word(b, v, 4) for v in (1, 2, 4, 8)]
        return wordlib.word_mux(b, words, c[:2])

    run = _build_and_sim(make)
    for sel, expect in [(0, 1), (1, 2), (2, 4), (3, 8)]:
        assert run(0, sel) == expect
