"""The pAVF value algebra.

The paper propagates "essentially a signal probability (the probability of
an ACE bit instead of the probability of a one or zero)". Two operations
appear:

* **Union** at logical joins (forward) and distribution splits (backward):
  "the union simplifies to the sum of the pAVFs" for non-overlapping
  sources, and is idempotent for identical sources — the Figure 7 example
  simplifies ``pAVF_1 ∪ (pAVF_1 ∪ pAVF_2)`` to ``pAVF_1 ∪ pAVF_2``.
* **MIN** when reconciling the forward and backward estimates (Table 1)
  and when merging refined values at FUB boundaries (Eq 7).

To make the union exact (idempotent, no double counting on reconvergent
fanout) a propagated value is a *frozenset of atoms*; each atom is a
symbolic source — a structure port bit, a control register, a loop
boundary, a boundary pseudo-structure port or the conservative TOP. The
numeric value of a set is the capped sum of its atoms' values under a
:class:`PavfEnv` binding. Keeping sets symbolic is also what enables the
paper's closed-form re-evaluation optimization (Section 5.2): new workload
pAVFs are just a new environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Atom kinds.
READ = "read"        # structure read-port bit (pAVF_R source)
WRITE = "write"      # structure write-port bit (pAVF_W sink)
CTRL = "ctrl"        # configuration control register (pAVF_R = 100%)
LOOP = "loop"        # loop-boundary node (injected static pAVF)
BOUNDARY = "boundary"  # RTL-boundary pseudo-structure port
CONST = "const"      # tie cell (conservative static source)
TOP_KIND = "top"     # the conservative initial value 1.0


@dataclass(frozen=True, order=True)
class Atom:
    """One symbolic pAVF source/sink term.

    ``name`` is the structure name (READ/WRITE), net name (CTRL/LOOP/CONST)
    or port name (BOUNDARY); ``bit`` is the bit index within a structure
    port (0 for singleton kinds).
    """

    kind: str
    name: str
    bit: int = 0

    def label(self) -> str:
        prefix = {READ: "pR", WRITE: "pW", CTRL: "ctrl", LOOP: "loop",
                  BOUNDARY: "bnd", CONST: "const", TOP_KIND: "TOP"}[self.kind]
        if self.kind == TOP_KIND:
            return "TOP"
        if self.kind in (READ, WRITE):
            return f"{prefix}({self.name}.{self.bit})"
        return f"{prefix}({self.name})"


TOP = Atom(TOP_KIND, "", 0)
TOP_SET: frozenset[Atom] = frozenset((TOP,))
EMPTY: frozenset[Atom] = frozenset()


@dataclass
class PavfEnv:
    """Binding of atoms to numeric pAVF values.

    Lookup precedence: exact ``(kind, name, bit)`` entry, then per-kind
    default, then the global defaults (TOP -> 1.0, anything unbound ->
    ``unbound_default``). Structure-port values are normally loaded from
    the ACE model output (:mod:`repro.ace.portavf`).
    """

    values: dict[Atom, float] = field(default_factory=dict)
    kind_defaults: dict[str, float] = field(default_factory=dict)
    unbound_default: float = 1.0

    def bind(self, atom: Atom, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"pAVF out of range for {atom.label()}: {value}")
        self.values[atom] = value

    def bind_kind(self, kind: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"pAVF out of range for kind {kind!r}: {value}")
        self.kind_defaults[kind] = value

    def lookup(self, atom: Atom) -> float:
        if atom.kind == TOP_KIND:
            return 1.0
        found = self.values.get(atom)
        if found is not None:
            return found
        found = self.kind_defaults.get(atom.kind)
        if found is not None:
            return found
        return self.unbound_default

    def copy(self) -> "PavfEnv":
        env = PavfEnv(dict(self.values), dict(self.kind_defaults), self.unbound_default)
        return env


def union(*sets: frozenset[Atom]) -> frozenset[Atom]:
    """Exact union of pAVF sets (idempotent; TOP absorbs everything)."""
    merged: set[Atom] = set()
    for s in sets:
        if TOP in s:
            return TOP_SET
        merged.update(s)
    return frozenset(merged)


def value_of(atoms: frozenset[Atom], env: PavfEnv) -> float:
    """Numeric value of a pAVF set: capped sum of atom values.

    The empty set evaluates to 0.0 — it is the value of a node whose data
    can never reach an ACE consumer (dangling logic is un-ACE).
    """
    if TOP in atoms:
        return 1.0
    total = 0.0
    for atom in atoms:
        total += env.lookup(atom)
        if total >= 1.0:
            return 1.0
    return total


def capped_sum(values) -> float:
    """Plain numeric union (paper Eq 5/10): sum capped at 1.0."""
    total = 0.0
    for v in values:
        total += v
        if total >= 1.0:
            return 1.0
    return total


class SetInterner:
    """Shared table of canonical pAVF sets.

    Propagation produces the same annotation set at many nodes (every net
    fed by one reconvergent cone carries an identical frozenset). Interning
    keeps one instance per distinct set — in *both* walk directions and
    across relaxation iterations — and assigns each a dense integer id the
    compiled kernels (:mod:`repro.core.compiled`) index with.

    Id 0 is always the empty set and id 1 the TOP singleton.
    """

    EMPTY_ID = 0
    TOP_ID = 1

    __slots__ = ("sets", "_ids", "_sorted")

    def __init__(self) -> None:
        self.sets: list[frozenset[Atom]] = [EMPTY, TOP_SET]
        self._ids: dict[frozenset[Atom], int] = {EMPTY: 0, TOP_SET: 1}
        self._sorted: list[tuple[Atom, ...] | None] = [(), (TOP,)]

    def __len__(self) -> int:
        return len(self.sets)

    def id_of(self, atoms: frozenset[Atom]) -> int:
        """Intern *atoms* and return its dense id."""
        sid = self._ids.get(atoms)
        if sid is None:
            sid = len(self.sets)
            self._ids[atoms] = sid
            self.sets.append(atoms)
            self._sorted.append(None)
        return sid

    def canon(self, atoms: frozenset[Atom]) -> frozenset[Atom]:
        """Return the shared canonical instance equal to *atoms*."""
        return self.sets[self.id_of(atoms)]

    def sorted_atoms(self, sid: int) -> tuple[Atom, ...]:
        """Members of set *sid* in stable (kind, name, bit) order."""
        cached = self._sorted[sid]
        if cached is None:
            cached = tuple(sorted(self.sets[sid]))
            self._sorted[sid] = cached
        return cached


def collapse_if_large(atoms: frozenset[Atom], max_terms: int) -> frozenset[Atom]:
    """Replace oversized sets with TOP (conservative memory guard)."""
    if max_terms > 0 and len(atoms) > max_terms:
        return TOP_SET
    return atoms


def format_set(atoms: frozenset[Atom]) -> str:
    """Human-readable rendering, stable order (for closed-form printing)."""
    if not atoms:
        return "0"
    return " + ".join(a.label() for a in sorted(atoms))
