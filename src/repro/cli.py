"""Command-line interface: ``repro-sart`` / ``python -m repro``.

Every subcommand is a thin adapter over the staged analysis pipeline
(:mod:`repro.pipeline`): it builds a declarative
:class:`~repro.pipeline.spec.RunSpec` from its flags, executes it
through :func:`~repro.pipeline.runner.execute`, and renders the typed
artifacts that come back. Pass ``--cache-dir`` to any subcommand to
persist expensive stage artifacts (golden runs, the ACE workload suite,
compiled solve plans, campaign outcomes) in a content-addressed store;
a warm rerun then skips straight to the stages whose inputs changed.

Subcommands:

``analyze``
    Run SART on an EXLIF netlist with structure pAVFs from a simple
    ``name pavf_r pavf_w [avf]`` text file; prints the per-FUB report.
``tinycore``
    Run the tinycore flow for one benchmark program end to end (ACE ports
    -> SART -> report), optionally with an SFI comparison.
``bigcore``
    Generate bigcore, run the workload suite through the ACE model and
    SART, and print the Figure 9 style report.
``sweep``
    Loop-boundary pAVF sweep (the Figure 8 study) on bigcore.
``diff``
    Per-FUB structural diff between two design references: changed,
    added, and removed FUBs plus the reachable dirty set an incremental
    re-solve starts from.
``eco``
    Incremental SART re-solve: solve a baseline design, diff it against
    the edited design, and warm-start the edited solve so only the FUBs
    the edit influences re-solve — bit-identical to a cold run
    (``--check`` verifies it).
``export``
    Write a built-in design (tinycore with a program, or bigcore) as
    EXLIF or structural Verilog for external tools.
``sfi``
    Standalone statistical fault-injection campaign on a tinycore
    program, with ``--backend``/``--workers``/``--lanes-per-pass``
    control over the simulation substrate.
``deadlines``
    Error-reporting deadline view: per-structure distributions of the
    cycles between a bit becoming corrupted and its architectural
    consumption, from the ACE lifetime analysis. ``--derating``
    additionally prints the per-flop logic-derating summary.
``beam``
    Simulated accelerated beam test (Poisson strikes into all storage)
    with the same backend/worker controls.
``run``
    Execute a declarative TOML/JSON run-spec describing any composition
    of stages (docs/ARCHITECTURE.md documents the format).
``serve``
    Long-running HTTP/JSON job server: clients POST run-spec documents,
    the server dedups identical requests, executes them on the
    fault-tolerant campaign runtime, streams SSE progress, and survives
    crashes via a durable job journal (docs/ROBUSTNESS.md).
``loadgen``
    Concurrent load generator for a running ``serve`` instance; writes
    the ``BENCH_serve.json`` metrics document.
``verify``
    Adversarial self-check: budgeted fuzz loop over randomized designs
    and circuits with cross-engine / cross-backend / metamorphic /
    statistical oracles, plus the golden regression corpus. Failing
    cases are shrunk to minimal reproducers (docs/TESTING.md).
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading

from repro import __version__
from repro.errors import PipelineError
from repro.pipeline.emit import (
    export_campaign_json,
    export_sart,
    print_deadlines,
    print_derating,
    print_runtime_summary,
    print_stats,
)
from repro.pipeline.spec import (
    BeamSpec,
    CampaignSpec,
    DeratingSpec,
    ExportSpec,
    RunSpec,
    SartSpec,
    SfiSpec,
    SweepSpec,
    WorkloadsSpec,
)


def _store_from_args(args):
    path = getattr(args, "cache_dir", None)
    if not path:
        return None
    from repro.pipeline.store import ArtifactStore

    return ArtifactStore(path)


def _sart_spec(args) -> SartSpec:
    return SartSpec(
        loop_pavf=args.loop_pavf,
        iterations=args.iterations,
        monolithic=args.monolithic,
        engine=args.engine,
        relax_workers=getattr(args, "relax_workers", 1),
    )


def _campaign_spec(args) -> CampaignSpec:
    # --resume implies checkpointing to the same file, so a run that is
    # interrupted *again* keeps extending the same checkpoint.
    return CampaignSpec(
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", 1),
        lanes_per_pass=getattr(args, "lanes_per_pass", None),
        max_retries=getattr(args, "max_retries", 3),
        pass_timeout=getattr(args, "pass_timeout", None),
        checkpoint=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", None),
        max_pool_restarts=getattr(args, "max_pool_restarts", 3),
    )


class _Terminated(BaseException):
    """SIGTERM, surfaced as an exception so ``finally`` blocks run.

    Derives from BaseException (like KeyboardInterrupt) so campaign
    code that catches ``Exception`` for retry accounting cannot swallow
    it: the runtime's ``finally`` blocks flush checkpoints and release
    worker pools, then the process exits 143 (128 + SIGTERM).
    """


@contextlib.contextmanager
def _sigterm_to_exception():
    """Turn SIGTERM into :class:`_Terminated` for the enclosed block.

    Signal handlers can only be installed from the main thread; when
    ``main()`` runs anywhere else (tests driving it from a worker
    thread) the default disposition is left alone.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        raise _Terminated()

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _interrupted(args, *, code: int = 130, label: str = "interrupted") -> int:
    """Uniform SIGINT/SIGTERM exit for campaign subcommands.

    By the time this runs the campaign runtime's ``finally`` blocks
    have already flushed every completed pass to the checkpoint file,
    so the message can promise the work is durable.
    """
    path = getattr(args, "checkpoint", None) or getattr(args, "resume", None)
    if path:
        print(
            f"\n{label} — completed passes are saved; rerun with "
            f"--resume {path} to continue",
            file=sys.stderr,
        )
    else:
        print(
            f"\n{label} — no --checkpoint was given, so progress was "
            "not saved",
            file=sys.stderr,
        )
    return code  # 128 + signal number, the conventional shell exit code


def _render_sart(result, args) -> None:
    print(result.report.table())
    print_stats(result)
    export_sart(
        result,
        export_csv=getattr(args, "export_csv", None),
        export_fubs=getattr(args, "export_fubs", None),
        export_json=getattr(args, "export_json", None),
    )


def _render_sfi_standalone(outcome, program, backend, workers) -> None:
    from repro.sfi import overall_avf

    campaign = outcome.result
    avf, (lo, hi) = overall_avf(campaign.outcomes)
    due = campaign.due_avf()
    print(
        f"{program}: {outcome.injections} injections over "
        f"{outcome.golden_cycles} cycles "
        f"(backend={backend}, workers={workers}, passes={campaign.passes})"
    )
    print(f"  counts: {campaign.counts()}")
    print(f"  SDC AVF={avf:.3f} [{lo:.3f},{hi:.3f}]  DUE AVF={due:.3f}")
    print(
        f"  {campaign.simulated_cycles} simulated cycles "
        f"in {campaign.elapsed_seconds:.2f}s"
    )
    print_runtime_summary(campaign.failures, campaign.pool_restarts,
                          campaign.degraded, campaign.resumed_passes)


def _render_beam(outcome, program, backend, workers) -> None:
    result = outcome.result
    lo, hi = result.rate_interval()
    print(
        f"{program}: {result.exposures} exposures x "
        f"{result.cycles_per_run} cycles under flux {result.flux:g} "
        f"(backend={backend}, workers={workers})"
    )
    print(
        f"  {result.strikes} strikes into {result.storage_bits} storage bits: "
        f"{result.sdc_events} SDC, {result.due_events} DUE"
    )
    print(
        f"  SDC rate {result.sdc_rate_per_cycle:.3e}/cycle "
        f"[{lo:.3e},{hi:.3e}] in {result.elapsed_seconds:.2f}s"
    )
    print_runtime_summary(result.failures, result.pool_restarts,
                          result.degraded, result.resumed_passes)


def _render_bigcore_design(artifact) -> None:
    design = artifact.design
    print(f"bigcore: {design.seq_count()} sequentials, "
          f"{len(design.array_names())} arrays")


def _render_plan_line(plan, seconds) -> None:
    verb = "reused from cache" if plan.cached else "lowered"
    print(f"solve plan: {plan.n} nodes {verb} in {seconds:.2f}s")


def _backend_name(spec_backend) -> str:
    from repro.rtlsim.backends import DEFAULT_BACKEND

    return spec_backend or DEFAULT_BACKEND


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_analyze(args) -> int:
    from repro.pipeline.runner import execute

    if args.stream:
        return _analyze_streamed(args)
    ref = f"exlif:{args.netlist}"
    if args.top:
        ref += f"@top={args.top}"
    spec = RunSpec(design=ref, ports_file=args.ports, sart=_sart_spec(args))
    outcome = execute(spec, store=_store_from_args(args))
    _render_sart(outcome.sart.result, args)
    return 0


def _analyze_streamed(args) -> int:
    """``analyze --stream``: file -> columnar graph -> compiled solve.

    Skips the Module/Node object model and the artifact cache entirely;
    this is the mega-scale path for netlists too large to materialize.
    """
    import time

    from repro.core.sart import run_sart
    from repro.netlist.stream import stream_graph
    from repro.pipeline.runner import sart_config

    if args.top:
        raise SystemExit("--stream reads single-module files; drop --top")
    started = time.perf_counter()
    graph = stream_graph(args.netlist)
    print(f"streamed {len(graph)} nodes from {args.netlist} "
          f"in {time.perf_counter() - started:.2f}s")
    ports = None
    if args.ports:
        from repro.pipeline.stages import PipelineContext, stage_ports_file

        ports = stage_ports_file(PipelineContext(), args.ports).ports
    result = run_sart(graph, ports, sart_config(_sart_spec(args)))
    _render_sart(result, args)
    return 0


def cmd_tinycore(args) -> int:
    from repro.pipeline.runner import execute

    spec = RunSpec(
        design=f"tinycore:{args.program}",
        sart=_sart_spec(args),
        sfi=SfiSpec(injections=args.sfi, seed=1) if args.sfi else None,
        campaign=_campaign_spec(args),
    )

    state: dict = {}

    def observer(event, info):
        if event == "golden":
            state["golden"] = info["golden"]
        elif event == "ports":
            env = info["port_env"]
            print(f"{args.program}: {state['golden'].cycles} cycles, "
                  f"ACE fraction {env.ace_fraction:.2f}")
            for name, p in sorted(env.ports.items()):
                print(f"  structure {name:6s} pAVF_R={p.pavf_r:.3f} "
                      f"pAVF_W={p.pavf_w:.3f} AVF={p.avf:.3f}")
        elif event == "sart":
            from repro.core.report import average_seq_avf

            result = info["outcome"].result
            _render_sart(result, args)
            print(f"average sequential AVF: "
                  f"{average_seq_avf(result.node_avfs):.4f}")
        elif event == "sfi":
            from repro.sfi import overall_avf

            campaign = info["outcome"].result
            avf, (lo, hi) = overall_avf(campaign.outcomes)
            print(
                f"SFI ({args.sfi} injections): AVF={avf:.3f} "
                f"[{lo:.3f},{hi:.3f}] counts={campaign.counts()} "
                f"in {campaign.elapsed_seconds:.1f}s"
            )
            print_runtime_summary(campaign.failures, campaign.pool_restarts,
                                  campaign.degraded, campaign.resumed_passes)

    try:
        execute(spec, store=_store_from_args(args), observer=observer)
    except KeyboardInterrupt:
        return _interrupted(args)
    return 0


def cmd_sfi(args) -> int:
    from repro.pipeline.runner import execute

    spec = RunSpec(
        design=f"tinycore:{args.program}",
        sfi=SfiSpec(injections=args.injections, seed=args.seed,
                    per_node=args.per_node),
        campaign=_campaign_spec(args),
    )
    try:
        outcome = execute(spec, store=_store_from_args(args))
    except KeyboardInterrupt:
        return _interrupted(args)
    _render_sfi_standalone(outcome.sfi, args.program,
                           _backend_name(args.backend), args.workers)
    if getattr(args, "export_json", None):
        export_campaign_json(outcome.sfi, args.export_json,
                             program=args.program)
    return 0


def cmd_beam(args) -> int:
    from repro.pipeline.runner import execute

    spec = RunSpec(
        design=f"tinycore:{args.program}",
        beam=BeamSpec(flux=args.flux, exposures=args.exposures,
                      seed=args.seed, include_arrays=args.include_arrays,
                      parity=args.parity),
        campaign=_campaign_spec(args),
    )
    try:
        outcome = execute(spec, store=_store_from_args(args))
    except KeyboardInterrupt:
        return _interrupted(args)
    _render_beam(outcome.beam, args.program,
                 _backend_name(args.backend), args.workers)
    if getattr(args, "export_json", None):
        export_campaign_json(outcome.beam, args.export_json,
                             program=args.program)
    return 0


def cmd_deadlines(args) -> int:
    from repro.pipeline.runner import execute

    ref = args.design
    if ":" not in ref and "@" not in ref and not ref.startswith("bigcore"):
        ref = f"tinycore:{ref}"
    derating = None
    if args.derating or args.mc_trials:
        derating = DeratingSpec(mc_trials=args.mc_trials,
                                mc_seed=args.mc_seed)
    spec = RunSpec(
        design=ref,
        workloads=WorkloadsSpec(per_class=args.workloads_per_class,
                                length=args.workload_length),
        derating=derating,
        campaign=_campaign_spec(args),
    )
    outcome = execute(spec, store=_store_from_args(args))
    env = outcome.port_env
    if env is None or not env.deadlines:
        print(f"{outcome.design.ref}: no deadline distributions — the "
              f"port source ({env.source if env else 'none'}) carries no "
              "event timing", file=sys.stderr)
        return 1
    print(f"{outcome.design.ref}: error-reporting deadlines "
          f"(cycles until consumption)")
    print_deadlines(env.deadlines)
    if outcome.derating is not None:
        print_derating(outcome.derating)
    if getattr(args, "export_json", None):
        from repro.pipeline.emit import run_summary, write_json

        write_json(args.export_json,
                   run_summary(outcome, program=outcome.design.program_name))
        print(f"wrote run summary to {args.export_json}")
    return 0


def cmd_bigcore(args) -> int:
    from repro.pipeline.runner import execute

    spec = RunSpec(
        design=f"bigcore@scale={args.scale},seed={args.seed}",
        workloads=WorkloadsSpec(per_class=args.workloads_per_class,
                                length=args.workload_length),
        sart=_sart_spec(args),
    )

    def observer(event, info):
        if event == "design":
            _render_bigcore_design(info["artifact"])
        elif event == "ace:run":
            print(f"running {info['workloads']} workloads through "
                  f"the ACE model...")
        elif event == "ace:cached":
            print(f"ACE suite: {info['workloads']} workloads reused "
                  f"from cache")
        elif event == "ports":
            print(info["port_env"].ace_table)
        elif event == "sart":
            _render_sart(info["outcome"].result, args)

    execute(spec, store=_store_from_args(args), observer=observer)
    return 0


def cmd_sweep(args) -> int:
    from repro.pipeline.runner import execute

    spec = RunSpec(
        design=f"bigcore@scale={args.scale},seed={args.seed}",
        workloads=WorkloadsSpec(per_class=args.workloads_per_class,
                                length=args.workload_length),
        sweep=SweepSpec(points=args.points, batched=args.batched),
    )

    def observer(event, info):
        if event == "plan":
            _render_plan_line(info["plan"], info["seconds"])
        elif event == "sweep:batched":
            print(f"batched sweep: {info['points']} workloads in "
                  f"{info['seconds']:.3f}s "
                  f"({info['nodes_per_second']:,.0f} nodes/s)")
        elif event == "sweep:begin":
            print("loop_pavf  avg_seq_avf  seconds")
        elif event == "sweep:point":
            print(f"{info['value']:9.2f}  "
                  f"{info['result'].report.weighted_seq_avf:.4f}  "
                  f"{info['seconds']:7.3f}")

    execute(spec, store=_store_from_args(args), observer=observer)
    return 0


def cmd_diff(args) -> int:
    from repro.core.sart import SartConfig
    from repro.pipeline import delta as delta_mod
    from repro.pipeline.registry import resolve_design
    from repro.pipeline.stages import PipelineContext, stage_design, stage_plan

    ctx = PipelineContext(store=_store_from_args(args))
    config = SartConfig()
    plans = []
    for ref in (args.ref_a, args.ref_b):
        design = stage_design(ctx, resolve_design(ref))
        plans.append((design, stage_plan(ctx, design, None, config)))
    (design_a, plan_a), (design_b, plan_b) = plans
    delta = delta_mod.diff_plans(
        plan_a.plan, plan_b.plan, ref_a=design_a.ref, ref_b=design_b.ref
    )
    print(f"design delta: {design_a.ref} -> {design_b.ref}")
    print(delta.table())
    if getattr(args, "export_json", None):
        from repro.pipeline.emit import write_json

        write_json(args.export_json, delta.to_mapping())
        print(f"wrote design delta to {args.export_json}")
    return 0


def cmd_eco(args) -> int:
    from repro.pipeline.emit import cache_note, run_summary, write_json
    from repro.pipeline.runner import execute
    from repro.pipeline.spec import EcoSpec

    spec = RunSpec(
        design=args.design,
        workloads=WorkloadsSpec(per_class=args.workloads_per_class,
                                length=args.workload_length),
        sart=_sart_spec(args),
        eco=EcoSpec(baseline=args.baseline, check=args.check),
    )

    def observer(event, info):
        if event == "eco:delta":
            delta = info["delta"]
            print(f"baseline: {info['baseline']}")
            print(delta.table())
        elif event == "eco:skip":
            print(f"eco: falling back to a cold solve ({info['reason']})")
        elif event == "eco:check":
            print(f"eco check: bit-identical={info['identical']} "
                  f"(warm {info['warm_seconds']:.2f}s, "
                  f"cold {info['cold_seconds']:.2f}s)")
        elif event == "ace:run":
            print(f"running {info['workloads']} workloads through "
                  f"the ACE model...")
        elif event == "ace:cached":
            print(f"ACE suite: {info['workloads']} workloads reused "
                  f"from cache")
        elif event == "sart":
            result = info["outcome"].result
            print(result.report.table())
            print_stats(result)

    outcome = execute(spec, store=_store_from_args(args), observer=observer)
    if getattr(args, "export_json", None):
        write_json(args.export_json, run_summary(outcome))
        print(f"wrote run summary to {args.export_json}")
    cache_note(outcome.events)
    return 0


def cmd_export(args) -> int:
    from repro.pipeline.runner import execute

    if args.design == "tinycore":
        name = args.program or "fib"
        ref = f"tinycore:{name}"
        if args.parity:
            ref += "@parity=1"
    elif args.design == "systolic":
        ref = f"systolic@rows={args.rows},cols={args.cols}"
    else:
        ref = f"bigcore@scale={args.scale},seed={args.seed}"
    spec = RunSpec(
        design=ref,
        export=ExportSpec(output=args.output, format=args.format),
    )

    def observer(event, info):
        if event == "export":
            print(f"wrote {args.design} as {info['format']} to "
                  f"{info['path']} ({len(info['module'].instances)} "
                  f"instances)")

    execute(spec, store=_store_from_args(args), observer=observer)
    return 0


def cmd_run(args) -> int:
    from repro.pipeline.emit import cache_note
    from repro.pipeline.runner import execute
    from repro.pipeline.spec import load_spec

    spec = load_spec(args.spec)
    backend = _backend_name(spec.campaign.backend)
    workers = spec.campaign.workers

    state: dict = {}

    def observer(event, info):
        if event == "design":
            artifact = info["artifact"]
            if artifact.kind == "bigcore":
                _render_bigcore_design(artifact)
            else:
                print(f"design: {artifact.describe()}")
        elif event == "golden":
            state["golden"] = info["golden"]
        elif event == "ports":
            env = info["port_env"]
            if env.source == "archsim":
                print(f"golden run: {state['golden'].cycles} cycles, "
                      f"ACE fraction {env.ace_fraction:.2f}")
                for name, p in sorted(env.ports.items()):
                    print(f"  structure {name:6s} pAVF_R={p.pavf_r:.3f} "
                          f"pAVF_W={p.pavf_w:.3f} AVF={p.avf:.3f}")
            elif env.source == "ace-suite":
                print(env.ace_table)
        elif event == "ace:run":
            print(f"running {info['workloads']} workloads through "
                  f"the ACE model...")
        elif event == "ace:cached":
            print(f"ACE suite: {info['workloads']} workloads reused "
                  f"from cache")
        elif event == "plan":
            _render_plan_line(info["plan"], info["seconds"])
        elif event == "sweep:begin":
            print("loop_pavf  avg_seq_avf  seconds")
        elif event == "sweep:point":
            print(f"{info['value']:9.2f}  "
                  f"{info['result'].report.weighted_seq_avf:.4f}  "
                  f"{info['seconds']:7.3f}")
        elif event == "sart":
            result = info["outcome"].result
            print(result.report.table())
            print_stats(result)
        elif event == "derating":
            print_derating(info["derating"])
        elif event == "export":
            print(f"wrote {info['format']} to {info['path']} "
                  f"({len(info['module'].instances)} instances)")

    try:
        outcome = execute(spec, store=_store_from_args(args),
                          observer=observer)
    except KeyboardInterrupt:
        return _interrupted(args)
    program = outcome.design.program_name
    if outcome.sfi is not None:
        _render_sfi_standalone(outcome.sfi, program or outcome.design.ref,
                               backend, workers)
    if outcome.beam is not None:
        _render_beam(outcome.beam, program or outcome.design.ref,
                     backend, workers)
    if getattr(args, "export_json", None):
        from repro.pipeline.emit import run_summary, write_json

        write_json(args.export_json, run_summary(outcome, program=program))
        print(f"wrote run summary to {args.export_json}")
    cache_note(outcome.events)
    return 0


def cmd_serve(args) -> int:
    from repro.serve.server import ServeApp

    app = ServeApp(
        args.state_dir,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.job_workers,
        queue_limit=args.queue_limit,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        heartbeat=args.heartbeat,
        drain_grace=args.drain_grace,
        echo=print,
    )
    app.start()
    try:
        app.serve_forever()
    except (_Terminated, KeyboardInterrupt) as exc:
        app.drain()
        return 143 if isinstance(exc, _Terminated) else 130
    app.drain()
    return 0


def cmd_loadgen(args) -> int:
    from repro.serve.loadgen import run_load

    doc = run_load(
        args.url,
        clients=args.clients,
        requests=args.requests,
        dedup_burst=args.dedup_burst,
        job_timeout=args.job_timeout,
    )
    print(
        f"{doc['completed']}/{doc['requests']} jobs in {doc['seconds']:.2f}s "
        f"({doc['requests_per_second']:.1f} req/s)  "
        f"p50={doc['latency_p50_seconds'] * 1000:.0f}ms "
        f"p99={doc['latency_p99_seconds'] * 1000:.0f}ms"
    )
    burst = doc["dedup_burst"]
    print(
        f"dedup burst: {burst['requests']} identical requests -> "
        f"{burst['distinct_jobs']} job(s), {burst['executions']} execution(s)"
    )
    counters = doc.get("server_counters", {})
    if counters.get("eco_jobs"):
        print(
            f"eco: {counters['eco_jobs']} job(s), "
            f"{counters.get('warm_solves', 0)} warm / "
            f"{counters.get('cold_solves', 0)} cold, FUB store "
            f"{counters.get('fub_hits', 0)} hit(s) / "
            f"{counters.get('fub_misses', 0)} miss(es)"
        )
    for error in doc["errors"]:
        print(f"  ERROR {error}", file=sys.stderr)
    if args.out:
        from repro.pipeline.emit import write_json

        write_json(args.out, doc)
        print(f"wrote load report to {args.out}")
    return 1 if doc["errors"] else 0


def cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import (
        VerifyOptions,
        bless_goldens,
        default_oracles,
        get_defect,
        replay,
        run_verify,
    )

    if args.list_oracles:
        for oracle in default_oracles():
            print(f"{oracle.name:18s} [{oracle.scope}]")
        return 0

    options = VerifyOptions(
        budget=args.budget,
        seed=args.seed,
        out_dir=Path(args.out),
        corpus_dir=Path(args.corpus) if args.corpus else None,
        oracle_names=tuple(args.oracle or ()),
        skip_global=args.no_sfi,
        skip_corpus=args.no_corpus,
        sfi_injections=args.sfi_injections,
    )
    if args.update_goldens:
        bless_goldens(options, log=print)
        print("goldens regenerated; review with "
              "`git diff src/repro/verify/corpus/`")
        return 0

    defect = get_defect(args.inject_defect) if args.inject_defect else None
    if defect is not None:
        print(f"injecting defect {defect.name!r}: {defect.description}")

    if args.replay:
        report = replay(Path(args.replay), options, defect=defect, log=print)
    else:
        report = run_verify(options, defect=defect, log=print)

    if report.violations:
        print(f"\n{len(report.violations)} violation(s):", file=sys.stderr)
        for v in report.violations[:20]:
            print(f"  {v}", file=sys.stderr)
        if len(report.violations) > 20:
            print(f"  ... and {len(report.violations) - 20} more",
                  file=sys.stderr)
        for path in report.reproducers:
            print(f"reproducer: {path}", file=sys.stderr)
        return 1
    print("all oracles clean")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sart",
        description="Sequential AVF computation (MICRO-48 2015 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def cache_opts(p):
        p.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed artifact store: reruns "
                            "reuse golden runs, the ACE suite, compiled "
                            "solve plans and campaign outcomes whose "
                            "fingerprints still match")

    def sim_opts(p):
        from repro.rtlsim.backends import BACKEND_NAMES, DEFAULT_BACKEND

        p.add_argument("--backend", choices=BACKEND_NAMES, default=DEFAULT_BACKEND,
                       help="simulation backend (python: bigint lanes; "
                            "numpy: word-sliced uint64 vectors)")
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="fan independent passes out across N processes "
                            "(seed-deterministic at any worker count)")
        p.add_argument("--lanes-per-pass", type=int, default=None, metavar="L",
                       help="fault lanes per simulator pass "
                            "(default: the backend's preferred width)")
        p.add_argument("--checkpoint", metavar="PATH",
                       help="append each completed pass to a JSONL checkpoint "
                            "so an interrupted campaign can be resumed")
        p.add_argument("--resume", metavar="PATH",
                       help="resume from a checkpoint, skipping already-"
                            "computed passes (implies --checkpoint PATH); "
                            "results are bit-identical to an uninterrupted run")
        p.add_argument("--max-retries", type=int, default=3, metavar="N",
                       help="total attempts per pass before it is recorded "
                            "as a structured failure (default 3)")
        p.add_argument("--pass-timeout", type=float, default=None, metavar="SEC",
                       help="soft per-pass timeout: stragglers are recorded "
                            "as timeout failures instead of hanging the "
                            "campaign (needs --workers >= 2)")
        p.add_argument("--max-pool-restarts", type=int, default=3, metavar="N",
                       help="worker-pool respawns after crashes before "
                            "degrading to serial execution (default 3)")

    def common(p):
        p.add_argument("--loop-pavf", type=float, default=0.3,
                       help="injected loop-boundary pAVF (paper: 0.3)")
        p.add_argument("--iterations", type=int, default=20,
                       help="relaxation iteration budget (paper: 20)")
        p.add_argument("--monolithic", action="store_true",
                       help="solve the whole graph at once instead of per FUB")
        p.add_argument("--engine", choices=("compiled", "dataflow", "walk"),
                       default="compiled",
                       help="propagation engine (compiled: CSR solve plan; "
                            "dataflow: dict fixpoint; walk: faithful walks)")
        p.add_argument("--relax-workers", type=int, default=1, metavar="N",
                       help="worker processes for partitioned relaxation "
                            "(compiled engine; identical results at any N)")
        p.add_argument("--export-csv", metavar="PATH",
                       help="write per-node AVFs as CSV")
        p.add_argument("--export-fubs", metavar="PATH",
                       help="write the per-FUB report as CSV")
        p.add_argument("--export-json", metavar="PATH",
                       help="write a JSON run summary")
        cache_opts(p)

    p = sub.add_parser("analyze", help="run SART on an EXLIF netlist")
    p.add_argument("netlist", help="EXLIF file")
    p.add_argument("--top", help="top module name (default: first in file)")
    p.add_argument("--ports", help="structure pAVF table (name r w [avf])")
    p.add_argument("--stream", action="store_true",
                   help="stream the netlist straight to the compiled "
                        "engine (no object model, no artifact cache; "
                        "for mega-scale single-module files)")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("tinycore", help="full flow on a tinycore benchmark")
    p.add_argument("program", help="benchmark name (e.g. lattice2d, md5mix)")
    p.add_argument("--sfi", type=int, default=0, metavar="N",
                   help="also run an N-injection SFI campaign")
    common(p)
    sim_opts(p)
    p.set_defaults(func=cmd_tinycore)

    p = sub.add_parser("sfi", help="SFI campaign on a tinycore program")
    p.add_argument("program", help="benchmark name (e.g. fib, matmul)")
    p.add_argument("--injections", type=int, default=378, metavar="N",
                   help="number of injected faults (default 378)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--per-node", action="store_true",
                   help="inject N faults into every sequential node instead "
                        "of sampling the node x cycle space")
    p.add_argument("--export-json", metavar="PATH",
                   help="write a machine-readable campaign summary")
    sim_opts(p)
    cache_opts(p)
    p.set_defaults(func=cmd_sfi)

    p = sub.add_parser("beam", help="simulated accelerated beam test")
    p.add_argument("program", help="benchmark name (e.g. fib, matmul)")
    p.add_argument("--flux", type=float, default=2e-5,
                   help="upset probability per storage bit per cycle")
    p.add_argument("--exposures", type=int, default=252, metavar="N",
                   help="device-runs under the beam")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument("--include-arrays", action="store_true",
                   help="also strike register file / data memory bits")
    p.add_argument("--parity", action="store_true",
                   help="use the parity-protected core (array strikes -> DUE)")
    p.add_argument("--export-json", metavar="PATH",
                   help="write a machine-readable beam summary")
    sim_opts(p)
    cache_opts(p)
    p.set_defaults(func=cmd_beam)

    p = sub.add_parser(
        "deadlines",
        help="error-reporting deadline view (cycles until consumption)")
    p.add_argument("design",
                   help="tinycore program (e.g. fib) or a design reference "
                        "(e.g. bigcore@scale=0.5)")
    p.add_argument("--derating", action="store_true",
                   help="also run the analytic per-flop logic-derating pass")
    p.add_argument("--mc-trials", type=int, default=0, metavar="N",
                   help="validate derating with an N-trial Monte-Carlo "
                        "masking campaign (tinycore only; implies "
                        "--derating)")
    p.add_argument("--mc-seed", type=int, default=11)
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes for the MC campaign")
    p.add_argument("--backend", default=None,
                   help="simulation backend for the MC campaign")
    p.add_argument("--workloads-per-class", type=int, default=2)
    p.add_argument("--workload-length", type=int, default=4000)
    p.add_argument("--export-json", metavar="PATH",
                   help="write a machine-readable run summary")
    cache_opts(p)
    p.set_defaults(func=cmd_deadlines)

    p = sub.add_parser("bigcore", help="full flow on the synthetic big core")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workloads-per-class", type=int, default=2)
    p.add_argument("--workload-length", type=int, default=4000)
    common(p)
    p.set_defaults(func=cmd_bigcore)

    p = sub.add_parser("export", help="write a built-in design as EXLIF/Verilog")
    p.add_argument("design", choices=("tinycore", "bigcore", "systolic"))
    p.add_argument("output", help="output file path")
    p.add_argument("--format", choices=("exlif", "verilog"), default="exlif")
    p.add_argument("--program", help="tinycore program to bake into the ROM")
    p.add_argument("--parity", action="store_true",
                   help="build the parity-protected tinycore variant")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--rows", type=int, default=8,
                   help="systolic array rows (systolic design only)")
    p.add_argument("--cols", type=int, default=8,
                   help="systolic array columns (systolic design only)")
    cache_opts(p)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("sweep", help="loop-boundary pAVF sweep (Figure 8)")
    p.add_argument("--points", type=int, default=11)
    p.add_argument("--no-batched", dest="batched", action="store_false",
                   help="evaluate sweep points one run_sart at a time "
                        "instead of the batched multi-workload kernel")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workloads-per-class", type=int, default=2, metavar="N",
                   help="ACE-suite workloads per class (default 2, "
                        "matching bigcore)")
    p.add_argument("--workload-length", type=int, default=3000)
    cache_opts(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "diff", help="per-FUB structural diff between two design references")
    p.add_argument("ref_a", help="baseline design reference "
                                 "(e.g. bigcore@scale=1)")
    p.add_argument("ref_b", help="target design reference "
                                 "(e.g. bigcore@scale=1,edit=LSU)")
    p.add_argument("--export-json", metavar="PATH",
                   help="write the delta as JSON")
    cache_opts(p)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "eco", help="incremental SART re-solve against a baseline design")
    p.add_argument("design", help="edited design reference "
                                  "(e.g. bigcore@scale=1,edit=LSU)")
    p.add_argument("--baseline", required=True, metavar="REF",
                   help="baseline design reference the warm start is "
                        "seeded from")
    p.add_argument("--check", action="store_true",
                   help="also run the cold solve and verify the "
                        "incremental result is bit-identical")
    p.add_argument("--workloads-per-class", type=int, default=2)
    p.add_argument("--workload-length", type=int, default=4000)
    common(p)
    p.set_defaults(func=cmd_eco)

    p = sub.add_parser("run", help="execute a declarative TOML/JSON run-spec")
    p.add_argument("spec", help="run-spec file (.toml or .json)")
    p.add_argument("--export-json", metavar="PATH",
                   help="write a machine-readable summary of the whole run")
    cache_opts(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve", help="HTTP/JSON job server over the analysis pipeline")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8137,
                   help="listen port (0 picks a free one; default 8137)")
    p.add_argument("--state-dir", default="serve-state", metavar="DIR",
                   help="durable server state: the job journal and "
                        "per-job campaign checkpoints (default "
                        "./serve-state)")
    p.add_argument("--job-workers", type=int, default=1, metavar="N",
                   help="worker processes executing jobs (1 runs jobs "
                        "in-process)")
    p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                   help="max queued+running jobs before new submissions "
                        "get 429 + Retry-After (default 32)")
    p.add_argument("--job-timeout", type=float, default=None, metavar="SEC",
                   help="soft per-job timeout (needs --job-workers >= 2)")
    p.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="attempts per job before it is failed (default 2)")
    p.add_argument("--heartbeat", type=float, default=5.0, metavar="SEC",
                   help="SSE heartbeat interval (default 5)")
    p.add_argument("--drain-grace", type=float, default=30.0, metavar="SEC",
                   help="graceful-shutdown budget for in-flight jobs "
                        "(default 30)")
    cache_opts(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen", help="drive a running serve instance, emit bench metrics")
    p.add_argument("--url", default="http://127.0.0.1:8137",
                   help="base URL of the job server")
    p.add_argument("--clients", type=int, default=4, metavar="N",
                   help="concurrent client threads (default 4)")
    p.add_argument("--requests", type=int, default=8, metavar="N",
                   help="distinct jobs in the throughput phase (default 8)")
    p.add_argument("--dedup-burst", type=int, default=8, metavar="N",
                   help="identical concurrent requests in the dedup "
                        "phase (default 8)")
    p.add_argument("--job-timeout", type=float, default=120.0, metavar="SEC",
                   help="per-job completion wait (default 120)")
    p.add_argument("--out", metavar="PATH",
                   help="write the metrics document as JSON "
                        "(BENCH_serve.json shape)")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "verify",
        help="adversarial self-check: fuzz + oracles + golden corpus")
    p.add_argument("--budget", type=float, default=60.0, metavar="SEC",
                   help="fuzz wall-clock budget in seconds (default 60)")
    p.add_argument("--seed", type=int, default=0,
                   help="fuzz RNG seed (default 0)")
    p.add_argument("--out", default="verify-failures", metavar="DIR",
                   help="where shrunk reproducers are written")
    p.add_argument("--corpus", metavar="DIR",
                   help="golden corpus directory (default: the shipped "
                        "corpus in src/repro/verify/corpus/)")
    p.add_argument("--oracle", action="append", metavar="NAME",
                   help="run only this oracle (repeatable; "
                        "see --list-oracles)")
    p.add_argument("--list-oracles", action="store_true",
                   help="list the shipped oracles and exit")
    p.add_argument("--update-goldens", action="store_true",
                   help="regenerate the golden corpus expectations and "
                        "exit (review the git diff before committing)")
    p.add_argument("--no-sfi", action="store_true",
                   help="skip the SFI-vs-analytical tinycore check")
    p.add_argument("--no-corpus", action="store_true",
                   help="skip the golden corpus check")
    p.add_argument("--sfi-injections", type=int, default=192, metavar="N",
                   help="injection count for the SFI consistency oracle")
    p.add_argument("--inject-defect", metavar="NAME",
                   help="mutation-kill mode: corrupt one engine seam and "
                        "prove the matching oracle catches it (CI uses "
                        "this as a must-fail check)")
    p.add_argument("--replay", metavar="PATH",
                   help="re-run the oracles recorded in a reproducer file")
    p.set_defaults(func=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _sigterm_to_exception():
            return args.func(args)
    except _Terminated:
        # The runtime's finally blocks already flushed checkpoints and
        # released worker pools on the way up.
        return _interrupted(args, code=143, label="terminated")
    except KeyboardInterrupt:
        return _interrupted(args)
    except PipelineError as exc:
        raise SystemExit(str(exc))


if __name__ == "__main__":
    sys.exit(main())
