"""Named workload classes and suite construction.

The paper's suite "includes industry-standard benchmarks such as SPEC as
well as traces of actual server workloads such as transaction processing,
web benchmarks". We define eight statistical classes spanning the same
behavioural axes and instantiate each class several times with varied
seeds/parameters; :func:`default_suite` yields 48 workloads (scalable up
or down via ``per_class``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.generator import WorkloadSpec, generate_trace

# Template per class: the statistical signature of the workload family.
SUITE_CLASSES: dict[str, WorkloadSpec] = {
    # Integer compute: ALU heavy, predictable branches, small working set.
    "specint": WorkloadSpec(
        name="specint", frac_alu=0.55, frac_mul=0.04, frac_load=0.20,
        frac_store=0.09, frac_branch=0.10, dep_distance=3, working_set=1024,
        mispredict_rate=0.04, dead_fraction=0.12,
    ),
    # FP/vector-ish: long-latency ops, high ILP, streaming memory.
    "specfp": WorkloadSpec(
        name="specfp", frac_alu=0.35, frac_mul=0.25, frac_load=0.22,
        frac_store=0.10, frac_branch=0.05, dep_distance=10, working_set=16384,
        random_access_fraction=0.05, mispredict_rate=0.01, dead_fraction=0.08,
    ),
    # Transaction processing: branchy, random memory, poor locality.
    "oltp": WorkloadSpec(
        name="oltp", frac_alu=0.38, frac_mul=0.02, frac_load=0.28,
        frac_store=0.14, frac_branch=0.16, dep_distance=3, working_set=65536,
        random_access_fraction=0.7, mispredict_rate=0.09, dead_fraction=0.18,
    ),
    # Web serving: branchy with moderate memory traffic.
    "web": WorkloadSpec(
        name="web", frac_alu=0.42, frac_mul=0.02, frac_load=0.24,
        frac_store=0.12, frac_branch=0.18, dep_distance=4, working_set=8192,
        random_access_fraction=0.5, mispredict_rate=0.08, dead_fraction=0.20,
    ),
    # HPC stencil: streaming, store heavy, few branches.
    "hpc": WorkloadSpec(
        name="hpc", frac_alu=0.40, frac_mul=0.18, frac_load=0.22,
        frac_store=0.16, frac_branch=0.03, dep_distance=12, working_set=32768,
        random_access_fraction=0.02, mispredict_rate=0.005, dead_fraction=0.05,
    ),
    # Pointer chasing: serial dependence chains, random loads.
    "pointer": WorkloadSpec(
        name="pointer", frac_alu=0.30, frac_mul=0.01, frac_load=0.38,
        frac_store=0.06, frac_branch=0.16, dep_distance=1, working_set=131072,
        random_access_fraction=0.95, mispredict_rate=0.07, dead_fraction=0.10,
    ),
    # Compression/crypto kernel: ALU dense, almost no dead code.
    "kernel": WorkloadSpec(
        name="kernel", frac_alu=0.62, frac_mul=0.08, frac_load=0.14,
        frac_store=0.08, frac_branch=0.07, dep_distance=6, working_set=512,
        mispredict_rate=0.02, dead_fraction=0.02,
    ),
    # Idle/housekeeping: NOP and prefetch heavy, much dead work.
    "idle": WorkloadSpec(
        name="idle", frac_alu=0.30, frac_mul=0.01, frac_load=0.15,
        frac_store=0.06, frac_branch=0.12, frac_nop=0.24, frac_prefetch=0.12,
        dep_distance=4, working_set=2048, dead_fraction=0.40,
    ),
}


def make_suite(per_class: int = 6, length: int = 10_000, base_seed: int = 100):
    """Instantiate ``per_class`` seeded variants of every class.

    Returns a list of :class:`WorkloadSpec`; generate lazily with
    :func:`repro.workloads.generator.generate_trace` to keep memory flat.
    """
    specs = []
    for class_index, (class_name, template) in enumerate(sorted(SUITE_CLASSES.items())):
        for k in range(per_class):
            specs.append(
                replace(
                    template,
                    name=f"{class_name}-{k:02d}",
                    seed=base_seed + 1000 * class_index + k,
                    length=length,
                )
            )
    return specs


def suite_signature(per_class: int = 6, length: int = 10_000, base_seed: int = 100):
    """Canonical description of the suite for cache fingerprints.

    Returns one tuple per workload covering every generator-relevant
    field of its :class:`WorkloadSpec`, so the pipeline's ACE-suite
    cache key changes whenever the suite templates, seeding, sizing, or
    class set change — and only then.
    """
    from dataclasses import astuple

    return [astuple(spec) for spec in make_suite(per_class, length, base_seed)]


def default_suite(per_class: int = 6, length: int = 10_000):
    """Generate the default suite's traces (48 workloads by default)."""
    return [generate_trace(spec) for spec in make_suite(per_class, length)]


def suite_by_class(class_name: str, count: int = 6, length: int = 10_000):
    """Generate *count* variants of one workload class."""
    template = SUITE_CLASSES[class_name]
    return [
        generate_trace(replace(template, name=f"{class_name}-{k:02d}", seed=7000 + k, length=length))
        for k in range(count)
    ]
