"""Declarative run-specs: one document describing a whole analysis run.

A run-spec names the design, the workloads, the SART environment, the
sweep axes, and the campaign settings; the runner
(:mod:`repro.pipeline.runner`) executes whatever composition of stages
the spec declares. Every CLI subcommand now builds one of these from its
flags, and ``repro-sart run <spec.toml>`` executes one straight from
disk — the same flow either way.

TOML example (``docs/ARCHITECTURE.md`` documents every key)::

    design = "tinycore:fib"

    [sart]
    loop_pavf = 0.3
    monolithic = true

    [sfi]
    injections = 100
    seed = 1

    [campaign]
    backend = "python"
    workers = 2

JSON files with the same shape are accepted (``.json`` extension).
Sections present select the stages to run: ``[sart]`` (or a bare design
with no other section) produces the per-FUB report, ``[sweep]`` the
Figure-8 loop sweep, ``[sfi]``/``[beam]`` the campaigns, ``[export]`` a
netlist export, ``[derating]`` the per-flop logic-derating analysis.
Unknown sections and keys are rejected.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.errors import SpecError


@dataclass(frozen=True)
class WorkloadsSpec:
    """The bigcore ACE workload suite (``[workloads]``)."""

    per_class: int = 2
    length: int = 4000


@dataclass(frozen=True)
class SartSpec:
    """SART environment knobs (``[sart]``)."""

    loop_pavf: float = 0.3
    iterations: int = 20
    monolithic: bool = False
    engine: str = "compiled"
    relax_workers: int = 1


@dataclass(frozen=True)
class SweepSpec:
    """Loop-boundary pAVF sweep (``[sweep]``, Figure 8).

    ``batched=True`` (the default) evaluates every sweep point in one
    multi-workload matrix pass (:mod:`repro.core.batched`); ``false``
    falls back to one ``run_sart`` per point.
    """

    points: int = 11
    batched: bool = True


@dataclass(frozen=True)
class SfiSpec:
    """Statistical fault-injection campaign (``[sfi]``)."""

    injections: int = 378
    seed: int = 1
    per_node: bool = False


@dataclass(frozen=True)
class BeamSpec:
    """Simulated accelerated beam test (``[beam]``)."""

    flux: float = 2e-5
    exposures: int = 252
    seed: int = 2024
    include_arrays: bool = False
    parity: bool = False


@dataclass(frozen=True)
class CampaignSpec:
    """Execution substrate shared by sfi/beam (``[campaign]``)."""

    backend: str | None = None      # None: the default backend
    workers: int = 1
    lanes_per_pass: int | None = None
    max_retries: int = 3
    pass_timeout: float | None = None
    checkpoint: str | None = None
    resume: str | None = None
    max_pool_restarts: int = 3


@dataclass(frozen=True)
class DeratingSpec:
    """Logic-derating analysis (``[derating]``).

    The analytic per-flop derating pass always runs; ``mc_trials > 0``
    additionally validates it with the Monte-Carlo masking estimator on
    the gate-level core (tinycore designs only).
    """

    mc_trials: int = 0
    mc_seed: int = 11


@dataclass(frozen=True)
class ExportSpec:
    """Netlist export (``[export]``)."""

    output: str
    format: str = "exlif"


@dataclass(frozen=True)
class EcoSpec:
    """Incremental re-solve against a baseline design (``[eco]``).

    ``baseline`` is a design reference; the runner solves it first (its
    per-FUB solutions come from the artifact store when one is
    configured), diffs the two compiled plans, and warm-starts the main
    design's SART solve from the baseline so only the FUBs the edit
    actually influences re-solve — bit-identical to a cold run.
    ``check`` additionally runs the cold solve and verifies the
    equivalence, for CI smoke and debugging.
    """

    baseline: str
    check: bool = False


@dataclass(frozen=True)
class RunSpec:
    """A complete declarative description of one analysis run."""

    design: str
    workloads: WorkloadsSpec | None = None
    ports_file: str | None = None
    sart: SartSpec | None = None
    sweep: SweepSpec | None = None
    sfi: SfiSpec | None = None
    beam: BeamSpec | None = None
    campaign: CampaignSpec = field(default_factory=CampaignSpec)
    export: ExportSpec | None = None
    eco: EcoSpec | None = None
    derating: DeratingSpec | None = None

    def to_mapping(self) -> dict[str, Any]:
        """Canonical JSON-safe document (round-trips via
        :func:`spec_from_mapping`).

        Section defaults are materialized, so two spec files that only
        differ in which defaults they spell out map to the same
        document — the normalization the serve-layer deduplication
        keys on.
        """
        doc: dict[str, Any] = {"design": self.design}
        if self.ports_file:
            doc["ports"] = {"file": self.ports_file}
        for name in _SECTIONS:
            value = getattr(self, name)
            if value is not None:
                doc[name] = asdict(value)
        return doc

    def stages(self) -> list[str]:
        """The stage compositions this spec declares, in run order."""
        out = []
        if self.export:
            out.append("export")
        if (self.sart or self.eco or self.derating
                or not (self.sweep or self.sfi or self.beam or self.export)):
            out.append("sart")
        if self.derating:
            out.append("derating")
        if self.sweep:
            out.append("sweep")
        if self.sfi:
            out.append("sfi")
        if self.beam:
            out.append("beam")
        return out


_SECTIONS = {
    "workloads": WorkloadsSpec,
    "sart": SartSpec,
    "sweep": SweepSpec,
    "sfi": SfiSpec,
    "beam": BeamSpec,
    "campaign": CampaignSpec,
    "export": ExportSpec,
    "eco": EcoSpec,
    "derating": DeratingSpec,
}
_BOOLEANS = {"monolithic", "per_node", "include_arrays", "parity", "batched",
             "check"}


def _section(cls, data: Mapping[str, Any], name: str):
    if not isinstance(data, Mapping):
        raise SpecError(f"[{name}] must be a table/object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            f"unknown key(s) {sorted(unknown)} in [{name}]; have {sorted(known)}"
        )
    kwargs = dict(data)
    for key in _BOOLEANS & set(kwargs):
        kwargs[key] = bool(kwargs[key])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise SpecError(f"bad [{name}] section: {exc}")


def spec_from_mapping(data: Mapping[str, Any]) -> RunSpec:
    """Build a validated :class:`RunSpec` from a parsed TOML/JSON document."""
    if not isinstance(data, Mapping):
        raise SpecError("run-spec root must be a table/object")
    data = dict(data)
    design = data.pop("design", None)
    if isinstance(design, Mapping):
        extra = set(design) - {"ref"}
        if extra:
            raise SpecError(f"unknown key(s) {sorted(extra)} in [design]; have ['ref']")
        design = design.get("ref")
    if not isinstance(design, str) or not design:
        raise SpecError("run-spec needs a design reference: design = \"tinycore:fib\"")
    ports = data.pop("ports", None)
    ports_file = None
    if ports is not None:
        if isinstance(ports, Mapping):
            extra = set(ports) - {"file"}
            if extra:
                raise SpecError(
                    f"unknown key(s) {sorted(extra)} in [ports]; have ['file']"
                )
            ports_file = ports.get("file")
        elif isinstance(ports, str):
            ports_file = ports
        else:
            raise SpecError("[ports] must be a table with a 'file' key or a string")
    sections: dict[str, Any] = {}
    for name, cls in _SECTIONS.items():
        raw = data.pop(name, None)
        if raw is not None:
            sections[name] = _section(cls, raw, name)
    if data:
        raise SpecError(
            f"unknown section(s) {sorted(data)}; "
            f"have {sorted(_SECTIONS) + ['design', 'ports']}"
        )
    return RunSpec(
        design=design,
        workloads=sections.get("workloads"),
        ports_file=ports_file,
        sart=sections.get("sart"),
        sweep=sections.get("sweep"),
        sfi=sections.get("sfi"),
        beam=sections.get("beam"),
        campaign=sections.get("campaign", CampaignSpec()),
        export=sections.get("export"),
        eco=sections.get("eco"),
        derating=sections.get("derating"),
    )


# Campaign knobs that place or pace the execution without being able to
# change its result: the runtime's determinism contract makes outcomes
# bit-identical at any worker count, retry budget, or checkpoint split.
_EXECUTION_ONLY_CAMPAIGN_KEYS = (
    "workers", "max_retries", "pass_timeout",
    "checkpoint", "resume", "max_pool_restarts",
)


def spec_fingerprint(spec: RunSpec) -> str:
    """Content fingerprint of the *result* a run-spec describes.

    Execution-placement knobs (worker counts, retry/timeout budgets,
    checkpoint paths) are excluded: they cannot change what is computed,
    only how, so two requests for the same analysis deduplicate even
    when their QoS settings differ.
    """
    from repro.pipeline.fingerprint import fingerprint

    doc = spec.to_mapping()
    campaign = dict(doc.get("campaign") or {})
    for key in _EXECUTION_ONLY_CAMPAIGN_KEYS:
        campaign.pop(key, None)
    doc["campaign"] = campaign
    return fingerprint("runspec", doc)


def load_spec(path: str) -> RunSpec:
    """Load a run-spec file (TOML by default, JSON for ``.json``)."""
    try:
        if str(path).endswith(".json"):
            with open(path) as handle:
                data = json.load(handle)
        else:
            import tomllib

            with open(path, "rb") as handle:
                data = tomllib.load(handle)
    except OSError as exc:
        raise SpecError(f"cannot read run-spec {path!r}: {exc}")
    except (json.JSONDecodeError, ValueError) as exc:
        raise SpecError(f"malformed run-spec {path!r}: {exc}")
    return spec_from_mapping(data)
