"""SolvePlan transport: shared-memory export/attach lifecycle.

Workers must see bit-identical kernel inputs whether the plan arrives
as a zero-copy shared-memory segment, a slim pickle (no numpy), or a
bare in-process object — and the segment must be unlinked exactly once,
even when a worker process dies mid-solve and the pool respawns.
"""

import multiprocessing
import pickle

import pytest

from repro.core import compiled, shmplan
from repro.core.sart import SartConfig, build_plan, run_sart
from repro.designs.bigcore.systolic import SystolicConfig, build_systolic
from tests.sfi.chaos import ChaosPlan, attempts_of, chaos_init, chaos_worker

needs_shm = pytest.mark.skipif(
    not shmplan.HAVE_SHM, reason="numpy or shared_memory unavailable"
)
needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool tests assume fork workers",
)


@pytest.fixture(scope="module")
def design():
    # 4 tiles, enabled weight flops, genuine accumulator loops: every
    # field of the exported layout (struct CSRs, through-sets, fub_of)
    # is non-trivial at a few hundred nodes.
    return build_systolic(
        SystolicConfig(rows=4, cols=4, data_width=2, acc_width=4, tile=2)
    )


@pytest.fixture(scope="module")
def plan(design):
    return build_plan(design.module)


def _assert_kernel_fields_equal(attached, original):
    for name in shmplan._FLAT_FIELDS:
        assert list(map(int, getattr(attached, name))) == list(
            map(int, getattr(original, name))
        ), name
    assert attached.n == original.n
    assert len(attached.fub_forder) == len(original.fub_forder)
    for f in range(len(original.fub_forder)):
        assert list(attached.fub_forder[f]) == list(original.fub_forder[f])
        assert list(attached.fub_border[f]) == list(original.fub_border[f])
    assert attached.interner.sets == original.interner.sets


# ----------------------------------------------------------------------
# shared-memory mode
# ----------------------------------------------------------------------

@needs_shm
class TestShmExport:
    def test_attach_reproduces_every_kernel_field(self, plan):
        export = shmplan.export_plan(plan)
        try:
            assert export.payload[0] == "shm"
            assert isinstance(export.payload[1], shmplan.PlanHandle)
            attached = shmplan.adopt_payload(export.payload)
            assert attached is not plan  # a real second mapping
            assert attached._shared_prefix == len(plan.interner)
            _assert_kernel_fields_equal(attached, plan)
        finally:
            export.close()

    def test_close_unlinks_segment_and_is_idempotent(self, plan):
        from multiprocessing import shared_memory

        export = shmplan.export_plan(plan)
        name = export.segment_name
        assert name
        shared_memory.SharedMemory(name=name).close()  # exists while open
        export.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        export.close()  # second close must be a no-op

    def test_attached_plan_solves_identically(self, plan, monkeypatch):
        # Drive the actual worker entry points in-process: adopt the
        # segment, solve one FUB, and check the shipped sets decode to
        # exactly what the master's serial kernels produce.
        export = shmplan.export_plan(plan)
        try:
            monkeypatch.setattr(compiled, "_POOL_PLAN", None)
            compiled._pool_init(export.payload)
            n = plan.n
            f_bnd = [compiled._TOP_ID] * n
            b_bnd = [compiled._TOP_ID] * n
            f_ref, b_ref = [-1] * n, [-1] * n
            for fub in range(plan.n_fubs):
                plan._forward_pass(plan.fub_forder[fub], fub, f_bnd, f_ref, 0)
                plan._backward_pass(
                    plan.fub_border[fub], fub, b_bnd, b_ref, 0, "unace"
                )
                got_fub, f_items, b_items = compiled._pool_solve_fub(
                    (fub, [], [], 0, "unace")
                )
                assert got_fub == fub
                intern = plan.interner.id_of
                for nid, val in f_items:
                    sid = intern(val) if isinstance(val, frozenset) else val
                    assert sid == f_ref[nid], nid
                for nid, val in b_items:
                    sid = intern(val) if isinstance(val, frozenset) else val
                    assert sid == b_ref[nid], nid
        finally:
            export.close()

    def test_corrupt_encoding_rejected(self, plan):
        from repro.errors import SartError

        set_ptr, set_aix, atom_kind, atom_bit, name_ptr, blob = (
            shmplan._encode_interner(plan.interner)
        )
        assert len(set_ptr) > 5  # enough sets to tamper with
        # Alias set 3's member slice onto set 2's: it now decodes to a
        # duplicate of set 2, so re-interning cannot reassign id 3.
        bad_ptr = list(set_ptr)
        bad_ptr[3], bad_ptr[4] = set_ptr[2], set_ptr[3]
        with pytest.raises(SartError, match="corrupt shared plan"):
            shmplan._decode_interner(
                bad_ptr, set_aix, atom_kind, atom_bit, name_ptr, blob
            )


# ----------------------------------------------------------------------
# worker lifecycle: attach from real processes, survive crashes
# ----------------------------------------------------------------------

_WORKER_PLAN = None


def _attach_init(bundle):
    """Pool initializer: chaos schedule + plan adoption, in that order."""
    global _WORKER_PLAN
    payload, chaos_plan = bundle
    chaos_init(chaos_plan)
    _WORKER_PLAN = shmplan.adopt_payload(payload)


def _probe_attached(item):
    """Misbehave on schedule, then report the attached plan's shape."""
    chaos_worker(item)
    plan = _WORKER_PLAN
    return (
        item,
        plan.n,
        int(plan.fanin_ptr[-1]),
        plan._shared_prefix,
        len(plan.interner),
    )


@needs_shm
@needs_fork
class TestWorkerLifecycle:
    def test_respawned_workers_reattach_after_crash(self, plan, tmp_path):
        # Item 0 kills its worker process on the first attempt. The
        # resilient pool respawns, the fresh worker re-attaches to the
        # same segment, and every item still reports the master's shape.
        from repro.sfi.runtime import ResilientPool

        chaos_plan = ChaosPlan(scratch=str(tmp_path), crash={0: 1})
        export = shmplan.export_plan(plan)
        results = [None] * 4
        try:
            pool = ResilientPool(
                _attach_init,
                (export.payload, chaos_plan),
                workers=2,
                max_pool_restarts=2,
                label="shm-chaos",
            )
            try:
                pool.run(
                    _probe_attached,
                    list(range(4)),
                    max_retries=2,
                    on_result=lambda i, r: results.__setitem__(i, r),
                    on_error="raise",
                )
            finally:
                pool.close()
        finally:
            export.close()
        assert attempts_of(chaos_plan, 0) == 2  # crashed once, then ran
        expected = (plan.n, int(plan.fanin_ptr[-1]),
                    len(plan.interner), len(plan.interner))
        for item, result in enumerate(results):
            assert result == (item,) + expected

    def test_relax_unlinks_segment_even_after_pool_death(
        self, design, monkeypatch
    ):
        # End-to-end: an unspawnable pool degrades relaxation to serial;
        # the exported segment must still be unlinked on the way out.
        import warnings

        from multiprocessing import shared_memory

        import repro.sfi.runtime as runtime

        exported = []
        real_export = shmplan.export_plan

        def spy_export(p):
            export = real_export(p)
            exported.append(export.segment_name)
            return export

        monkeypatch.setattr(shmplan, "export_plan", spy_export)

        class Unspawnable:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused")

        monkeypatch.setattr(runtime, "ProcessPoolExecutor", Unspawnable)
        base = run_sart(
            design.module, config=SartConfig(engine="compiled", workers=1)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            degraded = run_sart(
                design.module,
                config=SartConfig(
                    engine="compiled", workers=2, min_parallel_nodes=0
                ),
            )
        assert base.node_avfs == degraded.node_avfs
        assert exported, "relaxation never exported the plan"
        for name in exported:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# pickle fallback (no numpy / no shared memory)
# ----------------------------------------------------------------------

class TestPickleFallback:
    def test_slim_payload_drops_master_only_state(self, plan, monkeypatch):
        monkeypatch.setattr(shmplan, "HAVE_SHM", False)
        export = shmplan.export_plan(plan)
        assert export.segment_name is None
        tag, slim, prefix = export.payload
        assert tag == "pickle"
        assert prefix == len(plan.interner)
        # The slim plan carries kernels only — no graph, model, or
        # resolution metadata rides along to the workers.
        for heavy in ("graph", "model", "names", "kind_l"):
            assert getattr(slim, heavy, None) is None, heavy
        blob = pickle.dumps(export.payload)
        adopted = shmplan.adopt_payload(pickle.loads(blob))
        assert adopted._shared_prefix == len(plan.interner)
        _assert_kernel_fields_equal(adopted, plan)
        export.close()  # no-op, must not raise

    @needs_fork
    def test_pool_results_identical_without_shm(self, design, monkeypatch):
        monkeypatch.setattr(shmplan, "HAVE_SHM", False)
        base = run_sart(
            design.module, config=SartConfig(engine="compiled", workers=1)
        )
        multi = run_sart(
            design.module,
            config=SartConfig(
                engine="compiled", workers=2, min_parallel_nodes=0
            ),
        )
        assert base.node_avfs == multi.node_avfs
        assert base.trace.max_delta == multi.trace.max_delta

    def test_bare_plan_adoption_sets_prefix(self, plan):
        adopted = shmplan.adopt_payload(plan)
        assert adopted is plan
        assert adopted._shared_prefix == len(plan.interner)


class TestCsrRows:
    def test_rows_decode_lazily_and_cache(self):
        rows = shmplan._CsrRows([0, 2, 2, 5], [4, 1, 3, 0, 2])
        assert len(rows) == 3
        assert rows[0] == [4, 1]
        assert rows[1] == []
        assert rows[2] == [3, 0, 2]
        assert rows[0] is rows[0]  # per-row cache
