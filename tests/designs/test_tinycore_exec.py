"""tinycore execution: archsim semantics + gate-level equivalence."""

import pytest

from repro.designs.tinycore.archsim import ArchSim, run_program, trace_from_program
from repro.designs.tinycore.assembler import assemble
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level, verify_against_archsim
from repro.designs.tinycore.programs import all_programs, default_dmem, program
from repro.errors import SimulationError


def _run(source, dmem=None):
    return run_program(assemble(source), dmem)


class TestArchSim:
    def test_alu_and_out(self):
        sim = _run("LDI r1, 20\nLDI r2, 22\nADD r3, r1, r2\nOUT r3\nHALT\n")
        assert [v for _, v in sim.outputs] == [42]

    def test_r0_is_zero(self):
        sim = _run("LDI r1, 5\nADD r0, r1, r1\nOUT r0\nHALT\n")
        assert sim.outputs[-1][1] == 0
        assert sim.regs[0] == 0

    def test_sixteen_bit_wraparound(self):
        sim = _run("LDI r1, 0xFF\n" + "SHL r1, r1\n" * 8 + "ADDI r1, r1, 1\nOUT r1\nHALT\n")
        assert sim.outputs[-1][1] == ((0xFF << 8) + 1) & 0xFFFF

    def test_memory_roundtrip(self):
        sim = _run("LDI r1, 7\nLDI r2, 3\nST r1, r2, 5\nLD r3, r2, 5\nOUT r3\nHALT\n")
        assert sim.outputs[-1][1] == 7
        assert sim.dmem[8] == 7

    def test_branches(self):
        sim = _run("""
            LDI r1, 3
            LDI r2, 0
        loop:
            ADDI r2, r2, 2
            ADDI r1, r1, 0
            SUB r1, r1, r0
            LDI r3, 1
            SUB r1, r1, r3
            BNE r1, r0, loop
            OUT r2
            HALT
        """)
        assert sim.outputs[-1][1] == 6

    def test_shift_modes(self):
        sim = _run("LDI r1, 0x81\nSHL r2, r1\nSHR r3, r1\nROL r4, r1\nOUT r2\nOUT r3\nOUT r4\nHALT\n")
        outs = [v for _, v in sim.outputs]
        assert outs == [0x102, 0x40, 0x102]  # 16-bit rol of 0x81 = 0x102

    def test_rol_wraps_msb(self):
        sim = _run("LDI r1, 0x80\n" + "SHL r1, r1\n" * 8 + "ROL r2, r1\nOUT r2\nHALT\n")
        assert sim.outputs[-1][1] == 1  # 0x8000 rotated left -> 1

    def test_runaway_detected(self):
        with pytest.raises(SimulationError, match="no HALT"):
            _run("loop: JMP loop\n", None)

    def test_trace_extraction(self):
        trace, sim = trace_from_program("t", assemble("LDI r1, 1\nOUT r1\nNOP\nHALT\n"))
        assert [i.op for i in trace.insts] == ["alu", "output", "nop", "output"]
        assert trace.insts[0].ace is True   # feeds the OUT
        assert trace.insts[2].ace is False  # NOP


class TestGateLevel:
    @pytest.mark.parametrize("name", [n for n, _, _ in all_programs()])
    def test_all_programs_match_archsim(self, name):
        gate, arch = verify_against_archsim(program(name), default_dmem(name))
        assert gate.outputs[0] == [v for _, v in arch.outputs]

    def test_load_use_stall_correctness(self):
        # Consumer immediately after a load exercises the stall path.
        hazard = "LDI r1, 9\nST r1, r0, 4\nLD r2, r0, 4\nADD r3, r2, r2\nOUT r3\nHALT\n"
        gate, arch = verify_against_archsim(assemble(hazard))
        assert gate.outputs[0] == [18]
        # Same program without the load-use dependence runs a cycle faster.
        free = "LDI r1, 9\nST r1, r0, 4\nLD r2, r0, 4\nADD r3, r1, r1\nOUT r3\nHALT\n"
        gate_free, _ = verify_against_archsim(assemble(free))
        assert gate_free.outputs[0] == [18]
        assert gate.cycles == gate_free.cycles + 1

    def test_branch_flush_correctness(self):
        src = """
            LDI r1, 1
            BEQ r1, r1, skip
            LDI r2, 99   ; wrong path, must be squashed
            OUT r2
        skip:
            OUT r1
            HALT
        """
        gate, arch = verify_against_archsim(assemble(src))
        assert gate.outputs[0] == [1]

    def test_bypass_chain(self):
        # Back-to-back dependent ALU ops exercise EX->DE forwarding.
        src = "LDI r1, 1\nADD r2, r1, r1\nADD r3, r2, r2\nADD r4, r3, r3\nOUT r4\nHALT\n"
        gate, _ = verify_against_archsim(assemble(src))
        assert gate.outputs[0] == [8]

    def test_fault_lane_diverges_golden_stays(self):
        from repro.rtlsim.simulator import Simulator

        words = program("fib")
        net = build_tinycore(words)
        golden = run_gate_level(words, netlist=net)
        instr_flop = next(
            i.conn["q"] for i in net.module.sequential_instances()
            if i.name == "d_instr[3]"
        )

        def inject(sim, cycle):
            if cycle == 5:
                sim.flip(instr_flop, 0b10)  # lane 1 only

        sim = Simulator(net.module, lanes=2)
        run = run_gate_level(words, netlist=net, sim=sim, on_cycle=inject)
        assert run.outputs[0] == golden.outputs[0]
