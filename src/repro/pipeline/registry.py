"""Design registry: uniform providers behind one reference grammar.

Every flow used to hand-roll its own design construction (tinycore
program lookup + ``build_tinycore``, ``BigcoreConfig`` + generator,
EXLIF parse + flatten). The registry replaces that with one protocol:

.. code-block:: python

    class DesignProvider(Protocol):
        ref: str                       # normalized reference string
        def fingerprint(self) -> str   # content address of the design
        def build(self) -> DesignArtifact

and one reference grammar resolved by :func:`resolve_design`::

    tinycore:<program>[@parity=1]     e.g.  tinycore:fib
    bigcore[@key=value,...]           e.g.  bigcore@scale=2,seed=42
    systolic[@key=value,...]          e.g.  systolic@rows=32,cols=32
    exlif:<path>[@top=<module>]       e.g.  exlif:designs/core.exlif@top=cpu

Concrete providers for the built-in designs live with the designs
themselves (:mod:`repro.designs.tinycore.provider`,
:mod:`repro.designs.bigcore.provider`); external netlists are handled by
:class:`ExlifProvider` here. Third-party design families can join with
:func:`register_scheme`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import DesignRefError
from repro.pipeline.artifacts import DesignArtifact
from repro.pipeline.fingerprint import stage_fingerprint


@runtime_checkable
class DesignProvider(Protocol):
    """Anything that can produce a fingerprinted :class:`DesignArtifact`."""

    @property
    def ref(self) -> str: ...

    def fingerprint(self) -> str: ...

    def build(self) -> DesignArtifact: ...


@dataclass(frozen=True)
class ExlifProvider:
    """``exlif:<path>[@top=<module>]`` — an external EXLIF netlist.

    The fingerprint hashes the file *content*, so editing the netlist
    invalidates downstream caches even when the path is unchanged.
    """

    path: str
    top: str | None = None

    @property
    def ref(self) -> str:
        suffix = f"@top={self.top}" if self.top else ""
        return f"exlif:{self.path}{suffix}"

    def _text(self) -> str:
        try:
            with open(self.path) as handle:
                return handle.read()
        except OSError as exc:
            raise DesignRefError(f"cannot read EXLIF file {self.path!r}: {exc}")

    def fingerprint(self) -> str:
        digest = hashlib.sha256(self._text().encode()).hexdigest()
        return stage_fingerprint("design", "exlif", digest, self.top)

    def build(self) -> DesignArtifact:
        from repro.netlist.exlif import parse_exlif
        from repro.netlist.flatten import flatten

        modules = parse_exlif(self._text())
        if self.top:
            if self.top not in modules:
                raise DesignRefError(
                    f"module {self.top!r} not in {self.path!r}; "
                    f"have {sorted(modules)}"
                )
            top = modules[self.top]
        else:
            top = next(iter(modules.values()))
        return DesignArtifact(
            ref=self.ref,
            kind="exlif",
            fingerprint=self.fingerprint(),
            module=flatten(top, modules),
        )


# ----------------------------------------------------------------------
# reference parsing
# ----------------------------------------------------------------------

def _parse_params(text: str, ref: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for field in text.split(","):
        if not field:
            continue
        key, eq, value = field.partition("=")
        if not eq or not key:
            raise DesignRefError(f"bad design parameter {field!r} in {ref!r}")
        params[key.strip()] = value.strip()
    return params


def _coerce(params: dict[str, str], key: str, kind: Callable, default):
    raw = params.pop(key, None)
    if raw is None:
        return default
    try:
        if kind is bool:
            return raw.lower() in ("1", "true", "yes", "on")
        return kind(raw)
    except ValueError:
        raise DesignRefError(f"design parameter {key}={raw!r} is not {kind.__name__}")


def _reject_unknown(params: dict[str, str], ref: str) -> None:
    if params:
        raise DesignRefError(f"unknown design parameter(s) {sorted(params)} in {ref!r}")


def _make_tinycore(body: str, params: dict[str, str], ref: str) -> DesignProvider:
    from repro.designs.tinycore.provider import TinycoreProvider

    if not body:
        raise DesignRefError(f"{ref!r}: tinycore needs a program (tinycore:<program>)")
    parity = _coerce(params, "parity", bool, False)
    _reject_unknown(params, ref)
    return TinycoreProvider(program=body, parity=parity)


def _make_bigcore(body: str, params: dict[str, str], ref: str) -> DesignProvider:
    from repro.designs.bigcore.core import BigcoreConfig
    from repro.designs.bigcore.provider import BigcoreProvider

    if body:
        raise DesignRefError(f"{ref!r}: bigcore takes @key=value parameters only")
    config = BigcoreConfig(
        seed=_coerce(params, "seed", int, 42),
        scale=_coerce(params, "scale", float, 1.0),
        fub_count=_coerce(params, "fub_count", int, None),
        feedback_fubs=_coerce(params, "feedback_fubs", int, 3),
        edit=_coerce(params, "edit", str, None),
    )
    _reject_unknown(params, ref)
    return BigcoreProvider(config=config)


def _make_systolic(body: str, params: dict[str, str], ref: str) -> DesignProvider:
    from repro.designs.bigcore.provider import SystolicProvider
    from repro.designs.bigcore.systolic import SystolicConfig

    if body:
        raise DesignRefError(f"{ref!r}: systolic takes @key=value parameters only")
    config = SystolicConfig(
        rows=_coerce(params, "rows", int, 8),
        cols=_coerce(params, "cols", int, 8),
        data_width=_coerce(params, "data_width", int, 8),
        acc_width=_coerce(params, "acc_width", int, 16),
        tile=_coerce(params, "tile", int, 8),
    )
    _reject_unknown(params, ref)
    return SystolicProvider(config=config)


def _make_exlif(body: str, params: dict[str, str], ref: str) -> DesignProvider:
    if not body:
        raise DesignRefError(f"{ref!r}: exlif needs a path (exlif:<path>)")
    top = params.pop("top", None)
    _reject_unknown(params, ref)
    return ExlifProvider(path=body, top=top)


_SCHEMES: dict[str, Callable[[str, dict[str, str], str], DesignProvider]] = {
    "tinycore": _make_tinycore,
    "bigcore": _make_bigcore,
    "systolic": _make_systolic,
    "exlif": _make_exlif,
}


def register_scheme(
    name: str, factory: Callable[[str, dict[str, str], str], DesignProvider]
) -> None:
    """Register a design scheme: ``factory(body, params, ref) -> provider``."""
    _SCHEMES[name] = factory


def resolve_design(ref: str, **overrides: Any) -> DesignProvider:
    """Parse a design reference into its provider.

    *overrides* are merged over the reference's ``@key=value`` parameters
    (CLI flags like ``--scale`` route through here); pass string values.
    """
    ref = ref.strip()
    scheme, colon, rest = ref.partition(":")
    if not colon:
        scheme, rest = ref, ""
    # The parameter block is the last "@..." segment containing "=",
    # so EXLIF paths with "@" in them still parse.
    body, at, tail = rest.rpartition("@")
    if at and "=" in tail:
        params = _parse_params(tail, ref)
    else:
        body, params = rest, {}
    # Scheme-only refs like "bigcore@scale=2" arrive with the params in
    # the scheme token; re-split.
    if "@" in scheme:
        scheme, _, tail = scheme.partition("@")
        params = _parse_params(tail, ref)
    factory = _SCHEMES.get(scheme)
    if factory is None:
        raise DesignRefError(
            f"unknown design scheme {scheme!r} in {ref!r}; have {sorted(_SCHEMES)}"
        )
    for key, value in overrides.items():
        if value is not None:
            params[str(key)] = str(value)
    return factory(body, params, ref)
