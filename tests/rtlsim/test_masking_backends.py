"""Cross-backend bit-identity of the MC masking estimator.

``measure_masking_mc`` promises that for a fixed seed the per-trial
outcome vector is identical whichever rtlsim backend executes the
passes: the trial plan depends only on the seed and the golden run, and
the backends are bit-identical by contract. This pins that promise at
the derating layer, complementing the raw simulator equivalence tests
in ``test_backends.py``.
"""

from __future__ import annotations

import pytest

from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.programs import default_dmem, program
from repro.ser.derating import MaskingConfig, measure_masking_mc

pytest.importorskip("numpy")


def test_masking_outcomes_identical_across_backends():
    prog, dmem = program("fib"), default_dmem("fib")
    netlist = build_tinycore(prog, dmem)
    config = MaskingConfig(trials=48, seed=5, lanes_per_pass=16)
    py = measure_masking_mc(prog, dmem, config, netlist=netlist,
                            backend="python")
    np_ = measure_masking_mc(prog, dmem, config, netlist=netlist,
                             backend="numpy")
    assert py.trials == np_.trials == 48
    assert py.cycles == np_.cycles
    assert py.outcomes == np_.outcomes
    assert py.rate() == np_.rate()


def test_masking_backend_identity_survives_lane_width_changes():
    # lanes_per_pass reshapes the pass grouping, not the trial plan;
    # every (backend, grouping) combination must land on one vector.
    prog, dmem = program("fib"), default_dmem("fib")
    netlist = build_tinycore(prog, dmem)
    baseline = None
    for backend in ("python", "numpy"):
        for lanes in (7, 31):
            config = MaskingConfig(trials=32, seed=17,
                                   lanes_per_pass=lanes)
            result = measure_masking_mc(prog, dmem, config,
                                        netlist=netlist, backend=backend)
            if baseline is None:
                baseline = result.outcomes
            assert result.outcomes == baseline, (backend, lanes)
