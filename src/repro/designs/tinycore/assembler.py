"""Two-pass assembler for the tinycore mini assembly.

Syntax::

    ; comment
    label:
        LDI  r1, 42
        ADDI r2, r1, 3
        ADD  r3, r1, r2
        SHL  r4, r3          ; sugar for SHIFT with mode 0
        LD   r5, r1, 4       ; r5 = mem[r1 + 4]
        ST   r5, r1, 4       ; mem[r1 + 4] = r5
        BEQ  r1, r2, label   ; PC-relative, resolved by the assembler
        JMP  label
        OUT  r3
        HALT

Registers are ``r0`` .. ``r7``; ``r0`` always reads zero. ``.word N``
emits a raw data word (rarely needed — data lives in data memory).
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.designs.tinycore.isa import (
    IMEM_DEPTH,
    SHIFT_ROL,
    SHIFT_SHL,
    SHIFT_SHR,
    encode,
)

_SUGAR_SHIFTS = {"SHL": SHIFT_SHL, "SHR": SHIFT_SHR, "ROL": SHIFT_ROL}


def assemble(source: str) -> list[int]:
    """Assemble *source* into a list of 16-bit instruction words."""
    lines = _clean(source)
    labels = _collect_labels(lines)
    words: list[int] = []
    for pc, (lineno, text) in enumerate(lines):
        try:
            words.append(_encode_line(text, pc, labels))
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
    if len(words) > IMEM_DEPTH:
        raise AssemblerError(f"program too large: {len(words)} words > {IMEM_DEPTH}")
    return words


def _clean(source: str) -> list[tuple[int, str]]:
    """Strip comments/blanks; keep (line number, text) including labels."""
    out = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if text:
            out.append((lineno, text))
    return out


def _collect_labels(lines: list[tuple[int, str]]) -> dict[str, int]:
    """First pass: label -> instruction index; labels removed in place."""
    labels: dict[str, int] = {}
    cleaned: list[tuple[int, str]] = []
    for lineno, text in lines:
        while ":" in text:
            label, _, rest = text.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(cleaned)
            text = rest.strip()
            if not text:
                break
        if text:
            cleaned.append((lineno, text))
    lines[:] = cleaned
    return labels


def _reg(token: str) -> int:
    token = token.strip().lower()
    if len(token) == 2 and token[0] == "r" and token[1].isdigit():
        n = int(token[1])
        if 0 <= n <= 7:
            return n
    raise AssemblerError(f"bad register {token!r}")


def _value(token: str, pc: int, labels: dict[str, int], relative: bool) -> int:
    token = token.strip()
    if token in labels:
        target = labels[token]
        return target - (pc + 1) if relative else target
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad immediate or unknown label {token!r}") from exc


def _encode_line(text: str, pc: int, labels: dict[str, int]) -> int:
    parts = text.replace(",", " ").split()
    mnem = parts[0].upper()
    args = parts[1:]

    if mnem == ".WORD":
        return _value(args[0], pc, labels, relative=False) & 0xFFFF
    if mnem in ("ADD", "SUB", "AND", "OR", "XOR"):
        _arity(mnem, args, 3)
        return encode(mnem, rd=_reg(args[0]), rs=_reg(args[1]), rt=_reg(args[2]))
    if mnem in _SUGAR_SHIFTS:
        _arity(mnem, args, 2)
        return encode("SHIFT", rd=_reg(args[0]), rs=_reg(args[1]), rt=_SUGAR_SHIFTS[mnem])
    if mnem == "ADDI":
        _arity(mnem, args, 3)
        return encode(mnem, rd=_reg(args[0]), rs=_reg(args[1]),
                      imm=_value(args[2], pc, labels, False))
    if mnem == "LDI":
        _arity(mnem, args, 2)
        return encode(mnem, rd=_reg(args[0]), imm=_value(args[1], pc, labels, False))
    if mnem == "LD":
        _arity(mnem, args, 3)
        return encode(mnem, rd=_reg(args[0]), rs=_reg(args[1]),
                      imm=_value(args[2], pc, labels, False))
    if mnem == "ST":
        _arity(mnem, args, 3)
        return encode(mnem, rt=_reg(args[0]), rs=_reg(args[1]),
                      imm=_value(args[2], pc, labels, False))
    if mnem in ("BEQ", "BNE"):
        _arity(mnem, args, 3)
        return encode(mnem, rs=_reg(args[0]), rt=_reg(args[1]),
                      imm=_value(args[2], pc, labels, relative=True))
    if mnem == "JMP":
        _arity(mnem, args, 1)
        return encode(mnem, imm=_value(args[0], pc, labels, False))
    if mnem == "OUT":
        _arity(mnem, args, 1)
        return encode(mnem, rs=_reg(args[0]))
    if mnem in ("HALT", "NOP"):
        _arity(mnem, args, 0)
        return encode(mnem)
    raise AssemblerError(f"unknown mnemonic {mnem!r}")


def _arity(mnem: str, args: list[str], expected: int) -> None:
    if len(args) != expected:
        raise AssemblerError(f"{mnem} expects {expected} operands, got {len(args)}")
