"""Workload-resolved sequential AVFs via the closed-form equations.

The paper's production payoff (Section 5.2): after one SART run, new
workloads cost only an ACE-model pass plus a plug-in evaluation — no
re-walking. This script computes bigcore's average sequential AVF for
each of the eight workload classes separately, the kind of
per-application-suite targeting the paper describes ("It also allows the
structure AVFs to be targeted to specific workloads and/or application
suites").

Run:  python examples/closed_form_workloads.py
"""

import time

from repro import SartConfig, run_sart
from repro.ace.portavf import suite_ports
from repro.core.report import average_seq_avf
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.workloads import SUITE_CLASSES, default_suite, suite_by_class


def main():
    print("building bigcore and the baseline (whole-suite) SART run...")
    design = build_bigcore(BigcoreConfig(scale=0.6))
    base_ports, _ = suite_ports(default_suite(per_class=2, length=3000))
    mapped = map_structure_ports(design, base_ports)

    started = time.perf_counter()
    base = run_sart(design.module, mapped, SartConfig(partition_by_fub=False))
    walk_seconds = time.perf_counter() - started
    closed = base.closed_form()
    print(f"baseline walk: {walk_seconds:.2f}s, "
          f"{closed.term_count():,} closed-form terms\n")

    print(f"{'class':<10}{'ACE-model time':>16}{'plug-in time':>14}{'avg seq AVF':>13}")
    for class_name in sorted(SUITE_CLASSES):
        t0 = time.perf_counter()
        traces = suite_by_class(class_name, count=2, length=3000)
        ports, _ = suite_ports(traces)
        ace_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        node_avfs = closed.evaluate(map_structure_ports(design, ports))
        plug_seconds = time.perf_counter() - t0
        avg = average_seq_avf(node_avfs)
        print(f"{class_name:<10}{ace_seconds:>15.2f}s{plug_seconds:>13.3f}s{avg:>13.4f}")

    print("\nno SART re-walks were needed — each row is Eq-plug-in only,")
    print("exactly the paper's 'no subsequent sequential AVF computation")
    print("needs to re-run the SART or relaxation stages'.")


if __name__ == "__main__":
    main()
