"""Unit tests for the cell library."""

import pytest

from repro.netlist.cells import (
    CELLS,
    VARIADIC_GATES,
    is_sequential_cell,
    mem_addr_bits,
    mem_pins,
)


def test_every_variadic_gate_declared():
    for name in VARIADIC_GATES:
        assert CELLS[name].variadic
        assert not CELLS[name].is_sequential


def test_dff_and_mem_are_sequential():
    assert is_sequential_cell("DFF")
    assert is_sequential_cell("MEM")
    assert not is_sequential_cell("AND")
    assert not is_sequential_cell("NOPE")


@pytest.mark.parametrize(
    "kind,inputs,expected",
    [
        ("BUF", [0b1010], 0b1010),
        ("NOT", [0b1010], 0b0101),
        ("AND", [0b1100, 0b1010], 0b1000),
        ("OR", [0b1100, 0b1010], 0b1110),
        ("NAND", [0b1100, 0b1010], 0b0111),
        ("NOR", [0b1100, 0b1010], 0b0001),
        ("XOR", [0b1100, 0b1010], 0b0110),
        ("XNOR", [0b1100, 0b1010], 0b1001),
        # MUX2(a, b, s): a where s=0, b where s=1.
        ("MUX2", [0b1100, 0b1010, 0b0011], 0b1110),
        ("CONST0", [], 0b0000),
        ("CONST1", [], 0b1111),
    ],
)
def test_lane_parallel_evaluation(kind, inputs, expected):
    assert CELLS[kind].evaluate(inputs, 0b1111) == expected


def test_three_input_gates_reduce():
    assert CELLS["AND"].evaluate([0b111, 0b110, 0b011], 0b111) == 0b010
    assert CELLS["XOR"].evaluate([0b111, 0b110, 0b011], 0b111) == 0b010


def test_not_masks_high_bits():
    # Complement must never leak bits above the lane mask.
    assert CELLS["NOT"].evaluate([0b01], 0b11) == 0b10


@pytest.mark.parametrize("depth,expected", [(2, 1), (4, 2), (5, 3), (8, 3), (9, 4), (256, 8)])
def test_mem_addr_bits(depth, expected):
    assert mem_addr_bits(depth) == expected


def test_mem_pins_layout():
    ins, outs = mem_pins(depth=8, width=4, nread=2)
    assert "raddr0_0" in ins and "raddr1_2" in ins
    assert "waddr_2" in ins and "wdata_3" in ins and "wen" in ins
    assert outs == [f"rdata0_{i}" for i in range(4)] + [f"rdata1_{i}" for i in range(4)]
