"""ACE lifetime analysis unit tests (Eq 3 semantics)."""

import pytest

from repro.ace.lifetime import AceLifetimeAnalyzer
from repro.errors import AceError


def _analyzer(entries=4, bits=8, **kw):
    a = AceLifetimeAnalyzer()
    a.register("s", entries, bits, **kw)
    return a


def test_write_read_evict_residency():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, cycle=10, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 0, cycle=30, ace=True)
    a.on_release("s", 0, cycle=50, consumed=True)
    stats = a.finish(100)["s"]
    # ACE residency runs write(10) -> last read(30): 20 cycles x 8 bits.
    assert stats.ace_bit_cycles == 20 * 8
    assert stats.avf() == pytest.approx(20 * 8 / (8 * 100))


def test_unread_value_is_unace():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=8)
    a.on_release("s", 0, 40, consumed=False)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 0
    assert stats.avf() == 0.0


def test_consumed_without_read_counts_full_span():
    # e.g. store buffer drain: release IS the consumption.
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 10, ace=True, ace_bits=None, bits=8)
    a.on_release("s", 0, 25, consumed=True)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 15 * 8


def test_open_segment_counts_as_unknown():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 60, ace=True, ace_bits=None, bits=8)
    stats = a.finish(100)["s"]
    assert stats.unknown_bit_cycles == 40 * 8
    assert stats.avf() == pytest.approx(40 * 8 / (8 * 100))


def test_unace_write_contributes_nothing():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 0, ace=False, ace_bits=None, bits=8)
    a.on_read("s", 0, 50, ace=False)
    a.on_release("s", 0, 60, consumed=True)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 0
    assert stats.ace_reads == 0


def test_bitfield_weighting():
    a = _analyzer(entries=1, bits=10)
    a.on_write("s", 0, 0, ace=True, ace_bits=3, bits=10)  # 3 of 10 bits ACE
    a.on_read("s", 0, 10, ace=True)
    a.on_release("s", 0, 20, consumed=True)
    stats = a.finish(10)["s"]
    assert stats.ace_bit_cycles == 10 * 3
    assert stats.pavf_r_bitwise() == pytest.approx(3 / (10 * 10))
    assert stats.pavf_r() == pytest.approx(1 / 10)


def test_overwrite_closes_previous_segment():
    a = _analyzer(entries=1, bits=4)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=4)
    a.on_read("s", 0, 5, ace=True)
    a.on_write("s", 0, 9, ace=True, ace_bits=None, bits=4)  # overwrite
    a.on_read("s", 0, 12, ace=True)
    a.on_release("s", 0, 20, consumed=True)
    stats = a.finish(20)["s"]
    assert stats.ace_bit_cycles == (5 - 0) * 4 + (12 - 9) * 4


def test_port_rates_normalized_by_ports():
    a = _analyzer(entries=4, bits=8, nread=2, nwrite=2)
    for entry in range(4):
        a.on_write("s", entry, entry, ace=True, ace_bits=None, bits=8)
        a.on_read("s", entry, entry + 1, ace=True)
        a.on_release("s", entry, entry + 2, consumed=True)
    stats = a.finish(10)["s"]
    assert stats.pavf_r() == pytest.approx(4 / (10 * 2))
    assert stats.pavf_w() == pytest.approx(4 / (10 * 2))


def test_event_errors():
    a = _analyzer()
    with pytest.raises(AceError, match="unregistered"):
        a.on_write("ghost", 0, 0, True, None, 8)
    with pytest.raises(AceError, match="read before write"):
        a.on_read("s", 0, 0, True)
    with pytest.raises(AceError, match="release before write"):
        a.on_release("s", 0, 0, True)
    with pytest.raises(AceError, match="twice"):
        a.register("s", 4, 8)
    a.finish(1)
    with pytest.raises(AceError, match="twice"):
        a.finish(1)


def test_mean_ace_latency_and_throughput():
    a = _analyzer(entries=2, bits=8)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 0, 10, ace=True)
    a.on_release("s", 0, 10, consumed=True)
    a.on_write("s", 1, 0, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 1, 30, ace=True)
    a.on_release("s", 1, 30, consumed=True)
    stats = a.finish(100)["s"]
    assert a.mean_ace_latency("s") == pytest.approx(20.0)
    assert stats.ace_throughput() == pytest.approx(2 / 100)


def test_littles_law_relationship():
    """AVF ~ latency x throughput / bits-normalization (paper Section 4).

    With every write ACE and full-entry widths, ACE bit-cycles equal
    (sum of residencies) x bits, so AVF == mean_latency x throughput / entries.
    """
    a = _analyzer(entries=4, bits=16)
    spans = [(0, 10), (5, 25), (40, 90), (50, 60)]
    for entry, (start, end) in enumerate(spans):
        a.on_write("s", entry, start, ace=True, ace_bits=None, bits=16)
        a.on_read("s", entry, end, ace=True)
        a.on_release("s", entry, end, consumed=True)
    cycles = 100
    stats = a.finish(cycles)["s"]
    latency = a.mean_ace_latency("s")
    throughput = stats.ace_throughput()
    little = latency * throughput / stats.entries
    assert stats.avf() == pytest.approx(little)
