"""Stage functions: explicit inputs -> fingerprinted artifacts.

Each function maps upstream artifacts (plus the relevant spec knobs) to
one typed artifact, computing its cache fingerprint first and consulting
the :class:`~repro.pipeline.store.ArtifactStore` before doing any work.
The fingerprint chains the upstream artifact fingerprints, so a change
anywhere upstream (design config, program image, workload suite, stage
code version) transparently invalidates everything downstream.

The cache contract per stage:

========  ==========================================================
stage     keyed on
========  ==========================================================
golden    design fingerprint (+ cycle budget); backend-independent —
          the simulation backends are bit-identical by contract
ports     design fingerprint + golden cycles (archsim), or the
          workload-suite signature (ACE suite; design-independent)
plan      design + port-env fingerprints + the structural SartConfig
          knobs (:meth:`~repro.core.sart.SartConfig.structural_knobs`)
sfi/beam  design fingerprint + full campaign plan parameters; skipped
          when checkpoint/resume is in play and never saved for
          campaigns that recorded permanent pass failures
derating  design fingerprint + sart fingerprint (when a solve rode
          along) + the MC validation knobs; backend/workers are
          execution-only, the MC estimator is bit-identical across them
========  ==========================================================

SART solves themselves are *not* persisted whole: with a cached plan
they are re-evaluations, which is the paper's own speed story. Compiled
partitioned solves do persist their per-(FUB, direction) converged
sub-solutions under ``fubsol`` keys (ECO mode, see
:mod:`repro.pipeline.delta`), so a later solve of an edited design hits
on every unchanged FUB and warm-starts the relaxation over the dirty
set alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, build_plan, run_sart
from repro.pipeline.artifacts import (
    CampaignOutcome,
    DeratingArtifact,
    DesignArtifact,
    GoldenRun,
    PlanArtifact,
    PortEnv,
    SartOutcome,
)
from repro.pipeline.fingerprint import fingerprint, stage_fingerprint
from repro.pipeline.spec import BeamSpec, CampaignSpec, DeratingSpec, SfiSpec
from repro.pipeline.store import ArtifactStore, NullStore


@dataclass
class StageEvent:
    """One stage execution record (for observability and tests)."""

    stage: str
    fingerprint: str
    cached: bool
    seconds: float


class PipelineContext:
    """Store + observer + event log shared by one pipeline run."""

    def __init__(self, store: ArtifactStore | None = None, observer=None):
        self.store = store if store is not None else NullStore()
        self.observer = observer
        self.events: list[StageEvent] = []

    # ------------------------------------------------------------------
    def notify(self, event: str, **info: Any) -> None:
        if self.observer is not None:
            self.observer(event, info)

    def memoize(self, stage: str, fp: str, compute: Callable[[], Any],
                *, cache: bool = True) -> tuple[Any, bool]:
        """Fetch-or-compute with event recording; returns (obj, cached)."""
        started = time.perf_counter()
        if cache:
            obj, hit = self.store.fetch(stage, fp, compute)
        else:
            obj, hit = compute(), False
        self.events.append(
            StageEvent(stage, fp, hit, time.perf_counter() - started)
        )
        return obj, hit

    def cached_stages(self) -> set[str]:
        return {e.stage for e in self.events if e.cached}

    def computed_stages(self) -> set[str]:
        return {e.stage for e in self.events if not e.cached}


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------

def _port_deadlines(
    ports: Mapping[str, StructurePorts],
) -> Mapping[str, Mapping] | None:
    """Collect the per-structure deadline summaries a port table carries."""
    deadlines = {
        name: port.deadlines
        for name, port in ports.items()
        if getattr(port, "deadlines", None)
    }
    return deadlines or None


def stage_design(ctx: PipelineContext, provider) -> DesignArtifact:
    """Build the design (cheap relative to analysis; never persisted)."""
    started = time.perf_counter()
    artifact = provider.build()
    ctx.events.append(
        StageEvent("design", artifact.fingerprint, False,
                   time.perf_counter() - started)
    )
    ctx.notify("design", artifact=artifact)
    return artifact


def stage_golden(
    ctx: PipelineContext,
    design: DesignArtifact,
    *,
    backend: str | None = None,
    max_cycles: int = 100_000,
) -> GoldenRun:
    """Fault-free gate-level run of a tinycore design."""
    fp = stage_fingerprint("golden", design.fingerprint, max_cycles)

    def compute() -> GoldenRun:
        from repro.designs.tinycore.harness import run_gate_level
        from repro.rtlsim.backends import DEFAULT_BACKEND

        run = run_gate_level(
            list(design.program), list(design.dmem) if design.dmem else None,
            netlist=design.netlist, max_cycles=max_cycles,
            backend=backend or DEFAULT_BACKEND,
        )
        return GoldenRun(
            fingerprint=fp,
            cycles=run.cycles,
            outputs=tuple(run.outputs.get(0, ())),
            halted=0 in run.halted_lanes,
        )

    golden, hit = ctx.memoize("golden", fp, compute)
    if hit:
        golden = replace(golden, cached=True)
    ctx.notify("golden", golden=golden)
    return golden


def stage_archsim_ports(
    ctx: PipelineContext, design: DesignArtifact, golden: GoldenRun
) -> PortEnv:
    """ACE-analyze a tinycore program -> SART-ready structure ports."""
    fp = stage_fingerprint("ports", "archsim", design.fingerprint, golden.cycles)

    def compute() -> PortEnv:
        from repro.designs.tinycore.archsim import tinycore_structure_ports

        ports, trace, _ = tinycore_structure_ports(
            design.program_name, list(design.program),
            list(design.dmem) if design.dmem else None,
            gate_cycles=golden.cycles,
        )
        return PortEnv(
            fingerprint=fp, ports=ports, source="archsim",
            ace_fraction=trace.ace_fraction(),
            deadlines=_port_deadlines(ports),
        )

    env, hit = ctx.memoize("ports", fp, compute)
    if hit:
        env = replace(env, cached=True)
    ctx.notify("ports", port_env=env)
    return env


def stage_ace_ports(
    ctx: PipelineContext,
    design: DesignArtifact,
    *,
    per_class: int,
    length: int,
) -> PortEnv:
    """Run the ACE workload suite and map its ports onto the design.

    The expensive half (the suite itself) is design-independent and
    cached on the suite signature alone; the per-array mapping is cheap
    and recomputed against the design at hand.
    """
    from repro.workloads.suite import suite_signature

    signature = suite_signature(per_class, length)
    ace_fp = stage_fingerprint("ace", signature, True)  # bitwise=True

    def compute_suite():
        from repro.ace.portavf import suite_ports_and_table
        from repro.workloads import default_suite

        traces = default_suite(per_class=per_class, length=length)
        model_ports, table = suite_ports_and_table(traces)
        return {"model_ports": model_ports, "table": table}

    n_workloads = len(signature)
    started = time.perf_counter()
    suite = ctx.store.load("ace", ace_fp)
    hit = suite is not None
    if hit:
        ctx.store.hits += 1
        ctx.notify("ace:cached", workloads=n_workloads, fingerprint=ace_fp)
    else:
        ctx.store.misses += 1
        ctx.notify("ace:run", workloads=n_workloads)
        suite = compute_suite()
        try:
            ctx.store.save("ace", ace_fp, suite)
        except Exception:
            pass
    ctx.events.append(
        StageEvent("ace", ace_fp, hit, time.perf_counter() - started)
    )

    from repro.designs.bigcore import map_structure_ports

    mapped = map_structure_ports(design.design, suite["model_ports"])
    env = PortEnv(
        fingerprint=fingerprint("ports", "ace-suite", ace_fp, design.fingerprint),
        ports=mapped,
        source="ace-suite",
        workloads=n_workloads,
        ace_table=suite["table"],
        deadlines=_port_deadlines(mapped),
        cached=hit,
    )
    ctx.notify("ports", port_env=env)
    return env


def stage_ports_file(ctx: PipelineContext, path: str) -> PortEnv:
    """Load a ``name pavf_r pavf_w [avf]`` structure-port table."""
    started = time.perf_counter()
    ports: dict[str, StructurePorts] = {}
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) not in (3, 4):
                raise SystemExit(
                    f"{path}:{lineno}: expected 'name pavf_r pavf_w [avf]'"
                )
            name = fields[0]
            avf = float(fields[3]) if len(fields) == 4 else None
            ports[name] = StructurePorts(
                name=name, pavf_r=float(fields[1]), pavf_w=float(fields[2]), avf=avf
            )
    table = sorted(
        (p.name, float(p.pavf_r), float(p.pavf_w), p.avf) for p in ports.values()
    )
    env = PortEnv(
        fingerprint=fingerprint("ports", "file", table), ports=ports, source="file"
    )
    ctx.events.append(
        StageEvent("ports", env.fingerprint, False, time.perf_counter() - started)
    )
    ctx.notify("ports", port_env=env)
    return env


def stage_plan(
    ctx: PipelineContext,
    design: DesignArtifact,
    port_env: PortEnv | None,
    config: SartConfig,
) -> PlanArtifact:
    """Lower the design once into a reusable compiled SolvePlan."""
    env_fp = port_env.fingerprint if port_env is not None else None
    fp = stage_fingerprint(
        "plan", design.fingerprint, env_fp, config.structural_knobs()
    )

    def compute():
        ports = port_env.ports if port_env is not None else None
        return build_plan(design.module, ports, config)

    started = time.perf_counter()
    plan, hit = ctx.memoize("plan", fp, compute)
    from repro.core.compiled import PLAN_FORMAT

    artifact = PlanArtifact(
        fingerprint=fp, plan=plan, cached=hit, format=PLAN_FORMAT
    )
    ctx.notify("plan", plan=artifact, seconds=time.perf_counter() - started)
    return artifact


def stage_sart(
    ctx: PipelineContext,
    design: DesignArtifact,
    port_env: PortEnv | None,
    config: SartConfig,
    plan: PlanArtifact | None = None,
    *,
    warm_start=None,
) -> SartOutcome:
    """One SART solve (propagation + resolution).

    The whole-design solve is never persisted — with a cached plan it is
    a re-evaluation, the paper's own speed story. What *is* persisted,
    for compiled partitioned runs against a real store, are the
    per-(FUB, direction) converged sub-solutions (ECO mode,
    :mod:`repro.pipeline.delta`): before solving, the store is consulted
    per FUB, hits seed a warm start so only the FUBs whose sub-results
    are missing re-solve, and after a converged solve the missing
    entries are back-filled. A one-FUB edit therefore hits on every
    other FUB and re-solves only the edit's reachable dirty set —
    bit-identical to a cold solve.

    An explicit *warm_start* (the design-delta flow, built by
    :func:`repro.pipeline.delta.warm_start_from_result`) takes
    precedence: the store is neither consulted nor back-filled, the
    supplied seed drives the solve directly.
    """
    started = time.perf_counter()
    ports = port_env.ports if port_env is not None else None
    eco = (
        warm_start is None
        and plan is not None
        and not isinstance(ctx.store, NullStore)
        and config.engine == "compiled"
        and config.partition_by_fub
        and plan.plan.n_fubs > 1
    )
    warm = warm_start
    fub_keys = None
    fub_fps = None
    hits = misses = 0
    hit_pairs: list[tuple[str, str]] = []
    if eco:
        from repro.pipeline import delta as delta_mod

        context_fp = delta_mod.eco_context_fingerprint(
            config, port_env.fingerprint if port_env is not None else None
        )
        fub_fps = plan.fub_fingerprints
        fub_keys = delta_mod.fub_solution_keys(
            plan.plan, context_fp, fingerprints=fub_fps
        )
        warm, hits, misses, hit_pairs = delta_mod.warm_start_from_store(
            ctx.store, plan.plan, fub_keys
        )
        ctx.notify(
            "eco", fub_hits=hits, fub_misses=misses,
            dirty=sorted(warm.dirty_fubs) if warm is not None else None,
        )

    if plan is not None:
        result = run_sart(
            design.module, ports, config, plan=plan.plan, warm_start=warm
        )
    else:
        result = run_sart(design.module, ports, config)

    if eco and misses:
        from repro.pipeline import delta as delta_mod

        delta_mod.save_fub_solutions(
            ctx.store, plan.plan, result, fub_keys, skip=hit_pairs
        )
    fp = fingerprint(
        "sart",
        plan.fingerprint if plan is not None else design.fingerprint,
        port_env.fingerprint if port_env is not None else None,
        config.loop_pavf, config.iterations, config.partition_by_fub,
        config.engine, config.max_terms, config.dangling,
    )
    outcome = SartOutcome(
        fingerprint=fp,
        result=result,
        plan_fingerprint=plan.fingerprint if plan is not None else None,
        fub_fingerprints=fub_fps,
        fub_hits=hits,
        fub_misses=misses,
        warm=warm is not None,
        dirty_fubs=tuple(sorted(warm.dirty_fubs)) if warm is not None else (),
    )
    ctx.events.append(
        StageEvent("sart", fp, False, time.perf_counter() - started)
    )
    ctx.notify("sart", outcome=outcome)
    return outcome


def stage_derating(
    ctx: PipelineContext,
    design: DesignArtifact,
    spec: DeratingSpec,
    campaign: CampaignSpec,
    sart: SartOutcome | None = None,
) -> DeratingArtifact:
    """Analytic per-flop logic derating, with optional MC validation.

    The analytic pass runs on any design; the Monte-Carlo masking
    estimator needs the simulable gate-level core, so ``mc_trials > 0``
    is tinycore-only. Backend and worker count are execution placement:
    the MC outcomes are bit-identical across them by the runtime's
    determinism contract, so they stay out of the fingerprint.
    """
    fp = stage_fingerprint(
        "derating", design.fingerprint,
        sart.fingerprint if sart is not None else None,
        spec.mc_trials, spec.mc_seed,
    )

    def compute() -> DeratingArtifact:
        from repro.core.resolve import ROLE_STRUCT
        from repro.netlist.graph import NodeKind
        from repro.ser.derating import (
            MaskingConfig, analytic_derating, measure_masking_mc,
        )

        derating = analytic_derating(design.module)
        derated_seq_avf = None
        if sart is not None:
            products = [
                node.avf * derating.factor(node.net)
                for node in sart.result.node_avfs.values()
                if node.kind == NodeKind.SEQ and node.role != ROLE_STRUCT
            ]
            if products:
                derated_seq_avf = sum(products) / len(products)
        mc = None
        if spec.mc_trials > 0:
            if design.kind != "tinycore":
                from repro.errors import SpecError

                raise SpecError(
                    "[derating] mc_trials needs a simulable gate-level "
                    f"core; design {design.ref!r} is {design.kind!r}"
                )
            from repro.rtlsim.backends import DEFAULT_BACKEND

            result = measure_masking_mc(
                list(design.program),
                list(design.dmem) if design.dmem else None,
                MaskingConfig(
                    trials=spec.mc_trials, seed=spec.mc_seed,
                    lanes_per_pass=campaign.lanes_per_pass
                    if campaign.lanes_per_pass is not None else 63,
                ),
                netlist=design.netlist,
                backend=campaign.backend or DEFAULT_BACKEND,
                workers=campaign.workers,
            )
            mc = result.to_summary()
        return DeratingArtifact(
            fingerprint=fp,
            summary=derating.to_summary(),
            flop_derating=dict(derating.flop_derating),
            derated_seq_avf=derated_seq_avf,
            mc=mc,
        )

    artifact, hit = ctx.memoize("derating", fp, compute)
    if hit:
        artifact = replace(artifact, cached=True)
    ctx.notify("derating", derating=artifact)
    return artifact


def _runtime_options(campaign: CampaignSpec):
    from repro.sfi.runtime import RuntimeOptions

    checkpoint = campaign.checkpoint or campaign.resume
    return RuntimeOptions(
        max_retries=campaign.max_retries,
        pass_timeout=campaign.pass_timeout,
        checkpoint=checkpoint,
        resume=campaign.resume,
        max_pool_restarts=campaign.max_pool_restarts,
    )


def stage_sfi(
    ctx: PipelineContext,
    design: DesignArtifact,
    golden: GoldenRun,
    spec: SfiSpec,
    campaign: CampaignSpec,
    *,
    max_cycles: int = 100_000,
) -> CampaignOutcome:
    """Plan and execute a statistical fault-injection campaign."""
    from repro.netlist.graph import extract_graph
    from repro.rtlsim.backends import DEFAULT_BACKEND
    from repro.sfi import plan_campaign, run_sfi_campaign
    from repro.sfi.campaign import resolve_lanes_per_pass

    backend = campaign.backend or DEFAULT_BACKEND
    lanes = resolve_lanes_per_pass(campaign.lanes_per_pass, backend)
    seqs = extract_graph(design.netlist.module).seq_nets()
    plans = plan_campaign(
        seqs, golden.cycles - 2, spec.injections, seed=spec.seed,
        per_node=spec.per_node,
    )
    fp = stage_fingerprint(
        "sfi", design.fingerprint, golden.cycles, spec.injections, spec.seed,
        spec.per_node, max_cycles, lanes,
    )

    def compute():
        return run_sfi_campaign(
            list(design.program), list(design.dmem) if design.dmem else None,
            plans, netlist=design.netlist, backend=backend,
            workers=campaign.workers, lanes_per_pass=campaign.lanes_per_pass,
            max_cycles=max_cycles, runtime=_runtime_options(campaign),
        )

    # Checkpoint/resume semantics belong to the campaign runtime; a
    # cache hit would silently bypass them, so opt out entirely.
    use_cache = not (campaign.checkpoint or campaign.resume)
    started = time.perf_counter()
    if use_cache:
        result = ctx.store.load("sfi", fp)
        hit = result is not None
        if hit:
            ctx.store.hits += 1
        else:
            ctx.store.misses += 1
            result = compute()
            if not result.failures:
                try:
                    ctx.store.save("sfi", fp, result)
                except Exception:
                    pass
    else:
        result, hit = compute(), False
    ctx.events.append(StageEvent("sfi", fp, hit, time.perf_counter() - started))
    outcome = CampaignOutcome(
        fingerprint=fp, kind="sfi", result=result,
        injections=len(plans), golden_cycles=golden.cycles, cached=hit,
    )
    ctx.notify("sfi", outcome=outcome)
    return outcome


def stage_beam(
    ctx: PipelineContext,
    design: DesignArtifact,
    spec: BeamSpec,
    campaign: CampaignSpec,
    *,
    max_cycles: int = 100_000,
) -> CampaignOutcome:
    """Run a simulated accelerated beam test."""
    from repro.rtlsim.backends import DEFAULT_BACKEND
    from repro.ser.beam import BeamConfig, run_beam_test
    from repro.sfi.campaign import resolve_lanes_per_pass

    backend = campaign.backend or DEFAULT_BACKEND
    lanes = resolve_lanes_per_pass(
        campaign.lanes_per_pass if campaign.lanes_per_pass is not None else 63,
        backend,
    )
    config = BeamConfig(
        flux=spec.flux, exposures=spec.exposures, seed=spec.seed,
        lanes_per_pass=campaign.lanes_per_pass if campaign.lanes_per_pass
        is not None else 63,
        max_cycles=max_cycles,
        include_arrays=spec.include_arrays, parity=spec.parity,
    )
    fp = stage_fingerprint(
        "beam", design.fingerprint, spec.flux, spec.exposures, spec.seed,
        spec.include_arrays, spec.parity, max_cycles, lanes,
    )

    def compute():
        return run_beam_test(
            list(design.program), list(design.dmem) if design.dmem else None,
            config, netlist=design.netlist, backend=backend,
            workers=campaign.workers, runtime=_runtime_options(campaign),
        )

    use_cache = not (campaign.checkpoint or campaign.resume)
    started = time.perf_counter()
    if use_cache:
        result = ctx.store.load("beam", fp)
        hit = result is not None
        if hit:
            ctx.store.hits += 1
        else:
            ctx.store.misses += 1
            result = compute()
            if not result.failures:
                try:
                    ctx.store.save("beam", fp, result)
                except Exception:
                    pass
    else:
        result, hit = compute(), False
    ctx.events.append(StageEvent("beam", fp, hit, time.perf_counter() - started))
    outcome = CampaignOutcome(fingerprint=fp, kind="beam", result=result, cached=hit)
    ctx.notify("beam", outcome=outcome)
    return outcome
