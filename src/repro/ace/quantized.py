"""Quantized AVF: vulnerability variation over time windows.

Implements the windowed refinement of Biswas et al., "Quantized AVF: A
Means of Capturing Vulnerability Variations over Small Windows of Time"
(SELSE 2009) — the authors' own companion technique, cited by the paper
— on top of this library's machinery:

* a :class:`WindowedPortCounter` records ACE port events per fixed-size
  cycle window while the normal lifetime analyzer runs alongside it (via
  :class:`TeeRecorder`);
* each window's event rates become a :class:`StructurePorts` table;
* plugging each table into SART's closed-form equations yields a
  *sequential-AVF time series* without re-walking anything — windowed
  pAVFs compose with Section 5.2's closed forms for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.graphmodel import StructurePorts
from repro.errors import AceError


class TeeRecorder:
    """Fan one structure-event stream out to several recorders."""

    def __init__(self, *recorders):
        self.recorders = [r for r in recorders if r is not None]

    def on_write(self, struct, entry, cycle, ace, ace_bits, bits) -> None:
        for r in self.recorders:
            r.on_write(struct, entry, cycle, ace, ace_bits, bits)

    def on_read(self, struct, entry, cycle, ace) -> None:
        for r in self.recorders:
            r.on_read(struct, entry, cycle, ace)

    def on_release(self, struct, entry, cycle, consumed) -> None:
        for r in self.recorders:
            r.on_release(struct, entry, cycle, consumed)


@dataclass
class _WindowCounts:
    ace_reads: dict[str, int] = field(default_factory=dict)
    ace_writes: dict[str, int] = field(default_factory=dict)


class WindowedPortCounter:
    """ACE port-event counts per fixed-size cycle window."""

    def __init__(self, window: int):
        if window < 1:
            raise AceError("window must be >= 1 cycle")
        self.window = window
        self._windows: dict[int, _WindowCounts] = {}
        self._ports: dict[str, tuple[int, int]] = {}  # struct -> (nread, nwrite)

    def register(self, struct: str, nread: int = 1, nwrite: int = 1) -> None:
        self._ports[struct] = (nread, nwrite)

    def _bucket(self, cycle: int) -> _WindowCounts:
        return self._windows.setdefault(cycle // self.window, _WindowCounts())

    # EventRecorder interface ------------------------------------------------
    def on_write(self, struct, entry, cycle, ace, ace_bits, bits) -> None:
        if ace or (ace_bits or 0) > 0:
            counts = self._bucket(cycle).ace_writes
            counts[struct] = counts.get(struct, 0) + 1

    def on_read(self, struct, entry, cycle, ace) -> None:
        if ace:
            counts = self._bucket(cycle).ace_reads
            counts[struct] = counts.get(struct, 0) + 1

    def on_release(self, struct, entry, cycle, consumed) -> None:
        pass  # releases carry no port traffic

    # ------------------------------------------------------------------
    def window_ports(
        self, total_cycles: int, structures: Sequence[str] | None = None
    ) -> list[dict[str, StructurePorts]]:
        """Per-window StructurePorts tables (empty windows included).

        The final partial window is normalized by its actual length so a
        short tail does not read as artificially calm.
        """
        names = list(structures) if structures is not None else sorted(self._ports)
        n_windows = max(1, -(-total_cycles // self.window))
        out = []
        for w in range(n_windows):
            span = min(self.window, total_cycles - w * self.window) or self.window
            counts = self._windows.get(w, _WindowCounts())
            table = {}
            for name in names:
                nread, nwrite = self._ports.get(name, (1, 1))
                table[name] = StructurePorts(
                    name=name,
                    pavf_r=min(1.0, counts.ace_reads.get(name, 0) / (span * nread)),
                    pavf_w=min(1.0, counts.ace_writes.get(name, 0) / (span * nwrite)),
                    avf=None,
                )
            out.append(table)
        return out


def quantized_seq_avf(
    closed_form,
    window_tables: list[dict[str, StructurePorts]],
) -> list[float]:
    """Sequential-AVF time series via closed-form plug-in per window."""
    from repro.core.report import average_seq_avf

    return [
        average_seq_avf(closed_form.evaluate(table)) for table in window_tables
    ]
