"""Loop detection and breaking (paper Section 4.3).

"Loops, even though they are made from sequentials, behave like
structures... values can get 'stuck', remaining resident and breaking our
1-cycle latency assumption." The paper's chosen solution (their option 3)
finds loops in the node graph, breaks them, and injects a static pAVF at
the loop-boundary nodes — 0.3 after the Figure 8 sweep.

We find strongly connected components of the node graph with an iterative
Tarjan (recursion-free: node graphs have very long paths). Every
*sequential* node inside a non-trivial SCC — or with a self edge, which is
how enabled flops appear after extraction — becomes a loop-boundary node:
a pseudo-structure where walks start and stop with the injected value.
Combinational nodes inside an SCC need no special treatment: once the
sequential loop nodes are fixed, every remaining dependency path is
acyclic (pure combinational cycles are rejected by netlist validation).
"""

from __future__ import annotations

from repro.errors import SartError
from repro.netlist.graph import NetGraph, NodeKind


def strongly_connected_components(
    graph: NetGraph, cut: frozenset[str] | set[str] = frozenset()
) -> list[list[str]]:
    """Tarjan SCCs over fanin edges, iterative. Returns lists of nets.

    Nodes in *cut* are treated as having no fan-in: pAVF walks terminate
    at ACE structures and control registers, so a cycle passing through
    one is not a propagation loop (the paper's walks "start and stop" at
    structures). Pass the structure/control nets here before classifying
    loops.
    """
    index_counter = 0
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    nodes = graph.nodes
    empty: tuple[str, ...] = ()

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            net, child_i = work[-1]
            if child_i == 0:
                index[net] = index_counter
                lowlink[net] = index_counter
                index_counter += 1
                stack.append(net)
                on_stack.add(net)
            fanin = empty if net in cut else nodes[net].fanin
            advanced = False
            for i in range(child_i, len(fanin)):
                child = fanin[i]
                if child not in index:
                    work[-1] = (net, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[net] = min(lowlink[net], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[net])
            if lowlink[net] == index[net]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == net:
                        break
                sccs.append(component)
    return sccs


def find_loop_nets(graph: NetGraph, cut: frozenset[str] | set[str] = frozenset()) -> set[str]:
    """Nets of sequential nodes that participate in a loop.

    A node is in a loop when its SCC has more than one member or when it
    has a self edge. Only sequential members are returned (they are the
    boundary nodes the paper injects values into); an SCC containing no
    sequential node at all would be a combinational cycle, which is a
    structural error. *cut* lists nets (structure bits, control
    registers) that break cycles because walks terminate there.
    """
    loops: set[str] = set()
    cut_set = cut if isinstance(cut, (set, frozenset)) else set(cut)
    nodes = graph.nodes
    for component in strongly_connected_components(graph, cut_set):
        if len(component) == 1:
            # Fast path: almost every SCC is a single node, which is a
            # loop only via a self edge (and never when cut — cut nodes
            # have no fan-in, so their self edge is not traversed).
            net = component[0]
            if net in cut_set or net not in nodes[net].fanin:
                continue
            members = component
        else:
            # A multi-node SCC cannot contain cut nodes (no fan-in).
            members = component
        seq = {net for net in members if nodes[net].kind == NodeKind.SEQ}
        if not seq:
            raise SartError(
                "combinational cycle in node graph (validation should have "
                f"caught this): {sorted(members)[:8]}"
            )
        loops.update(seq)
    return loops


def loop_statistics(graph: NetGraph, loop_nets: set[str]) -> dict[str, float]:
    """Loop inventory as the paper reports it (Section 6.1)."""
    seq_total = len(graph.seq_nets())
    return {
        "loop_bits": len(loop_nets),
        "sequential_bits": seq_total,
        "loop_fraction": (len(loop_nets) / seq_total) if seq_total else 0.0,
    }
