"""Port-AVF extraction (paper Section 4).

"The pAVF of a bit in a structure's port or interface is the probability
that ACE data will be transmitted to or from the structure through that
bit. For a read port, pAVF_R is calculated by dividing the number of ACE
reads from the structure by the total number of cycles simulated. For a
write port, we divide the number of ACE writes to the structure by the
number of simulated cycles."

:func:`analyze_workload` runs the ACE-instrumented performance model;
:func:`ports_from_analysis` converts the event counters into
:class:`~repro.core.graphmodel.StructurePorts`; :func:`average_ports`
aggregates across a workload suite (the paper collected pAVFs over 547
workloads and used the suite-level values).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from typing import TYPE_CHECKING

from repro.ace.lifetime import StructureAvf, merge_deadline_summaries
from repro.core.graphmodel import StructurePorts
from repro.errors import AceError

if TYPE_CHECKING:  # avoid a circular import at runtime (machine uses ace)
    from repro.perfmodel.machine import MachineConfig, PerfResult
    from repro.perfmodel.trace import Trace


def analyze_workload(trace: "Trace", config: "MachineConfig | None" = None) -> "PerfResult":
    """Run one workload through the ACE model (thin alias, re-exported)."""
    from repro.perfmodel.machine import run_workload

    return run_workload(trace, config)


def ports_from_analysis(
    structures: Mapping[str, StructureAvf], *, bitwise: bool = True
) -> dict[str, StructurePorts]:
    """Convert ACE counters to structure port AVFs.

    ``bitwise=True`` applies the bit-field refinement (each ACE event
    weighted by the fraction of entry bits that were ACE); ``False`` uses
    the plain event rates.
    """
    out: dict[str, StructurePorts] = {}
    for name, stats in structures.items():
        if bitwise:
            r, w = stats.pavf_r_bitwise(), stats.pavf_w_bitwise()
        else:
            r, w = stats.pavf_r(), stats.pavf_w()
        out[name] = StructurePorts(
            name=name, pavf_r=r, pavf_w=w, avf=stats.avf(),
            deadlines=stats.deadline_summary(),
        )
    return out


def average_ports(
    port_sets: Iterable[Mapping[str, StructurePorts]],
) -> dict[str, StructurePorts]:
    """Arithmetic mean of port AVFs across workloads.

    Every workload must report the same structure set (they all run on
    the same machine model).
    """
    port_sets = list(port_sets)
    if not port_sets:
        raise AceError("average_ports needs at least one workload result")
    names = set(port_sets[0])
    for ports in port_sets[1:]:
        if set(ports) != names:
            raise AceError("workloads report different structure sets")
    out: dict[str, StructurePorts] = {}
    n = len(port_sets)
    for name in sorted(names):
        r = sum(_scalar(p[name].pavf_r) for p in port_sets) / n
        w = sum(_scalar(p[name].pavf_w) for p in port_sets) / n
        avfs = [p[name].avf for p in port_sets if p[name].avf is not None]
        avf = sum(avfs) / len(avfs) if avfs else None
        # Deadline distributions pool by union, not by averaging.
        summaries = [p[name].deadlines for p in port_sets
                     if p[name].deadlines is not None]
        deadlines = merge_deadline_summaries(summaries) if summaries else None
        out[name] = StructurePorts(name=name, pavf_r=r, pavf_w=w, avf=avf,
                                   deadlines=deadlines)
    return out


def suite_ports(
    traces, config=None, *, bitwise: bool = True
) -> "tuple[dict[str, StructurePorts], list[PerfResult]]":
    """Run a workload suite and return suite-average ports + per-run data."""
    results = [analyze_workload(t, config) for t in traces]
    averaged = average_ports(
        ports_from_analysis(r.structures, bitwise=bitwise) for r in results
    )
    return averaged, results


def suite_ports_and_table(
    traces, config=None, *, bitwise: bool = True
) -> "tuple[dict[str, StructurePorts], str]":
    """Run a workload suite; return suite-average ports + rendered table.

    The artifact-friendly sibling of :func:`suite_ports`: instead of the
    per-run :class:`PerfResult` list (large, simulator-heavy) it returns
    the rendered Figure-9-style structure table, so the pipeline layer
    can persist everything a warm rerun needs to reproduce the report
    without re-running the ACE model.
    """
    from repro.ace.report import structure_table

    averaged, results = suite_ports(traces, config, bitwise=bitwise)
    return averaged, structure_table(results)


def _scalar(value) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    values = list(value)
    return sum(values) / len(values) if values else 0.0
