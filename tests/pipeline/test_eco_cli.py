"""The ``diff`` and ``eco`` subcommands, end to end on bigcore edits.

The canonical ECO here is ``bigcore@...,edit=LSU`` — a numerically
neutral double inverter inside the LSU — against the unedited design as
baseline. One shared cache directory keeps the (design-independent)
ACE suite warm across the flows.
"""

import json

import pytest

from repro.cli import main
from repro.pipeline import ArtifactStore, RunSpec, WorkloadsSpec, execute
from repro.pipeline.spec import EcoSpec

BASE = "bigcore@scale=0.1"
EDIT = "bigcore@scale=0.1,edit=LSU"
WORKLOADS = ["--workloads-per-class", "1", "--workload-length", "400"]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("eco-cache"))


# ----------------------------------------------------------------------
# the edited-design reference itself
# ----------------------------------------------------------------------

def test_bigcore_edit_param_changes_ref_and_fingerprint():
    from repro.pipeline.registry import resolve_design

    base, edited = resolve_design(BASE), resolve_design(EDIT)
    assert "edit=LSU" in edited.ref and "edit=" not in base.ref
    assert base.fingerprint() != edited.fingerprint()
    module = edited.build().module
    assert "LSU/eco_inv1" in module.instances


def test_bigcore_edit_rejects_unknown_fub():
    from repro.designs.bigcore import BigcoreConfig, build_bigcore
    from repro.errors import NetlistError

    with pytest.raises(NetlistError, match="no plain DFF"):
        build_bigcore(BigcoreConfig(scale=0.1, edit="NOSUCH"))


# ----------------------------------------------------------------------
# repro-sart diff
# ----------------------------------------------------------------------

def test_diff_cli(cache_dir, tmp_path, capsys):
    out_json = str(tmp_path / "delta.json")
    assert main(["diff", BASE, EDIT, "--cache-dir", cache_dir,
                 "--export-json", out_json]) == 0
    out = capsys.readouterr().out
    # Canonical refs (with defaults materialized) head the report.
    assert "design delta: bigcore@scale=0.1,seed=42 -> " \
           "bigcore@scale=0.1,seed=42,edit=LSU" in out
    assert "LSU" in out and "changed" in out
    doc = json.loads(open(out_json).read())
    assert doc["changed"] == ["LSU"]
    assert not doc["added"] and not doc["removed"]
    # bigcore's FUBs form one connected dependency web: the static
    # dirty set saturates (the honest over-approximation; the dynamic
    # re-solve front is what stays small).
    assert doc["n_fubs"] == len(doc["dirty"])


def test_diff_cli_noop(capsys):
    assert main(["diff", BASE, BASE]) == 0
    out = capsys.readouterr().out
    assert "0 changed, 0 added, 0 removed" in out


# ----------------------------------------------------------------------
# repro-sart eco
# ----------------------------------------------------------------------

def test_eco_cli_with_check(cache_dir, tmp_path, capsys):
    out_json = str(tmp_path / "eco.json")
    assert main(["eco", EDIT, "--baseline", BASE, "--check",
                 "--cache-dir", cache_dir, "--export-json", out_json]
                + WORKLOADS) == 0
    out = capsys.readouterr().out
    assert f"baseline: {BASE}" in out
    assert "eco: warm start, re-solved" in out
    assert "eco check: bit-identical=True" in out
    doc = json.loads(open(out_json).read())
    assert doc["eco"]["warm"] is True
    assert doc["eco"]["dirty_fubs"] == ["LSU"]
    # The neutral edit re-solves only the edited FUB.
    assert doc["eco"]["resolved_fubs"] == 1


def test_eco_cli_monolithic_falls_back_cold(cache_dir, capsys):
    assert main(["eco", EDIT, "--baseline", BASE, "--monolithic",
                 "--cache-dir", cache_dir] + WORKLOADS) == 0
    out = capsys.readouterr().out
    assert "eco: falling back to a cold solve" in out
    assert "avg AVF" in out or "fub" in out  # the report still prints


# ----------------------------------------------------------------------
# per-FUB store reuse across design references
# ----------------------------------------------------------------------

def test_store_serves_unchanged_fubs_across_designs(cache_dir):
    workloads = WorkloadsSpec(per_class=1, length=400)
    store = ArtifactStore(cache_dir)
    execute(RunSpec(design=BASE, workloads=workloads), store=store)

    edited = execute(
        RunSpec(design=EDIT, workloads=workloads),
        store=ArtifactStore(cache_dir),
    )
    sart = edited.sart
    # The LSU's keys (and those of FUBs that can reach it) miss; the
    # rest of the design is served from the baseline's entries.
    assert sart.warm and sart.fub_hits > 0 and sart.fub_misses > 0
    assert sart.result.trace.converged

    cold = execute(RunSpec(design=EDIT, workloads=workloads))
    assert sart.result.node_avfs == cold.sart.result.node_avfs
    assert sart.result.f_sets == cold.sart.result.f_sets
    assert sart.result.b_sets == cold.sart.result.b_sets

    # A third run of the edited design hits on every entry.
    again = execute(
        RunSpec(design=EDIT, workloads=workloads),
        store=ArtifactStore(cache_dir),
    )
    assert again.sart.fub_misses == 0
    assert again.sart.result.trace.resolved_fubs == 0


def test_eco_spec_flow_matches_store_flow(cache_dir):
    # The [eco] delta path and the per-FUB store path are independent
    # reuse disciplines; both must land on the same numbers.
    workloads = WorkloadsSpec(per_class=1, length=400)
    eco = execute(
        RunSpec(design=EDIT, workloads=workloads,
                eco=EcoSpec(baseline=BASE)),
        store=ArtifactStore(cache_dir),
    )
    cold = execute(RunSpec(design=EDIT, workloads=workloads))
    assert eco.sart.warm
    assert eco.sart.result.node_avfs == cold.sart.result.node_avfs
