"""The paper's propagation rules: Equations 4-10, Table 1, Figure 7.

Each canonical topology (simple pipeline, logical join, distribution
split) is built as a tiny netlist and run through SART; the resolved AVFs
must match the closed-form equations of Table 1.
"""

import pytest

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, run_sart
from repro.netlist.builder import ModuleBuilder
from tests.conftest import FIG7_STRUCTS, make_fig7, make_simple_pipe

CFG = SartConfig(partition_by_fub=False)


def _structs(**kv):
    out = {}
    for name, (r, w) in kv.items():
        out[name] = StructurePorts(name, pavf_r=r, pavf_w=w, avf=0.5)
    return out


class TestSimplePipeline:
    """Figure 1 / Equations 4, 8 / Table 1 row 1."""

    @pytest.mark.parametrize("r,w", [(0.10, 0.20), (0.30, 0.10), (0.5, 0.5)])
    def test_avf_is_min_of_ports(self, r, w):
        module, stages = make_simple_pipe(depth=4)
        res = run_sart(module, _structs(S1=(r, 0.0), S2=(0.0, w)), CFG)
        for net in stages:
            assert res.avf(net) == pytest.approx(min(r, w))
            assert res.node_avfs[net].forward == pytest.approx(r)
            assert res.node_avfs[net].backward == pytest.approx(w)


class TestLogicalJoin:
    """Figure 2/5 / Equations 5, 9 / Table 1 row 2."""

    def _build(self):
        b = ModuleBuilder("join")
        tie = b.input("tie_in")
        s1 = b.dff(tie, name="s1", attrs={"struct": "S1", "bit": "0"})
        s2 = b.dff(tie, name="s2", attrs={"struct": "S2", "bit": "0"})
        q1a = b.dff(s1, name="q1a")
        q1b = b.dff(s2, name="q1b")
        g1 = b.nor_(q1a, q1b, name="g1")
        q2a = b.dff(g1, name="q2a")
        b.dff(q2a, name="s3", attrs={"struct": "S3", "bit": "0"})
        return b.done(), q1a, q1b, q2a

    def test_table1_join_row(self):
        r1, r2, w3 = 0.10, 0.02, 0.08
        module, q1a, q1b, q2a = self._build()
        res = run_sart(
            module, _structs(S1=(r1, 0.0), S2=(r2, 0.0), S3=(0.0, w3)), CFG
        )
        assert res.avf(q1a) == pytest.approx(min(r1, w3))
        assert res.avf(q1b) == pytest.approx(min(r2, w3))
        assert res.avf(q2a) == pytest.approx(min(r1 + r2, w3))

    def test_backward_join_copies_output_value(self):
        # Eq 9: both join inputs receive the output's pAVF_W.
        module, q1a, q1b, q2a = self._build()
        res = run_sart(
            module, _structs(S1=(1.0, 0.0), S2=(1.0, 0.0), S3=(0.0, 0.07)), CFG
        )
        assert res.node_avfs[q1a].backward == pytest.approx(0.07)
        assert res.node_avfs[q1b].backward == pytest.approx(0.07)

    def test_forward_union_caps_at_one(self):
        module, q1a, q1b, q2a = self._build()
        res = run_sart(
            module, _structs(S1=(0.8, 0.0), S2=(0.7, 0.0), S3=(0.0, 1.0)), CFG
        )
        assert res.node_avfs[q2a].forward == 1.0


class TestDistributionSplit:
    """Figure 3/6 / Equations 6, 10 / Table 1 row 3."""

    def _build(self):
        b = ModuleBuilder("split")
        tie = b.input("tie_in")
        s1 = b.dff(tie, name="s1", attrs={"struct": "S1", "bit": "0"})
        q1a = b.dff(s1, name="q1a")
        q2a = b.dff(q1a, name="q2a")
        q2b = b.dff(q1a, name="q2b")
        b.dff(q2a, name="s2", attrs={"struct": "S2", "bit": "0"})
        b.dff(q2b, name="s3", attrs={"struct": "S3", "bit": "0"})
        return b.done(), q1a, q2a, q2b

    def test_table1_split_row(self):
        r1, w2, w3 = 0.40, 0.10, 0.05
        module, q1a, q2a, q2b = self._build()
        res = run_sart(
            module, _structs(S1=(r1, 0.0), S2=(0.0, w2), S3=(0.0, w3)), CFG
        )
        assert res.avf(q2a) == pytest.approx(min(r1, w2))
        assert res.avf(q2b) == pytest.approx(min(r1, w3))
        assert res.avf(q1a) == pytest.approx(min(r1, w2 + w3))

    def test_forward_split_copies(self):
        # Eq 6: all split branches carry the source pAVF_R forward.
        module, q1a, q2a, q2b = self._build()
        res = run_sart(
            module, _structs(S1=(0.33, 0.0), S2=(0.0, 1.0), S3=(0.0, 1.0)), CFG
        )
        for net in (q1a, q2a, q2b):
            assert res.node_avfs[net].forward == pytest.approx(0.33)


class TestFigure7:
    """The full worked example, including the idempotent-union step."""

    @pytest.fixture(params=["dataflow", "walk", "compiled"])
    def result(self, request):
        module, nets, structs = make_fig7()[0], make_fig7()[1], dict(FIG7_STRUCTS)
        cfg = SartConfig(engine=request.param, partition_by_fub=False)
        return run_sart(module, structs, cfg), nets

    def test_forward_annotations(self, result):
        res, nets = result
        fwd = {k: res.node_avfs[v].forward for k, v in nets.items()}
        assert fwd["q1a"] == pytest.approx(0.10)
        assert fwd["q2a"] == pytest.approx(0.10)
        assert fwd["q1b"] == pytest.approx(0.02)
        # G1 joins S1 and S2: 0.10 + 0.02
        assert fwd["g1"] == pytest.approx(0.12)
        assert fwd["q3b"] == pytest.approx(0.12)
        # G2 joins pAVF_1 with (pAVF_1 U pAVF_2): union is idempotent,
        # NOT 0.22 — the paper's key simplification.
        assert fwd["g2"] == pytest.approx(0.12)
        assert fwd["q3a"] == pytest.approx(0.12)

    def test_structure_bits_keep_measured_avf(self, result):
        res, nets = result
        assert res.avf(nets["s1"]) == pytest.approx(0.25)
        assert res.avf(nets["s4"]) == pytest.approx(0.25)

    def test_min_reconciliation(self, result):
        res, nets = result
        # backward from S3 (0.05) dominates the Q2a/G2/Q3a path
        assert res.avf(nets["q2a"]) == pytest.approx(0.05)
        assert res.avf(nets["q3a"]) == pytest.approx(0.05)
        # backward from S4 (0.40) leaves the forward estimate in place
        assert res.avf(nets["q3b"]) == pytest.approx(0.12)


def test_engines_agree_on_fig7():
    module, nets = make_fig7()
    a = run_sart(module, dict(FIG7_STRUCTS), SartConfig(engine="dataflow", partition_by_fub=False))
    module2, nets2 = make_fig7()
    b = run_sart(module2, dict(FIG7_STRUCTS), SartConfig(engine="walk", partition_by_fub=False))
    module3, nets3 = make_fig7()
    c = run_sart(module3, dict(FIG7_STRUCTS), SartConfig(engine="compiled", partition_by_fub=False))
    for key, net in nets.items():
        assert a.avf(net) == pytest.approx(b.avf(nets2[key])), key
        assert a.avf(net) == pytest.approx(c.avf(nets3[key])), key
