"""The Figure 8 study: choosing the loop-boundary pAVF for a design.

"The RTL node walker can easily find and break loops and inject static
pAVF values into those nodes... The challenge is in choosing a static
value that is conservative without causing the propagated pAVFs to
saturate... this is a simple study to run for each design."

This script runs that study on the synthetic big core and renders the
curve as an ASCII plot. Note the two claims visible in the output: the
average does NOT saturate even at 100 %, and the response is concave.

Run:  python examples/loop_study.py [scale]
"""

import sys

from repro import SartConfig, run_sart
from repro.ace.portavf import suite_ports
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.workloads import default_suite


def main(scale: float = 0.5):
    print(f"building bigcore (scale={scale}) and ACE-analyzing the suite...")
    design = build_bigcore(BigcoreConfig(scale=scale))
    traces = default_suite(per_class=2, length=4000)
    model_ports, _ = suite_ports(traces)
    ports = map_structure_ports(design, model_ports)

    points = []
    for i in range(11):
        value = i / 10
        result = run_sart(design.module, ports,
                          SartConfig(loop_pavf=value, partition_by_fub=False))
        points.append((value, result.report.weighted_seq_avf))
        loops = int(result.stats["loop_bits"])

    lo = min(a for _, a in points)
    hi = max(a for _, a in points)
    span = (hi - lo) or 1.0
    print(f"\n{loops} loop-boundary bits "
          f"({loops / result.stats['sequentials']:.1%} of sequentials)\n")
    print("loop pAVF   avg sequential AVF")
    for value, avf in points:
        bar = "#" * (2 + int(46 * (avf - lo) / span))
        print(f"  {value:4.1f}      {avf:.4f}  {bar}")

    slopes = [points[i + 1][1] - points[i][1] for i in range(len(points) - 1)]
    print(f"\nslope falls from {slopes[0]:.4f}/0.1 to {slopes[-1]:.4f}/0.1 "
          f"(concave, no saturation — paper Figure 8)")
    print("paper's choice for their design: 0.3 (the heel of their curve)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
