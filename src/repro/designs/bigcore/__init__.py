"""bigcore: a parameterized synthetic multi-FUB design.

A generator that produces netlists with the *structural statistics* of a
large out-of-order core — a dozen-plus FUBs of pipelines, joins, splits,
FSM loops (a few percent of sequentials, like the paper's 2-3 %),
configuration control registers, and ACE-structure latch arrays — without
pretending to be functionally meaningful logic. SART consumes topology
and structure pAVFs only, so this is exactly the substrate the scale
experiments need (Figure 8's loop sweep, Figure 9's per-FUB AVFs, the
convergence study, and the closed-form re-evaluation benchmark).
"""

from repro.designs.bigcore.core import BigcoreConfig, BigcoreDesign, build_bigcore
from repro.designs.bigcore.mapping import map_structure_ports

__all__ = ["BigcoreConfig", "BigcoreDesign", "build_bigcore", "map_structure_ports"]
