"""Trace-driven out-of-order pipeline.

A deliberately compact but behaviourally meaningful OoO model: fetch into
a fetch buffer, in-order rename/dispatch into instruction queue + reorder
buffer (+ load queue / store buffer), out-of-order issue of ready
instructions, fixed execution latencies with a deterministic cache model
for loads, and in-order commit. Every structure interaction emits an ACE
event, which is the entire reason this model exists: occupancy and event
rates vary with workload character, producing the per-structure port-AVF
diversity the paper's methodology consumes.

Branch mispredictions are modelled as front-end bubbles during which,
optionally, *wrong-path* placeholder instructions are fetched into the
front-end structures (un-ACE by definition — "un-necessary for
architecturally correct execution") and squashed unconsumed when the
bubble ends. This reproduces the un-ACE structure traffic that wrong-path
execution contributes in a real ACE model without needing alternate-path
trace content.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ace.bitfield import IQ_FIELDS, ROB_FIELDS, ace_bits_for, total_bits
from repro.errors import TraceError
from repro.perfmodel.isa import (
    DEFAULT_LATENCY,
    Inst,
    OP_LOAD,
    OP_STORE,
)
from repro.perfmodel.structures import SimStructure
from repro.perfmodel.trace import Trace


@dataclass
class PipelineConfig:
    """Microarchitectural parameters."""

    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    fetch_buffer_entries: int = 16
    iq_entries: int = 32
    rob_entries: int = 64
    phys_regs: int = 96
    lq_entries: int = 16
    sb_entries: int = 16
    arch_regs: int = 32
    # Deterministic cache model: a load misses when hash(addr) falls in
    # the miss window; miss adds miss_latency cycles.
    miss_rate: float = 0.10
    miss_latency: int = 20
    mispredict_penalty: int = 8
    # Fetch un-ACE wrong-path placeholders into the fetch buffer during
    # mispredict bubbles (squashed, never dispatched).
    model_wrong_path: bool = True
    fetch_entry_bits: int = 32
    reg_bits: int = 64
    lq_bits: int = 48
    sb_bits: int = 80
    use_bitfields: bool = True
    max_cycles: int = 2_000_000


@dataclass
class _InFlight:
    inst: Inst
    rob_entry: int
    iq_entry: int | None = None
    lq_entry: int | None = None
    sb_entry: int | None = None
    phys: int | None = None
    producers: tuple[tuple[int, int], ...] = ()  # (producer seq, arch reg)
    issued: bool = False
    done: bool = False
    remaining: int = 0
    reads: int = 0


@dataclass
class PipelineStats:
    cycles: int = 0
    committed: int = 0
    fetch_stall_cycles: int = 0
    dispatch_stall_cycles: int = 0
    mispredict_bubbles: int = 0
    wrong_path_fetched: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class Pipeline:
    """One pipeline instance bound to a trace and an event recorder."""

    def __init__(self, trace: Trace, config: PipelineConfig, recorder=None):
        if any(inst.ace is None for inst in trace.insts):
            raise TraceError("trace must be ACE-marked (run mark_ace first)")
        self.trace = trace
        self.config = config
        self.recorder = recorder
        c = config
        self.fetch_buffer = SimStructure(
            "fetch_buffer", c.fetch_buffer_entries, c.fetch_entry_bits,
            nread=c.dispatch_width, nwrite=c.fetch_width, recorder=recorder,
        )
        self.iq = SimStructure(
            "inst_queue", c.iq_entries, total_bits(IQ_FIELDS),
            nread=c.issue_width, nwrite=c.dispatch_width, recorder=recorder,
        )
        self.rob = SimStructure(
            "rob", c.rob_entries, total_bits(ROB_FIELDS),
            nread=c.commit_width, nwrite=c.dispatch_width, recorder=recorder,
        )
        self.regfile = SimStructure(
            "regfile", c.phys_regs, c.reg_bits,
            nread=2 * c.issue_width, nwrite=c.issue_width, recorder=recorder,
        )
        self.lq = SimStructure(
            "load_queue", c.lq_entries, c.lq_bits,
            nread=c.issue_width, nwrite=c.dispatch_width, recorder=recorder,
        )
        self.sb = SimStructure(
            "store_buffer", c.sb_entries, c.sb_bits,
            nread=c.commit_width, nwrite=c.issue_width, recorder=recorder,
        )
        self.structures = [
            self.fetch_buffer, self.iq, self.rob, self.regfile, self.lq, self.sb
        ]
        self.stats = PipelineStats()

        self._fetch_index = 0
        self._fetch_bubble = 0
        self._wrong_path_entries: list[int] = []
        self._fetched: deque[tuple[Inst, int]] = deque()  # (inst, fb entry)
        self._inflight: dict[int, _InFlight] = {}
        self._rob_order: deque[int] = deque()
        self._executing: list[int] = []
        # rename state
        self._arch_map: dict[int, int] = {}   # arch reg -> latest writer seq
        self._arch_phys: dict[int, int] = {}  # arch reg -> committed phys entry
        self._phys_reads: dict[int, int] = {}  # phys entry -> read count

    # ------------------------------------------------------------------
    def _is_miss(self, addr: int) -> bool:
        if self.config.miss_rate <= 0:
            return False
        return (addr * 2654435761 % 997) < self.config.miss_rate * 997

    def _latency(self, inst: Inst) -> int:
        latency = DEFAULT_LATENCY[inst.op]
        if inst.op == OP_LOAD and self._is_miss(inst.addr or 0):
            latency += self.config.miss_latency
        return latency

    # ------------------------------------------------------------------
    def run(self) -> PipelineStats:
        """Simulate until the whole trace commits."""
        cycle = 0
        total = len(self.trace.insts)
        while self.stats.committed < total:
            if cycle >= self.config.max_cycles:
                raise TraceError(
                    f"{self.trace.name}: exceeded max_cycles={self.config.max_cycles}"
                )
            self._commit(cycle)
            self._execute(cycle)
            self._issue(cycle)
            self._dispatch(cycle)
            self._fetch(cycle)
            for structure in self.structures:
                structure.sample_occupancy()
            cycle += 1
        self.stats.cycles = cycle
        return self.stats

    # ------------------------------------------------------------------
    def _fetch(self, cycle: int) -> None:
        if self._fetch_bubble > 0:
            self._fetch_bubble -= 1
            self.stats.mispredict_bubbles += 1
            if self.config.model_wrong_path and not self.fetch_buffer.is_full():
                # Wrong-path fetch: occupies a real entry, carries no ACE
                # bits, and is squashed when the bubble drains.
                entry = self.fetch_buffer.alloc(cycle, ace=False)
                if entry is not None:
                    self._wrong_path_entries.append(entry)
                    self.stats.wrong_path_fetched += 1
            if self._fetch_bubble == 0:
                for entry in self._wrong_path_entries:
                    self.fetch_buffer.release(entry, cycle, consumed=False)
                self._wrong_path_entries.clear()
            return
        for _ in range(self.config.fetch_width):
            if self._fetch_index >= len(self.trace.insts):
                return
            if self.fetch_buffer.is_full():
                self.stats.fetch_stall_cycles += 1
                return
            inst = self.trace.insts[self._fetch_index]
            entry = self.fetch_buffer.alloc(cycle, ace=bool(inst.ace))
            self._fetched.append((inst, entry))
            self._fetch_index += 1
            if inst.mispredicted:
                self._fetch_bubble = self.config.mispredict_penalty
                return

    def _dispatch(self, cycle: int) -> None:
        c = self.config
        for _ in range(c.dispatch_width):
            if not self._fetched:
                return
            inst, fb_entry = self._fetched[0]
            if self.rob.is_full() or self.iq.is_full():
                self.stats.dispatch_stall_cycles += 1
                return
            if inst.op == OP_LOAD and self.lq.is_full():
                self.stats.dispatch_stall_cycles += 1
                return
            if inst.op == OP_STORE and self.sb.is_full():
                self.stats.dispatch_stall_cycles += 1
                return
            if inst.writes_register() and self.regfile.is_full():
                self.stats.dispatch_stall_cycles += 1
                return
            self._fetched.popleft()
            ace = bool(inst.ace)
            self.fetch_buffer.read(fb_entry, cycle, ace)
            self.fetch_buffer.release(fb_entry, cycle, consumed=True)

            iq_bits = ace_bits_for(IQ_FIELDS, inst) if c.use_bitfields else None
            rob_bits = ace_bits_for(ROB_FIELDS, inst) if c.use_bitfields else None
            rob_entry = self.rob.alloc(cycle, ace, ace_bits=rob_bits)
            iq_entry = self.iq.alloc(cycle, ace, ace_bits=iq_bits)
            producers = tuple(
                (self._arch_map[reg], reg) for reg in inst.srcs if reg in self._arch_map
            )
            flight = _InFlight(
                inst=inst, rob_entry=rob_entry, iq_entry=iq_entry, producers=producers
            )
            if inst.op == OP_LOAD:
                flight.lq_entry = self.lq.alloc(cycle, ace)
            if inst.op == OP_STORE:
                # Store-buffer entries allocate at dispatch, in program
                # order — allocating at issue lets younger stores starve
                # the ROB head and deadlock the machine (in-order commit
                # cannot drain them). Address/data are recorded at
                # execute, when they exist.
                flight.sb_entry = self.sb.alloc(cycle, ace, record=False)
            if inst.writes_register():
                # Rename: allocate the phys reg now, silently — the write
                # event is recorded at writeback, when the value arrives.
                flight.phys = self.regfile.alloc(cycle, ace=False, record=False)
                self._phys_reads[flight.phys] = 0
            self._inflight[inst.seq] = flight
            self._rob_order.append(inst.seq)
            if inst.writes_register():
                self._arch_map[inst.dst] = inst.seq

    def _issue(self, cycle: int) -> None:
        issued = 0
        for seq in list(self._rob_order):
            if issued >= self.config.issue_width:
                return
            flight = self._inflight[seq]
            if flight.issued:
                continue
            ready = all(
                self._inflight[p].done
                for p, _reg in flight.producers
                if p in self._inflight
            )
            if not ready:
                continue
            flight.issued = True
            flight.remaining = self._latency(flight.inst)
            ace = bool(flight.inst.ace)
            self.iq.read(flight.iq_entry, cycle, ace)
            self.iq.release(flight.iq_entry, cycle, consumed=True)
            flight.iq_entry = None
            if flight.sb_entry is not None:
                self.sb.write(flight.sb_entry, cycle, ace)
            for producer_seq, reg in flight.producers:
                producer = self._inflight.get(producer_seq)
                if producer is not None and producer.phys is not None:
                    phys = producer.phys
                elif reg in self._arch_phys:
                    phys = self._arch_phys[reg]  # producer already committed
                else:
                    continue
                self.regfile.read(phys, cycle, ace)
                self._phys_reads[phys] = self._phys_reads.get(phys, 0) + 1
            self._executing.append(seq)
            issued += 1

    def _execute(self, cycle: int) -> None:
        still = []
        for seq in self._executing:
            flight = self._inflight[seq]
            flight.remaining -= 1
            if flight.remaining > 0:
                still.append(seq)
                continue
            flight.done = True
            ace = bool(flight.inst.ace)
            if flight.phys is not None:
                self.regfile.write(flight.phys, cycle, ace)
            if flight.lq_entry is not None:
                self.lq.read(flight.lq_entry, cycle, ace)
        self._executing = still

    def _commit(self, cycle: int) -> None:
        for _ in range(self.config.commit_width):
            if not self._rob_order:
                return
            seq = self._rob_order[0]
            flight = self._inflight[seq]
            if not flight.done:
                return
            self._rob_order.popleft()
            ace = bool(flight.inst.ace)
            self.rob.read(flight.rob_entry, cycle, ace)
            self.rob.release(flight.rob_entry, cycle, consumed=True)
            if flight.lq_entry is not None:
                self.lq.release(flight.lq_entry, cycle, consumed=ace)
            if flight.sb_entry is not None:
                self.sb.read(flight.sb_entry, cycle, ace)
                self.sb.release(flight.sb_entry, cycle, consumed=True)
            if flight.phys is not None:
                inst = flight.inst
                # Free the previous mapping of this arch reg: its value is
                # dead once a younger writer commits.
                self._release_previous_phys(inst.dst, seq, cycle)
            self.stats.committed += 1
            self._inflight.pop(seq)

    def _release_previous_phys(self, arch_reg: int, new_seq: int, cycle: int) -> None:
        old_phys = self._arch_phys.get(arch_reg)
        if old_phys is not None:
            consumed = self._phys_reads.get(old_phys, 0) > 0
            self.regfile.release(old_phys, cycle, consumed=consumed)
            self._phys_reads.pop(old_phys, None)
        # The committing writer's phys becomes the architectural mapping.
        self._arch_phys[arch_reg] = self._current_phys_of(new_seq)

    def _current_phys_of(self, seq: int) -> int | None:
        flight = self._inflight.get(seq)
        return flight.phys if flight is not None else None
