"""The Figure 10 experiment: model vs (simulated) beam measurement.

Exposes tinycore running the paper's two beam workloads — lattice2d and
md5mix — to a simulated accelerated particle beam, then compares the
measured SDC rate against Eq 1 models built with (a) the conservative
structure-AVF proxy and (b) SART's computed sequential AVFs, in
normalized arbitrary units exactly like the paper's plot.

Run:  python examples/silicon_correlation.py [exposures]
"""

import sys

from repro.ser.beam import BeamConfig
from repro.ser.correlation import correlate_workloads


def bar(value: float, scale: float = 14.0) -> str:
    return "#" * max(1, int(value * scale))


def main(exposures: int = 378):
    config = BeamConfig(flux=1e-5, exposures=exposures, seed=77)
    print(f"beam: flux={config.flux:g} upsets/bit/cycle, "
          f"{exposures} device exposures per workload\n")
    rows = correlate_workloads(("lattice2d", "md5mix"), beam_config=config)

    for row in rows:
        norm = row.normalized()
        lo, hi = row.measured.rate_interval()
        ref = row.measured_rate or 1.0
        print(f"--- {row.workload} "
              f"({row.measured.sdc_events} SDC events / {row.measured.exposures} exposures) ---")
        print(f"  measured      {bar(1.0)}  1.00  "
              f"(95% CI [{lo / ref:.2f}, {hi / ref:.2f}])")
        print(f"  proxy model   {bar(norm['proxy'])}  {norm['proxy']:.2f}")
        print(f"  seq-AVF model {bar(norm['sart'])}  {norm['sart']:.2f}")
        print(f"  sequential AVF: proxy {row.seq_avf_proxy:.3f} -> "
              f"SART {row.seq_avf_sart:.3f} "
              f"({row.sequential_avf_reduction:.0%} lower; paper: ~63%)")
        print(f"  correlation improvement: {row.correlation_improvement:.0%} "
              f"(paper: ~66%)\n")

    mean = sum(r.correlation_improvement for r in rows) / len(rows)
    print(f"mean correlation improvement across workloads: {mean:.0%}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 378)
