"""Hamming-distance-1 analysis for address-based structures.

Implements the refinement of Biswas et al. (ISCA 2005) that the paper's
ACE model includes: for tag/address fields, a bit is only vulnerable when
flipping it changes a match outcome that matters. Two mechanisms make a
stored tag bit ACE:

* **false negative** — a lookup that truly hits the entry would miss if
  *any* stored tag bit flipped, so a true (ACE) hit makes every bit of
  the matched tag ACE up to that point;
* **false positive** — a lookup whose tag differs from the stored tag in
  exactly one bit would falsely hit if that differing bit flipped, so a
  Hamming-distance-1 (ACE) lookup makes exactly that bit ACE.

Bits accrue ACE residency from segment start to the last event that made
them matter; the tail until eviction is un-ACE. The resulting per-bit
AVF is typically far below the naive all-residency-ACE value — the whole
point of the refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AceError


@dataclass
class _TagSegment:
    tag: int
    start: int
    # per-bit cycle until which the bit has been proven ACE
    needed_until: list[int] = field(default_factory=list)


class HammingAnalyzer:
    """HD-1 AVF analysis of one tag array."""

    def __init__(self, name: str, entries: int, tag_bits: int):
        if entries < 1 or tag_bits < 1:
            raise AceError("HammingAnalyzer needs entries >= 1 and tag_bits >= 1")
        self.name = name
        self.entries = entries
        self.tag_bits = tag_bits
        self._segments: dict[int, _TagSegment] = {}
        self._bit_ace_cycles = 0.0
        self._lookups = 0
        self._hits = 0
        self._near_misses = 0
        self._finished = False

    # ------------------------------------------------------------------
    def insert(self, entry: int, tag: int, cycle: int) -> None:
        """Store *tag* in *entry* (implicitly evicting the old content)."""
        if not 0 <= entry < self.entries:
            raise AceError(f"{self.name}: entry {entry} out of range")
        old = self._segments.pop(entry, None)
        if old is not None:
            self._close(old)
        self._segments[entry] = _TagSegment(
            tag=tag & ((1 << self.tag_bits) - 1),
            start=cycle,
            needed_until=[cycle] * self.tag_bits,
        )

    def lookup(self, tag: int, cycle: int, ace: bool = True) -> list[int]:
        """Associative lookup; returns matching entries and accrues AVF."""
        tag &= (1 << self.tag_bits) - 1
        self._lookups += 1
        matches = []
        for entry, segment in self._segments.items():
            diff = segment.tag ^ tag
            if diff == 0:
                matches.append(entry)
                self._hits += 1
                if ace:
                    # False-negative vulnerability: every bit matters now.
                    segment.needed_until = [cycle] * self.tag_bits
            elif diff & (diff - 1) == 0:
                self._near_misses += 1
                if ace:
                    # False-positive vulnerability: the single differing bit.
                    bit = diff.bit_length() - 1
                    segment.needed_until[bit] = cycle
        return matches

    def evict(self, entry: int, cycle: int) -> None:
        segment = self._segments.pop(entry, None)
        if segment is None:
            raise AceError(f"{self.name}: evict of empty entry {entry}")
        self._close(segment)

    # ------------------------------------------------------------------
    def _close(self, segment: _TagSegment) -> None:
        for until in segment.needed_until:
            self._bit_ace_cycles += max(0, until - segment.start)

    def finish(self, cycles: int) -> float:
        """Close open segments (tails un-ACE, matched spans kept) and
        return the tag-array AVF."""
        if self._finished:
            raise AceError("finish() called twice")
        self._finished = True
        for segment in self._segments.values():
            self._close(segment)
        self._segments.clear()
        denom = self.entries * self.tag_bits * max(1, cycles)
        return min(1.0, self._bit_ace_cycles / denom)

    def stats(self) -> dict[str, int]:
        return {
            "lookups": self._lookups,
            "hits": self._hits,
            "near_misses": self._near_misses,
        }


def naive_tag_avf(residency_cycles: float, entries: int, tag_bits: int, cycles: int) -> float:
    """The unrefined alternative: every resident tag bit counted ACE.

    Provided so tests and benches can show the HD-1 refinement's effect.
    """
    denom = entries * tag_bits * max(1, cycles)
    return min(1.0, residency_cycles * tag_bits / denom)
