"""Cross-package integration tests: full flows through serialized formats."""

import pytest

from repro.core.sart import SartConfig, run_sart
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program
from repro.netlist.exlif import parse_exlif, write_exlif
from repro.netlist.graph import extract_graph


@pytest.fixture(scope="module")
def flow():
    words, dmem = program("fib"), default_dmem("fib")
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    ports, _, _ = tinycore_structure_ports("fib", words, dmem, gate_cycles=golden.cycles)
    return netlist, ports


def test_exlif_roundtrip_preserves_sart_results(flow):
    """Serialize tinycore to EXLIF, parse it back, re-run SART: identical."""
    netlist, ports = flow
    direct = run_sart(netlist.module, ports, SartConfig(partition_by_fub=False))

    text = write_exlif(netlist.module)
    reparsed = parse_exlif(text)["tinycore"]
    roundtrip = run_sart(reparsed, ports, SartConfig(partition_by_fub=False))

    assert set(direct.node_avfs) == set(roundtrip.node_avfs)
    for net in direct.node_avfs:
        assert roundtrip.avf(net) == pytest.approx(direct.avf(net)), net
    assert roundtrip.report.weighted_seq_avf == pytest.approx(
        direct.report.weighted_seq_avf
    )


def test_exlif_roundtrip_preserves_simulation(flow):
    """The reparsed netlist executes the program identically."""
    netlist, _ = flow
    words, dmem = program("fib"), default_dmem("fib")
    reparsed = parse_exlif(write_exlif(netlist.module))["tinycore"]

    from repro.rtlsim.simulator import Simulator

    a = Simulator(netlist.module, lanes=1)
    b = Simulator(reparsed, lanes=1)
    for _ in range(120):
        assert a.peek("out_valid_o") == b.peek("out_valid_o")
        assert a.peek_word([f"out_val_o[{i}]" for i in range(16)], 0) == \
            b.peek_word([f"out_val_o[{i}]" for i in range(16)], 0)
        a.step()
        b.step()


def test_graph_extraction_stable_across_roundtrip(flow):
    netlist, _ = flow
    g1 = extract_graph(netlist.module)
    g2 = extract_graph(parse_exlif(write_exlif(netlist.module))["tinycore"])
    assert set(g1.nodes) == set(g2.nodes)
    assert set(g1.mems) == set(g2.mems)
    for net, node in g1.nodes.items():
        assert g2.nodes[net].fanin == node.fanin
        assert g2.nodes[net].fub == node.fub


def test_simulator_chunking_boundary():
    """A module with more gates than one codegen chunk still simulates."""
    from repro.netlist.builder import ModuleBuilder
    from repro.rtlsim.simulator import _CHUNK, Simulator

    b = ModuleBuilder("wide")
    x = b.input("x")
    cur = x
    n_gates = _CHUNK + 500
    for i in range(n_gates):
        cur = b.gate("NOT", [cur])
    b.output("y")
    b.gate("BUF", [cur], out="y")
    sim = Simulator(b.done(), lanes=2)
    sim.poke_all_lanes("x", 1)
    expected = 1 if n_gates % 2 == 0 else 0
    assert sim.peek_lane("y", 0) == expected
    sim.poke_all_lanes("x", 0)
    assert sim.peek_lane("y", 0) == 1 - expected
    assert len(sim._comb_fns) >= 2  # chunking actually engaged


def test_tinycore_traces_run_on_the_ooo_model():
    """Trace portability: a tinycore program's dynamic trace feeds the
    out-of-order performance model directly — the same ACE machinery
    serves both the 5-stage core and the OoO model."""
    from repro.designs.tinycore.archsim import trace_from_program
    from repro.perfmodel.machine import run_workload

    words, dmem = program("lattice2d"), default_dmem("lattice2d")
    trace, arch = trace_from_program("lattice2d", words, dmem)
    result = run_workload(trace)
    assert result.stats.committed == len(trace)
    # The OoO model (4-wide) beats the 5-stage scalar core's CPI.
    assert result.ipc > 0.9
    for stats in result.structures.values():
        assert 0.0 <= stats.avf() <= 1.0
