"""Node-graph extraction from a flattened netlist.

The sequential-AVF methodology operates on "a node graph extracted from
RTL". This module produces that graph: one node per driven net (gate
output, flop output, memory read-data bit, constant) plus one node per
primary input. Edges run from driver nodes to the outputs of the instances
that consume them.

Two modelling choices mirror the paper:

* **Enabled flops hold state.** A DFF with an enable pin keeps its value
  while disabled, which in gate terms is a mux from Q back to D — so the
  extracted graph gives such a flop a self-edge (and an edge from the
  enable net). SCC detection in :mod:`repro.core.loops` then classifies it
  as a loop node automatically, matching the paper's observation that
  "sequentials that behave as ACE structures (data is read/written via
  enable/enabled clock signals)" must not be treated as simple pipeline
  stages.
* **Memories are structures, not logic.** MEM read-data bits appear as
  source-like nodes with no fan-in; the write-side connectivity is recorded
  in :class:`MemInfo` so the AVF layer can treat the nets feeding
  ``wdata`` as structure write-port bits (walk sinks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.cells import CELLS, mem_addr_bits
from repro.netlist.netlist import Module


class NodeKind:
    """Node kind constants."""

    INPUT = "input"
    CONST = "const"
    COMB = "comb"
    SEQ = "seq"
    MEM_RDATA = "mem_rdata"


@dataclass
class Node:
    """One node of the extracted graph (identified by its net name)."""

    net: str
    kind: str
    inst: str | None = None  # driving instance name (None for primary inputs)
    cell: str | None = None  # driving cell kind
    fub: str = ""
    attrs: dict[str, str] = field(default_factory=dict)
    fanin: tuple[str, ...] = ()


@dataclass
class MemReadPort:
    addr: list[str]
    data: list[str]


@dataclass
class MemInfo:
    """Connectivity of one MEM instance (an ACE structure in RTL)."""

    inst: str
    depth: int
    width: int
    fub: str
    attrs: dict[str, str]
    read_ports: list[MemReadPort]
    waddr: list[str]
    wdata: list[str]
    wen: str


class NetGraph:
    """The extracted node graph.

    Attributes:
        nodes: Net name -> :class:`Node`.
        outputs: Primary-output net names (RTL boundary sinks).
        mems: MEM instance name -> :class:`MemInfo`.
    """

    def __init__(self, name: str):
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.outputs: list[str] = []
        self.mems: dict[str, MemInfo] = {}
        self._fanout: dict[str, list[str]] | None = None

    def fanout(self) -> dict[str, list[str]]:
        """Net -> nets whose driving instance consumes it (cached)."""
        if self._fanout is None:
            fo: dict[str, list[str]] = {net: [] for net in self.nodes}
            for node in self.nodes.values():
                for src in node.fanin:
                    fo[src].append(node.net)
            self._fanout = fo
        return self._fanout

    def seq_nets(self) -> list[str]:
        """Nets driven by flip-flops — the paper's 'sequentials'."""
        return [n.net for n in self.nodes.values() if n.kind == NodeKind.SEQ]

    def comb_nets(self) -> list[str]:
        return [n.net for n in self.nodes.values() if n.kind == NodeKind.COMB]

    def nets_by_fub(self) -> dict[str, list[str]]:
        """FUB name -> nets of nodes tagged with that FUB."""
        by_fub: dict[str, list[str]] = {}
        for node in self.nodes.values():
            by_fub.setdefault(node.fub, []).append(node.net)
        return by_fub

    # ------------------------------------------------------------------
    # Columnar views. The compiled lowering consumes the graph through
    # these accessors so a streaming subclass (netlist.stream.CsrNetGraph)
    # can serve them straight from arrays without materializing one Node
    # object per net.
    # ------------------------------------------------------------------
    def csr_connectivity(self) -> tuple[list[str], list[int], list[int]]:
        """``(names, fanin_ptr, fanin_ix)`` — the interned fan-in CSR.

        ``names`` is the node order (dense id -> net); ``fanin_ix`` holds
        dense driver ids, rows delimited by ``fanin_ptr``.
        """
        names = list(self.nodes)
        ids = {net: i for i, net in enumerate(names)}
        ptr = [0]
        ix: list[int] = []
        for net in names:
            for src in self.nodes[net].fanin:
                ix.append(ids[src])
            ptr.append(len(ix))
        return names, ptr, ix

    def kind_column(self) -> list[str]:
        """Node kinds aligned with ``list(self.nodes)`` order."""
        return [node.kind for node in self.nodes.values()]

    def fub_column(self) -> list[str]:
        """FUB tags aligned with ``list(self.nodes)`` order."""
        return [node.fub for node in self.nodes.values()]

    def struct_tagged(self):
        """Yield ``(net, attrs)`` of SEQ nodes carrying a ``struct`` attr."""
        for node in self.nodes.values():
            if node.kind == NodeKind.SEQ and "struct" in node.attrs:
                yield node.net, node.attrs

    def seq_items(self):
        """Yield ``(net, inst, attrs)`` for every sequential node."""
        for node in self.nodes.values():
            if node.kind == NodeKind.SEQ:
                yield node.net, node.inst, node.attrs

    def input_nets(self) -> list[str]:
        return [n.net for n in self.nodes.values() if n.kind == NodeKind.INPUT]

    def const_nets(self) -> list[str]:
        return [n.net for n in self.nodes.values() if n.kind == NodeKind.CONST]

    def __len__(self) -> int:
        return len(self.nodes)


def _sorted_variadic_pins(conn: dict[str, str]) -> list[str]:
    return [conn[p] for p in sorted((q for q in conn if q.startswith("a")), key=lambda q: int(q[1:]))]


def extract_graph(module: Module) -> NetGraph:
    """Extract the node graph of a flattened *module*."""
    graph = NetGraph(module.name)

    for name in module.input_ports():
        graph.nodes[name] = Node(net=name, kind=NodeKind.INPUT)
    graph.outputs = list(module.output_ports())

    for inst in module.instances.values():
        spec = CELLS.get(inst.kind)
        if spec is None:
            raise NetlistError(f"extract_graph requires a flat module; {inst.name!r} is {inst.kind!r}")
        fub = inst.attrs.get("fub", "")

        if spec.name == "MEM":
            depth, width = inst.params["depth"], inst.params["width"]
            nread = inst.params.get("nread", 1)
            abits = mem_addr_bits(depth)
            ports = []
            for p in range(nread):
                addr = _mem_bus(inst.conn, f"raddr{p}_", abits)
                data = _mem_bus(inst.conn, f"rdata{p}_", width)
                ports.append(MemReadPort(addr=addr, data=data))
                for net in data:
                    graph.nodes[net] = Node(
                        net=net, kind=NodeKind.MEM_RDATA, inst=inst.name,
                        cell="MEM", fub=fub, attrs=inst.attrs, fanin=(),
                    )
            graph.mems[inst.name] = MemInfo(
                inst=inst.name, depth=depth, width=width, fub=fub, attrs=inst.attrs,
                read_ports=ports,
                waddr=_mem_bus(inst.conn, "waddr_", abits),
                wdata=_mem_bus(inst.conn, "wdata_", width),
                wen=inst.conn["wen"],
            )
            continue

        if spec.name == "DFF":
            q = inst.conn["q"]
            fanin = [inst.conn["d"]]
            if "en" in inst.conn:
                # Hold path: enable mux feeds Q back to D (see module docstring).
                fanin.extend([inst.conn["en"], q])
            graph.nodes[q] = Node(
                net=q, kind=NodeKind.SEQ, inst=inst.name, cell="DFF",
                fub=fub, attrs=inst.attrs, fanin=tuple(fanin),
            )
            continue

        if spec.name in ("CONST0", "CONST1"):
            y = inst.conn["y"]
            graph.nodes[y] = Node(
                net=y, kind=NodeKind.CONST, inst=inst.name, cell=spec.name,
                fub=fub, attrs=inst.attrs, fanin=(),
            )
            continue

        y = inst.conn["y"]
        if spec.variadic:
            fanin = _sorted_variadic_pins(inst.conn)
        else:
            fanin = [inst.conn[p] for p in spec.inputs]
        graph.nodes[y] = Node(
            net=y, kind=NodeKind.COMB, inst=inst.name, cell=spec.name,
            fub=fub, attrs=inst.attrs, fanin=tuple(fanin),
        )

    missing = {
        src
        for node in graph.nodes.values()
        for src in node.fanin
        if src not in graph.nodes
    }
    if missing:
        raise NetlistError(f"graph references undriven nets: {sorted(missing)[:10]}")
    return graph


def _mem_bus(conn: dict[str, str], prefix: str, width: int) -> list[str]:
    return [conn[f"{prefix}{i}"] for i in range(width)]
