"""Run-spec executor: the one flow every subcommand routes through.

:func:`execute` takes a :class:`~repro.pipeline.spec.RunSpec`, resolves
the design through the registry, and runs exactly the stages the spec
declares, threading typed artifacts between them and consulting the
artifact store at every boundary. The CLI subcommands are thin adapters
that build a spec from flags and render the returned
:class:`RunOutcome`; ``repro-sart run <spec.toml>`` executes a spec
straight from disk.

Stage DAG (stages run only when the spec needs them)::

    design ──┬────────────────────────────► plan ──► sart / sweep
             ├─► golden ──► ports(archsim) ──┘            │
             │        └────────► sfi ◄────────────────────┘
             ├─► ports(ace-suite | file) ─┘
             └─► beam / export

An *observer* callback ``observer(event, info)`` receives progress
events as stages start/finish, so callers can stream human output in
the same order the hand-wired flows used to print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sart import SartConfig
from repro.pipeline.artifacts import (
    CampaignOutcome,
    DeratingArtifact,
    DesignArtifact,
    GoldenRun,
    PlanArtifact,
    PortEnv,
    SartOutcome,
)
from repro.pipeline.registry import resolve_design
from repro.pipeline.spec import RunSpec, SartSpec, WorkloadsSpec
from repro.pipeline.stages import (
    PipelineContext,
    StageEvent,
    stage_ace_ports,
    stage_archsim_ports,
    stage_beam,
    stage_derating,
    stage_design,
    stage_golden,
    stage_plan,
    stage_ports_file,
    stage_sart,
    stage_sfi,
)
from repro.pipeline.store import ArtifactStore


@dataclass
class SweepPoint:
    """One evaluated point of the loop-boundary pAVF sweep."""

    value: float
    result: object               # SartResult or BatchedSweepResult
    seconds: float


@dataclass
class BatchedSweepResult:
    """One sweep point's slice of a batched multi-workload evaluation.

    Exposes the same ``.report`` consumers read off a SartResult; the
    full per-node resolution is materialized on demand (it is the only
    per-point cost the batched path skips).
    """

    report: object               # DesignReport
    batch: object                # repro.core.batched.BatchedResult
    index: int

    def node_avfs(self):
        return self.batch.node_avfs(self.index)


@dataclass
class RunOutcome:
    """Everything one executed run-spec produced."""

    spec: RunSpec
    design: DesignArtifact
    golden: GoldenRun | None = None
    port_env: PortEnv | None = None
    plan: PlanArtifact | None = None
    sart: SartOutcome | None = None
    derating: DeratingArtifact | None = None
    sweep: list[SweepPoint] = field(default_factory=list)
    sfi: CampaignOutcome | None = None
    beam: CampaignOutcome | None = None
    export_path: str | None = None
    events: list[StageEvent] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0


def sart_config(spec: SartSpec) -> SartConfig:
    """The SartConfig a ``[sart]`` section describes."""
    return SartConfig(
        loop_pavf=spec.loop_pavf,
        partition_by_fub=not spec.monolithic,
        iterations=spec.iterations,
        engine=spec.engine,
        workers=spec.relax_workers,
    )


def _export_design(design: DesignArtifact, export, notify) -> str:
    if export.format == "exlif":
        from repro.netlist.exlif import write_exlif

        text = write_exlif(design.module)
    else:
        from repro.netlist.verilog import write_verilog

        text, _names = write_verilog(design.module)
    with open(export.output, "w") as handle:
        handle.write(text)
    notify("export", path=export.output, format=export.format,
           module=design.module)
    return export.output


def _eco_warm_start(ctx, spec: RunSpec, outcome: RunOutcome, config: SartConfig):
    """Solve the ``[eco]`` baseline and build the optimistic warm start.

    The baseline design goes through the same design/plan/sart stages as
    any run (so a configured store serves its per-FUB solutions), then
    the two compiled plans are diffed and the baseline's converged
    solution seeds the main solve. Returns None — and the main solve
    runs cold — when the eco path cannot apply (non-compiled engine,
    single-FUB design, or a baseline without a converged partitioned
    solution).
    """
    from repro.pipeline import delta as delta_mod

    if outcome.plan is None or outcome.plan.plan.n_fubs < 2:
        ctx.notify("eco:skip", reason="eco needs a compiled multi-FUB plan")
        return None
    provider = resolve_design(spec.eco.baseline)
    base_design = stage_design(ctx, provider)
    base_plan = stage_plan(ctx, base_design, outcome.port_env, config)
    base_sart = stage_sart(
        ctx, base_design, outcome.port_env, config, base_plan
    )
    delta = delta_mod.diff_plans(
        base_plan.plan, outcome.plan.plan,
        ref_a=base_design.ref, ref_b=outcome.design.ref,
    )
    ctx.notify("eco:delta", delta=delta, baseline=base_design.ref)
    warm = delta_mod.warm_start_from_result(
        outcome.plan.plan, delta.touched, base_sart.result
    )
    if warm is None:
        ctx.notify("eco:skip", reason="baseline solution is not seedable")
    return warm


def _eco_check(ctx, design: DesignArtifact, outcome: RunOutcome,
               config: SartConfig) -> None:
    """``[eco] check``: cold-solve the design and verify equivalence."""
    from repro.core.sart import run_sart
    from repro.errors import PipelineError

    ports = outcome.port_env.ports if outcome.port_env is not None else None
    cold = run_sart(design.module, ports, config, plan=outcome.plan.plan)
    warm_result = outcome.sart.result
    identical = (
        warm_result.node_avfs == cold.node_avfs
        and warm_result.f_sets == cold.f_sets
        and warm_result.b_sets == cold.b_sets
    )
    ctx.notify("eco:check", identical=identical,
               cold_seconds=cold.elapsed_seconds,
               warm_seconds=warm_result.elapsed_seconds)
    if not identical:
        raise PipelineError(
            "eco check failed: incremental solve is not bit-identical "
            "to the cold solve"
        )


def execute(
    spec: RunSpec,
    *,
    store: ArtifactStore | None = None,
    observer=None,
) -> RunOutcome:
    """Execute every stage composition *spec* declares."""
    ctx = PipelineContext(store=store, observer=observer)
    provider = resolve_design(spec.design)
    design = stage_design(ctx, provider)
    outcome = RunOutcome(spec=spec, design=design)
    stages = spec.stages()

    if spec.export:
        outcome.export_path = _export_design(design, spec.export, ctx.notify)

    # --- structure ports (and the golden run they may depend on) -------
    if "sart" in stages or "sweep" in stages:
        if spec.ports_file:
            outcome.port_env = stage_ports_file(ctx, spec.ports_file)
        elif design.kind == "tinycore":
            outcome.golden = stage_golden(ctx, design)
            outcome.port_env = stage_archsim_ports(ctx, design, outcome.golden)
        elif design.kind == "bigcore":
            workloads = spec.workloads or WorkloadsSpec()
            outcome.port_env = stage_ace_ports(
                ctx, design, per_class=workloads.per_class,
                length=workloads.length,
            )

    # --- SART report ---------------------------------------------------
    if "sart" in stages:
        config = sart_config(spec.sart or SartSpec())
        if config.engine == "compiled":
            outcome.plan = stage_plan(ctx, design, outcome.port_env, config)
        warm = None
        if spec.eco is not None:
            warm = _eco_warm_start(ctx, spec, outcome, config)
        outcome.sart = stage_sart(
            ctx, design, outcome.port_env, config, outcome.plan,
            warm_start=warm,
        )
        if spec.eco is not None and spec.eco.check:
            _eco_check(ctx, design, outcome, config)

    # --- logic derating ------------------------------------------------
    if "derating" in stages:
        outcome.derating = stage_derating(
            ctx, design, spec.derating, spec.campaign, outcome.sart
        )

    # --- Figure-8 loop sweep -------------------------------------------
    if "sweep" in stages:
        import time

        from repro.core.sart import run_sart

        if outcome.plan is None:
            outcome.plan = stage_plan(
                ctx, design, outcome.port_env, SartConfig()
            )
        points = spec.sweep.points
        ctx.notify("sweep:begin", plan=outcome.plan, points=points)
        ports = outcome.port_env.ports if outcome.port_env else None
        values = [i / (points - 1) if points > 1 else 0.0
                  for i in range(points)]
        if spec.sweep.batched:
            from repro.core.batched import sweep_batched

            plan = outcome.plan.plan
            started = time.perf_counter()
            batch = sweep_batched(
                plan, values, SartConfig(partition_by_fub=False)
            )
            elapsed = time.perf_counter() - started
            ctx.notify(
                "sweep:batched", points=points, seconds=elapsed,
                nodes=plan.n,
                nodes_per_second=(
                    plan.n * points / elapsed if elapsed > 0 else 0.0
                ),
            )
            share = elapsed / points if points else 0.0
            for w, value in enumerate(values):
                result = BatchedSweepResult(
                    report=batch.report(w), batch=batch, index=w
                )
                outcome.sweep.append(SweepPoint(value, result, share))
                ctx.notify("sweep:point", value=value, result=result,
                           seconds=share)
        else:
            for value in values:
                config = SartConfig(loop_pavf=value, partition_by_fub=False)
                started = time.perf_counter()
                result = run_sart(design.module, ports, config,
                                  plan=outcome.plan.plan)
                elapsed = time.perf_counter() - started
                outcome.sweep.append(SweepPoint(value, result, elapsed))
                ctx.notify("sweep:point", value=value, result=result,
                           seconds=elapsed)

    # --- campaigns -----------------------------------------------------
    if "sfi" in stages:
        if design.kind != "tinycore":
            from repro.errors import SpecError

            raise SpecError("the sfi stage needs a tinycore design")
        if outcome.golden is None:
            outcome.golden = stage_golden(
                ctx, design, backend=spec.campaign.backend
            )
        outcome.sfi = stage_sfi(
            ctx, design, outcome.golden, spec.sfi, spec.campaign
        )

    if "beam" in stages:
        if design.kind != "tinycore":
            from repro.errors import SpecError

            raise SpecError("the beam stage needs a tinycore design")
        beam_design = design
        if spec.beam.parity and getattr(design.netlist, "due", None) is None:
            # The beam wants the parity-protected variant but the run's
            # design is the plain core: resolve the protected sibling.
            beam_design = stage_design(
                ctx, resolve_design(spec.design, parity="1")
            )
        outcome.beam = stage_beam(ctx, beam_design, spec.beam, spec.campaign)

    outcome.events = ctx.events
    outcome.cache_hits = ctx.store.hits
    outcome.cache_misses = ctx.store.misses
    return outcome
