"""E8 — node-level accuracy: SART vs SFI ground truth.

The paper validates against silicon at whole-part granularity; tinycore
lets us validate at *node* granularity, which the authors could not
publish. Two properties are checked, both following from the paper's
construction:

* **conservatism** — SART's estimates never sit meaningfully below the
  SFI estimate (the assumptions are all one-sided: no logical masking,
  conservative unions, conservative loop/control injection);
* **discrimination** — SART separates genuinely-low-AVF nodes from
  genuinely-high-AVF nodes (rank correlation with SFI is positive), which
  is what makes it useful for targeting hardened cells.

Loop-boundary nodes are reported separately: at the calibrated loop pAVF
they are a controlled approximation, the paper's acknowledged tradeoff.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program
from repro.netlist.graph import extract_graph
from repro.ser.correlation import TINYCORE_LOOP_PAVF
from repro.sfi import aggregate_by_node, plan_campaign, run_sfi_campaign

PROGRAM = "lattice2d"
PER_NODE = 40


@pytest.fixture(scope="module")
def data():
    words, dmem = program(PROGRAM), default_dmem(PROGRAM)
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    ports, _, _ = tinycore_structure_ports(PROGRAM, words, dmem, gate_cycles=golden.cycles)
    sart = run_sart(netlist.module, ports,
                    SartConfig(partition_by_fub=False, loop_pavf=TINYCORE_LOOP_PAVF))
    graph = extract_graph(netlist.module)
    seqs = graph.seq_nets()
    sample = seqs[:: max(1, len(seqs) // 40)][:40]
    plans = plan_campaign(sample, golden.cycles - 2, PER_NODE, per_node=True, seed=31)
    campaign = run_sfi_campaign(words, dmem, plans, netlist=netlist)
    per_node = aggregate_by_node(campaign.outcomes)
    return sart, graph, per_node


def test_bench_accuracy_table(benchmark, data):
    sart, graph, per_node = benchmark.pedantic(lambda: data, rounds=1, iterations=1)
    rows = []
    for net, est in sorted(per_node.items(), key=lambda kv: -kv[1].avf):
        node = sart.node_avfs[net]
        lo, _hi = est.interval()
        rows.append([
            graph.nodes[net].inst, node.role, sart.avf(net), est.avf, lo,
            "OK" if sart.avf(net) >= lo else "UNDER",
        ])
    print_table(
        f"SART vs SFI per-node AVF ({PROGRAM}, {PER_NODE} injections/node)",
        ["flop", "role", "SART", "SFI", "SFI lo95", "conservative"],
        rows[:25] + [["...", "", "", "", "", ""]],
    )


def test_bench_nonloop_conservatism(data):
    sart, graph, per_node = data
    nonloop = {
        net: est for net, est in per_node.items()
        if sart.node_avfs[net].role not in ("loop",)
    }
    ok = sum(1 for net, est in nonloop.items()
             if sart.avf(net) >= est.interval()[0])
    frac = ok / len(nonloop)
    print(f"\nnon-loop nodes conservative: {ok}/{len(nonloop)} ({frac:.0%})")
    assert frac >= 0.85


def test_bench_loop_nodes_reported(data):
    sart, graph, per_node = data
    loops = {net: est for net, est in per_node.items()
             if sart.node_avfs[net].role == "loop"}
    if not loops:
        pytest.skip("sample contains no loop nodes")
    under = sum(1 for net, est in loops.items()
                if sart.avf(net) < est.interval()[0])
    mean_sfi = sum(e.avf for e in loops.values()) / len(loops)
    print(f"\nloop nodes: {len(loops)} sampled, SFI mean AVF {mean_sfi:.2f}, "
          f"injected {TINYCORE_LOOP_PAVF}; below-CI count {under} "
          f"(the paper's acknowledged loop-approximation tradeoff)")


def test_bench_group_discrimination(data):
    """SART-low nodes really are low-AVF; SART-high really are higher.

    The paper's intended use is targeting mitigation at block/path
    granularity ("the law of averages will help smooth out
    perturbations"), so discrimination is evaluated at group level:
    the mean SFI AVF of nodes SART calls low must sit clearly below the
    mean of nodes SART calls high.
    """
    sart, graph, per_node = data
    low = [est.avf for net, est in per_node.items() if sart.avf(net) < 0.2]
    high = [est.avf for net, est in per_node.items() if sart.avf(net) >= 0.2]
    assert low and high
    mean_low = sum(low) / len(low)
    mean_high = sum(high) / len(high)
    print(f"\nSFI ground truth by SART class: "
          f"low group ({len(low)} nodes) mean {mean_low:.3f}, "
          f"high group ({len(high)} nodes) mean {mean_high:.3f}")
    assert mean_low < mean_high * 0.6


def test_bench_spurious_write_blind_spot(data):
    """Documents the one systematic divergence class we observed.

    A fault that fabricates an architectural *write* (e.g. flipping a
    store-enable control bit when no store is in flight) is invisible to
    the ACE-flow model: the write port carries no ACE traffic, yet the
    fault corrupts state. SFI sees it; the analytical model cannot —
    a limit inherited from the paper's no-fault-creation data-rate
    abstraction, recorded here so the numbers stay honest.
    """
    sart, graph, per_node = data
    suspects = [
        net for net in per_node
        if (graph.nodes[net].inst or "").endswith("me_is_st")
    ]
    for net in suspects:
        est = per_node[net]
        print(f"\nspurious-write bit {graph.nodes[net].inst}: "
              f"SART={sart.avf(net):.2f} SFI={est.avf:.2f} "
              f"(divergence expected and documented)")
