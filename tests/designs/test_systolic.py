"""Systolic MAC-array generator: the mega-scale substrate.

The generator's two sinks (Module object, streamed EXLIF text) must be
interchangeable — byte-identical EXLIF, identical graphs — and the
array must carry the features the solver is exercised on at scale:
per-tile ACE weight buffers, a ``cfg_*`` control chain, and genuine
accumulator loops, partitioned into tile FUBs.
"""

import pytest

from repro.core.sart import SartConfig, run_sart
from repro.designs.bigcore.systolic import (
    SystolicConfig,
    build_systolic,
    node_count,
    systolic_exlif_text,
    write_systolic_exlif,
)
from repro.netlist.exlif import write_exlif
from repro.netlist.graph import NodeKind, extract_graph

CFG = SystolicConfig(rows=6, cols=5, data_width=4, acc_width=8, tile=4)


@pytest.fixture(scope="module")
def design():
    return build_systolic(CFG)


class TestGenerator:
    def test_streamed_text_is_byte_identical_to_module_export(self, design):
        assert systolic_exlif_text(CFG) == write_exlif(design.module)

    def test_write_to_path(self, design, tmp_path):
        target = tmp_path / "array.exlif"
        write_systolic_exlif(CFG, target)
        assert target.read_text() == write_exlif(design.module)

    def test_node_count_is_exact(self, design):
        graph = extract_graph(design.module)
        assert len(graph) == node_count(CFG)
        # And on non-default shapes, including ragged tile edges.
        for cfg in (
            SystolicConfig(rows=1, cols=1, data_width=1, acc_width=1, tile=1),
            SystolicConfig(rows=3, cols=7, data_width=2, acc_width=5, tile=3),
        ):
            assert len(extract_graph(build_systolic(cfg).module)) == node_count(cfg)

    def test_structures_one_per_tile(self, design):
        assert design.structures == [
            f"WBUF_T{tr}_{tc}" for tr in range(2) for tc in range(2)
        ]
        graph = extract_graph(design.module)
        tagged = {attrs["struct"] for _net, attrs in graph.struct_tagged()}
        assert tagged == set(design.structures)
        # Every weight bit is tagged: rows*cols*data_width struct flops.
        n_tagged = sum(1 for _ in graph.struct_tagged())
        assert n_tagged == CFG.rows * CFG.cols * CFG.data_width

    def test_fub_partition_covers_all_tiles(self, design):
        graph = extract_graph(design.module)
        fubs = {fub for fub in graph.fub_column() if fub}
        assert fubs == {f"TILE_{tr}_{tc}" for tr in range(2) for tc in range(2)}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="rows >= 1"):
            SystolicConfig(rows=0, cols=4)
        with pytest.raises(ValueError, match="acc_width"):
            SystolicConfig(data_width=8, acc_width=4)
        with pytest.raises(ValueError, match="tile"):
            SystolicConfig(tile=0)


class TestSolve:
    def test_run_sart_finds_the_expected_features(self, design):
        result = run_sart(design.module, config=SartConfig(engine="compiled"))
        stats = result.stats
        assert stats["visited_fraction"] == 1.0
        # Every accumulator bit is a loop member; each tile contributes
        # one cfg_* control register.
        assert stats["loop_bits"] >= CFG.rows * CFG.cols * CFG.acc_width
        assert stats["ctrl_bits"] == 4
        fubs = {avf.fub for avf in result.node_avfs.values() if avf.fub}
        assert len(fubs) == 4

    def test_weight_buffer_bits_are_ace_structures(self, design):
        result = run_sart(design.module, config=SartConfig(engine="compiled"))
        from repro.core.resolve import ROLE_STRUCT

        struct_nodes = [
            avf for avf in result.node_avfs.values() if avf.role == ROLE_STRUCT
        ]
        assert len(struct_nodes) == CFG.rows * CFG.cols * CFG.data_width


class TestRegistry:
    def test_resolve_design_builds_the_array(self):
        from repro.pipeline.registry import resolve_design

        provider = resolve_design("systolic@rows=3,cols=3,data_width=2,"
                                  "acc_width=4,tile=2")
        assert provider.ref == "systolic@rows=3,cols=3,data_width=2,acc_width=4,tile=2"
        artifact = provider.build()
        assert artifact.kind == "systolic"
        cfg = SystolicConfig(rows=3, cols=3, data_width=2, acc_width=4, tile=2)
        assert len(artifact.module.instances) == len(
            build_systolic(cfg).module.instances
        )

    def test_fingerprint_tracks_every_parameter(self):
        from repro.pipeline.registry import resolve_design

        base = resolve_design("systolic@rows=4,cols=4").fingerprint()
        assert resolve_design("systolic@rows=4,cols=4").fingerprint() == base
        assert resolve_design("systolic@rows=4,cols=5").fingerprint() != base
        assert resolve_design("systolic@rows=4,cols=4,tile=2").fingerprint() != base

    def test_default_ref_omits_default_params(self):
        from repro.pipeline.registry import resolve_design

        assert resolve_design("systolic").ref == "systolic@rows=8,cols=8"

    def test_bad_parameter_rejected(self):
        from repro.errors import DesignRefError
        from repro.pipeline.registry import resolve_design

        with pytest.raises(DesignRefError, match="unknown design parameter"):
            resolve_design("systolic@depth=3")
        with pytest.raises(DesignRefError, match="not int"):
            resolve_design("systolic@rows=wide")
