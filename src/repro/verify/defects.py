"""Deliberately broken engine variants for mutation-kill testing.

An oracle that never fires is indistinguishable from an oracle that
stopped looking. Each entry here is a *seeded defect*: a corruption of
exactly one seam the matching oracle reads through — a perturbed
dataflow engine, an out-of-range resolver, a bit-flipping simulator
backend, an optimistic analytic model, a tampered golden. The
mutation-kill suite (``tests/verify/test_mutation_kill.py``) and
``repro-sart verify --inject-defect <name>`` both prove the oracle
catches its defect, so the harness's sensitivity is itself under test.

Defects are intentionally *small* (one node nudged, one bit flipped):
an oracle that only catches gross corruption would pass a mutation-kill
test with a sledgehammer defect but miss real regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.resolve import NodeAvf, ROLE_CTRL, ROLE_STRUCT
from repro.core.sart import SartResult


@dataclass(frozen=True)
class Defect:
    """One seeded defect and the oracle that must catch it."""

    name: str
    oracle: str                 # oracle name expected to fire
    description: str
    # Seam hooks; each defect sets exactly the one its oracle reads.
    mutate_sart: Callable[[str, SartResult], SartResult] | None = None
    make_sim: Callable | None = None
    analytic: Callable[[str], float] | None = None
    corrupt_corpus: Callable[[dict], dict] | None = None
    corrupt_deadlines: Callable[[dict], dict] | None = None
    derated: Callable[[str], float] | None = None


def _replace_node(result: SartResult, net: str, **changes) -> SartResult:
    node_avfs = dict(result.node_avfs)
    node_avfs[net] = node_avfs[net]._replace(**changes)
    out = SartResult(**{**result.__dict__, "node_avfs": node_avfs})
    return out


def _pick(result: SartResult, predicate) -> str | None:
    """Deterministically pick one node satisfying *predicate*."""
    for net in sorted(result.node_avfs):
        if predicate(result.node_avfs[net]):
            return net
    return None


# ----------------------------------------------------------------------
# the individual defects
# ----------------------------------------------------------------------

def _cross_engine_mutation(engine: str, result: SartResult) -> SartResult:
    if engine != "dataflow":
        return result
    net = _pick(result, lambda n: n.role not in (ROLE_STRUCT,))
    if net is None:
        return result
    node = result.node_avfs[net]
    nudged = min(1.0, node.avf + 1e-6) if node.avf < 0.5 else max(0.0, node.avf - 1e-6)
    return _replace_node(result, net, avf=nudged)


def _range_mutation(engine: str, result: SartResult) -> SartResult:
    if engine != "compiled":
        return result
    net = _pick(result, lambda n: True)
    return _replace_node(result, net, avf=1.0000001)


def _min_resolution_mutation(engine: str, result: SartResult) -> SartResult:
    if engine != "compiled":
        return result
    net = _pick(
        result,
        lambda n: n.role not in (ROLE_STRUCT, ROLE_CTRL, "loop")
        and min(n.forward, n.backward) <= 0.9,
    )
    if net is None:
        return result
    node = result.node_avfs[net]
    bound = min(node.forward, node.backward)
    return _replace_node(result, net, avf=min(1.0, bound + 0.05))


def _ctrl_mutation(engine: str, result: SartResult) -> SartResult:
    if engine != "compiled":
        return result
    net = _pick(result, lambda n: n.role == ROLE_CTRL)
    if net is None:
        return result
    return _replace_node(result, net, avf=0.5)


def _loop_monotonicity_mutation(engine: str, result: SartResult) -> SartResult:
    # Scale non-structure AVFs by a factor *decreasing* in the injected
    # loop pAVF: the Figure 8 sweep then slopes the wrong way.
    factor = 1.0 - 0.4 * result.config.loop_pavf
    node_avfs = {}
    changed = False
    for net, node in result.node_avfs.items():
        if node.role == ROLE_STRUCT:
            node_avfs[net] = node
            continue
        node_avfs[net] = node._replace(avf=node.avf * factor)
        changed = changed or node.avf > 0.0
    if not changed:
        return result
    return SartResult(**{**result.__dict__, "node_avfs": node_avfs})


class _BitrotSimulator:
    """Delegating simulator wrapper that flips one lane bit mid-run."""

    def __init__(self, inner, trip_cycle: int = 2):
        self._inner = inner
        self._steps = 0
        self._trip = trip_cycle

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def step(self) -> None:
        self._inner.step()
        self._steps += 1
        if self._steps == self._trip and self._inner.lanes >= 2:
            victim = None
            for inst in self._inner.module.instances.values():
                if inst.kind == "DFF":
                    victim = inst.conn["q"]
                    break
            if victim is not None:
                self._inner.flip(victim, 1 << 1)


def _bitrot_make_sim(module, lanes=1, backend=None):
    from repro.rtlsim.backends import make_simulator

    sim = make_simulator(module, lanes=lanes, backend=backend)
    if backend == "numpy":
        return _BitrotSimulator(sim)
    return sim


def _optimistic_analytic(program: str) -> float:
    return 0.001  # far below any real tinycore SFI interval


def _inflate_deadline_bin(summaries: dict) -> dict:
    """Nudge one histogram bin weight up by one bit-cycle.

    The smallest corruption a buggy accumulator could produce — one
    segment double-counted — which breaks mass conservation against the
    structure's ACE bit-cycle total without touching the quantiles.
    """
    corrupted = {name: dict(s) for name, s in summaries.items()}
    for name in sorted(corrupted):
        if corrupted[name].get("events"):
            corrupted[name]["mass_cycles"] = (
                float(corrupted[name].get("mass_cycles", 0.0)) + 1.0)
            break
    return corrupted


def _underderated_rate(program: str) -> float:
    return 1e-9  # masking model derates everything away: far below any beam


def _corrupt_corpus_entry(entry: dict) -> dict:
    corrupted = dict(entry)
    expected = dict(corrupted.get("expected", {}))
    expected["weighted_seq_avf"] = (
        float(expected.get("weighted_seq_avf", 0.0)) + 0.1)
    corrupted["expected"] = expected
    return corrupted


DEFECTS: dict[str, Defect] = {
    d.name: d
    for d in (
        Defect(
            name="cross-engine",
            oracle="cross-engine",
            description="dataflow engine nudges one node AVF by 1e-6",
            mutate_sart=_cross_engine_mutation,
        ),
        Defect(
            name="range",
            oracle="range",
            description="compiled resolver emits an AVF of 1.0000001",
            mutate_sart=_range_mutation,
        ),
        Defect(
            name="min-resolution",
            oracle="min-resolution",
            description="resolver returns min(f, b) + 0.05 for one node",
            mutate_sart=_min_resolution_mutation,
        ),
        Defect(
            name="ctrl-pinned",
            oracle="ctrl-pinned",
            description="one control register resolves to 0.5, not 1.0",
            mutate_sart=_ctrl_mutation,
        ),
        Defect(
            name="loop-monotonicity",
            oracle="loop-monotonicity",
            description="AVFs scaled by a factor decreasing in loop pAVF",
            mutate_sart=_loop_monotonicity_mutation,
        ),
        Defect(
            name="cross-backend",
            oracle="cross-backend",
            description="numpy backend flips one lane bit after 2 cycles",
            make_sim=_bitrot_make_sim,
        ),
        Defect(
            name="sfi-consistency",
            oracle="sfi-consistency",
            description="analytic model reports a near-zero sequential AVF",
            analytic=_optimistic_analytic,
        ),
        Defect(
            name="golden-corpus",
            oracle="golden-corpus",
            description="stored golden weighted_seq_avf shifted by +0.1",
            corrupt_corpus=_corrupt_corpus_entry,
        ),
        Defect(
            name="deadline-sanity",
            oracle="deadline-sanity",
            description="one deadline histogram bin gains a bit-cycle "
                        "of mass (conservation broken)",
            corrupt_deadlines=_inflate_deadline_bin,
        ),
        Defect(
            name="derated-ser",
            oracle="derated-ser",
            description="derated SER model reports a near-zero rate",
            derated=_underderated_rate,
        ),
    )
}


def get_defect(name: str) -> Defect:
    try:
        return DEFECTS[name]
    except KeyError:
        raise ValueError(
            f"unknown defect {name!r}; available: {sorted(DEFECTS)}"
        ) from None
