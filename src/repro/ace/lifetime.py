"""ACE lifetime analysis (Mukherjee et al. [1]; paper Eq 3).

The analyzer consumes write/read/release events from the performance
model's structures and integrates, per structure, the number of
bit-cycles during which the structure held ACE (or unknown) state:

* a segment opens at a write with its ACE bit count;
* ACE residency accrues from the write to the **last read** of the
  segment (data read later is needed that long);
* the idle tail between the last read and the overwrite/eviction is
  un-ACE when the release is marked *consumed*, and entirely un-ACE when
  the value was never read and the release says so;
* segments still open when simulation ends are **unknown** and counted as
  ACE, exactly as Eq 3 prescribes ("ACE+unknown bits").

``StructureAvf.avf`` is then ACE bit-cycles divided by (bits x cycles).
The same event stream feeds the port counters used for pAVF extraction
(:mod:`repro.ace.portavf`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AceError


@dataclass
class _Segment:
    start: int
    ace_bits: int
    last_read: int | None = None
    reads: int = 0


@dataclass
class StructureAvf:
    """Per-structure accumulators and derived metrics."""

    name: str
    entries: int
    bits_per_entry: int
    nread: int = 1
    nwrite: int = 1
    ace_bit_cycles: float = 0.0
    unknown_bit_cycles: float = 0.0
    total_reads: int = 0
    ace_reads: int = 0
    total_writes: int = 0
    ace_writes: int = 0
    ace_read_bitsum: float = 0.0   # sum of ace_bits over segments, per read
    ace_write_bitsum: float = 0.0  # sum of ace_bits over writes
    cycles: int = 0

    def avf(self) -> float:
        """Structure AVF per Eq 3 (unknown counted as ACE)."""
        denom = self.entries * self.bits_per_entry * max(1, self.cycles)
        return min(1.0, (self.ace_bit_cycles + self.unknown_bit_cycles) / denom)

    def pavf_r(self) -> float:
        """Read-port pAVF: ACE reads per simulated cycle (per port)."""
        return min(1.0, self.ace_reads / (max(1, self.cycles) * self.nread))

    def pavf_w(self) -> float:
        """Write-port pAVF: ACE writes per simulated cycle (per port)."""
        return min(1.0, self.ace_writes / (max(1, self.cycles) * self.nwrite))

    def pavf_r_bitwise(self) -> float:
        """Bit-weighted read pAVF (bit-field refinement).

        Weights each ACE read by the fraction of the entry's bits that
        were ACE, so control structures with sparse ACE fields get the
        "much less conservative" value of Section 5.1.
        """
        denom = max(1, self.cycles) * self.nread * self.bits_per_entry
        return min(1.0, self.ace_read_bitsum / denom)

    def pavf_w_bitwise(self) -> float:
        denom = max(1, self.cycles) * self.nwrite * self.bits_per_entry
        return min(1.0, self.ace_write_bitsum / denom)

    def ace_throughput(self) -> float:
        """ACE values entering per cycle (Little's-law throughput term)."""
        return self.ace_writes / max(1, self.cycles)


class AceLifetimeAnalyzer:
    """Implements the :class:`~repro.perfmodel.structures.EventRecorder`."""

    def __init__(self) -> None:
        self.structures: dict[str, StructureAvf] = {}
        self._open: dict[tuple[str, int], _Segment] = {}
        self._latency_sum: dict[str, float] = {}
        self._latency_count: dict[str, int] = {}
        self._finished = False

    def register(
        self, name: str, entries: int, bits_per_entry: int, nread: int = 1, nwrite: int = 1
    ) -> None:
        if name in self.structures:
            raise AceError(f"structure {name!r} registered twice")
        self.structures[name] = StructureAvf(
            name=name, entries=entries, bits_per_entry=bits_per_entry,
            nread=nread, nwrite=nwrite,
        )

    def _require(self, struct: str) -> StructureAvf:
        found = self.structures.get(struct)
        if found is None:
            raise AceError(f"events for unregistered structure {struct!r}")
        return found

    # ------------------------------------------------------------------
    # EventRecorder interface
    # ------------------------------------------------------------------
    def on_write(
        self, struct: str, entry: int, cycle: int, ace: bool, ace_bits: int | None, bits: int
    ) -> None:
        stats = self._require(struct)
        key = (struct, entry)
        previous = self._open.pop(key, None)
        if previous is not None:
            self._close_segment(stats, previous, cycle, consumed=previous.reads > 0)
        effective_bits = ace_bits if ace_bits is not None else (bits if ace else 0)
        self._open[key] = _Segment(start=cycle, ace_bits=effective_bits)
        stats.total_writes += 1
        if effective_bits > 0:
            stats.ace_writes += 1
            stats.ace_write_bitsum += effective_bits

    def on_read(self, struct: str, entry: int, cycle: int, ace: bool) -> None:
        stats = self._require(struct)
        segment = self._open.get((struct, entry))
        if segment is None:
            raise AceError(f"{struct}[{entry}]: read before write")
        segment.last_read = cycle
        segment.reads += 1
        stats.total_reads += 1
        if ace and segment.ace_bits > 0:
            stats.ace_reads += 1
            stats.ace_read_bitsum += segment.ace_bits

    def on_release(self, struct: str, entry: int, cycle: int, consumed: bool) -> None:
        stats = self._require(struct)
        segment = self._open.pop((struct, entry), None)
        if segment is None:
            raise AceError(f"{struct}[{entry}]: release before write")
        self._close_segment(stats, segment, cycle, consumed=consumed)

    # ------------------------------------------------------------------
    def _close_segment(
        self, stats: StructureAvf, segment: _Segment, end: int, consumed: bool
    ) -> None:
        if segment.ace_bits <= 0:
            return
        if segment.last_read is not None:
            span = max(0, segment.last_read - segment.start)
        elif consumed:
            # Consumed at release without an explicit read event
            # (e.g. drained): the whole residency mattered.
            span = max(0, end - segment.start)
        else:
            span = 0  # written, never needed: un-ACE residency
        stats.ace_bit_cycles += span * segment.ace_bits
        self._latency_sum[stats.name] = self._latency_sum.get(stats.name, 0.0) + span
        self._latency_count[stats.name] = self._latency_count.get(stats.name, 0) + 1

    def finish(self, cycles: int) -> dict[str, StructureAvf]:
        """Close the analysis window; open segments become 'unknown'."""
        if self._finished:
            raise AceError("finish() called twice")
        self._finished = True
        for (struct, _entry), segment in self._open.items():
            if segment.ace_bits > 0:
                stats = self.structures[struct]
                stats.unknown_bit_cycles += max(0, cycles - segment.start) * segment.ace_bits
        self._open.clear()
        for stats in self.structures.values():
            stats.cycles = cycles
        return self.structures

    def mean_ace_latency(self, struct: str) -> float:
        """Average ACE residency per value (Little's-law latency term)."""
        count = self._latency_count.get(struct, 0)
        return self._latency_sum.get(struct, 0.0) / count if count else 0.0
