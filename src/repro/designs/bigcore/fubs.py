"""Per-FUB synthetic fabric generation.

Each FUB is generated from a :class:`FubTemplate` into a shared builder:

* **latch arrays** — rows of DFFs tagged ``struct``/``bit``; their Q bits
  source the fabric (read ports) and their D bits sink it (write ports);
* **control registers** — DFFs named ``cfg_*`` (picked up by the
  control-register detector), rarely-written configuration state;
* **FSM loops** — small feedback state machines (counters with enables
  and cross-coupled state) that SCC detection must find;
* **random fabric** — layers of gates and pipeline flops connecting
  sources to sinks with seeded joins and splits.

The generator guarantees structural legality (every net driven exactly
once, no combinational cycles) by only ever consuming nets that already
exist when a gate is created; feedback goes through DFF D-pins declared
up front.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netlist.builder import ModuleBuilder


@dataclass(frozen=True)
class FubTemplate:
    """Size knobs of one synthetic FUB."""

    name: str
    arrays: int = 2              # latch arrays (ACE structures)
    array_width: int = 24
    fabric_flops: int = 400      # pipeline/staging flops
    fabric_layers: int = 8
    fsms: int = 2                # feedback loops
    fsm_bits: int = 4
    ctrl_regs: int = 12
    inputs: int = 24             # FUBIO in
    outputs: int = 24            # FUBIO out
    join_fraction: float = 0.35  # gate inputs drawn from two sources
    structure_kind: str = "queue"  # which perf-model structure it maps to


@dataclass
class FubResult:
    """What one generated FUB exposes."""

    name: str
    arrays: list[tuple[str, int]]   # (structure name, width)
    input_ports: list[str]
    output_ports: list[str]
    seq_count: int
    loop_bits: int


def generate_fub(
    b: ModuleBuilder,
    template: FubTemplate,
    rng: random.Random,
    external_inputs: list[str],
) -> FubResult:
    """Emit one FUB into *b*; returns its interface and inventory.

    *external_inputs* are nets from other FUBs (or top-level inputs) wired
    to this FUB's input side.
    """
    fub = template.name
    at = {"fub": fub}
    seq_count = 0
    loop_bits = 0

    # ------------------------------------------------------------------
    # sources pool: external inputs enter through input staging flops
    # ------------------------------------------------------------------
    pool: list[str] = []
    for i, net in enumerate(external_inputs[: template.inputs]):
        staged = b.dff(net, name=f"{fub}/in_stage[{i}]", attrs=at)
        pool.append(staged)
        seq_count += 1

    # ------------------------------------------------------------------
    # control registers (cfg_* naming convention; written from the fabric
    # via a gated path so they have a driver but near-zero write traffic)
    # ------------------------------------------------------------------
    ctrl_outs: list[str] = []
    for i in range(template.ctrl_regs):
        src = rng.choice(pool) if pool else b.const0(attrs=at)
        q = b.dff(src, name=f"{fub}/cfg_reg[{i}]", attrs=at)
        ctrl_outs.append(q)
        seq_count += 1
    pool.extend(ctrl_outs)

    # ------------------------------------------------------------------
    # FSM loops: cross-coupled state bits (pointer/stall style loops)
    # ------------------------------------------------------------------
    for k in range(template.fsms):
        state = [f"{fub}/fsm{k}_s[{i}]" for i in range(template.fsm_bits)]
        for net in state:
            b.module.add_net(net)
        stim = rng.choice(pool) if pool else b.const0(attrs=at)
        for i in range(template.fsm_bits):
            other = state[(i + 1) % template.fsm_bits]
            nxt = b.xor_(state[i], other, attrs=at)
            gated = b.and_(nxt, stim, attrs=at) if i % 2 == 0 else nxt
            b.dff(gated, q=state[i], name=f"{fub}/fsm{k}_r[{i}]", attrs=at)
            seq_count += 1
            loop_bits += 1
        pool.extend(state)

    # ------------------------------------------------------------------
    # latch arrays: declare D nets up front, Q bits join the pool
    # ------------------------------------------------------------------
    arrays: list[tuple[str, int]] = []
    array_sinks: list[str] = []
    for a in range(template.arrays):
        sname = f"{fub}.arr{a}"
        arrays.append((sname, template.array_width))
        for bit in range(template.array_width):
            d_net = f"{fub}/arr{a}_d[{bit}]"
            b.module.add_net(d_net)
            q = b.dff(
                d_net,
                name=f"{fub}/arr{a}_q[{bit}]",
                attrs={"fub": fub, "struct": sname, "bit": str(bit)},
            )
            pool.append(q)
            array_sinks.append(d_net)
            seq_count += 1

    # ------------------------------------------------------------------
    # random fabric: layered gates + staging flops
    # ------------------------------------------------------------------
    flops_left = template.fabric_flops
    per_layer = max(1, template.fabric_flops // max(1, template.fabric_layers))
    for layer in range(template.fabric_layers):
        new_nets: list[str] = []
        for j in range(per_layer):
            if flops_left <= 0:
                break
            a_net = rng.choice(pool)
            if rng.random() < template.join_fraction:
                b_net = rng.choice(pool)
                kind = rng.choice(("AND", "OR", "XOR", "NAND", "NOR"))
                gated = b.gate(kind, [a_net, b_net], attrs=at)
            else:
                gated = b.gate(rng.choice(("BUF", "NOT")), [a_net], attrs=at)
            q = b.dff(gated, name=f"{fub}/p{layer}_{j}", attrs=at)
            new_nets.append(q)
            seq_count += 1
            flops_left -= 1
        pool.extend(new_nets)

    # ------------------------------------------------------------------
    # sinks: every array D bit and every output port driven from the pool
    # ------------------------------------------------------------------
    for d_net in array_sinks:
        src = rng.choice(pool)
        other = rng.choice(pool)
        b.gate("AND", [src, other], out=d_net, attrs=at)

    output_ports: list[str] = []
    for i in range(template.outputs):
        net = f"{fub}/out[{i}]"
        src = rng.choice(pool)
        b.gate("BUF", [src], out=net, attrs=at)
        output_ports.append(net)

    return FubResult(
        name=fub,
        arrays=arrays,
        input_ports=list(external_inputs[: template.inputs]),
        output_ports=output_ports,
        seq_count=seq_count,
        loop_bits=loop_bits,
    )
