"""Bit Field Analysis (paper Section 5.1).

"Many structures, especially control structures, tended to hold bits that
were used in different ways ... Not all the bit fields were ACE
simultaneously, but rather depended on the instruction, data type, or
other micro-architectural details. As a result, we modeled each bit field
of these structures as a separate ACE structure."

A :class:`FieldSpec` names a bit field and gives the predicate deciding
whether that field is ACE for a given instruction. :func:`ace_bits_for`
evaluates a field list against an instruction and returns the number of
ACE bits, which the lifetime analyzer weights instead of the full entry
width — exactly the refinement that makes control-structure pAVFs "much
less conservative".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # bitfield must not import perfmodel at runtime: the
    # pipeline imports these field tables, and a package-level cycle would
    # result. Predicates only touch Inst attributes, so opcode classes are
    # referenced by their string names here.
    from repro.perfmodel.isa import Inst


@dataclass(frozen=True)
class FieldSpec:
    """One bit field of a structure entry."""

    name: str
    bits: int
    # Predicate: is this field ACE for this (ACE) instruction?
    is_ace: Callable[["Inst"], bool]


def _always(_inst: "Inst") -> bool:
    return True


def _has_imm(inst: "Inst") -> bool:
    return inst.imm


def _is_memory(inst: "Inst") -> bool:
    return inst.op in ("load", "store")


def _is_branch(inst: "Inst") -> bool:
    return inst.op == "branch"


def _has_dst(inst: "Inst") -> bool:
    return inst.writes_register()


# Instruction-queue entry layout (64 bits).
IQ_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("opcode", 8, _always),
    FieldSpec("srcs", 14, _always),
    FieldSpec("dst", 8, _has_dst),
    FieldSpec("imm", 16, _has_imm),
    FieldSpec("memmeta", 10, _is_memory),
    FieldSpec("brmeta", 8, _is_branch),
)

# Reorder-buffer entry layout (96 bits).
ROB_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("status", 8, _always),
    FieldSpec("pc", 32, _is_branch),        # needed to redirect on branches
    FieldSpec("dst", 8, _has_dst),
    FieldSpec("result", 32, _has_dst),
    FieldSpec("memmeta", 8, _is_memory),
    FieldSpec("flags", 8, _always),
)


def total_bits(fields: Sequence[FieldSpec]) -> int:
    return sum(f.bits for f in fields)


def ace_bits_for(fields: Sequence[FieldSpec], inst: "Inst") -> int:
    """ACE bit count of one entry holding *inst*.

    An un-ACE instruction has zero ACE bits regardless of fields; for an
    ACE instruction only the fields whose predicate holds contribute.
    """
    if not inst.ace:
        return 0
    return sum(f.bits for f in fields if f.is_ace(inst))


def field_breakdown(fields: Sequence[FieldSpec], insts) -> dict[str, float]:
    """Average ACE fraction per field over ACE instructions (diagnostics)."""
    counts = {f.name: 0 for f in fields}
    n_ace = 0
    for inst in insts:
        if not inst.ace:
            continue
        n_ace += 1
        for f in fields:
            if f.is_ace(inst):
                counts[f.name] += 1
    if not n_ace:
        return {f.name: 0.0 for f in fields}
    return {name: c / n_ace for name, c in counts.items()}
