"""Unit tests for the Figure 10 correlation layer (`ser/correlation.py`).

The heavy end-to-end path (beam + SART on real workloads) is covered by
`tests/ser/test_ser.py` and the Figure 10 benchmark; these tests pin the
row arithmetic, including the degenerate inputs: an empty campaign
(zero measured events), a single-component model, and zero-variance
(constant) AVF vectors where proxy and SART agree exactly.
"""

from __future__ import annotations

import pytest

from repro.ser.beam import BeamResult
from repro.ser.correlation import (
    TINYCORE_LOOP_PAVF,
    CorrelationRow,
    model_rates,
)


def make_row(*, sdc_events=8, exposures=100, cycles_per_run=200,
             modeled_proxy=1e-3, modeled_sart=5e-4,
             seq_avf_proxy=0.6, seq_avf_sart=0.3) -> CorrelationRow:
    measured = BeamResult(sdc_events=sdc_events, due_events=0,
                          exposures=exposures, cycles_per_run=cycles_per_run,
                          strikes=50, storage_bits=300, flux=2e-5)
    return CorrelationRow(workload="synthetic", measured=measured,
                          modeled_proxy=modeled_proxy,
                          modeled_sart=modeled_sart,
                          seq_avf_proxy=seq_avf_proxy,
                          seq_avf_sart=seq_avf_sart,
                          sart=None)


def test_normalized_uses_measured_as_unit():
    row = make_row(sdc_events=20, exposures=100, cycles_per_run=100,
                   modeled_proxy=4e-3, modeled_sart=2e-3)
    rates = row.normalized()
    assert rates["measured"] == 1.0
    assert rates["proxy"] == pytest.approx(2.0)
    assert rates["sart"] == pytest.approx(1.0)


def test_normalized_with_empty_campaign():
    # Zero measured events: the reference falls back to 1.0 instead of
    # dividing by zero, and the modeled rates pass through unscaled.
    row = make_row(sdc_events=0, modeled_proxy=1e-3, modeled_sart=5e-4)
    assert row.measured_rate == 0.0
    rates = row.normalized()
    assert rates["proxy"] == pytest.approx(1e-3)
    assert rates["sart"] == pytest.approx(5e-4)


def test_sequential_avf_reduction():
    row = make_row(seq_avf_proxy=0.6, seq_avf_sart=0.3)
    assert row.sequential_avf_reduction == pytest.approx(0.5)


def test_sequential_avf_reduction_degenerate_proxy():
    # Zero-variance all-zero proxy AVF vector: reduction is defined as 0.
    row = make_row(seq_avf_proxy=0.0, seq_avf_sart=0.0)
    assert row.sequential_avf_reduction == 0.0


def test_zero_variance_avf_vectors_agree():
    # Proxy == SART (constant AVF everywhere): no reduction, and both
    # models produce the same rate, so no correlation improvement either.
    row = make_row(seq_avf_proxy=0.4, seq_avf_sart=0.4,
                   modeled_proxy=8e-4, modeled_sart=8e-4)
    assert row.sequential_avf_reduction == pytest.approx(0.0)
    assert row.correlation_improvement == pytest.approx(0.0)


def test_correlation_improvement():
    # measured 4e-4/cycle; proxy off by 6e-4, SART off by 1e-4 -> ~83 %.
    row = make_row(sdc_events=8, exposures=100, cycles_per_run=200,
                   modeled_proxy=1e-3, modeled_sart=5e-4)
    assert row.measured_rate == pytest.approx(4e-4)
    assert row.correlation_improvement == pytest.approx(1.0 - 1e-4 / 6e-4)


def test_correlation_improvement_perfect_proxy():
    # Proxy already exact: gap 0, improvement defined as 0 (not a div0).
    row = make_row(sdc_events=8, exposures=100, cycles_per_run=200,
                   modeled_proxy=4e-4, modeled_sart=4e-4)
    assert row.correlation_improvement == 0.0


def test_within_measurement_error_uses_poisson_interval():
    row = make_row(sdc_events=9, exposures=100, cycles_per_run=100,
                   modeled_sart=9e-4)
    low, high = row.measured.rate_interval()
    assert low <= row.modeled_sart <= high
    assert row.within_measurement_error
    far_off = make_row(sdc_events=9, exposures=100, cycles_per_run=100,
                       modeled_sart=1.0)
    assert not far_off.within_measurement_error


def test_tinycore_loop_pavf_is_calibrated_between_bounds():
    # Calibration contract from the module docstring: between the
    # paper's 0.3 prescription and the dominant structure AVF (~0.6).
    assert 0.3 <= TINYCORE_LOOP_PAVF <= 0.6


@pytest.mark.slow
def test_model_rates_sart_below_proxy_on_real_workload():
    proxy_rate, sart_rate, proxy_avf, sart_avf, sart = model_rates(
        "fib", flux=2e-5)
    # SART refines the conservative proxy downward but stays positive.
    assert 0.0 < sart_rate <= proxy_rate
    assert 0.0 < sart_avf <= proxy_avf <= 1.0
    assert sart.node_avfs
