"""Typed stage artifacts for the analysis pipeline.

The paper's flow is staged — perf-model trace -> ACE lifetime -> port
pAVFs -> netlist graph -> SART propagation -> report — and each stage
boundary here gets a frozen dataclass with a stable content fingerprint
(:mod:`repro.pipeline.fingerprint`). Stage functions
(:mod:`repro.pipeline.stages`) produce them, the artifact store
(:mod:`repro.pipeline.store`) persists the expensive ones, and the
runner (:mod:`repro.pipeline.runner`) wires them together from a
declarative run-spec.

Artifact types
--------------

``DesignArtifact``
    A built design: the netlist :class:`~repro.netlist.netlist.Module`
    plus whatever design-specific inventory downstream stages need
    (tinycore netlist + program words, bigcore FUB inventory).
``GoldenRun``
    The durable facts of a fault-free gate-level run: cycle count and
    the architectural observation surface. Both the SART branch (cycle
    normalization) and the SFI branch (campaign planning) consume it, so
    one golden run feeds both.
``PortEnv``
    The structure port-AVF table SART binds into its environment, with
    provenance (archsim ACE analysis, the bigcore ACE workload suite, a
    ports file, or none).
``PlanArtifact``
    A lowered :class:`~repro.core.compiled.SolvePlan` — the expensive
    structural half of a compiled SART run, reusable across sweeps and
    invocations.
``SartOutcome``
    One SART solve: the full :class:`~repro.core.sart.SartResult`.
``CampaignOutcome``
    One SFI or beam campaign: the classified outcome set plus the
    planning context it was derived from.

All artifacts are frozen; ``cached`` records whether the instance was
loaded from the store (it is excluded from equality/fingerprints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartResult
from repro.netlist.netlist import Module


@dataclass(frozen=True)
class DesignArtifact:
    """A built design plus the inventory downstream stages need."""

    ref: str                     # normalized registry reference
    kind: str                    # "tinycore" | "bigcore" | "exlif"
    fingerprint: str
    module: Module               # flattened analysis target
    # tinycore: the simulable netlist and its program image.
    netlist: Any = None          # TinycoreNetlist | None
    program: tuple[int, ...] | None = None
    dmem: tuple[int, ...] | None = None
    program_name: str | None = None
    # bigcore: the generated design inventory (structure_kinds etc.).
    design: Any = None           # BigcoreDesign | None

    def describe(self) -> str:
        return f"{self.ref} [{self.fingerprint[:12]}]"


@dataclass(frozen=True)
class GoldenRun:
    """Fault-free gate-level run facts (the SDC observability surface)."""

    fingerprint: str
    cycles: int
    outputs: tuple[int, ...]     # lane-0 output-port stream
    halted: bool                 # lane 0 reached HALT
    cached: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class PortEnv:
    """Structure port AVFs bound into the SART environment."""

    fingerprint: str
    ports: Mapping[str, StructurePorts] | None
    source: str                  # "archsim" | "ace-suite" | "file" | "none"
    # archsim provenance (tinycore): ACE fraction of the traced program.
    ace_fraction: float | None = None
    # ACE-suite provenance (bigcore): suite size and the rendered
    # Figure-9-style structure table, so warm runs print the same report.
    workloads: int = 0
    ace_table: str | None = None
    # Per-structure error-reporting deadline distributions (JSON-safe
    # summaries from the ACE lifetime analyzer); None when the port
    # source carries no event timing (ports files, pre-deadline caches).
    deadlines: Mapping[str, Mapping] | None = None
    cached: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class PlanArtifact:
    """A reusable compiled SolvePlan with its provenance fingerprint.

    ``format`` is the on-disk plan layout version
    (:data:`repro.core.compiled.PLAN_FORMAT`); it travels with cached
    artifacts so stale store entries from older layouts are detectable.
    """

    fingerprint: str
    plan: Any                    # repro.core.compiled.SolvePlan
    cached: bool = field(default=False, compare=False)
    format: int = 2              # repro.core.compiled.PLAN_FORMAT at build
    # Lazily computed per-FUB sub-fingerprints (repro.pipeline.delta);
    # memoized because ECO paths ask several times per plan.
    _fub_fps: Any = field(default=None, compare=False, repr=False)

    @property
    def n(self) -> int:
        return self.plan.n

    @property
    def fub_fingerprints(self) -> dict[str, str]:
        """Per-FUB structural sub-fingerprints of the lowered plan."""
        if self._fub_fps is None:
            from repro.pipeline.delta import fub_fingerprints

            object.__setattr__(self, "_fub_fps", fub_fingerprints(self.plan))
        return self._fub_fps


@dataclass(frozen=True)
class SartOutcome:
    """One SART solve (propagation + resolution + per-FUB report)."""

    fingerprint: str
    result: SartResult
    plan_fingerprint: str | None = None
    cached: bool = field(default=False, compare=False)
    # ECO mode: per-FUB sub-fingerprints of the plan this solve ran on,
    # and how the per-(FUB, direction) store lookups went. ``warm``
    # means the relaxation was seeded from cached sub-solutions and only
    # the dirty set re-solved.
    fub_fingerprints: Mapping[str, str] | None = None
    fub_hits: int = 0
    fub_misses: int = 0
    warm: bool = False
    dirty_fubs: tuple[str, ...] = ()


@dataclass(frozen=True)
class CampaignOutcome:
    """One SFI or beam campaign, with its planning context."""

    fingerprint: str
    kind: str                    # "sfi" | "beam"
    result: Any                  # CampaignResult | BeamResult
    injections: int = 0          # planned injections (sfi)
    golden_cycles: int = 0       # campaign window (sfi)
    cached: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class DeratingArtifact:
    """Per-flop logic-derating analysis (combinational masking).

    ``summary`` is the population view from
    :meth:`repro.ser.derating.DeratingResult.to_summary`;
    ``flop_derating`` the full per-flop factor table.
    ``derated_seq_avf`` is the mean of ``avf x derating`` over the
    design's sequential nodes when a SART solve accompanied the run.
    ``mc`` carries the Monte-Carlo masking validation summary when the
    spec asked for one (tinycore only).
    """

    fingerprint: str
    summary: Mapping[str, Any]
    flop_derating: Mapping[str, float]
    derated_seq_avf: float | None = None
    mc: Mapping[str, Any] | None = None
    cached: bool = field(default=False, compare=False)
