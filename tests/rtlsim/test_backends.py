"""Cross-backend equivalence: python and numpy must agree bit-for-bit.

Both backends implement the same simulation contract over different
lane-parallel value representations (bigints vs uint64 word vectors).
These tests drive identical netlists with identical pokes and flips at
awkward lane widths — 1, 63, 64 (one word exactly), 65 (first word
spill) and 256 — and require identical ``peek``/``seq_state``/
``lanes_differing_from`` results everywhere.
"""

import random

import pytest

from repro.errors import CampaignError, SimulationError
from repro.netlist import wordlib
from repro.netlist.builder import ModuleBuilder
from repro.rtlsim.backends import (
    MAX_LANES,
    available_backends,
    get_backend,
    make_simulator,
    preferred_fault_lanes,
)

pytest.importorskip("numpy")

LANE_WIDTHS = (1, 63, 64, 65, 256)


def _counter(width=4):
    b = ModuleBuilder("ctr")
    b.input("unused")
    q_nets = [f"q[{i}]" for i in range(width)]
    for n in q_nets:
        b.module.add_net(n)
    nxt = wordlib.increment(b, q_nets)
    for i in range(width):
        b.dff(nxt[i], q=q_nets[i], name=f"ff{i}")
    return b.done(), q_nets


def _mem_module():
    b = ModuleBuilder("m")
    ra = b.input_bus("ra", 3)
    wa = b.input_bus("wa", 3)
    wd = b.input_bus("wd", 8)
    b.input("we")
    rd = b.mem(8, 8, [ra], wa, wd, "we", name="arr", init=[10, 20, 30])[0]
    for i in range(8):
        b.output(f"rd[{i}]")
        b.gate("BUF", [rd[i]], out=f"rd[{i}]")
    return b.done(), ra, wa, wd


def _mixed_logic_module():
    """Exercise every cell kind the code generators special-case."""
    b = ModuleBuilder("mix")
    a, c, s = b.input("a"), b.input("c"), b.input("s")
    n = b.gate("NOT", [a])
    x1 = b.gate("AND", [a, c])
    x2 = b.gate("NAND", [a, c, n])
    x3 = b.gate("OR", [x1, x2])
    x4 = b.gate("NOR", [x3, c])
    x5 = b.gate("XOR", [x4, a])
    x6 = b.gate("XNOR", [x5, c])
    x7 = b.gate("MUX2", [x6, x2, s])
    q = b.dff(x7, name="qff")
    b.dff(q, en=s, name="qen")
    return b.done(), [x1, x2, x3, x4, x5, x6, x7, q]


def _assert_same_state(sims, nets, lanes):
    ref = sims[0]
    for other in sims[1:]:
        for net in nets:
            assert ref.peek(net) == other.peek(net), (net, lanes)
        for lane in {0, 1, lanes // 2, lanes - 1}:
            if lane < lanes:
                assert ref.seq_state(lane) == other.seq_state(lane), lanes
        assert ref.lanes_differing_from(0) == other.lanes_differing_from(0)


@pytest.mark.parametrize("lanes", LANE_WIDTHS)
def test_counter_equivalence_with_flips(lanes):
    module, q = _counter()
    sims = [make_simulator(module, lanes=lanes, backend=b)
            for b in ("python", "numpy")]
    rng = random.Random(lanes)
    for cyc in range(12):
        if cyc in (3, 7):
            net = q[rng.randrange(len(q))]
            mask = rng.getrandbits(lanes)
            for sim in sims:
                sim.flip(net, mask)
        _assert_same_state(sims, q, lanes)
        for sim in sims:
            sim.step()


@pytest.mark.parametrize("lanes", LANE_WIDTHS)
def test_mixed_gates_equivalence(lanes):
    module, nets = _mixed_logic_module()
    sims = [make_simulator(module, lanes=lanes, backend=b)
            for b in ("python", "numpy")]
    rng = random.Random(lanes * 7 + 1)
    for _ in range(8):
        for name in ("a", "c", "s"):
            value = rng.getrandbits(lanes)
            for sim in sims:
                sim.poke(name, value)
        _assert_same_state(sims, nets, lanes)
        for sim in sims:
            sim.step()
    _assert_same_state(sims, nets, lanes)


@pytest.mark.parametrize("lanes", LANE_WIDTHS)
def test_memory_equivalence_diverged_lanes(lanes):
    module, ra, wa, wd = _mem_module()
    rd = [f"rd[{i}]" for i in range(8)]
    sims = [make_simulator(module, lanes=lanes, backend=b)
            for b in ("python", "numpy")]
    rng = random.Random(lanes * 13 + 5)
    for _ in range(10):
        # Per-lane-divergent addresses, data and write enables.
        for nets in (ra, wa, wd):
            for net in nets:
                value = rng.getrandbits(lanes)
                for sim in sims:
                    sim.poke(net, value)
        we = rng.getrandbits(lanes)
        for sim in sims:
            sim.poke("we", we)
        _assert_same_state(sims, rd, lanes)
        for sim in sims:
            sim.step()
    _assert_same_state(sims, rd, lanes)
    # Direct array strikes must agree as well.
    for sim in sims:
        sim.mems["arr"].flip_bit(lanes - 1, 2, 5)
    assert (sims[0].mems["arr"].lane_word(lanes - 1, 2)
            == sims[1].mems["arr"].lane_word(lanes - 1, 2))
    _assert_same_state(sims, rd, lanes)


@pytest.mark.parametrize("lanes", (1, 65, 256))
def test_tinycore_program_equivalence(lanes):
    from repro.designs.tinycore.core import build_tinycore
    from repro.designs.tinycore.harness import run_gate_level
    from repro.designs.tinycore.programs import default_dmem, program

    words, dmem = program("fib"), default_dmem("fib")
    netlist = build_tinycore(words, dmem)
    nets = sorted(netlist.module.nets)
    rng = random.Random(lanes)
    flips = [(rng.randrange(40), rng.choice(nets), rng.getrandbits(lanes))
             for _ in range(6)]

    def on_cycle(sim, cycle):
        for cyc, net, mask in flips:
            if cyc == cycle:
                sim.flip(net, mask)

    runs = {}
    sims = {}
    for backend in ("python", "numpy"):
        sims[backend] = make_simulator(netlist.module, lanes=lanes, backend=backend)
        runs[backend] = run_gate_level(
            words, dmem, netlist=netlist, sim=sims[backend], on_cycle=on_cycle
        )
    a, b = runs["python"], runs["numpy"]
    assert a.outputs == b.outputs
    assert a.halted_lanes == b.halted_lanes
    assert (sims["python"].lanes_differing_from(0)
            == sims["numpy"].lanes_differing_from(0))
    for lane in range(0, lanes, max(1, lanes // 5)):
        assert a.architectural_state(lane) == b.architectural_state(lane)


class TestRegistry:
    def test_available_and_preferred(self):
        names = available_backends()
        assert "python" in names and "numpy" in names
        assert preferred_fault_lanes("python") == 63
        assert preferred_fault_lanes("numpy") == 255

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            get_backend("verilator")

    def test_lane_cap_enforced(self):
        module, _ = _counter()
        with pytest.raises(SimulationError, match="cap"):
            make_simulator(module, lanes=MAX_LANES + 1)

    def test_batch_width_validated_against_backend(self):
        from repro.sfi.campaign import FaultPlan, batches

        plans = [FaultPlan("x", 1)] * 10
        assert [len(b) for b in batches(plans, 4)] == [4, 4, 2]
        with pytest.raises(CampaignError, match="at least one fault lane"):
            batches(plans, 0)
        with pytest.raises(CampaignError, match="per-pass cap"):
            batches(plans, MAX_LANES + 7, backend="numpy")
        with pytest.raises(CampaignError, match="cannot batch"):
            batches(plans, 4, backend="verilator")
        # None resolves to the backend's preferred width.
        assert [len(b) for b in batches([FaultPlan("x", 1)] * 300, None,
                                        backend="numpy")] == [255, 45]
