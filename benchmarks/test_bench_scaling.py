"""Ablation — SART cost scaling with design size.

The paper reports about a day of SART runtime for a full Xeon core
(millions of nodes) and ~20 relaxation iterations. This bench measures
how our implementation's wall time grows with bigcore scale, pinning the
near-linear behaviour that makes the technique viable at core scale.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports

SCALES = (0.25, 0.5, 1.0, 2.0)


def test_bench_scaling(benchmark, model_ports):
    ports, _ = model_ports

    def sweep():
        rows = []
        for scale in SCALES:
            design = build_bigcore(BigcoreConfig(scale=scale, seed=42))
            mapped = map_structure_ports(design, ports)
            started = time.perf_counter()
            result = run_sart(design.module, mapped,
                              SartConfig(partition_by_fub=True, iterations=20))
            elapsed = time.perf_counter() - started
            rows.append((scale, len(design.module.instances),
                         int(result.stats["sequentials"]), elapsed,
                         result.report.weighted_seq_avf))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "SART wall time vs design scale (partitioned, 20-iteration budget)",
        ["scale", "instances", "sequentials", "seconds", "avg seq AVF"],
        [list(r) for r in rows],
    )
    nodes = [r[1] for r in rows]
    seconds = [r[3] for r in rows]
    throughputs = [n / s for n, s in zip(nodes, seconds)]
    print(f"throughput {min(throughputs):,.0f}-{max(throughputs):,.0f} instances/s "
          f"across a {nodes[-1] / nodes[0]:.0f}x size range")

    # Near-linear: time per node must not blow up across the size range.
    per_node = [s / n for n, s in zip(nodes, seconds)]
    assert max(per_node) < min(per_node) * 5
    # The headline statistic is size-stable (the design generator keeps
    # its statistical character as it scales).
    avfs = [r[4] for r in rows]
    assert max(avfs) - min(avfs) < 0.08
