"""Per-FUB reporting (the data behind Figure 9 and the Section 6.1 stats).

The paper plots, for each RTL module (FUB), the average sequential AVF and
the average node AVF after the final relaxation iteration, plus overall
averages weighted by the number of sequentials in each FUB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.resolve import NodeAvf, ROLE_STRUCT
from repro.netlist.graph import NodeKind


@dataclass(frozen=True)
class FubReport:
    """Aggregate AVF of one FUB."""

    fub: str
    seq_count: int
    seq_avg_avf: float
    node_count: int
    node_avg_avf: float


@dataclass(frozen=True)
class DesignReport:
    """Whole-design aggregates (weighted as in the paper)."""

    fubs: tuple[FubReport, ...]
    seq_count: int
    weighted_seq_avf: float     # headline: the paper reports 14 %
    node_count: int
    weighted_node_avf: float
    visited_fraction: float     # paper: "visited more than 98 % of all RTL nodes"
    loop_bits: int
    ctrl_bits: int

    def table(self) -> str:
        """Render the Figure 9 rows as a fixed-width text table."""
        lines = [
            f"{'FUB':<16}{'#seq':>8}{'seq AVF':>10}{'#node':>8}{'node AVF':>10}",
        ]
        for row in self.fubs:
            lines.append(
                f"{row.fub or '(top)':<16}{row.seq_count:>8}"
                f"{row.seq_avg_avf:>10.4f}{row.node_count:>8}{row.node_avg_avf:>10.4f}"
            )
        lines.append(
            f"{'WEIGHTED AVG':<16}{self.seq_count:>8}{self.weighted_seq_avf:>10.4f}"
            f"{self.node_count:>8}{self.weighted_node_avf:>10.4f}"
        )
        return "\n".join(lines)


def fub_report(
    node_avfs: Mapping[str, NodeAvf],
    *,
    loop_bits: int = 0,
    ctrl_bits: int = 0,
    include_structures: bool = False,
) -> DesignReport:
    """Aggregate resolved node AVFs by FUB.

    ``include_structures=False`` (default) excludes structure storage bits
    from the *sequential* average — their AVF comes from the ACE model, and
    the paper's sequential-AVF number covers the miscellaneous sequentials,
    not the ACE-analyzed arrays. They are also excluded from the node
    average for the same reason.
    """
    per_fub: dict[str, list[NodeAvf]] = {}
    for node in node_avfs.values():
        if node.kind in (NodeKind.INPUT, NodeKind.CONST):
            continue
        if not include_structures and node.role == ROLE_STRUCT:
            continue
        if not include_structures and node.kind == NodeKind.MEM_RDATA:
            continue
        per_fub.setdefault(node.fub, []).append(node)

    rows: list[FubReport] = []
    seq_total = 0
    seq_weighted = 0.0
    node_total = 0
    node_weighted = 0.0
    for fub in sorted(per_fub):
        nodes = per_fub[fub]
        seqs = [n for n in nodes if n.kind == NodeKind.SEQ]
        seq_avg = sum(n.avf for n in seqs) / len(seqs) if seqs else 0.0
        node_avg = sum(n.avf for n in nodes) / len(nodes) if nodes else 0.0
        rows.append(
            FubReport(
                fub=fub,
                seq_count=len(seqs),
                seq_avg_avf=seq_avg,
                node_count=len(nodes),
                node_avg_avf=node_avg,
            )
        )
        seq_total += len(seqs)
        seq_weighted += sum(n.avf for n in seqs)
        node_total += len(nodes)
        node_weighted += sum(n.avf for n in nodes)

    all_nodes = [
        n for n in node_avfs.values() if n.kind not in (NodeKind.INPUT, NodeKind.CONST)
    ]
    visited = sum(1 for n in all_nodes if n.visited)
    return DesignReport(
        fubs=tuple(rows),
        seq_count=seq_total,
        weighted_seq_avf=(seq_weighted / seq_total) if seq_total else 0.0,
        node_count=node_total,
        weighted_node_avf=(node_weighted / node_total) if node_total else 0.0,
        visited_fraction=(visited / len(all_nodes)) if all_nodes else 1.0,
        loop_bits=loop_bits,
        ctrl_bits=ctrl_bits,
    )


def average_seq_avf(node_avfs: Mapping[str, NodeAvf], nets: Iterable[str] | None = None) -> float:
    """Mean AVF over sequential logic nodes (optionally restricted)."""
    pool = (
        [node_avfs[n] for n in nets if n in node_avfs]
        if nets is not None
        else list(node_avfs.values())
    )
    seqs = [n for n in pool if n.kind == NodeKind.SEQ and n.role != ROLE_STRUCT]
    return sum(n.avf for n in seqs) / len(seqs) if seqs else 0.0
