"""Synthetic workload suite for the performance model.

Stands in for the paper's proprietary 547-workload server suite: a seeded
generator (:mod:`repro.workloads.generator`) produces traces with
controlled instruction mix, ILP, memory behaviour, branchiness and
dead-code fraction, and :mod:`repro.workloads.suite` defines named
workload classes spanning the space (SPEC-int-like, SPEC-fp-like,
server/transaction-like, web-like, HPC-like, pointer-chasing, ...).
"""

from repro.workloads.generator import WorkloadSpec, generate_trace
from repro.workloads.suite import default_suite, suite_by_class, SUITE_CLASSES

from repro.workloads.suite import make_suite

__all__ = [
    "SUITE_CLASSES",
    "WorkloadSpec",
    "default_suite",
    "generate_trace",
    "make_suite",
    "suite_by_class",
]
