"""RTL netlist substrate.

This subpackage provides everything the paper's tool flow assumes exists on
the RTL side: a bit-level structural netlist model (:mod:`~repro.netlist.netlist`),
a cell library (:mod:`~repro.netlist.cells`), a construction API
(:mod:`~repro.netlist.builder`), the EXLIF-like interchange text format
(:mod:`~repro.netlist.exlif`), hierarchy flattening
(:mod:`~repro.netlist.flatten`), structural validation
(:mod:`~repro.netlist.validate`) and node-graph extraction for the
sequential-AVF walker (:mod:`~repro.netlist.graph`).

All nets are single-bit; multi-bit buses are a naming convention
(``name[i]``) with helpers in the builder. This matches the paper's
bit-granular analysis: every pAVF walk is performed per structure *bit*.
"""

from repro.netlist.cells import CELLS, CellSpec, is_sequential_cell
from repro.netlist.netlist import Instance, Module, Port
from repro.netlist.builder import ModuleBuilder, bus
from repro.netlist.flatten import flatten
from repro.netlist.validate import validate_module
from repro.netlist.graph import NetGraph, NodeKind, extract_graph
from repro.netlist.exlif import parse_exlif, write_exlif
from repro.netlist.verilog import parse_structural_verilog, write_verilog

__all__ = [
    "CELLS",
    "CellSpec",
    "Instance",
    "Module",
    "ModuleBuilder",
    "NetGraph",
    "NodeKind",
    "Port",
    "bus",
    "extract_graph",
    "flatten",
    "is_sequential_cell",
    "parse_exlif",
    "parse_structural_verilog",
    "validate_module",
    "write_exlif",
    "write_verilog",
]
