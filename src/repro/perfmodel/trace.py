"""Workload traces and ACE/un-ACE classification.

:func:`mark_ace` implements the instruction-level part of ACE analysis
(Mukherjee et al. [1]): an instruction is *un-ACE* when removing its
result could not change architecturally correct execution. The roots of
ACE-ness are architecturally visible effects — stores, branches and
explicit outputs; NOPs and software prefetches are un-ACE by definition;
everything else is ACE exactly when its result transitively feeds a root
(dynamically dead code — "first-level dead" and "transitively dead" — is
un-ACE).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.perfmodel.isa import (
    Inst,
    OP_BRANCH,
    OP_NOP,
    OP_OUTPUT,
    OP_PREFETCH,
    OP_STORE,
)

_ROOT_OPS = (OP_STORE, OP_BRANCH, OP_OUTPUT)
_NEVER_ACE_OPS = (OP_NOP, OP_PREFETCH)


@dataclass
class Trace:
    """A dynamic instruction trace plus metadata."""

    name: str
    insts: list[Inst] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self) -> Iterator[Inst]:
        return iter(self.insts)

    def validate(self) -> None:
        """Check sequence numbers and field consistency."""
        for i, inst in enumerate(self.insts):
            if inst.seq != i:
                raise TraceError(f"{self.name}: inst {i} has seq {inst.seq}")
            if inst.is_memory() and inst.addr is None:
                raise TraceError(f"{self.name}: memory op at {i} without address")
            if inst.op == OP_BRANCH and inst.taken is None:
                raise TraceError(f"{self.name}: branch at {i} without outcome")

    def ace_fraction(self) -> float:
        """Fraction of ACE instructions (requires :func:`mark_ace`)."""
        if not self.insts:
            return 0.0
        marked = [i for i in self.insts if i.ace is not None]
        if len(marked) != len(self.insts):
            raise TraceError(f"{self.name}: trace not ACE-marked")
        return sum(1 for i in marked if i.ace) / len(marked)


def mark_ace(trace: Trace) -> Trace:
    """Classify every instruction as ACE or un-ACE, in place.

    Builds the register dataflow graph of the trace and walks backward
    from the architecturally visible roots. Values still live in
    architectural registers at the end of the trace are conservatively
    treated as roots too (they may be consumed after the observation
    window — the analysis cannot prove them dead).
    """
    insts = trace.insts
    # last_writer[reg] -> seq of the most recent producer
    last_writer: dict[int, int] = {}
    # consumers[seq] -> producer seqs feeding it
    producers: dict[int, list[int]] = {}
    for inst in insts:
        feeds = []
        for reg in inst.srcs:
            writer = last_writer.get(reg)
            if writer is not None:
                feeds.append(writer)
        producers[inst.seq] = feeds
        if inst.writes_register():
            last_writer[inst.dst] = inst.seq

    worklist: deque[int] = deque()
    ace: set[int] = set()
    for inst in insts:
        if inst.op in _ROOT_OPS:
            ace.add(inst.seq)
            worklist.append(inst.seq)
    # Live-out register values are conservatively ACE ("unknown").
    for seq in last_writer.values():
        if seq not in ace:
            ace.add(seq)
            worklist.append(seq)

    while worklist:
        seq = worklist.popleft()
        for producer in producers.get(seq, ()):
            if producer not in ace:
                ace.add(producer)
                worklist.append(producer)

    for inst in insts:
        if inst.op in _NEVER_ACE_OPS:
            inst.ace = False
        else:
            inst.ace = inst.seq in ace
    return trace


def merge_traces(name: str, traces: Iterable[Trace]) -> Trace:
    """Concatenate traces, renumbering sequence ids."""
    merged = Trace(name=name)
    for t in traces:
        for inst in t.insts:
            clone = Inst(
                seq=len(merged.insts),
                op=inst.op,
                dst=inst.dst,
                srcs=inst.srcs,
                addr=inst.addr,
                taken=inst.taken,
                mispredicted=inst.mispredicted,
                imm=inst.imm,
            )
            merged.insts.append(clone)
    return merged
