"""AVF-as-a-service: a fault-tolerant async job server over the pipeline.

The paper's pitch is turnaround — analytical AVF in minutes instead of
months of RTL injection — and this package serves that speed to many
concurrent users. Clients POST declarative run-specs (the same TOML/JSON
documents ``repro-sart run`` executes) to a long-running HTTP/JSON
server; the server validates and admits them through a bounded queue
with explicit backpressure, deduplicates identical requests so N users
asking for the same analysis share one execution, schedules jobs on the
fault-tolerant campaign runtime (:mod:`repro.sfi.runtime`), streams
progress over SSE, and serves results straight out of its durable job
journal and the content-addressed artifact store.

Modules
-------

``jobs``
    The job model and the append-only JSONL job journal (torn-record
    tolerant, like campaign checkpoints) that makes submissions and
    results durable across server crashes.
``dedupe``
    The fingerprint index coalescing identical requests onto one job,
    plus the serve-level observability counters.
``scheduler``
    Admission control, the batch scheduler thread, and the pipeline
    worker that executes one run-spec per job on a
    :class:`~repro.sfi.runtime.ResilientPool`.
``server``
    The stdlib ``ThreadingHTTPServer`` front end: job submission,
    status, SSE progress with heartbeats, health/readiness, stats, and
    graceful drain.
``loadgen``
    A concurrent load generator emitting ``BENCH_serve.json``
    (requests/s, dedup and cache hit rates, p50/p99 latency).

Everything runs on the standard library — no new runtime dependencies.
"""

from repro.serve.jobs import (  # noqa: F401
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobJournal,
    load_journal,
    stable_result,
)
from repro.serve.scheduler import JobScheduler  # noqa: F401
from repro.serve.server import ServeApp  # noqa: F401

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobJournal",
    "JobScheduler",
    "ServeApp",
    "load_journal",
    "stable_result",
]
