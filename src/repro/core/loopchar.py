"""Loop characterization — the paper's loop solution 2 (Section 4.3).

"RTL simulations can determine the probability of loops retaining values
versus passing values. This probability can be the pAVF for the loop."

The paper rejected this for their flow because it "defeats the purpose of
our technique by requiring RTL simulations" at their scale; at tinycore
scale a single golden run is cheap, so we provide it as the refinement
path for loop-heavy designs: a loop node's *pass rate* — the fraction of
cycles its stored value changes — is the measured per-node alternative to
the static injected constant (solution 3).

The measured rates plug into :class:`~repro.core.sart.SartConfig` via
``loop_pavf_per_net``, which binds each loop atom individually (exact
bindings take precedence over the kind-level static value).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SartError
from repro.rtlsim.simulator import Simulator


def measure_activity(
    sim: Simulator,
    nets: Iterable[str],
    *,
    cycles: int,
    lane: int = 0,
    stimulus=None,
) -> dict[str, float]:
    """Per-net value-change rate over a *cycles*-long simulation.

    ``stimulus(sim, cycle)`` may drive primary inputs each cycle. The
    simulator is reset first. Returns net -> changes / cycles in [0, 1].
    """
    nets = list(nets)
    if cycles < 1:
        raise SartError("measure_activity needs at least one cycle")
    sim.reset()
    previous = {net: sim.peek_lane(net, lane) for net in nets}
    changes = {net: 0 for net in nets}
    for cycle in range(cycles):
        if stimulus is not None:
            stimulus(sim, cycle)
        sim.step()
        for net in nets:
            value = sim.peek_lane(net, lane)
            if value != previous[net]:
                changes[net] += 1
                previous[net] = value
    return {net: changes[net] / cycles for net in nets}


def characterize_loops(
    sim: Simulator,
    loop_nets: Iterable[str],
    *,
    cycles: int,
    stimulus=None,
    floor: float = 0.02,
) -> dict[str, float]:
    """Measured per-loop-node pAVF values (solution 2).

    The pass rate is floored (default 2 %) so that a node that happened
    to hold still during the observation window never gets written off
    entirely — mirroring the conservative spirit of the static injection.
    """
    rates = measure_activity(sim, loop_nets, cycles=cycles, stimulus=stimulus)
    return {net: max(floor, rate) for net, rate in rates.items()}


def tinycore_loop_rates(
    program: list[int],
    dmem_init: list[int] | None,
    loop_nets: Iterable[str],
    *,
    floor: float = 0.02,
    max_cycles: int = 100_000,
) -> dict[str, float]:
    """Solution-2 characterization for tinycore: one golden program run."""
    from repro.designs.tinycore.core import build_tinycore
    from repro.designs.tinycore.harness import run_gate_level

    netlist = build_tinycore(program, dmem_init)
    golden = run_gate_level(program, dmem_init, netlist=netlist)
    sim = Simulator(netlist.module, lanes=1)
    return characterize_loops(
        sim, loop_nets, cycles=golden.cycles, floor=floor
    )


def summarize_rates(rates: Mapping[str, float]) -> dict[str, float]:
    """Aggregate statistics of a characterization (for reports)."""
    values = sorted(rates.values())
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": values[len(values) // 2],
        "max": values[-1],
    }
