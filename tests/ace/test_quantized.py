"""Quantized (windowed) AVF tests."""

import pytest

from repro.ace.quantized import TeeRecorder, WindowedPortCounter, quantized_seq_avf
from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, run_sart
from repro.errors import AceError
from repro.netlist.builder import ModuleBuilder


class TestWindowedCounter:
    def test_counts_land_in_right_windows(self):
        c = WindowedPortCounter(window=10)
        c.register("s")
        c.on_read("s", 0, cycle=3, ace=True)
        c.on_read("s", 0, cycle=9, ace=True)
        c.on_read("s", 0, cycle=10, ace=True)   # second window
        c.on_read("s", 0, cycle=25, ace=False)  # un-ACE: ignored
        c.on_write("s", 0, cycle=15, ace=True, ace_bits=None, bits=8)
        tables = c.window_ports(total_cycles=30)
        assert len(tables) == 3
        assert tables[0]["s"].pavf_r == pytest.approx(2 / 10)
        assert tables[1]["s"].pavf_r == pytest.approx(1 / 10)
        assert tables[1]["s"].pavf_w == pytest.approx(1 / 10)
        assert tables[2]["s"].pavf_r == 0.0

    def test_partial_tail_window_normalized(self):
        c = WindowedPortCounter(window=10)
        c.register("s")
        c.on_read("s", 0, cycle=22, ace=True)
        tables = c.window_ports(total_cycles=24)
        assert tables[2]["s"].pavf_r == pytest.approx(1 / 4)  # 4-cycle tail

    def test_port_normalization(self):
        c = WindowedPortCounter(window=10)
        c.register("s", nread=2)
        for cycle in range(10):
            c.on_read("s", 0, cycle, ace=True)
        tables = c.window_ports(total_cycles=10)
        assert tables[0]["s"].pavf_r == pytest.approx(0.5)

    def test_bad_window_rejected(self):
        with pytest.raises(AceError):
            WindowedPortCounter(window=0)


def test_tee_recorder_fans_out():
    a = WindowedPortCounter(window=5)
    b = WindowedPortCounter(window=5)
    a.register("s")
    b.register("s")
    tee = TeeRecorder(a, b, None)
    tee.on_read("s", 0, 1, True)
    tee.on_write("s", 0, 2, True, None, 8)
    tee.on_release("s", 0, 3, True)
    for counter in (a, b):
        t = counter.window_ports(5)
        assert t[0]["s"].pavf_r > 0 and t[0]["s"].pavf_w > 0


def test_quantized_time_series_through_closed_form():
    # A pipeline between two structures: windowed port AVFs in, per-window
    # sequential AVF out, with no re-walk.
    b = ModuleBuilder("m")
    tie = b.input("tie_in")
    src = b.dff(tie, name="src", attrs={"struct": "S", "bit": "0"})
    stage = b.dff(src, name="stage")
    b.dff(stage, name="snk", attrs={"struct": "K", "bit": "0"})
    base_ports = {
        "S": StructurePorts("S", pavf_r=0.5, pavf_w=0.0, avf=0.5),
        "K": StructurePorts("K", pavf_r=0.0, pavf_w=1.0, avf=0.5),
    }
    result = run_sart(b.done(), base_ports, SartConfig(partition_by_fub=False))
    closed = result.closed_form()

    windows = [
        {"S": StructurePorts("S", pavf_r=r, pavf_w=0.0),
         "K": StructurePorts("K", pavf_r=0.0, pavf_w=1.0)}
        for r in (0.1, 0.9, 0.0)
    ]
    series = quantized_seq_avf(closed, windows)
    assert series == pytest.approx([0.1, 0.9, 0.0])


def test_end_to_end_windowed_perfmodel():
    """Windowed counting alongside the normal lifetime analysis."""
    from repro.ace.lifetime import AceLifetimeAnalyzer
    from repro.perfmodel.pipeline import Pipeline, PipelineConfig
    from repro.perfmodel.trace import mark_ace
    from repro.workloads.generator import WorkloadSpec, generate_trace

    trace = mark_ace(generate_trace(WorkloadSpec(name="q", length=3000)))
    lifetime = AceLifetimeAnalyzer()
    windows = WindowedPortCounter(window=200)
    pipeline = Pipeline(trace, PipelineConfig(), recorder=TeeRecorder(lifetime, windows))
    for s in pipeline.structures:
        lifetime.register(s.name, s.entries, s.bits_per_entry, s.nread, s.nwrite)
        windows.register(s.name, s.nread, s.nwrite)
    stats = pipeline.run()
    lifetime.finish(stats.cycles)
    tables = windows.window_ports(stats.cycles)
    assert len(tables) == -(-stats.cycles // 200)
    # Aggregate of windowed ACE reads equals the lifetime analyzer's count.
    total_reads = sum(
        t["rob"].pavf_r * min(200, stats.cycles - i * 200) * lifetime.structures["rob"].nread
        for i, t in enumerate(tables)
    )
    assert total_reads == pytest.approx(lifetime.structures["rob"].ace_reads, abs=1.0)
