"""Architectural (ISA-level) simulator for tinycore.

Three jobs:

1. **Golden model** — executes programs at ISA level; the gate-level core
   is verified against it instruction by instruction.
2. **Trace extraction** — converts a program run into the abstract dynamic
   trace format of :mod:`repro.perfmodel`, so the standard ACE machinery
   (dead-code marking, lifetime analysis) applies to tinycore workloads.
3. **Structure port AVFs** — replays the ACE-marked trace against
   tinycore's three ACE structures (register file, data memory,
   instruction ROM) and produces the :class:`StructurePorts` SART needs.
   This is tinycore's "performance model + ACE model" in the paper's
   flow, at the fidelity tinycore warrants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ace.lifetime import AceLifetimeAnalyzer
from repro.ace.portavf import ports_from_analysis
from repro.core.graphmodel import StructurePorts
from repro.designs.tinycore.isa import DMEM_DEPTH, Decoded, IMEM_DEPTH, NREGS, decode
from repro.errors import SimulationError
from repro.perfmodel.isa import Inst
from repro.perfmodel.trace import Trace, mark_ace

MASK16 = 0xFFFF


@dataclass
class ArchSim:
    """ISA-level tinycore: 8 regs (r0 = 0), 256-word data memory."""

    program: list[int]
    dmem_init: list[int] | None = None
    regs: list[int] = field(default_factory=lambda: [0] * NREGS)
    dmem: list[int] = field(default_factory=lambda: [0] * DMEM_DEPTH)
    pc: int = 0
    halted: bool = False
    steps: int = 0
    outputs: list[tuple[int, int]] = field(default_factory=list)
    executed: list[tuple[int, Decoded, int | None, bool | None]] = field(default_factory=list)
    # executed: (pc, decoded, effective address, branch taken)

    def __post_init__(self) -> None:
        if len(self.program) > IMEM_DEPTH:
            raise SimulationError("program exceeds instruction memory")
        if self.dmem_init:
            for i, word in enumerate(self.dmem_init[:DMEM_DEPTH]):
                self.dmem[i] = word & MASK16

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise SimulationError(f"PC out of program: {self.pc}")
        d = decode(self.program[self.pc])
        next_pc = self.pc + 1
        addr: int | None = None
        taken: bool | None = None
        rs, rt = self.regs[d.rs], self.regs[d.rt]

        if d.op == "ADD":
            self._write(d.rd, rs + rt)
        elif d.op == "SUB":
            self._write(d.rd, rs - rt)
        elif d.op == "AND":
            self._write(d.rd, rs & rt)
        elif d.op == "OR":
            self._write(d.rd, rs | rt)
        elif d.op == "XOR":
            self._write(d.rd, rs ^ rt)
        elif d.op == "SHIFT":
            if d.rt == 0:
                self._write(d.rd, rs << 1)
            elif d.rt == 1:
                self._write(d.rd, rs >> 1)
            else:
                self._write(d.rd, (rs << 1) | (rs >> 15))
        elif d.op == "ADDI":
            self._write(d.rd, rs + d.imm)
        elif d.op == "LDI":
            self._write(d.rd, d.imm)
        elif d.op == "LD":
            addr = (rs + d.imm) % DMEM_DEPTH
            self._write(d.rd, self.dmem[addr])
        elif d.op == "ST":
            addr = (rs + d.imm) % DMEM_DEPTH
            self.dmem[addr] = self.regs[d.rt]
        elif d.op in ("BEQ", "BNE"):
            taken = (rs == rt) if d.op == "BEQ" else (rs != rt)
            if taken:
                next_pc = self.pc + 1 + d.imm
        elif d.op == "JMP":
            taken = True
            next_pc = d.imm
        elif d.op == "OUT":
            self.outputs.append((self.steps, rs))
        elif d.op == "HALT":
            self.halted = True
        # NOP: nothing

        self.executed.append((self.pc, d, addr, taken))
        self.pc = next_pc
        self.steps += 1

    def _write(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & MASK16

    def run(self, max_steps: int = 200_000) -> list[tuple[int, int]]:
        """Run to HALT (or the step budget); returns the output log."""
        while not self.halted:
            if self.steps >= max_steps:
                raise SimulationError(f"no HALT within {max_steps} steps")
            self.step()
        return self.outputs


def run_program(program: list[int], dmem_init: list[int] | None = None,
                max_steps: int = 200_000) -> ArchSim:
    """Convenience: build, run, return the finished simulator."""
    sim = ArchSim(program=program, dmem_init=dmem_init)
    sim.run(max_steps)
    return sim


# ----------------------------------------------------------------------
# trace extraction for the ACE machinery
# ----------------------------------------------------------------------
_OP_CLASS = {
    "ADD": "alu", "SUB": "alu", "AND": "alu", "OR": "alu", "XOR": "alu",
    "SHIFT": "alu", "ADDI": "alu", "LDI": "alu",
    "LD": "load", "ST": "store",
    "BEQ": "branch", "BNE": "branch", "JMP": "branch",
    "OUT": "output", "HALT": "output", "NOP": "nop",
}


def trace_from_program(
    name: str, program: list[int], dmem_init: list[int] | None = None,
    max_steps: int = 200_000,
) -> tuple[Trace, ArchSim]:
    """Execute and convert to an ACE-marked abstract trace.

    Register 0 is hardwired zero, so it never appears as a dependence.
    """
    sim = run_program(program, dmem_init, max_steps)
    trace = Trace(name=name)
    for seq, (pc, d, addr, taken) in enumerate(sim.executed):
        srcs = tuple(r for r in d.reads() if r != 0)
        inst = Inst(
            seq=seq,
            op=_OP_CLASS[d.op],
            dst=d.rd if d.writes_reg() else None,
            srcs=srcs,
            addr=addr,
            taken=taken if _OP_CLASS[d.op] == "branch" else None,
            imm=d.op in ("ADDI", "LDI"),
        )
        trace.insts.append(inst)
    trace.validate()
    mark_ace(trace)
    return trace, sim


def tinycore_structure_ports(
    name: str,
    program: list[int],
    dmem_init: list[int] | None = None,
    *,
    gate_cycles: int | None = None,
    max_steps: int = 200_000,
) -> tuple[dict[str, StructurePorts], Trace, ArchSim]:
    """ACE-analyze a tinycore workload; returns SART-ready port AVFs.

    *gate_cycles* normalizes event rates to gate-level cycles (the real
    clock the sequential AVFs are defined against); when None, a CPI
    estimate of 1.5 is applied to the architectural step count.

    Structures: ``rf`` (8x16, 2R1W), ``dmem`` (256x16), ``irom``
    (read-only: pAVF_W = 0, pAVF_R = rate of ACE fetches).
    """
    trace, sim = trace_from_program(name, program, dmem_init, max_steps)
    cycles = gate_cycles if gate_cycles is not None else int(sim.steps * 1.5) + 1

    analyzer = AceLifetimeAnalyzer()
    analyzer.register("rf", NREGS, 16, nread=2, nwrite=1)
    analyzer.register("dmem", DMEM_DEPTH, 16, nread=1, nwrite=1)

    reg_written = [False] * NREGS
    mem_written = [False] * DMEM_DEPTH
    for seq, ((pc, d, addr, taken), inst) in enumerate(zip(sim.executed, trace.insts)):
        ace = bool(inst.ace)
        cyc = _scale(seq, sim.steps, cycles)
        for reg in inst.srcs:
            if reg_written[reg]:
                analyzer.on_read("rf", reg, cyc, ace)
        if inst.dst is not None:
            if reg_written[inst.dst]:
                analyzer.on_release("rf", inst.dst, cyc, consumed=True)
            analyzer.on_write("rf", inst.dst, cyc, ace, None, 16)
            reg_written[inst.dst] = True
        if inst.op == "load" and addr is not None:
            if mem_written[addr]:
                analyzer.on_read("dmem", addr, cyc, ace)
        elif inst.op == "store" and addr is not None:
            if mem_written[addr]:
                analyzer.on_release("dmem", addr, cyc, consumed=True)
            analyzer.on_write("dmem", addr, cyc, ace, None, 16)
            mem_written[addr] = True
    structures = analyzer.finish(cycles)
    ports = ports_from_analysis(structures, bitwise=False)

    # Instruction ROM: read-only structure. pAVF_R = ACE fetch rate; its
    # own AVF approximated by the fraction of words fetched as ACE.
    ace_fetches = sum(1 for i in trace.insts if i.ace)
    ace_pcs = {pc for (pc, d, a, t), i in zip(sim.executed, trace.insts) if i.ace}
    ports["irom"] = StructurePorts(
        name="irom",
        pavf_r=min(1.0, ace_fetches / cycles),
        pavf_w=0.0,
        avf=len(ace_pcs) / IMEM_DEPTH,
    )
    return ports, trace, sim


def _scale(step: int, steps: int, cycles: int) -> int:
    if steps <= 0:
        return 0
    return min(cycles - 1, step * cycles // steps)
