"""Closed-form AVF equations (paper Section 5.2 optimization).

"As the pAVFs propagate ... a closed form equation is generated for each
visited node in the netlist with the terms of the equations being the
structure pAVFs of the ACE model plus any injected state (such as from
control registers or loop boundaries). ... any subsequent sequential AVF
computations on this particular design simply needs to generate new pAVFs
from the ACE model then plug those values into the closed form equations."

Because the propagated values are symbolic atom sets, the closed form
falls out directly: every node's equation is
``AVF(n) = MIN(sum(f-atoms), sum(b-atoms))`` (sums capped at 1.0). A
:class:`ClosedForm` captures the per-node sets and re-evaluates them under
fresh structure port AVFs without re-running any walk or relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.graphmodel import AvfModel, StructurePorts
from repro.core.pavf import Atom, PavfEnv, format_set, value_of
from repro.core.resolve import NodeAvf, resolve


@dataclass
class ClosedForm:
    """Per-node symbolic AVF equations, re-evaluable in O(nodes)."""

    model: AvfModel
    f_sets: dict[str, frozenset[Atom]]
    b_sets: dict[str, frozenset[Atom]]
    base_env: PavfEnv

    def equation_for(self, net: str) -> str:
        """Human-readable closed-form equation of one node."""
        f = self.f_sets.get(net)
        b = self.b_sets.get(net)
        f_str = format_set(f) if f is not None else "TOP"
        b_str = format_set(b) if b is not None else "TOP"
        return f"AVF({net}) = MIN({f_str}, {b_str})"

    def evaluate(
        self, structures: Mapping[str, StructurePorts] | None = None
    ) -> dict[str, NodeAvf]:
        """Re-evaluate every node under new structure port AVFs.

        *structures* replaces the port AVFs of the named structures (others
        keep their original values). Injected values (loops, control
        registers, boundaries) are retained from the base environment.
        """
        env = self.base_env.copy()
        effective = dict(self.model.structures)
        if structures:
            effective.update(structures)
            for atom, (role, sname, bit) in self.model.atom_bindings.items():
                ports = effective.get(sname)
                if ports is None:
                    continue
                env.bind(atom, atom_value(ports, role, bit))
        return resolve(self.model, self.f_sets, self.b_sets, env, structures=effective)

    def term_count(self) -> int:
        """Total number of atom terms across all equations (size metric)."""
        total = 0
        for sets in (self.f_sets, self.b_sets):
            for atoms in sets.values():
                total += len(atoms)
        return total


def atom_value(ports: StructurePorts, role: str, bit: int) -> float:
    if role == "r":
        return ports.read_value(bit)
    if role == "w":
        return ports.write_value(bit)
    if role == "ra":
        return ports.read_port_rate()
    if role in ("wa", "wen"):
        return ports.write_port_rate()
    raise ValueError(f"unknown atom role {role!r}")
