"""Batched multi-workload evaluation of one compiled plan.

The paper's closed-form observation (Section 5.2) is that a new workload
is *just a new environment*: the symbolic annotation sets are workload-
independent, so re-evaluating W workloads shares one monolithic solve.
The per-workload flow still paid an O(nodes) Python resolution pass per
environment (NodeAvf construction plus per-FUB aggregation), which is
what dominates a Figure-8 sweep once the plan is cached.

This module evaluates **all W environments in one matrix pass**:

* :class:`BatchedEvaluator` extends the :class:`~repro.core.compiled.
  SetEvaluator` kernel with a trailing environment axis — each padded-
  width bucket becomes a ``(sets, width, W)`` array halved along the
  middle axis. Element-wise IEEE adds keep every column's reduction tree
  identical to the per-environment evaluator's, so values are
  bit-identical per workload by construction.
* :func:`solve_batched` resolves the ``(nodes, W)`` AVF matrix (Table 1
  precedence: MIN / measured-structure / injected-atom) and aggregates
  per-FUB and whole-design averages with masked segment sums, producing
  one :class:`~repro.core.report.DesignReport` per environment.

Without numpy the same API falls back to per-environment
:func:`~repro.core.compiled.resolve_ids` passes — identical results,
no batching speedup.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.compiled import (
    HAVE_NUMPY,
    _MODE_ATOM,
    _MODE_MIN,
    _MODE_STRUCT,
    SetEvaluator,
    SolvePlan,
    resolve_ids,
)
from repro.core.pavf import Atom, PavfEnv, SetInterner
from repro.core.report import DesignReport, FubReport, fub_report
from repro.core.resolve import NodeAvf, ROLE_STRUCT
from repro.netlist.graph import NodeKind

try:  # pragma: no cover - numpy presence is environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

_TOP_ID = SetInterner.TOP_ID


class BatchedEvaluator:
    """Values of interned sets under W environments at once.

    ``matrix(sids)`` returns a ``(len(sids), W)`` float array whose
    column *w* is bit-identical to ``SetEvaluator(interner, envs[w])``
    values for the same ids (same balanced reduction tree per set, see
    the SetEvaluator docstring). Ids below 0 evaluate to 1.0, matching
    the unvisited convention of :func:`~repro.core.compiled.resolve_ids`.
    """

    def __init__(
        self,
        interner: SetInterner,
        envs: Sequence[PavfEnv],
        *,
        use_numpy: bool | None = None,
    ):
        self.interner = interner
        self.envs = list(envs)
        self.width = len(self.envs)
        self.use_numpy = HAVE_NUMPY if use_numpy is None else (use_numpy and HAVE_NUMPY)
        self._rows: dict[int, object] = {}
        self._atom_rows: dict[Atom, object] = {}
        if self.use_numpy:
            # Seed EMPTY and TOP like SetEvaluator (they have no atom rows).
            self._rows[SetInterner.EMPTY_ID] = _np.zeros(self.width)
            self._rows[SetInterner.TOP_ID] = _np.ones(self.width)
        # Fallback path: one scalar evaluator per environment.
        self._scalar = (
            None
            if self.use_numpy
            else [SetEvaluator(interner, env, use_numpy=False) for env in self.envs]
        )

    def _atom_row(self, atom: Atom):
        row = self._atom_rows.get(atom)
        if row is None:
            row = _np.array([env.lookup(atom) for env in self.envs], dtype=_np.float64)
            self._atom_rows[atom] = row
        return row

    def _fill(self, sids) -> None:
        rows = self._rows
        pending = sorted({int(s) for s in sids if s >= 0 and int(s) not in rows})
        if not pending:
            return
        sorted_atoms = self.interner.sorted_atoms
        atom_row = self._atom_row
        buckets: dict[int, tuple[list[int], list[tuple[Atom, ...]]]] = {}
        for sid in pending:
            atoms = sorted_atoms(sid)
            k = len(atoms)
            width = k if not (k & (k - 1)) else 1 << k.bit_length()
            ids, atom_lists = buckets.setdefault(width, ([], []))
            ids.append(sid)
            atom_lists.append(atoms)
        for width, (ids, atom_lists) in buckets.items():
            arr = _np.zeros((len(ids), width, self.width), dtype=_np.float64)
            for i, atoms in enumerate(atom_lists):
                for j, atom in enumerate(atoms):
                    arr[i, j, :] = atom_row(atom)
            while arr.shape[1] > 1:
                arr = arr[:, 0::2, :] + arr[:, 1::2, :]
            capped = _np.minimum(arr[:, 0, :], 1.0)
            for i, sid in enumerate(ids):
                rows[sid] = capped[i]

    def matrix(self, sids: Sequence[int]):
        """``(len(sids), W)`` values; requires numpy."""
        self._fill(sids)
        rows = self._rows
        out = _np.ones((len(sids), self.width), dtype=_np.float64)
        for i, sid in enumerate(sids):
            if sid >= 0:
                out[i] = rows[int(sid)]
        return out

    def value(self, sid: int, w: int) -> float:
        """Scalar value of set *sid* under environment *w*."""
        if sid < 0:
            return 1.0
        if not self.use_numpy:
            return self._scalar[w].value(sid)
        self._fill((sid,))
        return float(self._rows[int(sid)][w])


@dataclass
class BatchedResult:
    """W-environment evaluation of one plan's monolithic solve."""

    plan: SolvePlan
    envs: list[PavfEnv]
    f_ids: Sequence[int]
    b_ids: Sequence[int]
    max_terms: int
    dangling: str
    structures: Mapping | None
    reports: list[DesignReport] = field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.envs)

    def report(self, w: int) -> DesignReport:
        return self.reports[w]

    def node_avfs(self, w: int) -> dict[str, NodeAvf]:
        """Materialize workload *w*'s full per-node resolution.

        This is the per-workload equivalence hook: it runs the exact
        scalar :func:`resolve_ids` path over the shared solve vectors.
        """
        return resolve_ids(
            self.plan, self.f_ids, self.b_ids, self.envs[w],
            structures=self.structures,
        )


# Aggregation masks and index groups are plan-derived and reusable across
# batched calls; keyed weakly so plans stay picklable and collectable.
_META_CACHE: "weakref.WeakKeyDictionary[SolvePlan, _PlanMeta]" = (
    weakref.WeakKeyDictionary()
)


class _PlanMeta:
    """Vectorized resolution/aggregation metadata for one plan."""

    def __init__(self, plan: SolvePlan) -> None:
        n = plan.n
        kind_l, role_l = plan.kind_l, plan.role_l
        self.all_mask = _np.fromiter(
            (k != NodeKind.INPUT and k != NodeKind.CONST for k in kind_l),
            dtype=bool,
            count=n,
        )
        struct_like = _np.fromiter(
            (
                role_l[i] == ROLE_STRUCT or kind_l[i] == NodeKind.MEM_RDATA
                for i in range(n)
            ),
            dtype=bool,
            count=n,
        )
        self.elig_mask = self.all_mask & ~struct_like
        seq = _np.fromiter((k == NodeKind.SEQ for k in kind_l), dtype=bool, count=n)
        self.seq_mask = self.elig_mask & seq
        self.fub_arr = _np.asarray(plan.fub_of, dtype=_np.int64)
        self.forced = _np.frombuffer(bytes(plan.forced_visited), dtype=_np.uint8).astype(
            bool
        )
        mode_arr = _np.fromiter(plan.mode_l, dtype=_np.int8, count=n)
        struct_groups: dict[str, list[int]] = {}
        for nid in _np.flatnonzero(mode_arr == _MODE_STRUCT).tolist():
            struct_groups.setdefault(plan.special_l[nid], []).append(nid)
        self.struct_groups = {
            sname: _np.asarray(nids, dtype=_np.int64)
            for sname, nids in struct_groups.items()
        }
        atom_groups: dict[Atom, list[int]] = {}
        for nid in _np.flatnonzero(mode_arr == _MODE_ATOM).tolist():
            atom_groups.setdefault(plan.special_l[nid], []).append(nid)
        self.atom_groups = {
            atom: _np.asarray(nids, dtype=_np.int64)
            for atom, nids in atom_groups.items()
        }
        n_fubs = plan.n_fubs
        self.node_counts = _np.bincount(
            self.fub_arr[self.elig_mask], minlength=n_fubs
        )
        self.seq_counts = _np.bincount(self.fub_arr[self.seq_mask], minlength=n_fubs)
        # Report rows: FUBs with at least one eligible node, name order.
        self.row_fubs = sorted(
            _np.flatnonzero(self.node_counts > 0).tolist(),
            key=lambda f: plan.fub_names[f],
        )


def _plan_meta(plan: SolvePlan) -> _PlanMeta:
    meta = _META_CACHE.get(plan)
    if meta is None:
        meta = _META_CACHE[plan] = _PlanMeta(plan)
    return meta


def solve_batched(
    plan: SolvePlan,
    envs: Sequence[PavfEnv],
    *,
    max_terms: int = 0,
    dangling: str = "unace",
    structures: Mapping | None = None,
    use_numpy: bool | None = None,
) -> BatchedResult:
    """Solve once, resolve and aggregate under every environment.

    Equivalent (to 1e-9 and in practice bit-for-bit per node) to running
    ``run_sart`` monolithically per environment against the same plan;
    the annotation sets are shared, the numeric evaluation and the
    Figure-9 aggregation happen as one ``(nodes, W)`` matrix pass.
    """
    envs = list(envs)
    f_ids, b_ids = plan.solve_monolithic(max_terms, dangling)
    structs = structures if structures is not None else plan.model.structures
    result = BatchedResult(
        plan=plan,
        envs=envs,
        f_ids=f_ids,
        b_ids=b_ids,
        max_terms=max_terms,
        dangling=dangling,
        structures=structures,
    )
    if not envs:
        return result
    batched = HAVE_NUMPY if use_numpy is None else (use_numpy and HAVE_NUMPY)
    if not batched:
        # Pure-Python fallback: identical results, one pass per env.
        loop_bits = len(plan.model.loop_nets)
        ctrl_bits = len(plan.model.ctrl_nets)
        for env in envs:
            node_avfs = resolve_ids(plan, f_ids, b_ids, env, structures=structures)
            result.reports.append(
                fub_report(node_avfs, loop_bits=loop_bits, ctrl_bits=ctrl_bits)
            )
        return result

    meta = _plan_meta(plan)
    bev = BatchedEvaluator(plan.interner, envs)
    f_vals = bev.matrix(f_ids)
    b_vals = bev.matrix(b_ids)
    avf = _np.minimum(f_vals, b_vals)
    for sname, nids in meta.struct_groups.items():
        ports = structs.get(sname)
        measured = ports.avf if ports is not None else None
        if measured is not None:
            avf[nids, :] = measured
    for atom, nids in meta.atom_groups.items():
        avf[nids, :] = bev._atom_row(atom)

    n_fubs = plan.n_fubs
    width = len(envs)
    seq_sums = _np.zeros((n_fubs, width), dtype=_np.float64)
    _np.add.at(seq_sums, meta.fub_arr[meta.seq_mask], avf[meta.seq_mask, :])
    node_sums = _np.zeros((n_fubs, width), dtype=_np.float64)
    _np.add.at(node_sums, meta.fub_arr[meta.elig_mask], avf[meta.elig_mask, :])

    fs = _np.asarray(f_ids, dtype=_np.int64)
    bs = _np.asarray(b_ids, dtype=_np.int64)
    visited = meta.forced | ~(
        ((fs < 0) | (fs == _TOP_ID)) & ((bs < 0) | (bs == _TOP_ID))
    )
    considered = int(meta.all_mask.sum())
    visited_fraction = (
        float(visited[meta.all_mask].sum()) / considered if considered else 1.0
    )

    seq_total = int(meta.seq_counts.sum())
    node_total = int(meta.node_counts.sum())
    loop_bits = len(plan.model.loop_nets)
    ctrl_bits = len(plan.model.ctrl_nets)
    fub_names = plan.fub_names
    for w in range(width):
        rows = []
        # Accumulate design totals linearly in sorted-FUB order — the
        # exact summation fub_report performs, so the batched reports
        # reproduce the scalar path bit for bit (np.add.at applied the
        # same per-FUB additions in the same node order).
        seq_weighted = 0.0
        node_weighted = 0.0
        for f in meta.row_fubs:
            sc = int(meta.seq_counts[f])
            nc = int(meta.node_counts[f])
            fub_seq = float(seq_sums[f, w])
            fub_node = float(node_sums[f, w])
            seq_weighted += fub_seq
            node_weighted += fub_node
            rows.append(
                FubReport(
                    fub=fub_names[f],
                    seq_count=sc,
                    seq_avg_avf=fub_seq / sc if sc else 0.0,
                    node_count=nc,
                    node_avg_avf=fub_node / nc if nc else 0.0,
                )
            )
        result.reports.append(
            DesignReport(
                fubs=tuple(rows),
                seq_count=seq_total,
                weighted_seq_avf=seq_weighted / seq_total if seq_total else 0.0,
                node_count=node_total,
                weighted_node_avf=(
                    node_weighted / node_total if node_total else 0.0
                ),
                visited_fraction=visited_fraction,
                loop_bits=loop_bits,
                ctrl_bits=ctrl_bits,
            )
        )
    return result


def sweep_batched(
    plan: SolvePlan,
    values: Sequence[float],
    config=None,
    *,
    use_numpy: bool | None = None,
) -> BatchedResult:
    """Figure-8 loop-pAVF sweep as one batched evaluation.

    Each sweep point's environment is exactly what the per-point path
    binds (``build_env(plan.model, SartConfig(loop_pavf=value, ...))``),
    so the batched reports match per-point ``run_sart`` results.
    """
    from repro.core.sart import SartConfig, build_env

    if config is None:
        config = SartConfig()
    envs = [
        build_env(plan.model, replace(config, loop_pavf=value)) for value in values
    ]
    return solve_batched(
        plan,
        envs,
        max_terms=config.max_terms,
        dangling=config.dangling,
        use_numpy=use_numpy,
    )
