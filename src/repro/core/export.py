"""Result export: CSV/JSON writers for downstream consumption.

A real deployment feeds sequential AVFs into FIT rollups, hardened-cell
selection, and design reviews; these writers emit the SART outputs in
formats those flows ingest: per-node CSV, per-FUB CSV, a JSON summary,
and the closed-form equations as text.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping

from repro.core.resolve import NodeAvf
from repro.core.sart import SartResult


def node_avfs_csv(result: SartResult, *, only_sequential: bool = False) -> str:
    """Per-node AVF table: net, instance, fub, kind, role, fwd, bwd, avf."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["net", "instance", "fub", "kind", "role",
                     "forward", "backward", "avf", "visited"])
    graph = result.model.graph
    for net, node in sorted(result.node_avfs.items()):
        if only_sequential and node.kind != "seq":
            continue
        inst = graph.nodes[net].inst or ""
        writer.writerow([
            net, inst, node.fub, node.kind, node.role,
            f"{node.forward:.6f}", f"{node.backward:.6f}",
            f"{node.avf:.6f}", int(node.visited),
        ])
    return out.getvalue()


def fub_report_csv(result: SartResult) -> str:
    """Per-FUB aggregate table (the Figure 9 rows)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["fub", "seq_count", "seq_avg_avf", "node_count", "node_avg_avf"])
    for row in result.report.fubs:
        writer.writerow([row.fub, row.seq_count, f"{row.seq_avg_avf:.6f}",
                         row.node_count, f"{row.node_avg_avf:.6f}"])
    writer.writerow(["WEIGHTED", result.report.seq_count,
                     f"{result.report.weighted_seq_avf:.6f}",
                     result.report.node_count,
                     f"{result.report.weighted_node_avf:.6f}"])
    return out.getvalue()


def summary_json(result: SartResult) -> str:
    """Machine-readable run summary (stats + headline numbers)."""
    payload = {
        "design": result.model.graph.name,
        "weighted_seq_avf": result.report.weighted_seq_avf,
        "weighted_node_avf": result.report.weighted_node_avf,
        "seq_count": result.report.seq_count,
        "node_count": result.report.node_count,
        "visited_fraction": result.report.visited_fraction,
        "loop_bits": result.report.loop_bits,
        "ctrl_bits": result.report.ctrl_bits,
        "elapsed_seconds": result.elapsed_seconds,
        "config": {
            "loop_pavf": result.config.loop_pavf,
            "engine": result.config.engine,
            "partition_by_fub": result.config.partition_by_fub,
            "iterations": result.config.iterations,
        },
        "fubs": [
            {
                "fub": row.fub,
                "seq_count": row.seq_count,
                "seq_avg_avf": row.seq_avg_avf,
                "node_count": row.node_count,
                "node_avg_avf": row.node_avg_avf,
            }
            for row in result.report.fubs
        ],
    }
    if result.trace is not None:
        payload["relaxation"] = {
            "iterations": result.trace.iterations,
            "converged": result.trace.converged,
            "max_delta": result.trace.max_delta,
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def closed_form_text(result: SartResult, nets: Iterable[str] | None = None) -> str:
    """The per-node closed-form equations (Section 5.2) as plain text."""
    closed = result.closed_form()
    selected = list(nets) if nets is not None else sorted(
        net for net, node in result.node_avfs.items() if node.kind == "seq"
    )
    lines = [closed.equation_for(net) for net in selected]
    return "\n".join(lines) + "\n"


def worst_nodes(
    result: SartResult, count: int = 20, *, sequential_only: bool = True
) -> list[NodeAvf]:
    """The highest-AVF nodes — the hardened-cell shopping list.

    This is the paper's stated purpose: "A fast and accurate means of
    determining the most vulnerable sequentials is required to determine
    the most efficient use of low-SER circuit and other SER mitigation
    techniques."
    """
    pool = [
        node for node in result.node_avfs.values()
        if (not sequential_only or node.kind == "seq") and node.role != "struct"
    ]
    pool.sort(key=lambda n: (-n.avf, n.net))
    return pool[:count]
