"""Cycle-based gate-level simulator.

The simulator is *lane-parallel*: every net carries a Python integer whose
bit ``k`` is the net's logic value in simulation lane ``k``. Lane 0 is
conventionally the golden (fault-free) run; the remaining lanes carry
fault-injected replicas, so one pass of the simulator advances one golden
simulation plus dozens of faulty ones. This is what makes the paper's SFI
baseline (Section 3.1) tractable in pure Python, and it is also how the
simulated beam test (:mod:`repro.ser.beam`) achieves useful statistics.
"""

from repro.rtlsim.simulator import (
    DEFAULT_BACKEND,
    BaseSimulator,
    Simulator,
    available_backends,
    get_backend,
    make_simulator,
    preferred_fault_lanes,
)
from repro.rtlsim.levelize import levelize
from repro.rtlsim.probes import Probe, StateSnapshot

__all__ = [
    "BaseSimulator",
    "DEFAULT_BACKEND",
    "Probe",
    "Simulator",
    "StateSnapshot",
    "available_backends",
    "get_backend",
    "levelize",
    "make_simulator",
    "preferred_fault_lanes",
]
