"""ACE-structure -> RTL bit mapping for bigcore (paper step 4).

"The third step involved mapping between the high-level structures found
in the ACE model and the actual bits in the RTL. Often an individual
structure is composed of several arrays."

Each bigcore latch array was generated as a slice of one performance-model
structure (its ``structure_kind``); this module gives every array its port
AVFs from the corresponding ACE-analyzed structure, with a deterministic
per-array jitter standing in for the fact that different RTL arrays of
one logical structure see different slices of its traffic.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.graphmodel import StructurePorts
from repro.designs.bigcore.core import BigcoreDesign
from repro.errors import MappingError


def map_structure_ports(
    design: BigcoreDesign,
    model_ports: Mapping[str, StructurePorts],
    *,
    jitter: float = 0.25,
    seed: int = 7,
) -> dict[str, StructurePorts]:
    """Build the per-array StructurePorts table for SART.

    Args:
        design: The generated bigcore.
        model_ports: ACE-model output, keyed by performance-model structure
            name (fetch_buffer, inst_queue, rob, regfile, load_queue,
            store_buffer).
        jitter: Relative spread applied per array (0 disables).
        seed: Jitter determinism.
    """
    rng = random.Random(seed)
    out: dict[str, StructurePorts] = {}
    for array_name, kind in design.structure_kinds.items():
        base = model_ports.get(kind)
        if base is None:
            raise MappingError(
                f"array {array_name!r} maps to {kind!r}, absent from the ACE model"
            )
        factor = 1.0 + rng.uniform(-jitter, jitter) if jitter > 0 else 1.0
        out[array_name] = StructurePorts(
            name=array_name,
            pavf_r=_clamp(_scalar(base.pavf_r) * factor),
            pavf_w=_clamp(_scalar(base.pavf_w) * factor),
            avf=_clamp(_scalar(base.avf) * factor) if base.avf is not None else None,
            # Deadlines are consumption timings from the performance
            # model; the per-array rate jitter does not apply to them.
            deadlines=base.deadlines,
        )
    return out


def _scalar(value) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    values = list(value)
    return sum(values) / len(values) if values else 0.0


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))
