"""ACE analysis: lifetime analysis, Hamming-distance-1, bit fields, pAVFs.

Implements the analytical substrate the paper builds on:

* **ACE lifetime analysis** (Mukherjee et al., MICRO 2003) —
  :mod:`repro.ace.lifetime` tracks the residency of ACE bits in every
  modelled structure and produces structure AVFs (paper Eq 3).
* **Hamming-distance-1 analysis** (Biswas et al., ISCA 2005) —
  :mod:`repro.ace.hamming` refines the AVF of address/tag fields in
  address-based structures.
* **Bit Field Analysis** (paper Section 5.1) — :mod:`repro.ace.bitfield`
  splits control-structure entries into separately-tracked fields whose
  ACE-ness depends on the instruction.
* **Port AVFs** (paper Section 4) — :mod:`repro.ace.portavf` converts ACE
  read/write event rates into the pAVF_R / pAVF_W values SART propagates.
"""

from repro.ace.lifetime import AceLifetimeAnalyzer, StructureAvf
from repro.ace.portavf import analyze_workload, ports_from_analysis
from repro.ace.bitfield import FieldSpec, IQ_FIELDS, ROB_FIELDS, ace_bits_for
from repro.ace.hamming import HammingAnalyzer

__all__ = [
    "AceLifetimeAnalyzer",
    "FieldSpec",
    "HammingAnalyzer",
    "IQ_FIELDS",
    "ROB_FIELDS",
    "StructureAvf",
    "ace_bits_for",
    "analyze_workload",
    "ports_from_analysis",
]
