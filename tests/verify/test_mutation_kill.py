"""Mutation-kill suite: every shipped oracle catches its seeded defect.

This is the harness testing itself for *sensitivity*: an oracle that
returns no violations on a clean engine could also be an oracle that
stopped looking. For each registered defect we corrupt exactly one seam
and assert (a) the matching oracle fires, and (b) the same oracle is
silent without the defect — so the kill is attributable to the defect,
not to flakiness.
"""

from __future__ import annotations

import pytest

from repro.verify.cases import CaseSpec, CircuitSpec, build_case
from repro.verify.corpus import check_corpus
from repro.verify.defects import DEFECTS, get_defect
from repro.verify.oracles import (
    CaseContext,
    CrossBackendOracle,
    DeadlineSanityOracle,
    DeratedSerOracle,
    SCOPE_CIRCUIT,
    SCOPE_DESIGN,
    SCOPE_GLOBAL,
    SfiConsistencyOracle,
    oracles_by_name,
)

# One representative case with every feature the design oracles read:
# structures, all three loop kinds, control registers, multiple FUBs.
KILL_SPEC = CaseSpec(seed=42, n_fubs=3, flops_per_fub=8, struct_width=2,
                     fsm_loops=1, stall_loops=1, pointer_loops=1,
                     ctrl_regs=2, env_seed=5)
KILL_CIRCUIT = CircuitSpec(seed=2, with_mem=True, lanes=4, n_faults=2)

DESIGN_DEFECTS = sorted(n for n, d in DEFECTS.items()
                        if d.mutate_sart is not None)


def test_every_oracle_has_a_defect():
    covered = {d.oracle for d in DEFECTS.values()}
    shipped = set(oracles_by_name()) | {"golden-corpus"}
    assert shipped <= covered, f"oracles without a defect: {shipped - covered}"


def test_unknown_defect_name_lists_available():
    with pytest.raises(ValueError, match="cross-engine"):
        get_defect("no-such-defect")


@pytest.mark.parametrize("name", DESIGN_DEFECTS)
def test_design_defect_killed_by_its_oracle(name):
    defect = get_defect(name)
    oracle = oracles_by_name()[defect.oracle]
    assert oracle.scope == SCOPE_DESIGN
    case = build_case(KILL_SPEC)

    clean = oracle.check(case, CaseContext(case))
    assert clean == [], "oracle must be silent without the defect"

    mutated = oracle.check(case, CaseContext(case, mutate=defect.mutate_sart))
    assert mutated, f"defect {name!r} was not killed by {defect.oracle!r}"
    assert all(v.oracle == defect.oracle for v in mutated)


def test_cross_backend_defect_killed():
    defect = get_defect("cross-backend")
    oracle = CrossBackendOracle(make_sim=defect.make_sim)
    if not oracle.available():
        pytest.skip("numpy backend unavailable")
    assert CrossBackendOracle().check(KILL_CIRCUIT) == []
    violations = oracle.check(KILL_CIRCUIT)
    assert violations and violations[0].oracle == "cross-backend"


def test_sfi_defect_killed():
    defect = get_defect("sfi-consistency")
    measure = lambda program, injections, seed: (0.31, 0.25, 0.38)  # noqa: E731
    clean = SfiConsistencyOracle(analytic=lambda p: 0.39, measure=measure)
    assert clean.check(None) == []
    broken = SfiConsistencyOracle(analytic=defect.analytic, measure=measure)
    violations = broken.check(None)
    assert violations and violations[0].oracle == "sfi-consistency"


def test_deadline_defect_killed():
    defect = get_defect("deadline-sanity")
    summaries = {
        "rf": {"events": 4, "p50": 2, "p95": 3, "max": 3, "mean": 2.5,
               "mass_cycles": 10.0, "ace_bit_cycles": 10.0, "cycles": 50},
        "dmem": {"events": 0, "p50": 0, "p95": 0, "max": 0, "mean": 0.0,
                 "mass_cycles": 0.0, "ace_bit_cycles": 0.0, "cycles": 50},
    }
    analysis = lambda program: summaries  # noqa: E731
    clean = DeadlineSanityOracle(analysis=analysis)
    assert clean.check(None) == []
    broken = DeadlineSanityOracle(analysis=analysis,
                                  corrupt=defect.corrupt_deadlines)
    violations = broken.check(None)
    assert violations, "deadline defect was not killed"
    assert all(v.oracle == "deadline-sanity" for v in violations)
    assert "conservation" in violations[0].message


def test_derated_ser_defect_killed():
    defect = get_defect("derated-ser")
    measure = lambda program, exposures, seed: (1.5e-3, 1.1e-3, 1.9e-3)  # noqa: E731
    clean = DeratedSerOracle(derated=lambda p: 1.2e-3, measure=measure)
    assert clean.check(None) == []
    broken = DeratedSerOracle(derated=defect.derated, measure=measure)
    violations = broken.check(None)
    assert violations and violations[0].oracle == "derated-ser"


def test_derated_ser_two_sided():
    # Unlike the SFI check, the derated band rejects both directions.
    measure = lambda program, exposures, seed: (1.5e-3, 1.0e-3, 2.0e-3)  # noqa: E731
    high = DeratedSerOracle(derated=lambda p: 3.0e-3, measure=measure)
    assert high.check(None), "over-prediction must fire"
    low = DeratedSerOracle(derated=lambda p: 1.0e-4, measure=measure)
    assert low.check(None), "under-prediction must fire"


def test_golden_corpus_defect_killed():
    defect = get_defect("golden-corpus")
    clean, checked = check_corpus()
    assert checked > 0, "shipped corpus missing"
    assert clean == []
    corrupted, _ = check_corpus(corrupt=defect.corrupt_corpus)
    assert corrupted and all(v.oracle == "golden-corpus" for v in corrupted)


def test_defect_scopes_are_exclusive():
    # Each defect corrupts exactly one seam; a defect that corrupts two
    # could mask which oracle actually caught it.
    for defect in DEFECTS.values():
        seams = [defect.mutate_sart, defect.make_sim, defect.analytic,
                 defect.corrupt_corpus, defect.corrupt_deadlines,
                 defect.derated]
        assert sum(s is not None for s in seams) == 1, defect.name
