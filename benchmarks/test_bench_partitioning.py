"""Ablation — per-FUB relaxation vs one monolithic solve.

The paper partitions "to better fit available computing resources or to
parallelize the task" and accepts iteration-to-convergence in exchange.
This bench pins that the two modes agree at the fixpoint and compares
their costs on bigcore.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart


def test_bench_monolithic(benchmark, bigcore_design, bigcore_ports):
    benchmark.pedantic(
        lambda: run_sart(bigcore_design.module, bigcore_ports,
                         SartConfig(partition_by_fub=False)),
        rounds=2, iterations=1,
    )


def test_bench_partitioned(benchmark, bigcore_design, bigcore_ports):
    benchmark.pedantic(
        lambda: run_sart(bigcore_design.module, bigcore_ports,
                         SartConfig(partition_by_fub=True, iterations=20)),
        rounds=2, iterations=1,
    )


def test_bench_modes_agree(bigcore_design, bigcore_ports):
    t0 = time.perf_counter()
    mono = run_sart(bigcore_design.module, bigcore_ports,
                    SartConfig(partition_by_fub=False))
    mono_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    part = run_sart(bigcore_design.module, bigcore_ports,
                    SartConfig(partition_by_fub=True, iterations=20))
    part_s = time.perf_counter() - t0

    worst = max(abs(mono.avf(n) - part.avf(n)) for n in mono.node_avfs)
    mismatching = sum(
        1 for n in mono.node_avfs if abs(mono.avf(n) - part.avf(n)) > 1e-6
    )
    print_table(
        "Partitioning ablation (bigcore, full suite pAVFs)",
        ["mode", "seconds", "iterations", "worst |diff|", "nodes > 1e-6"],
        [
            ["monolithic", mono_s, 1, 0.0, 0],
            ["per-FUB relaxation", part_s, part.trace.iterations, worst, mismatching],
        ],
    )
    assert part.trace.converged
    # The relaxed fixpoint matches the monolithic solve (tiny residue can
    # remain on nodes fed through multi-FUB reconvergence).
    assert worst < 0.02
    assert mismatching < len(mono.node_avfs) * 0.02
