"""Mitigation selection: the paper's motivating application.

"A fast and accurate means of determining the most vulnerable sequentials
is required to determine the most efficient use of low-SER circuit and
other SER mitigation techniques for these bits." (Section 1)

Given per-node sequential AVFs, a hardening technique's residual factor
(e.g. a SEUT/BISER-style cell retains ~10 % of the intrinsic rate) and a
per-cell cost, :func:`select_cells` picks the cheapest set of flops that
meets a target SDC-FIT reduction — by descending AVF, which is optimal
when every flop has equal cost and intrinsic rate, and near-optimal
(greedy by benefit/cost) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.resolve import NodeAvf, ROLE_STRUCT
from repro.core.sart import SartResult
from repro.errors import ReproError
from repro.netlist.graph import NodeKind


@dataclass(frozen=True)
class HardeningOption:
    """One mitigation technique applicable to a flop."""

    name: str
    residual: float      # fraction of intrinsic rate remaining (0..1)
    area_cost: float = 1.0  # relative cost per hardened cell

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual < 1.0:
            raise ReproError(f"{self.name}: residual must be in [0, 1)")
        if self.area_cost <= 0:
            raise ReproError(f"{self.name}: cost must be positive")


# Representative options from the paper's citation list.
SEUT = HardeningOption("SEUT", residual=0.10, area_cost=1.6)
BISER = HardeningOption("BISER", residual=0.05, area_cost=2.0)
LOW_SER = HardeningOption("LowSER", residual=0.30, area_cost=1.15)


@dataclass
class MitigationPlan:
    """Outcome of a selection run."""

    option: HardeningOption
    selected: list[NodeAvf] = field(default_factory=list)
    base_fit: float = 0.0        # Σ AVF over all candidate flops (x intrinsic)
    achieved_fit: float = 0.0
    target_fit: float = 0.0
    total_cost: float = 0.0

    @property
    def reduction(self) -> float:
        return 1.0 - self.achieved_fit / self.base_fit if self.base_fit else 0.0

    @property
    def met_target(self) -> bool:
        return self.achieved_fit <= self.target_fit + 1e-12


def candidate_flops(result: SartResult) -> list[NodeAvf]:
    """Sequential logic nodes eligible for cell hardening.

    Structure storage bits are excluded — arrays are protected with
    parity/ECC, not hardened cells (paper Section 1).
    """
    return [
        node for node in result.node_avfs.values()
        if node.kind == NodeKind.SEQ and node.role != ROLE_STRUCT
    ]


def select_cells(
    result: SartResult,
    *,
    target_reduction: float,
    option: HardeningOption = SEUT,
    max_cells: int | None = None,
) -> MitigationPlan:
    """Greedy selection meeting *target_reduction* of sequential SDC FIT.

    Raises :class:`ReproError` when the target is infeasible (even
    hardening every flop cannot reach it, or the cell budget runs out).
    """
    if not 0.0 < target_reduction < 1.0:
        raise ReproError("target_reduction must be in (0, 1)")
    flops = candidate_flops(result)
    base = sum(n.avf for n in flops)
    plan = MitigationPlan(
        option=option,
        base_fit=base,
        achieved_fit=base,
        target_fit=base * (1.0 - target_reduction),
    )
    if base <= 0:
        return plan

    saving_per_cell = 1.0 - option.residual
    # Equal cost/intrinsic per flop: descending AVF is the exact greedy order.
    for node in sorted(flops, key=lambda n: -n.avf):
        if plan.achieved_fit <= plan.target_fit:
            break
        if max_cells is not None and len(plan.selected) >= max_cells:
            break
        plan.selected.append(node)
        plan.achieved_fit -= node.avf * saving_per_cell
        plan.total_cost += option.area_cost
    if not plan.met_target:
        raise ReproError(
            f"target {target_reduction:.0%} unreachable with {option.name} "
            f"(best achievable {1 - plan.achieved_fit / base:.0%}"
            + (f" within {max_cells} cells" if max_cells is not None else "")
            + ")"
        )
    return plan


def compare_selections(
    result: SartResult,
    flat_avf: float,
    *,
    target_reduction: float,
    option: HardeningOption = SEUT,
) -> tuple[MitigationPlan, int]:
    """Cells needed using SART's per-node AVFs vs a flat proxy AVF.

    With a flat AVF every flop looks identical, so the proxy plan must
    harden cells blindly until the target falls; the return value is
    ``(sart_plan, proxy_cell_count)``, quantifying the paper's "most
    efficient use" claim.
    """
    plan = select_cells(result, target_reduction=target_reduction, option=option)
    flops = candidate_flops(result)
    # Under the flat proxy, each hardened cell saves the same amount:
    # reaching the target needs ceil(target / per-cell saving) cells.
    saving = 1.0 - option.residual
    needed = 0
    remaining = target_reduction * len(flops) * flat_avf
    per_cell = flat_avf * saving
    if per_cell > 0:
        needed = int(-(-remaining // per_cell))
    return plan, min(needed, len(flops))
