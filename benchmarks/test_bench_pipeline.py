"""Artifact-cache benchmark — cold vs warm pipeline runs.

The pipeline's on-disk artifact store (``--cache-dir``) exists so that
re-running an analysis skips the expensive stages: the ACE workload
suite and the compiled-plan lowering for bigcore, the golden gate-level
run for tinycore campaigns. This bench measures that directly — the
same run-spec executed cold and then warm against one cache directory —
and records the wall-time split in ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import time

from conftest import print_table
from repro.pipeline import (
    ArtifactStore,
    RunSpec,
    SfiSpec,
    WorkloadsSpec,
    execute,
)

BIGCORE_SPEC = RunSpec(
    design="bigcore@scale=0.3",
    workloads=WorkloadsSpec(per_class=1, length=1000),
)
TINYCORE_SPEC = RunSpec(
    design="tinycore:fib", sfi=SfiSpec(injections=60, seed=1),
)


def _timed(spec, store):
    started = time.perf_counter()
    outcome = execute(spec, store=store)
    return outcome, time.perf_counter() - started


def test_bench_pipeline_warm_cache_smoke(tmp_path, bench_pipeline_json):
    cache = tmp_path / "cache"

    cold, cold_s = _timed(BIGCORE_SPEC, ArtifactStore(cache))
    warm, warm_s = _timed(BIGCORE_SPEC, ArtifactStore(cache))

    cached = {e.stage for e in warm.events if e.cached}
    # The warm run must skip the ACE suite and the plan lowering.
    assert cached >= {"ace", "plan"}
    # ... and change nothing numeric.
    assert (warm.sart.result.report.table()
            == cold.sart.result.report.table())

    t_cold, tc_s = _timed(TINYCORE_SPEC, ArtifactStore(cache))
    t_warm, tw_s = _timed(TINYCORE_SPEC, ArtifactStore(cache))
    assert {e.stage for e in t_warm.events if e.cached} >= {"golden", "sfi"}
    assert t_warm.sfi.result.counts() == t_cold.sfi.result.counts()

    rows = [
        ["bigcore report", f"{cold_s:.2f}", f"{warm_s:.2f}",
         f"{cold_s / warm_s:.1f}x", ",".join(sorted(cached))],
        ["tinycore sfi", f"{tc_s:.2f}", f"{tw_s:.2f}",
         f"{tc_s / tw_s:.1f}x",
         ",".join(sorted(e.stage for e in t_warm.events if e.cached))],
    ]
    print_table(
        "warm-cache speedup (same spec, same cache dir)",
        ["flow", "cold s", "warm s", "speedup", "stages reused"],
        rows,
    )
    bench_pipeline_json["warm_cache"] = {
        "bigcore_report": {
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2),
            "cached_stages": sorted(cached),
        },
        "tinycore_sfi": {
            "cold_seconds": round(tc_s, 4),
            "warm_seconds": round(tw_s, 4),
            "speedup": round(tc_s / tw_s, 2),
            "cached_stages": sorted(
                e.stage for e in t_warm.events if e.cached
            ),
        },
    }
