"""Iterative relaxation across FUB partitions (paper Section 5.2).

Each iteration performs "one up and one down walk through the netlist for
each FUB" against the FUBIO values merged at the end of the previous
iteration (Jacobi style — a pAVF value crosses exactly one partition per
iteration, as the paper notes). FUBIO merging applies the same rule as
internal logic: "smallest conservative value is used".

The iteration trace records, per FUB and iteration, the average resolved
pAVF of its sequential nodes — the quantity the paper plotted to declare
20 iterations sufficient for convergence.

This module is the serial reference implementation. The compiled engine
(:func:`repro.core.compiled.relax_compiled`) runs the same iteration on
index-based kernels and can fan per-FUB solves across worker processes
via the fault-tolerant runtime (:mod:`repro.sfi.runtime`): worker loss
respawns the pool and repeated breakage falls back to this module's
serial semantics rather than aborting — bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.dataflow import shared_interner, solve_backward, solve_forward
from repro.core.graphmodel import AvfModel
from repro.core.partition import FubPartition, partition_by_fub
from repro.core.pavf import Atom, PavfEnv, SetInterner, TOP_SET, value_of
from repro.netlist.graph import NodeKind


@dataclass
class RelaxationTrace:
    """Convergence record of one relaxation run."""

    iterations: int = 0
    converged: bool = False
    max_delta: list[float] = field(default_factory=list)
    # fub -> per-iteration average MIN(f, b) over its sequential nodes.
    fub_avg: dict[str, list[float]] = field(default_factory=dict)
    # ECO mode: whether this run was seeded from a previous converged
    # solution, and how the FUBs split between reused and re-solved.
    warm: bool = False
    warm_fubs: int = 0      # FUBs whose solution was seeded, not re-solved
    dirty_fubs: int = 0     # FUBs in the initial re-solve set
    resolved_fubs: int = 0  # distinct FUBs actually re-solved (≥ dirty_fubs)
    # Plan indices of the re-solved FUBs; on optimistic warm runs
    # ``fub_avg`` covers only these (untouched FUBs have no new values
    # to record — their solution is the seeded baseline's).
    resolved_fub_ids: tuple[int, ...] = ()


@dataclass
class WarmStart:
    """Seed state for an incremental (ECO) relaxation.

    Carries a baseline converged solution keyed by net name (node/set
    ids are plan-private and do not survive a rebuild):

    * ``f_sets``/``b_sets`` — converged per-node annotation sets.
    * ``f_boundary``/``b_boundary`` — converged FUBIO boundary entries.
      Boundaries are seeded separately from node values because the MIN
      merge keeps the *first* set to reach a value: at convergence a
      boundary entry may hold an older, equal-valued set than the
      owner's final output, and bit-identical replay must preserve that
      history.
    * ``dirty_fubs`` — the FUBs the relaxation re-solves up front.
      Everything else starts converged and is only re-solved if a
      boundary merge dirties it.

    Two seeding disciplines, selected by ``optimistic``:

    **Exact** (``optimistic=False``, the per-FUB store path): every
    seeded value is known to equal the new design's fixpoint — the
    store key chained the full dependency-closure fingerprints — and
    only node/boundary state of those proven FUBs may be seeded. Dirty
    FUBs restart from TOP and the normal MIN merge applies; seeds are
    genuine lower-bound-safe fixpoint values.

    **Optimistic** (``optimistic=True``, the design-delta path): the
    *entire* baseline solution is seeded, including FUBs whose values
    the edit may have changed, and ``dirty_fubs`` lists only the
    structurally changed FUBs. Seeds are then *not* lower bounds (an
    edit can raise values), so the relaxation switches its merge to
    replace-on-set-change and converges on quiescence: a re-solved
    export that differs from its seed — in either direction — replaces
    it and dirties the importers, so the re-solve front expands along
    the edit's *actual value influence* and stops where the solution
    provably stopped changing. The underlying node system is acyclic
    (fixed nodes cut every cycle), so its fixpoint is unique and
    quiescence lands bit-identically on the cold answer while touching
    only the influenced region — typically a tiny fraction of the
    design, where any static reachability bound would re-solve most of
    it.
    """

    dirty_fubs: frozenset[str]
    f_sets: Mapping[str, frozenset] = field(default_factory=dict)
    b_sets: Mapping[str, frozenset] = field(default_factory=dict)
    f_boundary: Mapping[str, frozenset] = field(default_factory=dict)
    b_boundary: Mapping[str, frozenset] = field(default_factory=dict)
    optimistic: bool = False
    # Optimistic runs only: the baseline's resolved per-node AVFs
    # (name -> NodeAvf), carried so the solver front end can assemble
    # the final result from the baseline for every FUB the cascade never
    # touched instead of re-resolving the whole design.
    baseline_avfs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class RelaxationResult:
    f_sets: dict[str, frozenset[Atom]]
    b_sets: dict[str, frozenset[Atom]]
    trace: RelaxationTrace
    partition: FubPartition


def relax(
    model: AvfModel,
    env: PavfEnv,
    *,
    iterations: int = 20,
    tol: float = 1e-9,
    max_terms: int = 0,
    dangling: str = "unace",
    partition: FubPartition | None = None,
    interner: SetInterner | None = None,
) -> RelaxationResult:
    """Run the partitioned analysis to convergence (or *iterations*)."""
    partition = partition or partition_by_fub(model)
    trace = RelaxationTrace()
    # One interner across every FUB, iteration and direction: duplicate
    # annotation sets are shared instead of re-allocated per solve.
    interner = shared_interner(interner)

    f_boundary: dict[str, frozenset[Atom]] = {}
    b_boundary: dict[str, frozenset[Atom]] = {}
    f_sets: dict[str, frozenset[Atom]] = {}
    b_sets: dict[str, frozenset[Atom]] = {}

    for iteration in range(iterations):
        new_f: dict[str, frozenset[Atom]] = {}
        new_b: dict[str, frozenset[Atom]] = {}
        for nets in partition.fubs.values():
            new_f.update(
                solve_forward(
                    model, nets=nets, boundary=f_boundary, max_terms=max_terms,
                    interner=interner,
                )
            )
            new_b.update(
                solve_backward(
                    model, nets=nets, boundary=b_boundary, max_terms=max_terms,
                    dangling=dangling, interner=interner,
                )
            )

        # FUBIO merge: export boundary values, keeping the smaller estimate.
        delta = 0.0
        for net in partition.forward_exports:
            delta = max(delta, _merge(f_boundary, net, new_f.get(net, TOP_SET), env))
        for net in partition.backward_exports:
            delta = max(delta, _merge(b_boundary, net, new_b.get(net, TOP_SET), env))

        f_sets, b_sets = new_f, new_b
        trace.iterations = iteration + 1
        trace.max_delta.append(delta)
        _record_fub_averages(model, partition, f_sets, b_sets, env, trace)
        if delta <= tol:
            trace.converged = True
            break

    return RelaxationResult(f_sets=f_sets, b_sets=b_sets, trace=trace, partition=partition)


def _merge(
    table: dict[str, frozenset[Atom]], net: str, new: frozenset[Atom], env: PavfEnv
) -> float:
    """MIN-rule merge; returns the magnitude of the value change."""
    old = table.get(net, TOP_SET)
    old_val = value_of(old, env)
    new_val = value_of(new, env)
    if new_val < old_val:
        table[net] = new
        return old_val - new_val
    return 0.0


def _record_fub_averages(
    model: AvfModel,
    partition: FubPartition,
    f_sets: Mapping[str, frozenset[Atom]],
    b_sets: Mapping[str, frozenset[Atom]],
    env: PavfEnv,
    trace: RelaxationTrace,
) -> None:
    nodes = model.graph.nodes
    for fub, nets in partition.fubs.items():
        seq_vals = []
        for net in nets:
            if nodes[net].kind != NodeKind.SEQ or net in model.struct_nodes:
                continue
            f_val = value_of(f_sets.get(net, TOP_SET), env)
            b_val = value_of(b_sets.get(net, TOP_SET), env)
            seq_vals.append(min(f_val, b_val))
        avg = sum(seq_vals) / len(seq_vals) if seq_vals else 0.0
        trace.fub_avg.setdefault(fub, []).append(avg)
