"""E8 — lane-scalable backend throughput and campaign wall time.

Measures, on tinycore, (a) simulator cycles/second per backend as the
lane count grows — the python backend's bigint ops scale with lane count
while the numpy backend's word-sliced ufunc passes are near-constant
until well past 1024 lanes — and (b) SFI campaign wall time for the
seed-era configuration (63 fault lanes per pass, serial) against the
wide-batch and multi-worker configurations this repo now supports.

Results are flushed to ``BENCH_simulator.json`` via the ``bench_json``
fixture for machine consumption (CI trend lines, the acceptance ratio).

The ``smoke`` subset (``-k smoke``) runs both backends in well under 30
seconds for CI.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program
from repro.netlist.graph import extract_graph
from repro.rtlsim.backends import available_backends, make_simulator
from repro.sfi import plan_campaign, run_sfi_campaign

BACKENDS = available_backends()
LANE_POINTS = (1, 64, 256, 1024)
CAMPAIGN_PROGRAM = "matmul"
CAMPAIGN_INJECTIONS = 256


@pytest.fixture(scope="module")
def fib_setup():
    words, dmem = program("fib"), default_dmem("fib")
    return words, dmem, build_tinycore(words, dmem)


@pytest.fixture(scope="module")
def campaign_setup():
    words, dmem = program(CAMPAIGN_PROGRAM), default_dmem(CAMPAIGN_PROGRAM)
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    seqs = extract_graph(netlist.module).seq_nets()
    plans = plan_campaign(seqs, golden.cycles - 2, CAMPAIGN_INJECTIONS, seed=7)
    return words, dmem, netlist, plans


def _cycles_per_second(words, dmem, netlist, backend, lanes):
    sim = make_simulator(netlist.module, lanes=lanes, backend=backend)
    started = time.perf_counter()
    run = run_gate_level(words, dmem, netlist=netlist, sim=sim)
    elapsed = time.perf_counter() - started
    return run.cycles / elapsed, run.cycles


def test_bench_cycles_per_second_by_lanes(fib_setup, bench_json):
    words, dmem, netlist = fib_setup
    rows = []
    record = {}
    for backend in BACKENDS:
        for lanes in LANE_POINTS:
            cps, cycles = _cycles_per_second(words, dmem, netlist, backend, lanes)
            rows.append([backend, lanes, cycles, f"{cps:,.0f}",
                         f"{cps * lanes:,.0f}"])
            record[f"{backend}_lanes{lanes}"] = {
                "cycles_per_second": round(cps, 1),
                "lane_cycles_per_second": round(cps * lanes, 1),
            }
    print_table(
        "simulator throughput on tinycore fib (one full run per point)",
        ["backend", "lanes", "cycles", "cyc/s", "lane-cyc/s"],
        rows,
    )
    bench_json["throughput"] = record


def test_bench_campaign_wall_time(campaign_setup, bench_json):
    words, dmem, netlist, plans = campaign_setup
    configs = [
        ("python 63/pass serial (seed config)",
         dict(backend="python", lanes_per_pass=63, workers=1)),
        ("python 255/pass serial",
         dict(backend="python", lanes_per_pass=255, workers=1)),
        ("python 255/pass 4 workers",
         dict(backend="python", lanes_per_pass=255, workers=4)),
        ("numpy 255/pass serial",
         dict(backend="numpy", lanes_per_pass=255, workers=1)),
    ]
    rows, timings = [], {}
    baseline_sig = baseline_seconds = None
    for label, kwargs in configs:
        result = run_sfi_campaign(words, dmem, plans, netlist=netlist, **kwargs)
        sig = [o.outcome for o in result.outcomes]
        if baseline_sig is None:
            baseline_sig, baseline_seconds = sig, result.elapsed_seconds
        else:
            assert sig == baseline_sig, f"{label} changed campaign outcomes"
        timings[label] = result.elapsed_seconds
        rows.append([label, result.passes, result.elapsed_seconds,
                     result.elapsed_seconds / baseline_seconds])
    print_table(
        f"SFI campaign wall time: {CAMPAIGN_INJECTIONS} injections, "
        f"tinycore {CAMPAIGN_PROGRAM}",
        ["configuration", "passes", "seconds", "vs 63/pass serial"],
        rows,
    )
    wide = timings["python 255/pass serial"]
    ratio = wide / baseline_seconds
    bench_json["campaign_matmul_256inj"] = {
        label: round(seconds, 3) for label, seconds in timings.items()
    }
    bench_json["campaign_matmul_256inj"]["wide_vs_seed_ratio"] = round(ratio, 3)
    # The wide batch must beat the seed-era configuration decisively; the
    # seed-vs-now comparison in docs/PERFORMANCE.md additionally folds in
    # the MemState fast-path gains (~3x on top of this within-tree ratio).
    assert ratio < 1.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_smoke(backend, fib_setup, bench_json):
    """CI smoke: one short campaign per backend, seconds each."""
    words, dmem, netlist = fib_setup
    golden = run_gate_level(words, dmem, netlist=netlist)
    seqs = extract_graph(netlist.module).seq_nets()
    plans = plan_campaign(seqs, golden.cycles - 2, 60, seed=1)
    result = run_sfi_campaign(
        words, dmem, plans, netlist=netlist, backend=backend,
        lanes_per_pass=None,
    )
    assert len(result.outcomes) == 60
    bench_json.setdefault("smoke", {})[backend] = {
        "seconds": round(result.elapsed_seconds, 3),
        "counts": result.counts(),
    }
    print(f"\nsmoke[{backend}]: 60 injections in "
          f"{result.elapsed_seconds:.2f}s counts={result.counts()}")
