"""Unit and determinism tests for logic derating (`ser/derating.py`).

Three layers: the per-pin gate sensitization closed forms, the analytic
observability pass on hand-built modules with known answers, and the MC
estimator's determinism contract — trials planned up front from the
seed, so outcomes are bit-identical at any ``--workers`` count. The
cross-backend half of that contract lives in
``tests/rtlsim/test_masking_backends.py``.
"""

from __future__ import annotations

import pytest

from repro.designs.tinycore.programs import default_dmem, program
from repro.errors import ReproError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.cells import input_sensitivities
from repro.ser.derating import (
    DeratingResult,
    MaskingConfig,
    analytic_derating,
    measure_masking_mc,
    plan_mask_trials,
)

# ----------------------------------------------------------------------
# gate sensitization
# ----------------------------------------------------------------------

def test_sensitivities_basic_cells():
    assert input_sensitivities("NOT", 1) == (1.0,)
    assert input_sensitivities("BUF", 1) == (1.0,)
    assert input_sensitivities("AND", 2) == (0.5, 0.5)
    assert input_sensitivities("NOR", 2) == (0.5, 0.5)
    assert input_sensitivities("XOR", 2) == (1.0, 1.0)
    assert input_sensitivities("XNOR", 3) == (1.0, 1.0, 1.0)
    # AND-family sensitization halves with every extra input.
    assert input_sensitivities("AND", 4) == (0.125,) * 4
    # MUX2: each data pin is seen when selected (p=1/2); the select pin
    # matters when the data pins differ (p=1/2).
    assert input_sensitivities("MUX2", 3) == (0.5, 0.5, 0.5)


def test_sensitivities_closed_forms_match_enumeration():
    # Arity 12 is the last enumerated width, 13 the first closed form;
    # both must sit on the same 2^(1-k) / 1.0 curves.
    assert input_sensitivities("OR", 12) == (2.0 ** -11,) * 12
    assert input_sensitivities("OR", 13) == (2.0 ** -12,) * 13
    assert input_sensitivities("XOR", 13) == (1.0,) * 13


def test_sensitivities_reject_sequential_cells():
    with pytest.raises(ValueError, match="DFF"):
        input_sensitivities("DFF", 2)


# ----------------------------------------------------------------------
# analytic observability on hand-built modules
# ----------------------------------------------------------------------

def _single_flop(shape: str):
    """One flop whose Q reaches (or misses) a capture point via *shape*."""
    b = ModuleBuilder("t")
    a = b.input("a")
    q = b.dff(a, name="ff")
    if shape == "buf-to-output":
        b.output("y")
        b.gate("BUF", [q], out="y")
    elif shape == "and-to-output":
        b.output("y")
        b.gate("AND", [q, b.input("b")], out="y")
    elif shape == "to-dff":
        b.dff(q, name="ff2")
    elif shape == "to-enabled-dff":
        b.dff(q, en=b.input("en"), name="ff2")
    elif shape == "dangling":
        pass
    else:  # pragma: no cover - guard against typo'd parametrization
        raise AssertionError(shape)
    return b.done(), q


@pytest.mark.parametrize("shape, expected", [
    ("buf-to-output", 1.0),      # fully observable
    ("and-to-output", 0.5),      # one 2-input AND masks half the time
    ("to-dff", 1.0),             # plain DFF d-pin always captures
    ("dangling", 0.0),           # no sink: strike can never matter
])
def test_analytic_derating_known_topologies(shape, expected):
    module, q = _single_flop(shape)
    result = analytic_derating(module)
    assert result.factor(q) == pytest.approx(expected)


def test_analytic_derating_enabled_dff_capture():
    # d (1/2, enable high) + hold path (1/2, enable low) at the sink
    # flop; the struck flop's Q only feeds d, so it derates to 1/2.
    module, q = _single_flop("to-enabled-dff")
    assert analytic_derating(module).factor(q) == pytest.approx(0.5)


def test_analytic_derating_noisy_or_over_sinks():
    # Q fans out to two independent half-observable paths:
    # 1 - (1 - 1/2)(1 - 1/2) = 3/4.
    b = ModuleBuilder("fan")
    q = b.dff(b.input("a"), name="ff")
    b.output("y0")
    b.gate("AND", [q, b.input("b")], out="y0")
    b.output("y1")
    b.gate("OR", [q, b.input("c")], out="y1")
    assert analytic_derating(b.done()).factor(q) == pytest.approx(0.75)


def test_derating_result_helpers():
    result = DeratingResult(flop_derating={"a": 0.25, "b": 0.75})
    assert result.factor("a") == 0.25
    assert result.factor("missing") == 1.0   # conservative default
    assert result.mean() == pytest.approx(0.5)
    summary = result.to_summary()
    assert summary["flops"] == 2
    assert summary["min"] == 0.25 and summary["max"] == 0.75
    empty = DeratingResult(flop_derating={})
    assert empty.mean() == 0.0
    assert empty.to_summary()["flops"] == 0


# ----------------------------------------------------------------------
# MC estimator determinism
# ----------------------------------------------------------------------

def test_plan_mask_trials_deterministic_and_in_range():
    config = MaskingConfig(trials=64, seed=9)
    nets = [f"ff{i}.q" for i in range(5)]
    plan = plan_mask_trials(config, nets, cycles=40)
    again = plan_mask_trials(config, nets, cycles=40)
    assert plan == again
    assert [t.index for t in plan] == list(range(64))
    assert all(t.net in nets and 0 <= t.cycle < 39 for t in plan)
    shifted = plan_mask_trials(MaskingConfig(trials=64, seed=10), nets, 40)
    assert shifted != plan


def test_measure_masking_rejects_zero_trials():
    with pytest.raises(ReproError, match="at least one trial"):
        measure_masking_mc(program("fib"), default_dmem("fib"),
                           MaskingConfig(trials=0))


def test_masking_mc_worker_count_is_bit_identical():
    # Trials are planned up front and folded in submission order, so the
    # outcome vector must not depend on how passes were scheduled.
    config = MaskingConfig(trials=48, seed=5, lanes_per_pass=16)
    prog, dmem = program("fib"), default_dmem("fib")
    serial = measure_masking_mc(prog, dmem, config, workers=1)
    parallel = measure_masking_mc(prog, dmem, config, workers=2)
    assert serial.trials == parallel.trials == 48
    assert serial.outcomes == parallel.outcomes
    assert serial.rate() == parallel.rate()


def test_masking_mc_agrees_with_analytic_mean():
    # The MC propagation rate is the population mean the analytic pass
    # predicts; with modest trials we only pin a loose band (the fib
    # anchors are analytic 0.638 vs MC 0.656 at 64 trials).
    from repro.designs.tinycore.core import build_tinycore

    prog, dmem = program("fib"), default_dmem("fib")
    netlist = build_tinycore(prog, dmem)
    analytic = analytic_derating(netlist.module).mean()
    mc = measure_masking_mc(prog, dmem,
                            MaskingConfig(trials=64, seed=11),
                            netlist=netlist)
    assert mc.trials == 64
    assert abs(mc.rate() - analytic) < 0.2
    summary = mc.to_summary()
    assert summary["propagated"] == mc.propagated
    assert 0.0 <= summary["rate"] <= 1.0
