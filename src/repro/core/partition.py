"""FUB partitioning (paper Section 5.2).

"It may be advantageous to partition the RTL ... For our purposes, the
natural boundaries of the RTL are at the FUB boundaries." Each node's FUB
comes from its ``fub`` instance attribute (inherited through flattening);
untagged nodes form the ``""`` partition.

The partition also precomputes the FUBIO interconnect: for every
cross-partition edge, the driver net's forward value must be exported to
the consuming FUB and the consumer's backward value exported to the
driving FUB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graphmodel import AvfModel


@dataclass
class FubPartition:
    """Net sets per FUB plus the FUBIO interconnect net lists."""

    fubs: dict[str, set[str]] = field(default_factory=dict)
    # Nets whose forward value must be exported (drivers of cross edges).
    forward_exports: set[str] = field(default_factory=set)
    # Nets whose backward value must be exported (consumers of cross edges).
    backward_exports: set[str] = field(default_factory=set)

    def fub_of(self, net: str) -> str | None:
        for fub, nets in self.fubs.items():
            if net in nets:
                return fub
        return None


def partition_by_fub(model: AvfModel) -> FubPartition:
    """Partition the node graph along FUB boundaries."""
    part = FubPartition()
    graph = model.graph
    owner: dict[str, str] = {}
    for net, node in graph.nodes.items():
        part.fubs.setdefault(node.fub, set()).add(net)
        owner[net] = node.fub
    for net, node in graph.nodes.items():
        for driver in node.fanin:
            if owner[driver] != node.fub:
                part.forward_exports.add(driver)
                part.backward_exports.add(net)
    return part
