"""SART flow features: loops, control registers, memories, boundaries."""

import pytest

from repro.core.graphmodel import StructurePorts, build_model
from repro.core.pavf import READ, WRITE, Atom
from repro.core.sart import SartConfig, run_sart
from repro.errors import MappingError
from repro.netlist import wordlib
from repro.netlist.builder import ModuleBuilder
from repro.netlist.graph import extract_graph


def _loop_design():
    """An FSM loop feeding a downstream pipeline into a structure."""
    b = ModuleBuilder("loopy")
    tie = b.input("tie_in")
    m = b.module
    m.add_net("state")
    n = b.xor_("state", tie)
    b.dff(n, q="state", name="fsm")
    q1 = b.dff("state", name="q1")
    q2 = b.dff(q1, name="q2")
    b.dff(q2, name="sink", attrs={"struct": "SK", "bit": "0"})
    return b.done(), "state", [q1, q2]


class TestLoops:
    def test_loop_node_gets_injected_value(self):
        module, state, _ = _loop_design()
        structs = {"SK": StructurePorts("SK", pavf_r=0.0, pavf_w=1.0, avf=0.3)}
        res = run_sart(module, structs, SartConfig(loop_pavf=0.3, partition_by_fub=False))
        assert res.avf(state) == pytest.approx(0.3)
        assert res.node_avfs[state].role == "loop"

    @pytest.mark.parametrize("loop_pavf", [0.0, 0.3, 1.0])
    def test_loop_value_ripples_downstream(self, loop_pavf):
        # "the AVF used for loops could have a ripple effect and propagate
        # into sequentials fed by, but not part of, the loop"
        module, state, pipeline = _loop_design()
        structs = {"SK": StructurePorts("SK", pavf_r=0.0, pavf_w=1.0, avf=0.3)}
        res = run_sart(
            module, structs, SartConfig(loop_pavf=loop_pavf, partition_by_fub=False)
        )
        for net in pipeline:
            assert res.avf(net) == pytest.approx(loop_pavf)

    def test_loop_is_backward_sink_too(self):
        # Drivers of a loop node receive its injected value backward.
        b = ModuleBuilder("m")
        tie = b.input("tie_in")
        src = b.dff(tie, name="src", attrs={"struct": "S", "bit": "0"})
        q = b.dff(src, name="q")
        m = b.module
        m.add_net("state")
        n = b.xor_("state", q)
        b.dff(n, q="state", name="fsm")
        structs = {"S": StructurePorts("S", pavf_r=1.0, pavf_w=0.0, avf=0.5)}
        res = run_sart(module := b.done(), structs, SartConfig(loop_pavf=0.25, partition_by_fub=False))
        assert res.node_avfs[q].backward == pytest.approx(0.25)
        assert res.avf(q) == pytest.approx(0.25)


class TestControlRegisters:
    def test_ctrl_reg_is_full_avf_source(self):
        b = ModuleBuilder("m")
        tie = b.input("tie_in")
        cfg = b.dff(tie, name="cfg_mode")
        q = b.dff(cfg, name="q")
        b.dff(q, name="snk", attrs={"struct": "SK", "bit": "0"})
        structs = {"SK": StructurePorts("SK", pavf_r=0.0, pavf_w=0.6, avf=0.2)}
        res = run_sart(b.done(), structs, SartConfig(partition_by_fub=False))
        assert res.node_avfs[cfg].role == "ctrl"
        assert res.avf(cfg) == 1.0
        # downstream sees pAVF_R = 1.0 forward, 0.6 backward
        assert res.avf(q) == pytest.approx(0.6)

    def test_ctrl_reg_write_walk_omitted(self):
        # The driver of a control register receives nothing backward.
        b = ModuleBuilder("m")
        tie = b.input("tie_in")
        src = b.dff(tie, name="src", attrs={"struct": "S", "bit": "0"})
        stage = b.dff(src, name="stage")
        b.dff(stage, name="cfg_only_consumer")
        structs = {"S": StructurePorts("S", pavf_r=0.9, pavf_w=0.0, avf=0.5)}
        res = run_sart(b.done(), structs, SartConfig(partition_by_fub=False))
        # stage's only consumer is the ctrl reg -> backward value is 0
        assert res.node_avfs[stage].backward == 0.0
        assert res.avf(stage) == 0.0

    def test_detection_can_be_disabled(self):
        b = ModuleBuilder("m")
        tie = b.input("tie_in")
        cfg = b.dff(tie, name="cfg_mode")
        res = run_sart(b.done(), None, SartConfig(detect_ctrl=False, partition_by_fub=False))
        assert res.node_avfs[cfg].role != "ctrl"


class TestMemoriesAsStructures:
    def _design(self):
        b = ModuleBuilder("m")
        ra = b.input_bus("ra", 2)
        wa = b.input_bus("wa", 2)
        we = b.input("we")
        din = b.input_bus("din", 4)
        stage_in = b.dff_bus(din, name="si")
        rd = b.mem(4, 4, [ra], wa, stage_in, we, name="arr", attrs={"struct": "RF"})[0]
        stage_out = b.dff_bus(rd, name="so")
        for i in range(4):
            b.output(f"y[{i}]")
            b.gate("BUF", [stage_out[i]], out=f"y[{i}]")
        return b.done(), stage_in, stage_out

    def test_mem_ports_source_and_sink(self):
        module, stage_in, stage_out = self._design()
        structs = {"RF": StructurePorts("RF", pavf_r=0.2, pavf_w=0.4, avf=0.35)}
        res = run_sart(module, structs, SartConfig(partition_by_fub=False, boundary_out_pavf=1.0))
        for net in stage_in:
            # backward: mem write-port bits carry pAVF_W = 0.4
            assert res.node_avfs[net].backward == pytest.approx(0.4)
        for net in stage_out:
            # forward: mem read-port bits carry pAVF_R = 0.2
            assert res.node_avfs[net].forward == pytest.approx(0.2)
            assert res.avf(net) == pytest.approx(0.2)

    def test_mem_rdata_reported_as_mem_role(self):
        module, _, _ = self._design()
        structs = {"RF": StructurePorts("RF", pavf_r=0.2, pavf_w=0.4, avf=0.35)}
        res = run_sart(module, structs, SartConfig(partition_by_fub=False))
        mem_nodes = [n for n in res.node_avfs.values() if n.role == "mem"]
        assert len(mem_nodes) == 4


class TestBoundaries:
    def test_boundary_values_applied(self):
        b = ModuleBuilder("m")
        x = b.input("x")
        q = b.dff(x, name="q")
        b.output("y")
        b.gate("BUF", [q], out="y")
        res = run_sart(
            b.done(),
            None,
            SartConfig(
                boundary_in_pavf=0.11, boundary_out_pavf=0.22, partition_by_fub=False
            ),
        )
        assert res.node_avfs[q].forward == pytest.approx(0.11)
        assert res.node_avfs[q].backward == pytest.approx(0.22)
        assert res.avf(q) == pytest.approx(0.11)


class TestDangling:
    def test_unace_mode_zeroes_dead_logic(self):
        b = ModuleBuilder("m")
        tie = b.input("tie_in")
        src = b.dff(tie, name="src", attrs={"struct": "S", "bit": "0"})
        dead = b.dff(src, name="dead")  # consumed by nothing
        structs = {"S": StructurePorts("S", pavf_r=1.0, pavf_w=0.0, avf=0.5)}
        res = run_sart(b.done(), structs, SartConfig(partition_by_fub=False, dangling="unace"))
        assert res.avf(dead) == 0.0
        res2 = run_sart(b.done(), structs, SartConfig(partition_by_fub=False, dangling="top"))
        assert res2.avf(dead) == 1.0


class TestMapping:
    def test_bad_struct_bit_attr(self):
        b = ModuleBuilder("m")
        x = b.input("x")
        b.dff(x, attrs={"struct": "S", "bit": "banana"})
        g = extract_graph(b.done())
        with pytest.raises(MappingError):
            build_model(g, None)

    def test_explicit_binding_must_be_sequential(self):
        b = ModuleBuilder("m")
        x = b.input("x")
        y = b.gate("BUF", [x])
        g = extract_graph(b.done())
        with pytest.raises(MappingError):
            build_model(g, None, extra_struct_bits={y: ("S", 0)})

    def test_explicit_binding_works(self):
        b = ModuleBuilder("m")
        x = b.input("x")
        q = b.dff(x, name="q")
        g = extract_graph(b.done())
        model = build_model(g, None, extra_struct_bits={q: ("S", 3)})
        assert model.struct_nodes[q] == ("S", 3)
        assert Atom(READ, "S", 3) in model.forward_fixed[q]
        assert Atom(WRITE, "S", 3) in model.contrib_through[q]


def test_stats_and_coverage():
    module, _, _ = _loop_design()
    structs = {"SK": StructurePorts("SK", pavf_r=0.0, pavf_w=1.0, avf=0.3)}
    res = run_sart(module, structs, SartConfig(partition_by_fub=False))
    assert res.stats["sequentials"] == 4  # fsm, q1, q2, sink
    assert res.stats["loop_bits"] == 1
    assert res.report.visited_fraction > 0.9
    assert res.elapsed_seconds >= 0


class TestBoundaryOverrides:
    def test_per_port_pseudo_structure_values(self):
        b = ModuleBuilder("m")
        a = b.input("bus_in")
        c = b.input("cfg_in")
        qa = b.dff(a, name="qa")
        qc = b.dff(c, name="qc")
        b.output("y")
        b.gate("OR", [qa, qc], out="y")
        res = run_sart(
            b.done(), None,
            SartConfig(
                partition_by_fub=False,
                boundary_in_pavf=1.0,
                boundary_overrides={"bus_in": 0.15, "y": 0.5},
            ),
        )
        assert res.node_avfs[qa].forward == pytest.approx(0.15)
        assert res.node_avfs[qc].forward == pytest.approx(1.0)  # default
        assert res.node_avfs[qa].backward == pytest.approx(0.5)
        assert res.avf(qa) == pytest.approx(0.15)
