"""SFI result aggregation: per-node AVFs and confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.sfi.campaign import InjectionOutcome

# Failure kinds recorded by the fault-tolerant campaign runtime.
CRASH = "crash"      # the pass raised / its worker process died
TIMEOUT = "timeout"  # the pass outlived its soft timeout budget


@dataclass(frozen=True)
class PassFailure:
    """Structured record of one campaign pass that failed permanently.

    A campaign no longer aborts on a bad pass: after the retry budget is
    exhausted (or the soft timeout expires) the runtime records one of
    these and the remaining passes keep running. ``index`` is the pass's
    position in the campaign's batch list, ``kind`` is :data:`CRASH` or
    :data:`TIMEOUT`, and ``attempts`` counts how many executions were
    tried before giving up (always 1 for timeouts — a straggler is not
    retried, since it would likely just hang again).
    """

    index: int
    kind: str
    error: str
    attempts: int


@dataclass(frozen=True)
class NodeAvfEstimate:
    """SFI AVF estimate for one node (Eq 2, restricted to that node)."""

    net: str
    injections: int
    errors: int       # SDC + unknown (the silent-corruption numerator)
    sdc: int
    unknown: int
    due: int = 0      # detected errors (separate AVF, Section 3.1)

    @property
    def avf(self) -> float:
        return self.errors / self.injections if self.injections else 0.0

    @property
    def due_avf(self) -> float:
        return self.due / self.injections if self.injections else 0.0

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        return wilson_interval(self.errors, self.injections, z)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - margin), min(1.0, center + margin))


def aggregate_by_node(outcomes: Iterable[InjectionOutcome]) -> dict[str, NodeAvfEstimate]:
    """Group outcomes by injected net and compute per-node AVFs."""
    tally: dict[str, list[int]] = {}
    for o in outcomes:
        row = tally.setdefault(o.plan.net, [0, 0, 0, 0])  # inj, sdc, unknown, due
        row[0] += 1
        if o.outcome == "sdc":
            row[1] += 1
        elif o.outcome == "unknown":
            row[2] += 1
        elif o.outcome == "due":
            row[3] += 1
    return {
        net: NodeAvfEstimate(
            net=net, injections=row[0], errors=row[1] + row[2],
            sdc=row[1], unknown=row[2], due=row[3],
        )
        for net, row in tally.items()
    }


def overall_avf(outcomes: Iterable[InjectionOutcome]) -> tuple[float, tuple[float, float]]:
    """Whole-campaign AVF with its Wilson interval."""
    outcomes = list(outcomes)
    errors = sum(1 for o in outcomes if o.counts_as_error)
    return (
        errors / len(outcomes) if outcomes else 0.0,
        wilson_interval(errors, len(outcomes)),
    )
