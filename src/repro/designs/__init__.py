"""Reference designs analyzed by the tool flow.

* :mod:`repro.designs.tinycore` — a complete gate-level 16-bit pipelined
  CPU, small enough for statistical fault injection and simulated beam
  testing, used as ground truth for the accuracy and correlation
  experiments.
* :mod:`repro.designs.bigcore` — a parameterized synthetic multi-FUB
  netlist with the structural statistics of a large core (pipelines,
  joins, splits, FSM loops, control registers, latch arrays), used for
  the scale experiments (Figures 8 and 9, convergence).
"""
