"""Deterministic chaos harness for the fault-tolerant campaign runtime.

Provides a picklable worker whose misbehaviour — crashing its process,
raising, or hanging — is scripted per item and per attempt, so every
recovery path of :mod:`repro.sfi.runtime` (pool respawn, bounded retry,
serial degradation, soft timeouts) is exercised on schedule in CI
rather than left to flaky environmental accidents.

Attempt counting crosses process boundaries through counter files in a
scratch directory (each invocation of an item bumps ``item_<i>``), so
"crash the first two attempts, then succeed" works even though each
attempt may run in a freshly respawned worker process.

When the runtime has degraded to *serial in-process* execution a real
``os._exit`` would kill the test process itself, so a scheduled crash
running in the main process raises :class:`ChaosCrash` instead — the
same behaviour an exploding pass exhibits once the pool is gone.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


class ChaosCrash(RuntimeError):
    """Stand-in for a hard worker crash when running in-process."""


@dataclass
class ChaosPlan:
    """Scripted misbehaviour for :func:`chaos_worker`.

    Each mapping is ``item -> number of leading attempts affected``
    (e.g. ``crash={3: 2}`` makes item 3 kill its worker process on its
    first two attempts and succeed from the third). ``hang`` items sleep
    ``hang_seconds`` instead of crashing; keep that short — an abandoned
    straggler runs until the runtime terminates its worker.
    """

    scratch: str
    main_pid: int = field(default_factory=os.getpid)
    crash: dict[int, int] = field(default_factory=dict)
    raises: dict[int, int] = field(default_factory=dict)
    hang: dict[int, int] = field(default_factory=dict)
    hang_seconds: float = 5.0


_PLAN: ChaosPlan | None = None


def chaos_init(plan: ChaosPlan) -> None:
    global _PLAN
    _PLAN = plan


def _bump_attempt(plan: ChaosPlan, item: int) -> int:
    """Increment and return this item's cross-process attempt counter."""
    path = os.path.join(plan.scratch, f"item_{item}")
    try:
        with open(path) as handle:
            attempt = int(handle.read() or 0) + 1
    except FileNotFoundError:
        attempt = 1
    with open(path, "w") as handle:
        handle.write(str(attempt))
    return attempt


def attempts_of(plan: ChaosPlan, item: int) -> int:
    """How many times *item* actually started executing."""
    path = os.path.join(plan.scratch, f"item_{item}")
    try:
        with open(path) as handle:
            return int(handle.read() or 0)
    except FileNotFoundError:
        return 0


def chaos_worker(item: int) -> int:
    """Deterministic pass body: misbehave on schedule, else return item*item."""
    plan = _PLAN
    assert plan is not None, "chaos worker used before initialization"
    attempt = _bump_attempt(plan, item)
    if attempt <= plan.crash.get(item, 0):
        if os.getpid() != plan.main_pid:
            os._exit(13)  # hard kill: surfaces as BrokenProcessPool
        raise ChaosCrash(f"item {item} crashed (in-process attempt {attempt})")
    if attempt <= plan.raises.get(item, 0):
        raise ValueError(f"item {item} raised on attempt {attempt}")
    if attempt <= plan.hang.get(item, 0):
        time.sleep(plan.hang_seconds)
    return item * item
