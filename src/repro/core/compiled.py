"""Compiled propagation core: CSR graph kernel and reusable solve plans.

The dict-based engines in :mod:`repro.core.dataflow` re-extract the
dependency structure (indegrees, dependents, topological order) from
string-keyed maps on every solve — once per FUB per relaxation iteration.
This module lowers the annotated model **once** into integer form:

* net names are interned to dense node ids,
* fan-in/fan-out become CSR ``(indptr, indices)`` arrays,
* annotation sets are interned to dense set ids
  (:class:`repro.core.pavf.SetInterner`) with a memoized union kernel,
* the forward and backward topological orders are computed once and
  per-FUB schedules are derived from them by bucketing,
* loop detection runs as an integer Tarjan over the CSR arrays.

A :class:`SolvePlan` bundles all of that and is reusable across many
:class:`~repro.core.pavf.PavfEnv` bindings: monolithic solves are purely
structural, so their set-id vectors are cached and a new environment (a
Figure 8 sweep point, a ``loop_pavf_per_net`` study) is a re-evaluation,
not a re-solve. Partitioned relaxation re-runs per-FUB kernels against the
cached schedules, re-solving only FUBs whose imported boundary values
changed in the previous merge, and can fan the independent per-iteration
FUB solves out across a process pool (the worker-pool pattern of
:mod:`repro.sfi.parallel`) with results that are identical at any worker
count.

Numeric evaluation of interned sets (:class:`SetEvaluator`) is the
index-based kernel shared by resolution, FUBIO merging and the relaxation
trace; it uses numpy segmented sums when the ``[numpy]`` extra is
installed and a pure-Python loop otherwise, with bit-identical results
(both sum the same atoms in the same stable order).
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Sequence

from repro.errors import SartError
from repro.core import controlregs
from repro.core.graphmodel import AvfModel, StructurePorts, build_model, structure_nets
from repro.core.pavf import (
    Atom,
    CTRL,
    LOOP,
    PavfEnv,
    SetInterner,
    TOP_SET,
    collapse_if_large,
    union,
)
from repro.core.partition import FubPartition
from repro.core.relaxation import RelaxationTrace, WarmStart
from repro.core.resolve import (
    NodeAvf,
    ROLE_CONST,
    ROLE_CTRL,
    ROLE_INPUT,
    ROLE_LOGIC,
    ROLE_LOOP,
    ROLE_MEM,
    ROLE_STRUCT,
)
from repro.netlist.graph import NetGraph, NodeKind, extract_graph
from repro.netlist.netlist import Module

try:  # the [numpy] extra is optional; every kernel has a pure-Python path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

# On-disk/artifact format version of compiled plans. v2: shared-memory
# export layout and the shared-prefix set-id shipping protocol.
PLAN_FORMAT = 2

# Below this node count a worker pool costs more than it saves (process
# startup, boundary shipping, per-worker memo warmup), so relaxation
# auto-selects the serial kernels. Callers can force the pool by passing
# ``min_parallel_nodes=0``.
MIN_PARALLEL_NODES = 20_000


class SmallDesignSerialWarning(UserWarning):
    """``workers > 1`` requested for a design too small to benefit."""


_EMPTY_ID = SetInterner.EMPTY_ID
_TOP_ID = SetInterner.TOP_ID

# avf-source modes per node, fixed at plan build time (resolve precedence).
_MODE_MIN = 0      # AVF = MIN(forward, backward)
_MODE_STRUCT = 1   # measured structure AVF when available, else MIN
_MODE_ATOM = 2     # injected atom value (loop boundaries, control regs)


class SetEvaluator:
    """Numeric values of interned pAVF sets under one environment.

    Values are cached per set id, so the cost of an environment is one
    capped sum per *distinct* set rather than per node per use.

    Both code paths reduce a set's sorted atom values through the same
    balanced binary tree (pairwise halving, zero-padded to a power of
    two). Element-wise IEEE additions are exact and ``x + 0.0 == x`` for
    the non-negative values involved, so the tree's rounding is fully
    determined by its shape — the vectorized numpy path (one batched
    halving loop per size bucket) and the pure-Python fallback are
    bit-identical by construction, and a value never depends on how
    ``fill`` batches were formed. (A left-to-right ``reduceat`` sum would
    NOT be reproducible: numpy's reductions use SIMD partial
    accumulators with version-dependent rounding order.)
    """

    def __init__(
        self, interner: SetInterner, env: PavfEnv, *, use_numpy: bool | None = None
    ):
        self.interner = interner
        self.env = env
        self.use_numpy = HAVE_NUMPY if use_numpy is None else (use_numpy and HAVE_NUMPY)
        self._vals: list[float | None] = [0.0, 1.0]  # EMPTY, TOP
        self._atom_vals: dict[Atom, float] = {}

    def _atom_value(self, atom: Atom) -> float:
        val = self._atom_vals.get(atom)
        if val is None:
            val = self.env.lookup(atom)
            self._atom_vals[atom] = val
        return val

    def value(self, sid: int) -> float:
        """Capped tree-sum value of set *sid* (cached)."""
        vals = self._vals
        if sid >= len(vals):
            vals.extend([None] * (len(self.interner) - len(vals)))
        val = vals[sid]
        if val is None:
            atom_value = self._atom_value
            level = [atom_value(a) for a in self.interner.sorted_atoms(sid)]
            k = len(level)
            if k & (k - 1):  # pad to the next power of two with exact zeros
                level.extend([0.0] * ((1 << k.bit_length()) - k))
                k = len(level)
            while k > 1:
                level = [level[i] + level[i + 1] for i in range(0, k, 2)]
                k >>= 1
            val = level[0]
            if val > 1.0:
                val = 1.0
            vals[sid] = val
        return val

    def fill(self, sids: Iterable[int]) -> None:
        """Precompute values for *sids* in one batch (numpy when available)."""
        vals = self._vals
        if len(vals) < len(self.interner):
            vals.extend([None] * (len(self.interner) - len(vals)))
        pending = sorted({s for s in sids if s >= 0 and vals[s] is None})
        if not pending:
            return
        if not self.use_numpy:
            for sid in pending:
                self.value(sid)
            return
        # Bucket by padded width so each bucket is one rectangular array
        # reduced with a batched version of the same halving loop.
        sorted_atoms = self.interner.sorted_atoms
        atom_value = self._atom_value
        buckets: dict[int, tuple[list[int], list[tuple[Atom, ...]]]] = {}
        for sid in pending:
            atoms = sorted_atoms(sid)
            k = len(atoms)
            width = k if not (k & (k - 1)) else 1 << k.bit_length()
            ids, rows = buckets.setdefault(width, ([], []))
            ids.append(sid)
            rows.append(atoms)
        for width, (ids, rows) in buckets.items():
            arr = _np.zeros((len(ids), width), dtype=_np.float64)
            for i, atoms in enumerate(rows):
                arr[i, : len(atoms)] = [atom_value(a) for a in atoms]
            while arr.shape[1] > 1:
                arr = arr[:, 0::2] + arr[:, 1::2]
            for sid, val in zip(ids, _np.minimum(arr[:, 0], 1.0).tolist()):
                vals[sid] = val


class SolvePlan:
    """One-time lowering of a design for many propagation solves.

    Build with :meth:`build` (or :func:`repro.core.sart.build_plan`), then
    pass to ``run_sart(..., plan=plan)`` any number of times. Everything
    that does not depend on the numeric environment — graph extraction,
    loop breaking, control-register detection, FUB partitioning, topo
    order, and the monolithic annotation sets themselves — is computed
    once and reused.
    """

    def __init__(self) -> None:
        self.graph: NetGraph
        self.model: AvfModel
        self.interner = SetInterner()
        self.names: list[str] = []
        self.ids: dict[str, int] = {}
        self.n = 0
        # CSR connectivity.
        self.fanin_ptr: list[int] = [0]
        self.fanin_ix: list[int] = []
        self.fanout_ptr: list[int] = [0]
        self.fanout_ix: list[int] = []
        # Per-node fixed roles as set ids (-1 = not fixed).
        self.fwd_fixed: list[int] = []
        self.through: list[int] = []
        self.sink: list[int] = []
        # Global topological orders and per-FUB schedules.
        self.forder: list[int] = []
        self.border: list[int] = []
        self.fub_names: list[str] = []
        self.fub_of: list[int] = []
        self.fub_forder: list[list[int]] = []
        self.fub_border: list[list[int]] = []
        # FUBIO interconnect: export net ids and the FUBs importing them.
        self.f_exports: list[int] = []
        self.b_exports: list[int] = []
        self.f_importers: dict[int, tuple[int, ...]] = {}
        self.b_importers: dict[int, tuple[int, ...]] = {}
        # Non-structure sequential node ids per FUB (relaxation trace).
        self.fub_seq: list[list[int]] = []
        # Resolution metadata.
        self.kind_l: list[str] = []
        self.fub_l: list[str] = []
        self.role_l: list[str] = []
        self.mode_l: list[int] = []
        self.special_l: list[object] = []  # struct name | injected Atom | None
        # Structural knobs the plan was built with (for config validation).
        self.knobs: dict[str, object] = {}
        # Caches (dropped when the plan is pickled to worker processes).
        self._union_memo: dict[int, dict[tuple[int, ...], int]] = {}
        self._mono_cache: dict[tuple[int, str], tuple[list[int], list[int]]] = {}
        self._partition: FubPartition | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        design: Module | NetGraph,
        structures: Mapping[str, StructurePorts] | None = None,
        *,
        detect_ctrl: bool = True,
        ctrl_patterns: tuple[str, ...] = controlregs.DEFAULT_PATTERNS,
        port_traffic_on_addresses: bool = True,
        extra_struct_bits: Mapping[str, tuple[str, int]] | None = None,
    ) -> "SolvePlan":
        plan = cls()
        graph = design if isinstance(design, NetGraph) else extract_graph(design)
        plan.graph = graph
        plan.knobs = {
            "detect_ctrl": detect_ctrl,
            "ctrl_patterns": tuple(ctrl_patterns),
            "port_traffic_on_addresses": port_traffic_on_addresses,
        }

        plan._lower_connectivity()
        struct_nets = structure_nets(graph, extra_struct_bits)
        ctrl_nets = (
            controlregs.find_control_registers(graph, patterns=ctrl_patterns)
            if detect_ctrl
            else set()
        )
        loop_nets = plan._find_loop_nets(struct_nets | ctrl_nets)
        plan.model = build_model(
            graph,
            structures,
            loop_nets=loop_nets,
            ctrl_nets=ctrl_nets,
            port_traffic_on_addresses=port_traffic_on_addresses,
            extra_struct_bits=extra_struct_bits,
        )
        plan._lower_model()
        plan._build_orders()
        plan._build_partition_arrays()
        plan._build_resolution_metadata()
        return plan

    def _lower_connectivity(self) -> None:
        # The graph serves its interned CSR directly (columnar graphs
        # share their arrays; dict graphs build them once here).
        names, fanin_ptr, fanin_ix = self.graph.csr_connectivity()
        self.names = names
        self.fanin_ptr = fanin_ptr
        self.fanin_ix = fanin_ix
        self.n = n = len(names)
        graph_ids = getattr(self.graph, "ids", None)
        if graph_ids is not None and len(graph_ids) == n:
            self.ids = graph_ids
        else:
            self.ids = {net: i for i, net in enumerate(names)}
        outdeg = [0] * n
        for sid in fanin_ix:
            outdeg[sid] += 1
        fanout_ptr = self.fanout_ptr
        total = 0
        for d in outdeg:
            total += d
            fanout_ptr.append(total)
        fanout_ix = self.fanout_ix = [0] * total
        cursor = fanout_ptr[:-1].copy()
        for nid in range(n):
            for i in range(fanin_ptr[nid], fanin_ptr[nid + 1]):
                src = fanin_ix[i]
                fanout_ix[cursor[src]] = nid
                cursor[src] += 1

    def _find_loop_nets(self, cut: set[str]) -> set[str]:
        """Integer Tarjan over the CSR fan-in arrays (paper Section 4.3).

        Same classification as :func:`repro.core.loops.find_loop_nets`:
        nodes in *cut* break cycles, sequential members of non-trivial
        SCCs (or with self edges) become loop boundaries.
        """
        n = self.n
        ids, names = self.ids, self.names
        fanin_ptr, fanin_ix = self.fanin_ptr, self.fanin_ix
        kinds = self.graph.kind_column()
        is_cut = bytearray(n)
        for net in cut:
            nid = ids.get(net)
            if nid is not None:
                is_cut[nid] = 1

        UNSEEN = -1
        index = [UNSEEN] * n
        lowlink = [0] * n
        on_stack = bytearray(n)
        stack: list[int] = []
        counter = 0
        loops: set[str] = set()

        def classify(component: list[int]) -> None:
            if len(component) == 1:
                nid = component[0]
                if is_cut[nid]:
                    return
                lo, hi = fanin_ptr[nid], fanin_ptr[nid + 1]
                if nid not in fanin_ix[lo:hi]:
                    return
            seq = [
                names[m]
                for m in component
                if kinds[m] == NodeKind.SEQ
            ]
            if not seq:
                raise SartError(
                    "combinational cycle in node graph (validation should "
                    f"have caught this): {sorted(names[m] for m in component)[:8]}"
                )
            loops.update(seq)

        for root in range(n):
            if index[root] != UNSEEN:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                nid, child_i = work[-1]
                if child_i == 0:
                    index[nid] = lowlink[nid] = counter
                    counter += 1
                    stack.append(nid)
                    on_stack[nid] = 1
                lo = fanin_ptr[nid]
                hi = lo if is_cut[nid] else fanin_ptr[nid + 1]
                advanced = False
                for i in range(lo + child_i, hi):
                    child = fanin_ix[i]
                    if index[child] == UNSEEN:
                        work[-1] = (nid, i - lo + 1)
                        work.append((child, 0))
                        advanced = True
                        break
                    if on_stack[child]:
                        if index[child] < lowlink[nid]:
                            lowlink[nid] = index[child]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[nid] < lowlink[parent]:
                        lowlink[parent] = lowlink[nid]
                if lowlink[nid] == index[nid]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = 0
                        component.append(member)
                        if member == nid:
                            break
                    classify(component)
        return loops

    def _lower_model(self) -> None:
        model, ids, n = self.model, self.ids, self.n
        intern = self.interner.id_of
        fwd_fixed = self.fwd_fixed = [-1] * n
        for net, atoms in model.forward_fixed.items():
            fwd_fixed[ids[net]] = intern(atoms)
        through = self.through = [-1] * n
        for net, atoms in model.contrib_through.items():
            through[ids[net]] = intern(atoms)
        sink = self.sink = [-1] * n
        for net, atoms in model.static_sinks.items():
            sink[ids[net]] = intern(frozenset(atoms))

    def _build_orders(self) -> None:
        n = self.n
        # Forward: fixed nodes both depend on nothing and are not deps.
        # Backward: through-fixed nodes are not deps (their contribution is
        # the fixed set) but their OWN value still comes from consumers.
        self.forder = self._kahn(
            self.fanin_ptr,
            self.fanin_ix,
            self.fanout_ptr,
            self.fanout_ix,
            self.fwd_fixed,
            self.fwd_fixed,
            "forward",
        )
        self.border = self._kahn(
            self.fanout_ptr,
            self.fanout_ix,
            self.fanin_ptr,
            self.fanin_ix,
            self.through,
            None,
            "backward",
        )
        # FUB index per node; schedules are the global orders bucketed by
        # FUB (a topological order of a subgraph is any subsequence of a
        # topological order of the full graph).
        fub_ix: dict[str, int] = {}
        fub_of = self.fub_of = [0] * n
        fub_l = self.fub_l = list(self.graph.fub_column())
        for nid, fub in enumerate(fub_l):
            ix = fub_ix.get(fub)
            if ix is None:
                ix = fub_ix[fub] = len(fub_ix)
            fub_of[nid] = ix
        self.fub_names = list(fub_ix)
        n_fubs = len(fub_ix)
        self.fub_forder = [[] for _ in range(n_fubs)]
        for nid in self.forder:
            self.fub_forder[fub_of[nid]].append(nid)
        self.fub_border = [[] for _ in range(n_fubs)]
        for nid in self.border:
            self.fub_border[fub_of[nid]].append(nid)

    def _kahn(
        self,
        dep_ptr: list[int],
        dep_ix: list[int],
        rev_ptr: list[int],
        rev_ix: list[int],
        dep_fixed: list[int],
        self_fixed: list[int] | None,
        label: str,
    ) -> list[int]:
        """Topological order over the ``dep`` CSR; *dep_fixed* nodes don't
        count as dependencies, *self_fixed* nodes additionally have no
        dependencies of their own. ``rev`` is the transposed CSR, walked
        when a finished node releases its dependents (no adjacency lists
        are materialized)."""
        n = self.n
        indeg = [0] * n
        for nid in range(n):
            if self_fixed is not None and self_fixed[nid] >= 0:
                continue
            count = 0
            for i in range(dep_ptr[nid], dep_ptr[nid + 1]):
                if dep_fixed[dep_ix[i]] < 0:
                    count += 1
            indeg[nid] = count
        ready = [nid for nid in range(n) if indeg[nid] == 0]
        order: list[int] = []
        while ready:
            nid = ready.pop()
            order.append(nid)
            if dep_fixed[nid] >= 0:
                continue  # dependents never counted this node
            for i in range(rev_ptr[nid], rev_ptr[nid + 1]):
                dep = rev_ix[i]
                if self_fixed is not None and self_fixed[dep] >= 0:
                    continue
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != n:
            stuck = [self.names[i] for i in range(n) if indeg[i] > 0][:8]
            raise SartError(f"{label} solve: cyclic dependencies remain at {stuck}")
        return order

    def _build_partition_arrays(self) -> None:
        fanin_ptr, fanin_ix = self.fanin_ptr, self.fanin_ix
        fub_of = self.fub_of
        fwd_fixed, through = self.fwd_fixed, self.through
        f_imp: dict[int, set[int]] = {}
        b_imp: dict[int, set[int]] = {}
        f_exports: set[int] = set()
        b_exports: set[int] = set()
        for nid in range(self.n):
            f = fub_of[nid]
            for i in range(fanin_ptr[nid], fanin_ptr[nid + 1]):
                d = fanin_ix[i]
                if fub_of[d] == f:
                    continue
                f_exports.add(d)
                b_exports.add(nid)
                # Importers are FUBs that actually read the boundary entry:
                # fixed drivers / fixed-through consumers are read from
                # their fixed sets instead, so changes there dirty nobody.
                if fwd_fixed[d] < 0:
                    f_imp.setdefault(d, set()).add(f)
                if through[nid] < 0:
                    b_imp.setdefault(nid, set()).add(fub_of[d])
        self.f_exports = sorted(f_exports)
        self.b_exports = sorted(b_exports)
        self.f_importers = {nid: tuple(sorted(s)) for nid, s in f_imp.items()}
        self.b_importers = {nid: tuple(sorted(s)) for nid, s in b_imp.items()}

        struct_ids = {self.ids[net] for net in self.model.struct_nodes}
        self.fub_seq = [[] for _ in self.fub_names]
        kinds = self.graph.kind_column()
        for nid in range(self.n):
            if kinds[nid] == NodeKind.SEQ and nid not in struct_ids:
                self.fub_seq[fub_of[nid]].append(nid)

    def _build_resolution_metadata(self) -> None:
        model, names = self.model, self.names
        kind_l = self.kind_l = list(self.graph.kind_column())
        role_l = self.role_l = [ROLE_LOGIC] * self.n
        mode_l = self.mode_l = [_MODE_MIN] * self.n
        special_l = self.special_l = [None] * self.n
        # visited is forced True for struct/loop/ctrl/mem nodes.
        self.forced_visited = forced = bytearray(self.n)
        for nid, net in enumerate(names):
            kind = kind_l[nid]
            if net in model.struct_nodes:
                role_l[nid] = ROLE_STRUCT
                mode_l[nid] = _MODE_STRUCT
                special_l[nid] = model.struct_nodes[net][0]
                forced[nid] = 1
            elif net in model.loop_nets:
                role_l[nid] = ROLE_LOOP
                mode_l[nid] = _MODE_ATOM
                special_l[nid] = Atom(LOOP, net)
                forced[nid] = 1
            elif net in model.ctrl_nets:
                role_l[nid] = ROLE_CTRL
                mode_l[nid] = _MODE_ATOM
                special_l[nid] = Atom(CTRL, net)
                forced[nid] = 1
            elif kind == NodeKind.CONST:
                role_l[nid] = ROLE_CONST
            elif kind == NodeKind.INPUT:
                role_l[nid] = ROLE_INPUT
            elif kind == NodeKind.MEM_RDATA:
                role_l[nid] = ROLE_MEM
                forced[nid] = 1

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def n_fubs(self) -> int:
        return len(self.fub_names)

    def check_config(self, config) -> None:
        """Reject configs whose *structural* knobs differ from the plan's.

        Environment knobs (loop/ctrl/const/boundary pAVFs) and solve knobs
        (engine, partitioning, iterations, max_terms, dangling) are free
        to vary across runs of one plan.
        """
        wanted = {
            "detect_ctrl": config.detect_ctrl,
            "ctrl_patterns": tuple(config.ctrl_patterns),
            "port_traffic_on_addresses": config.port_traffic_on_addresses,
        }
        if wanted != self.knobs:
            diff = sorted(k for k in wanted if wanted[k] != self.knobs[k])
            raise SartError(
                f"SolvePlan was built with different structural settings: {diff}; "
                "rebuild the plan for this config"
            )

    def partition(self) -> FubPartition:
        """String-keyed view of the FUB partition (lazy, cached)."""
        if self._partition is None:
            part = FubPartition()
            for fub in self.fub_names:
                part.fubs[fub] = set()
            names, fub_of = self.names, self.fub_of
            fub_names = self.fub_names
            for nid, net in enumerate(names):
                part.fubs[fub_names[fub_of[nid]]].add(net)
            part.forward_exports = {names[nid] for nid in self.f_exports}
            part.backward_exports = {names[nid] for nid in self.b_exports}
            self._partition = part
        return self._partition

    def sets_dict(self, sids: Sequence[int]) -> dict[str, frozenset[Atom]]:
        """Materialize a set-id vector as the legacy net -> frozenset map."""
        sets = self.interner.sets
        names = self.names
        return {
            names[nid]: sets[sid]
            for nid, sid in enumerate(sids)
            if sid >= 0
        }

    def __getstate__(self):
        state = self.__dict__.copy()
        # Worker processes rebuild memo/evaluation caches on demand; only
        # the interner table itself must travel (fixed ids reference it).
        state["_union_memo"] = {}
        state["_mono_cache"] = {}
        state["_partition"] = None
        return state

    def _memo_for(self, max_terms: int) -> dict[tuple[int, ...], int]:
        memo = self._union_memo.get(max_terms)
        if memo is None:
            memo = self._union_memo[max_terms] = {}
        return memo

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _forward_pass(
        self,
        order: list[int],
        this_fub: int | None,
        f_bnd: list[int] | None,
        out: list[int],
        max_terms: int,
    ) -> None:
        """Forward fixpoint over *order* (one pass == the fixpoint).

        ``this_fub is None`` solves monolithically; otherwise fan-in nets
        in other FUBs read the *f_bnd* boundary vector (paper Eq 7 FUBIO).
        """
        fanin_ptr, fanin_ix = self.fanin_ptr, self.fanin_ix
        fixed, fub_of = self.fwd_fixed, self.fub_of
        sets, intern = self.interner.sets, self.interner.id_of
        memo = self._memo_for(max_terms)
        for nid in order:
            sid = fixed[nid]
            if sid >= 0:
                out[nid] = sid
                continue
            lo, hi = fanin_ptr[nid], fanin_ptr[nid + 1]
            if lo == hi:
                out[nid] = _EMPTY_ID
                continue
            if hi - lo == 1:
                d = fanin_ix[lo]
                ds = fixed[d]
                if ds < 0:
                    if this_fub is not None and fub_of[d] != this_fub:
                        ds = f_bnd[d]
                    else:
                        ds = out[d]
                out[nid] = ds
                continue
            key_list = []
            for i in range(lo, hi):
                d = fanin_ix[i]
                ds = fixed[d]
                if ds < 0:
                    if this_fub is not None and fub_of[d] != this_fub:
                        ds = f_bnd[d]
                    else:
                        ds = out[d]
                key_list.append(ds)
            key = tuple(key_list)
            sid = memo.get(key)
            if sid is None:
                merged = collapse_if_large(union(*[sets[s] for s in key]), max_terms)
                sid = intern(merged)
                memo[key] = sid
            out[nid] = sid

    def _backward_pass(
        self,
        order: list[int],
        this_fub: int | None,
        b_bnd: list[int] | None,
        out: list[int],
        max_terms: int,
        dangling: str,
    ) -> None:
        """Backward fixpoint over *order* (consumers pass annotations up)."""
        fanout_ptr, fanout_ix = self.fanout_ptr, self.fanout_ix
        through, fub_of, sink = self.through, self.fub_of, self.sink
        sets, intern = self.interner.sets, self.interner.id_of
        memo = self._memo_for(max_terms)
        dangling_id = _EMPTY_ID if dangling == "unace" else _TOP_ID
        for nid in order:
            lo, hi = fanout_ptr[nid], fanout_ptr[nid + 1]
            sk = sink[nid]
            if lo == hi and sk < 0:
                out[nid] = dangling_id
                continue
            if hi - lo == 1 and sk < 0:
                c = fanout_ix[lo]
                cs = through[c]
                if cs < 0:
                    if this_fub is not None and fub_of[c] != this_fub:
                        cs = b_bnd[c]
                    else:
                        cs = out[c]
                out[nid] = cs
                continue
            if lo == hi:  # sink only
                out[nid] = sk
                continue
            key_list = []
            for i in range(lo, hi):
                c = fanout_ix[i]
                cs = through[c]
                if cs < 0:
                    if this_fub is not None and fub_of[c] != this_fub:
                        cs = b_bnd[c]
                    else:
                        cs = out[c]
                key_list.append(cs)
            if sk >= 0:
                key_list.append(sk)
            key = tuple(key_list)
            sid = memo.get(key)
            if sid is None:
                merged = collapse_if_large(union(*[sets[s] for s in key]), max_terms)
                sid = intern(merged)
                memo[key] = sid
            out[nid] = sid

    def solve_monolithic(
        self, max_terms: int = 0, dangling: str = "unace"
    ) -> tuple[list[int], list[int]]:
        """Whole-graph solve; cached — the sets are environment-free.

        This cache is what turns the Figure 8 sweep into re-evaluations:
        every sweep point shares these exact annotation vectors and only
        re-binds atom values.
        """
        key = (max_terms, dangling)
        cached = self._mono_cache.get(key)
        if cached is None:
            f_out = [-1] * self.n
            self._forward_pass(self.forder, None, None, f_out, max_terms)
            b_out = [-1] * self.n
            self._backward_pass(self.border, None, None, b_out, max_terms, dangling)
            cached = self._mono_cache[key] = (f_out, b_out)
        return cached


# ----------------------------------------------------------------------
# partitioned relaxation (paper Section 5.2) on the compiled kernels
# ----------------------------------------------------------------------

_POOL_PLAN: SolvePlan | None = None


def _pool_init(payload) -> None:
    """Worker-process initializer: adopt the shipped plan once.

    *payload* is whatever :func:`repro.core.shmplan.export_plan` produced
    — a shared-memory handle the worker attaches to in place (zero-copy),
    a slim pickled plan (no-numpy fallback), or, for backward
    compatibility, a bare :class:`SolvePlan`.
    """
    from repro.core import shmplan

    global _POOL_PLAN
    plan = shmplan.adopt_payload(payload)
    _POOL_PLAN = plan
    plan._w_f_bnd = [_TOP_ID] * plan.n
    plan._w_b_bnd = [_TOP_ID] * plan.n
    plan._w_f_out = [-1] * plan.n
    plan._w_b_out = [-1] * plan.n


def _pool_solve_fub(task):
    """Solve one FUB against shipped boundary values; return its sets.

    Pure function of (plan, task): workers at any count produce identical
    results, and the master folds them back in submission order — the
    same determinism contract as :mod:`repro.sfi.parallel`.

    Boundary imports arrive and results return as plain interned set ids
    whenever the id predates the plan export (master and workers agree on
    every id below the shared prefix); only sets minted after the
    snapshot travel as raw frozensets. Warm re-solves therefore ship
    almost no set contents at all.
    """
    fub_idx, f_items, b_items, max_terms, dangling = task
    plan = _POOL_PLAN
    intern = plan.interner.id_of
    sets = plan.interner.sets
    prefix = plan._shared_prefix
    f_bnd, b_bnd = plan._w_f_bnd, plan._w_b_bnd
    for nid, val in f_items:
        f_bnd[nid] = intern(val) if isinstance(val, frozenset) else val
    for nid, val in b_items:
        b_bnd[nid] = intern(val) if isinstance(val, frozenset) else val
    f_out, b_out = plan._w_f_out, plan._w_b_out
    forder = plan.fub_forder[fub_idx]
    border = plan.fub_border[fub_idx]
    plan._forward_pass(forder, fub_idx, f_bnd, f_out, max_terms)
    plan._backward_pass(border, fub_idx, b_bnd, b_out, max_terms, dangling)
    out_f = []
    for nid in forder:
        sid = int(f_out[nid])
        out_f.append((nid, sid if sid < prefix else sets[sid]))
    out_b = []
    for nid in border:
        sid = int(b_out[nid])
        out_b.append((nid, sid if sid < prefix else sets[sid]))
    return (fub_idx, out_f, out_b)


def relax_compiled(
    plan: SolvePlan,
    env: PavfEnv,
    *,
    evaluator: SetEvaluator | None = None,
    iterations: int = 20,
    tol: float = 1e-9,
    max_terms: int = 0,
    dangling: str = "unace",
    workers: int = 1,
    min_parallel_nodes: int | None = None,
    warm_start: WarmStart | None = None,
    capture_boundary: dict | None = None,
) -> tuple[list[int], list[int], RelaxationTrace]:
    """Jacobi relaxation across FUB partitions on the compiled kernels.

    Matches :func:`repro.core.relaxation.relax` iteration for iteration
    (same merges, same trace, same convergence decision) with two
    engine-level speedups that cannot change results:

    * a FUB is re-solved only when one of the boundary values it imports
      changed in the previous merge (an unchanged-input re-solve would
      reproduce its previous sets verbatim), and
    * with ``workers > 1`` the independent per-iteration FUB solves run
      on a process pool, folded back in deterministic submission order.

    Workers never unpickle the plan: it is exported once through
    :func:`repro.core.shmplan.export_plan` — a shared-memory segment the
    workers attach to (or a slim pickle without numpy) — and boundary
    values/results travel as interned set ids under the export's shared
    prefix. Designs below *min_parallel_nodes* (default
    :data:`MIN_PARALLEL_NODES`, ``0`` disables the guard) fall back to
    the serial kernels with a :class:`SmallDesignSerialWarning`, because
    pool overhead dominates at small scale.

    The pool runs on the fault-tolerant campaign runtime
    (:class:`repro.sfi.runtime.ResilientPool`): a dead worker respawns
    the pool and replays only the in-flight FUB solves (each task ships
    its full boundary imports, so a respawned worker needs no history),
    and repeated breakage degrades to serial in-process execution with a
    warning instead of aborting the relaxation. Either way the results
    are bit-identical — every solve is a pure function of (plan, task).

    *warm_start* switches the relaxation to ECO mode: node outputs and
    FUBIO boundary entries are pre-seeded from a previous converged
    solution (:class:`~repro.core.relaxation.WarmStart`) and the initial
    re-solve set shrinks from every FUB to ``warm_start.dirty_fubs``.
    Two disciplines, selected by ``warm_start.optimistic``:

    * exact (store-path) seeds are proven equal to the new fixpoint, so
      the normal MIN merge applies; dirty FUBs start from TOP boundaries
      (the post-edit fixpoint may sit above the baseline's, and the MIN
      merge can never climb back up), and a merge that dirties a seeded
      FUB repairs it through the normal importer-dirtying.
    * optimistic (delta-path) seeds are the *baseline's* fixpoint, which
      an edit may have moved in either direction, so the merge accepts
      any boundary whose *value* changed — increases included — while
      still rejecting equal-value set churn, exactly as the cold MIN
      merge keeps the first set to reach a value. The re-solve front
      then expands along the edit's actual value influence and the run
      converges when values quiesce, on the same ``tol`` a cold run
      uses.

    *capture_boundary*, when a dict, receives the converged FUBIO tables
    — ``{"f"|"b": {net: frozenset}}`` over ``plan.f_exports`` /
    ``plan.b_exports`` — which later warm starts need verbatim: a
    boundary entry may hold an older set than the owner's final output
    at the same value (the MIN merge keeps the first set to reach a
    value), and replaying that tie history is what keeps warm re-solves
    bit-identical.
    """
    from repro.errors import CampaignError
    from repro.sfi.runtime import ResilientPool

    ev = evaluator or SetEvaluator(plan.interner, env)
    n, n_fubs = plan.n, plan.n_fubs
    interner = plan.interner
    f_bnd = [_TOP_ID] * n
    b_bnd = [_TOP_ID] * n
    f_out = [-1] * n
    b_out = [-1] * n
    trace = RelaxationTrace()
    dirty: list[int] = list(range(n_fubs))
    optimistic = False
    if warm_start is not None:
        dirty = _apply_warm_start(plan, warm_start, f_bnd, b_bnd, f_out, b_out)
        optimistic = warm_start.optimistic
        trace.warm = True
        trace.dirty_fubs = len(dirty)
        trace.warm_fubs = n_fubs - len(dirty)
    resolved: set[int] = set()
    workers = max(1, int(workers or 1))
    threshold = (
        MIN_PARALLEL_NODES if min_parallel_nodes is None else int(min_parallel_nodes)
    )
    if workers > 1 and 0 < n < threshold:
        warnings.warn(
            f"ignoring workers={workers}: the {n}-node design is below the "
            f"{threshold}-node parallel threshold, so process-pool overhead "
            "would dominate; relaxing serially (pass min_parallel_nodes=0 "
            "to force the pool)",
            SmallDesignSerialWarning,
            stacklevel=2,
        )
        workers = 1
    pool: ResilientPool | None = None
    segment = None
    shared_prefix = 0
    try:
        if workers > 1 and n_fubs > 1:
            from repro.core import shmplan

            segment = shmplan.export_plan(plan)
            shared_prefix = segment.shared_prefix
            pool = ResilientPool(
                _pool_init, segment.payload,
                workers=min(workers, n_fubs),
                max_pool_restarts=2,
                label="relaxation",
            )

        # Per-FUB import lists: the boundary entries each FUB's kernels read.
        f_imp_by_fub: list[list[int]] = [[] for _ in range(n_fubs)]
        for nid, fubs in plan.f_importers.items():
            for f in fubs:
                f_imp_by_fub[f].append(nid)
        b_imp_by_fub: list[list[int]] = [[] for _ in range(n_fubs)]
        for nid, fubs in plan.b_importers.items():
            for f in fubs:
                b_imp_by_fub[f].append(nid)

        for iteration in range(iterations):
            resolved.update(dirty)
            # Once the pool has degraded, the inline kernels are the
            # faster serial path (no boundary shipping / interning).
            if pool is not None and not pool.degraded and len(dirty) > 1:
                sets = interner.sets

                def _ship(sid, _sets=sets, _n0=shared_prefix):
                    # Ids below the export prefix mean the same set on
                    # both sides; newer sets must travel by content.
                    return sid if sid < _n0 else _sets[sid]

                tasks = [
                    (
                        f,
                        [(nid, _ship(f_bnd[nid])) for nid in f_imp_by_fub[f]],
                        [(nid, _ship(b_bnd[nid])) for nid in b_imp_by_fub[f]],
                        max_terms,
                        dangling,
                    )
                    for f in dirty
                ]
                results: list = [None] * len(tasks)

                def _collect(index: int, solved, _results=results) -> None:
                    _results[index] = solved

                try:
                    pool.run(
                        _pool_solve_fub, tasks,
                        max_retries=2, on_result=_collect, on_error="raise",
                    )
                except CampaignError as exc:
                    raise SartError(f"relaxation solve failed: {exc}") from exc
                intern = interner.id_of
                for fub_idx, f_items, b_items in results:
                    for nid, val in f_items:
                        f_out[nid] = intern(val) if isinstance(val, frozenset) else val
                    for nid, val in b_items:
                        b_out[nid] = intern(val) if isinstance(val, frozenset) else val
            else:
                for f in dirty:
                    plan._forward_pass(plan.fub_forder[f], f, f_bnd, f_out, max_terms)
                    plan._backward_pass(
                        plan.fub_border[f], f, b_bnd, b_out, max_terms, dangling
                    )

            # FUBIO merge, marking the importers of every changed entry
            # dirty for the next iteration. Cold/exact runs apply the
            # MIN rule (values only descend from TOP); optimistic warm
            # runs accept any value *change* — seeds are a stale
            # fixpoint, not a lower bound — but both keep the old set
            # on equal-value ties, so the tie history matches a cold run.
            # A cold boundary entry only ever leaves TOP on a strict
            # value decrease, so any cold entry at the TOP value *is*
            # TOP; an optimistic increase that saturates must therefore
            # store TOP itself, not the computed set, to land on the
            # same representation.
            delta = 0.0
            next_dirty: set[int] = set()
            value = ev.value
            top_val = value(_TOP_ID)
            for nid in plan.f_exports:
                new = f_out[nid]
                old = f_bnd[nid]
                if new == old or new < 0:
                    continue
                new_val, old_val = value(new), value(old)
                if new_val < old_val or (optimistic and new_val > old_val):
                    f_bnd[nid] = _TOP_ID if new_val >= top_val else new
                    next_dirty.update(plan.f_importers.get(nid, ()))
                    if abs(old_val - new_val) > delta:
                        delta = abs(old_val - new_val)
            for nid in plan.b_exports:
                new = b_out[nid]
                old = b_bnd[nid]
                if new == old or new < 0:
                    continue
                new_val, old_val = value(new), value(old)
                if new_val < old_val or (optimistic and new_val > old_val):
                    b_bnd[nid] = _TOP_ID if new_val >= top_val else new
                    next_dirty.update(plan.b_importers.get(nid, ()))
                    if abs(old_val - new_val) > delta:
                        delta = abs(old_val - new_val)

            trace.iterations = iteration + 1
            trace.max_delta.append(delta)
            _record_fub_averages_compiled(
                plan, f_out, b_out, ev, trace,
                fubs=dirty if optimistic else None,
            )
            if delta <= tol:
                trace.converged = True
                break
            dirty = sorted(next_dirty)
    finally:
        if pool is not None:
            pool.close()
        if segment is not None:
            segment.close()
    trace.resolved_fubs = len(resolved)
    trace.resolved_fub_ids = tuple(sorted(resolved))
    if capture_boundary is not None:
        sets = interner.sets
        names = plan.names
        capture_boundary["f"] = {
            names[nid]: sets[f_bnd[nid]] for nid in plan.f_exports
        }
        capture_boundary["b"] = {
            names[nid]: sets[b_bnd[nid]] for nid in plan.b_exports
        }
    return f_out, b_out, trace


def _apply_warm_start(
    plan: SolvePlan,
    warm: WarmStart,
    f_bnd: list[int],
    b_bnd: list[int],
    f_out: list[int],
    b_out: list[int],
) -> list[int]:
    """Seed solver state from *warm* and return the initial dirty list.

    Seeds are name-keyed (plan node ids do not survive a rebuild); names
    absent from the new plan are skipped — they belong to removed FUBs.
    Node outputs are seeded besides boundaries: a boundary entry with no
    baseline value (a previously-unexported node that gained an importer)
    starts at TOP and self-corrects from the seeded owner output at the
    first merge.
    """
    ids = plan.ids
    intern = plan.interner.id_of
    dirty = [
        f for f, fub in enumerate(plan.fub_names) if fub in warm.dirty_fubs
    ]
    if warm.optimistic:
        # Node outputs stay unseeded (-1): the merge skips entries whose
        # owner never re-solved — an unsolved owner's exports cannot have
        # changed — and the final result reuses the baseline's outputs
        # for untouched FUBs, so interning every node set would be pure
        # overhead on the path whose whole point is to skip O(n) work.
        tables = ((f_bnd, warm.f_boundary), (b_bnd, warm.b_boundary))
    else:
        tables = (
            (f_out, warm.f_sets),
            (b_out, warm.b_sets),
            (f_bnd, warm.f_boundary),
            (b_bnd, warm.b_boundary),
        )
    for table, seeds in tables:
        for name, value in seeds.items():
            nid = ids.get(name)
            if nid is not None:
                table[nid] = intern(value)
    return dirty


def _record_fub_averages_compiled(
    plan: SolvePlan,
    f_out: list[int],
    b_out: list[int],
    ev: SetEvaluator,
    trace: RelaxationTrace,
    fubs: list[int] | None = None,
) -> None:
    """Record per-FUB average AVFs; *fubs* restricts to a subset.

    Optimistic warm runs pass the FUBs solved this iteration: untouched
    FUBs' node outputs are intentionally unseeded there, and their
    converged averages are the baseline's anyway.
    """
    if fubs is None:
        ev.fill(f_out)
        ev.fill(b_out)
        fub_list = range(len(plan.fub_names))
    else:
        ev.fill(
            [t[nid] for t in (f_out, b_out) for f in fubs for nid in plan.fub_seq[f]]
        )
        fub_list = fubs
    vals = ev._vals
    for f in fub_list:
        fub = plan.fub_names[f]
        seq = plan.fub_seq[f]
        if seq:
            total = 0.0
            for nid in seq:
                f_sid, b_sid = f_out[nid], b_out[nid]
                f_val = vals[f_sid] if f_sid >= 0 else 1.0
                b_val = vals[b_sid] if b_sid >= 0 else 1.0
                total += f_val if f_val < b_val else b_val
            avg = total / len(seq)
        else:
            avg = 0.0
        trace.fub_avg.setdefault(fub, []).append(avg)


# ----------------------------------------------------------------------
# resolution (paper Table 1) on set-id vectors
# ----------------------------------------------------------------------

def resolve_ids(
    plan: SolvePlan,
    f_sid: Sequence[int],
    b_sid: Sequence[int],
    env: PavfEnv,
    *,
    evaluator: SetEvaluator | None = None,
    structures: Mapping[str, StructurePorts] | None = None,
    only: Sequence[int] | None = None,
) -> dict[str, NodeAvf]:
    """Index-based equivalent of :func:`repro.core.resolve.resolve`.

    *only* restricts resolution to those node ids — the incremental
    (ECO) path resolves just the re-solved FUBs' nodes and reuses the
    baseline's resolution for the rest.
    """
    ev = evaluator or SetEvaluator(plan.interner, env)
    if only is None:
        ev.fill(f_sid)
        ev.fill(b_sid)
    else:
        ev.fill([t[nid] for t in (f_sid, b_sid) for nid in only])
    structures = structures if structures is not None else plan.model.structures
    vals = ev._vals
    names, kind_l, fub_l = plan.names, plan.kind_l, plan.fub_l
    role_l, mode_l, special_l = plan.role_l, plan.mode_l, plan.special_l
    forced = plan.forced_visited
    lookup = env.lookup
    node_avf = NodeAvf
    out: dict[str, NodeAvf] = {}
    node_ids = range(plan.n) if only is None else only
    for nid in node_ids:
        net = names[nid]
        fs, bs = f_sid[nid], b_sid[nid]
        f_val = vals[fs] if fs >= 0 else 1.0
        b_val = vals[bs] if bs >= 0 else 1.0
        low = f_val if f_val < b_val else b_val
        mode = mode_l[nid]
        if mode == _MODE_MIN:
            avf = low
        elif mode == _MODE_STRUCT:
            ports = structures.get(special_l[nid])
            measured = ports.avf if ports is not None else None
            avf = measured if measured is not None else low
        else:  # _MODE_ATOM: injected loop/ctrl value
            avf = lookup(special_l[nid])
        # Unions absorb TOP, so a set contains TOP iff it *is* TOP_SET.
        visited = bool(forced[nid]) or not (
            (fs < 0 or fs == _TOP_ID) and (bs < 0 or bs == _TOP_ID)
        )
        out[net] = node_avf(
            net, kind_l[nid], fub_l[nid], role_l[nid], avf, f_val, b_val, visited
        )
    return out
