"""Process-pool fan-out for independent simulator passes.

SFI and beam campaigns decompose into passes that share nothing but the
netlist, so they parallelize trivially: each worker process compiles its
own simulator once (via an initializer) and then streams pass results
back. Results are reassembled in submission order, so outcomes are
deterministic for a fixed seed regardless of worker count — the pool
only changes *when* a pass runs, never *what* it computes.

Execution is delegated to the fault-tolerant runtime in
:mod:`repro.sfi.runtime`: a dead worker respawns the pool and requeues
only the in-flight passes, a raising pass is retried up to a bounded
attempt budget, and repeated pool breakage degrades to serial in-process
execution instead of aborting. :func:`parallel_map` keeps the original
all-or-nothing contract (every result, or an exception); campaigns that
want checkpoint/resume and structured per-pass failure records call
:func:`repro.sfi.runtime.run_passes` directly.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, TypeVar

from repro.errors import CampaignError
from repro.sfi.runtime import RuntimeOptions, resolve_workers, run_passes

__all__ = ["parallel_map", "resolve_workers"]

_ITEM = TypeVar("_ITEM")
_RESULT = TypeVar("_RESULT")


def parallel_map(
    worker: Callable[[_ITEM], _RESULT],
    initializer: Callable[[Any], None],
    payload: object,
    items: Iterable[_ITEM],
    workers: int | None = 1,
    *,
    max_retries: int = 3,
    max_pool_restarts: int = 3,
) -> list[_RESULT]:
    """Map *worker* over *items*, optionally across processes.

    *initializer(payload)* runs once per worker process (and once in this
    process for the serial path) to build per-process state — typically a
    compiled simulator. *worker* and *initializer* must be module-level
    functions (picklable). The result list preserves item order.

    Worker crashes and raising passes are retried transparently; only a
    pass that fails all *max_retries* attempts (after the pool has been
    respawned up to *max_pool_restarts* times and execution has fallen
    back to serial) raises :class:`CampaignError`.
    """
    report = run_passes(
        worker, initializer, payload, items,
        workers=workers,
        options=RuntimeOptions(
            max_retries=max_retries, max_pool_restarts=max_pool_restarts
        ),
    )
    if report.failures:
        first = report.failures[0]
        raise CampaignError(
            f"{len(report.failures)} campaign pass(es) failed permanently; "
            f"first: pass {first.index} after {first.attempts} attempt(s): "
            f"{first.error}"
        )
    return report.results
