"""The verify loop: clean runs, defect runs, reproducers, replay."""

from __future__ import annotations

import json

import pytest

from repro.verify.defects import get_defect
from repro.verify.harness import (
    VerifyOptions,
    build_oracles,
    replay,
    run_verify,
)
from repro.verify.oracles import SCOPE_GLOBAL


def _options(tmp_path, **kw):
    defaults = dict(budget=30.0, seed=0, out_dir=tmp_path / "fail",
                    skip_global=True, skip_corpus=True, max_cases=4)
    defaults.update(kw)
    return VerifyOptions(**defaults)


def test_clean_run_is_ok(tmp_path):
    report = run_verify(_options(tmp_path))
    assert report.ok
    assert report.design_cases + report.circuit_cases == 4
    assert report.reproducers == []
    assert not (tmp_path / "fail").exists()


def test_report_json_shape(tmp_path):
    report = run_verify(_options(tmp_path, max_cases=2))
    data = report.to_json()
    assert data["ok"] is True
    assert data["violations"] == []
    assert set(data) >= {"seed", "budget", "design_cases", "circuit_cases",
                         "corpus_entries", "elapsed", "reproducers"}


def test_budget_zero_runs_no_fuzz_cases(tmp_path):
    report = run_verify(_options(tmp_path, budget=0.0, max_cases=None))
    assert report.design_cases == 0
    assert report.circuit_cases == 0


def test_defect_run_writes_shrunk_reproducer(tmp_path):
    defect = get_defect("cross-engine")
    report = run_verify(_options(tmp_path), defect=defect)
    assert not report.ok
    assert any(v.oracle == "cross-engine" for v in report.violations)
    assert report.reproducers
    payload = json.loads(report.reproducers[0].read_text())
    assert payload["kind"] == "design"
    assert payload["oracle"] == "cross-engine"
    # The shrunk spec is no larger than the original on every field.
    for field in ("n_fubs", "flops_per_fub", "struct_width", "ctrl_regs"):
        assert payload["spec"][field] <= payload["original_spec"][field]


def test_replay_reproduces_and_clears(tmp_path):
    defect = get_defect("cross-engine")
    report = run_verify(_options(tmp_path), defect=defect)
    path = report.reproducers[0]
    with_defect = replay(path, _options(tmp_path), defect=defect)
    assert not with_defect.ok
    without = replay(path, _options(tmp_path))
    assert without.ok


def test_replay_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"kind": "mystery", "spec": {}}))
    with pytest.raises(ValueError, match="mystery"):
        replay(path, _options(tmp_path))


def test_oracle_filter_limits_set(tmp_path):
    options = _options(tmp_path, oracle_names=("range",))
    oracles = build_oracles(options)
    assert [o.name for o in oracles] == ["range"]


def test_corpus_defect_caught_without_fuzzing(tmp_path):
    defect = get_defect("golden-corpus")
    options = _options(tmp_path, skip_corpus=False, max_cases=0)
    report = run_verify(options, defect=defect)
    assert any(v.oracle == "golden-corpus" for v in report.violations)
    assert report.corpus_entries >= 5


def test_global_oracle_included_when_enabled(tmp_path):
    options = _options(tmp_path, skip_global=False)
    oracles = build_oracles(options)
    assert any(o.scope == SCOPE_GLOBAL for o in oracles)


@pytest.mark.fuzz
def test_budgeted_run_with_all_oracles(tmp_path):
    options = VerifyOptions(budget=5.0, seed=0, out_dir=tmp_path / "fail",
                            sfi_injections=96)
    report = run_verify(options)
    assert report.ok, [str(v) for v in report.violations]
    assert report.design_cases > 10
    assert report.circuit_cases > 10
    assert report.corpus_entries >= 5
