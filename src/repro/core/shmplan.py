"""Zero-copy SolvePlan transport for relaxation worker pools.

``relax_compiled`` used to hand each pool worker the entire
:class:`~repro.core.compiled.SolvePlan` through pickle — graph, model,
resolution metadata and all — which made parallel relaxation a net loss:
serializing a 3x10^4-node plan costs more than the solves it distributes.
This module ships only what the per-FUB kernels actually read, and ships
it without copying where the platform allows:

* **Shared memory** (numpy available): every integer array a worker
  kernel touches — the fan-in/fan-out CSR, fixed/through/sink vectors,
  the FUB partition and the per-FUB topological schedules — plus a flat
  encoding of the interner's atom/set tables is packed into **one**
  ``multiprocessing.shared_memory`` segment. Workers receive a small
  :class:`PlanHandle` (a name and a layout table), attach, and index the
  arrays in place; nothing is unpickled per worker and the OS shares one
  physical copy across any worker count.
* **Slim pickle** (no numpy / no shm): a stripped plan carrying only the
  kernel fields still avoids shipping the graph, the model and the
  resolution metadata, which dominate the full plan's pickle cost.

Both transports record the **shared prefix**: the interner length at
export time. Master and workers agree bit-for-bit on every set id below
the prefix, so relaxation boundary values and solved FUB sets travel as
plain integers whenever possible and as raw frozensets only for sets
minted after the snapshot (cold first iterations; warm re-solves ship
almost no sets at all).

Segment lifetime: the exporting process owns the segment and unlinks it
in ``export.close()`` (``relax_compiled`` calls this in its ``finally``,
after pool teardown); a ``weakref.finalize`` guard unlinks leaked
segments at garbage collection or interpreter exit even if the owner
errors before ``close``. Workers attach read-only-by-convention;
*spawned* workers additionally deregister their attachment from their
own ``resource_tracker`` (Python < 3.13 tracks every attach, and a
spawn child's private tracker would unlink the owner's segment when the
child exits). Forked workers share the owner's tracker, where the
duplicate registration is a harmless set re-add.
"""

from __future__ import annotations

import multiprocessing as _mp
import weakref
from dataclasses import dataclass

from repro.core.pavf import (
    Atom,
    BOUNDARY,
    CONST,
    CTRL,
    LOOP,
    READ,
    SetInterner,
    TOP_KIND,
    WRITE,
)
from repro.errors import SartError

try:  # pragma: no cover - numpy presence is environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - minimal platforms
    _resource_tracker = None
    _shared_memory = None

HAVE_SHM = _np is not None and _shared_memory is not None

# Stable atom-kind codes for the flat interner encoding.
_ATOM_KINDS = (READ, WRITE, CTRL, LOOP, BOUNDARY, CONST, TOP_KIND)
_KIND_CODE = {kind: code for code, kind in enumerate(_ATOM_KINDS)}

# Plan fields shipped verbatim as flat int64 arrays.
_FLAT_FIELDS = (
    "fanin_ptr",
    "fanin_ix",
    "fanout_ptr",
    "fanout_ix",
    "fwd_fixed",
    "through",
    "sink",
    "fub_of",
)


@dataclass(frozen=True)
class PlanHandle:
    """Everything a worker needs to attach to an exported plan.

    ``layout`` maps each field name to ``(offset, count)`` in int64 units
    within the segment's leading numeric region; the atom-name blob
    follows at ``blob_offset`` bytes.
    """

    shm_name: str
    n: int
    layout: tuple[tuple[str, int, int], ...]
    blob_offset: int
    blob_length: int
    shared_prefix: int


class _CsrRows:
    """List-of-lists view over a CSR (ptr, ix) pair, materialized lazily.

    The per-FUB schedules are the kernels' hot iteration orders; a worker
    converts only the rows of the FUBs it actually solves to plain lists
    (fast Python-int iteration) and caches them for the pool's lifetime.
    """

    __slots__ = ("_ptr", "_ix", "_rows")

    def __init__(self, ptr, ix) -> None:
        self._ptr = ptr
        self._ix = ix
        self._rows: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._ptr) - 1

    def __getitem__(self, row: int) -> list[int]:
        cached = self._rows.get(row)
        if cached is None:
            lo, hi = int(self._ptr[row]), int(self._ptr[row + 1])
            seg = self._ix[lo:hi]
            cached = self._rows[row] = (
                seg.tolist() if hasattr(seg, "tolist") else list(seg)
            )
        return cached


def _flatten(rows) -> tuple[list[int], list[int]]:
    ptr = [0]
    ix: list[int] = []
    for row in rows:
        ix.extend(row)
        ptr.append(len(ix))
    return ptr, ix


def _encode_interner(interner: SetInterner):
    """Flatten the interner into (set CSR, atom columns, name blob)."""
    atom_ix: dict[Atom, int] = {}
    set_ptr = [0]
    set_aix: list[int] = []
    for sid in range(len(interner)):
        for atom in interner.sorted_atoms(sid):
            aix = atom_ix.get(atom)
            if aix is None:
                aix = atom_ix[atom] = len(atom_ix)
            set_aix.append(aix)
        set_ptr.append(len(set_aix))
    atom_kind: list[int] = []
    atom_bit: list[int] = []
    atom_name_ptr = [0]
    blob = bytearray()
    for atom in atom_ix:  # insertion order == index order
        atom_kind.append(_KIND_CODE[atom.kind])
        atom_bit.append(atom.bit)
        blob += atom.name.encode("utf-8")
        atom_name_ptr.append(len(blob))
    return set_ptr, set_aix, atom_kind, atom_bit, atom_name_ptr, bytes(blob)


def _decode_interner(
    set_ptr, set_aix, atom_kind, atom_bit, atom_name_ptr, blob: bytes
) -> SetInterner:
    atoms = []
    for i in range(len(atom_kind)):
        lo, hi = atom_name_ptr[i], atom_name_ptr[i + 1]
        atoms.append(
            Atom(_ATOM_KINDS[atom_kind[i]], blob[lo:hi].decode("utf-8"), atom_bit[i])
        )
    interner = SetInterner()
    for sid in range(2, len(set_ptr) - 1):  # 0/1 are always EMPTY/TOP
        members = frozenset(atoms[a] for a in set_aix[set_ptr[sid] : set_ptr[sid + 1]])
        assigned = interner.id_of(members)
        if assigned != sid:
            raise SartError(
                f"corrupt shared plan: set {sid} decoded to id {assigned}"
            )
    return interner


def _plan_fields(plan) -> tuple[dict, bytes]:
    """All numeric arrays to pack, in a fixed field order, plus the blob."""
    fub_forder_ptr, fub_forder_ix = _flatten(plan.fub_forder)
    fub_border_ptr, fub_border_ix = _flatten(plan.fub_border)
    set_ptr, set_aix, atom_kind, atom_bit, atom_name_ptr, blob = _encode_interner(
        plan.interner
    )
    fields = {key: getattr(plan, key) for key in _FLAT_FIELDS}
    fields.update(
        fub_forder_ptr=fub_forder_ptr,
        fub_forder_ix=fub_forder_ix,
        fub_border_ptr=fub_border_ptr,
        fub_border_ix=fub_border_ix,
        set_ptr=set_ptr,
        set_aix=set_aix,
        atom_kind=atom_kind,
        atom_bit=atom_bit,
        atom_name_ptr=atom_name_ptr,
    )
    return fields, blob


def _destroy_segment(shm) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a live view pins the mapping
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


class _ShmExport:
    """Owner side of a plan exported into one shared-memory segment."""

    mode = "shm"

    def __init__(self, plan) -> None:
        fields, blob = _plan_fields(plan)
        layout = []
        offset = 0
        for key, values in fields.items():
            layout.append((key, offset, len(values)))
            offset += len(values)
        blob_offset = offset * 8
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, blob_offset + len(blob))
        )
        try:
            ints = _np.ndarray((offset,), dtype=_np.int64, buffer=shm.buf)
            for key, off, count in layout:
                if count:
                    ints[off : off + count] = _np.asarray(fields[key], dtype=_np.int64)
            del ints  # release the view so close() can unmap
            if blob:
                shm.buf[blob_offset : blob_offset + len(blob)] = blob
        except BaseException:
            _destroy_segment(shm)
            raise
        self.shared_prefix = len(plan.interner)
        self.segment_name = shm.name
        self.payload = (
            "shm",
            PlanHandle(
                shm_name=shm.name,
                n=plan.n,
                layout=tuple(layout),
                blob_offset=blob_offset,
                blob_length=len(blob),
                shared_prefix=self.shared_prefix,
            ),
        )
        self._shm = shm
        # Safety net: unlink at GC / interpreter exit if close() never ran.
        self._finalizer = weakref.finalize(self, _destroy_segment, shm)

    def close(self) -> None:
        self._finalizer()  # idempotent: runs _destroy_segment at most once


class _PickleExport:
    """Fallback transport: a slim plan carrying only the kernel fields."""

    mode = "pickle"

    def __init__(self, plan) -> None:
        from repro.core.compiled import SolvePlan

        slim = SolvePlan.__new__(SolvePlan)
        slim.n = plan.n
        slim.interner = plan.interner
        slim.fub_forder = plan.fub_forder
        slim.fub_border = plan.fub_border
        for key in _FLAT_FIELDS:
            setattr(slim, key, getattr(plan, key))
        slim._union_memo = {}
        slim._mono_cache = {}
        slim._partition = None
        self.shared_prefix = len(plan.interner)
        self.segment_name = None
        self.payload = ("pickle", slim, self.shared_prefix)

    def close(self) -> None:
        pass


def export_plan(plan):
    """Package *plan* for pool workers; shared memory when available."""
    if HAVE_SHM:
        return _ShmExport(plan)
    return _PickleExport(plan)


def _attach(handle: PlanHandle):
    """Worker side: build a kernel-capable plan over the shared segment."""
    from repro.core.compiled import SolvePlan

    if not HAVE_SHM:  # pragma: no cover - master had shm, worker must too
        raise SartError("cannot attach shared plan without numpy/shared_memory")
    shm = _shared_memory.SharedMemory(name=handle.shm_name)
    if (
        _resource_tracker is not None
        and _mp.get_start_method(allow_none=True) == "spawn"
    ):
        try:
            # Python < 3.13 registers every attach for cleanup. A spawn
            # child runs its own tracker, which would unlink the owner's
            # segment when the child exits; fork children (and in-process
            # attaches) share the owner's tracker, where the duplicate
            # registration is an idempotent set re-add and unregistering
            # would strip the owner's entry instead.
            _resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    total = handle.blob_offset // 8
    ints = _np.ndarray((total,), dtype=_np.int64, buffer=shm.buf)
    arrays = {key: ints[off : off + count] for key, off, count in handle.layout}
    blob = bytes(
        shm.buf[handle.blob_offset : handle.blob_offset + handle.blob_length]
    )
    interner = _decode_interner(
        arrays["set_ptr"].tolist(),
        arrays["set_aix"].tolist(),
        arrays["atom_kind"].tolist(),
        arrays["atom_bit"].tolist(),
        arrays["atom_name_ptr"].tolist(),
        blob,
    )
    plan = SolvePlan.__new__(SolvePlan)
    plan.n = handle.n
    plan.interner = interner
    for key in _FLAT_FIELDS:
        setattr(plan, key, arrays[key])
    plan.fub_forder = _CsrRows(arrays["fub_forder_ptr"], arrays["fub_forder_ix"])
    plan.fub_border = _CsrRows(arrays["fub_border_ptr"], arrays["fub_border_ix"])
    plan._union_memo = {}
    plan._mono_cache = {}
    plan._partition = None
    plan._shared_prefix = handle.shared_prefix
    plan._shm_segment = shm  # keep the mapping alive for the worker's life
    return plan


def adopt_payload(payload):
    """Materialize whatever :func:`export_plan` produced (worker side).

    Also accepts a bare :class:`~repro.core.compiled.SolvePlan` for
    backward compatibility with callers that still pickle whole plans.
    """
    if isinstance(payload, tuple) and payload:
        if payload[0] == "shm":
            return _attach(payload[1])
        if payload[0] == "pickle":
            plan = payload[1]
            plan._shared_prefix = payload[2]
            return plan
    plan = payload
    plan._shared_prefix = len(plan.interner)
    return plan
