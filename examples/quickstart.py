"""Quickstart: sequential AVFs for a hand-built datapath in ~40 lines.

Builds the paper's Figure 7 example circuit with the netlist builder,
runs SART, and prints every node's resolved AVF plus its closed-form
equation.

Run:  python examples/quickstart.py
"""

from repro import SartConfig, StructurePorts, run_sart
from repro.netlist.builder import ModuleBuilder


def build_figure7():
    b = ModuleBuilder("fig7")
    tie = b.input("tie_in")
    # ACE structures: single-bit latch arrays tagged struct/bit.
    s1 = b.dff(tie, name="s1", attrs={"struct": "S1", "bit": "0"})
    s2 = b.dff(tie, name="s2", attrs={"struct": "S2", "bit": "0"})
    # The datapath between them: pipeline, join (G1), reconvergence (G2).
    q1a = b.dff(s1, name="q1a")
    q2a = b.dff(q1a, name="q2a")
    q1b = b.dff(s2, name="q1b")
    g1 = b.or_(q1a, q1b, name="g1")
    q3b = b.dff(g1, name="q3b")
    g2 = b.and_(q2a, g1, name="g2")
    q3a = b.dff(g2, name="q3a")
    b.dff(q3a, name="s3", attrs={"struct": "S3", "bit": "0"})
    b.dff(q3b, name="s4", attrs={"struct": "S4", "bit": "0"})
    labels = dict(q1a=q1a, q2a=q2a, q1b=q1b, g1=g1, g2=g2, q3a=q3a, q3b=q3b)
    return b.done(), labels


def main():
    module, labels = build_figure7()

    # Port AVFs normally come from ACE analysis on a performance model
    # (see examples/tinycore_flow.py); here we use the paper's values.
    structures = {
        "S1": StructurePorts("S1", pavf_r=0.10, pavf_w=0.0, avf=0.30),
        "S2": StructurePorts("S2", pavf_r=0.02, pavf_w=0.0, avf=0.30),
        "S3": StructurePorts("S3", pavf_r=0.0, pavf_w=0.05, avf=0.30),
        "S4": StructurePorts("S4", pavf_r=0.0, pavf_w=0.40, avf=0.30),
    }
    result = run_sart(module, structures, SartConfig(partition_by_fub=False))

    print("node   forward  backward  AVF=MIN  closed form")
    closed = result.closed_form()
    for label, net in labels.items():
        node = result.node_avfs[net]
        equation = closed.equation_for(net).split(" = ", 1)[1]
        print(f"{label:6s} {node.forward:7.3f} {node.backward:9.3f} "
              f"{node.avf:8.3f}  {equation}")

    print(f"\naverage sequential AVF: {result.report.weighted_seq_avf:.3f}")
    print("note G2: union of pAVF_1 with (pAVF_1 U pAVF_2) is 0.12, not "
          "0.22 — the union is idempotent (paper Section 4.2).")


if __name__ == "__main__":
    main()
