"""Streaming EXLIF reader: CsrNetGraph must be extract_graph, verbatim.

``stream_graph`` lowers EXLIF text straight to interned CSR arrays —
no Module, no per-node objects — so every columnar observable (node
order, connectivity, kinds, FUBs, struct tags, memories) and every
lazily materialized ``Node`` view must match what the object path
(``parse_exlif`` → ``extract_graph``) produces for the same bytes.
"""

import pytest

from repro.errors import ExlifParseError, NetlistError
from repro.netlist.builder import ModuleBuilder
from repro.netlist.exlif import parse_exlif, write_exlif
from repro.netlist.graph import NodeKind, extract_graph
from repro.netlist.stream import CsrNetGraph, stream_graph


def _rich_module():
    """One of everything: mem, consts, enabled DFF, struct/ctrl/fub tags,
    variadic gates, multiple outputs."""
    b = ModuleBuilder("rich")
    a, c = b.input("a"), b.input("c")
    en = b.input("en")
    ra = b.input_bus("ra", 2)
    wa = b.input_bus("wa", 2)
    wd = b.input_bus("wd", 3)
    we = b.input("we")
    zero = b.const0(name="z0", attrs={"fub": "MISC"})
    one = b.const1(name="z1", attrs={"fub": "MISC"})
    rdata = b.mem(4, 3, [ra], wa, wd, we, name="arr",
                  attrs={"struct": "MEMS", "fub": "MEMF"})[0]
    g = b.and_(a, c, rdata[0], attrs={"fub": "ALU"})
    h = b.or_(g, zero, one, attrs={"fub": "ALU"})
    q = b.dff(h, en=en, name="hold",
              attrs={"fub": "ALU", "struct": "REGS", "bit": "0"})
    cfg = b.dff(q, name="cfg_mode", attrs={"fub": "ALU"})
    m = b.mux2(q, cfg, a, attrs={"fub": "ALU"})
    b.output(b.buf(m, name="out", attrs={"fub": "ALU"}))
    b.output(rdata[1])
    return b.done()


def _both_graphs(tmp_path):
    module = _rich_module()
    text = write_exlif(module)
    obj = extract_graph(parse_exlif(text)[module.name])
    path = tmp_path / "rich.exlif"
    path.write_text(text)
    csr = stream_graph(path)
    return obj, csr


def _assert_graphs_equal(obj, csr):
    assert isinstance(csr, CsrNetGraph)
    assert list(obj.nodes) == list(csr.nodes)
    o_names, o_ptr, o_ix = obj.csr_connectivity()
    c_names, c_ptr, c_ix = csr.csr_connectivity()
    assert o_names == list(c_names)
    assert list(o_ptr) == list(c_ptr)
    assert list(o_ix) == list(c_ix)
    assert list(obj.kind_column()) == list(csr.kind_column())
    assert list(obj.fub_column()) == list(csr.fub_column())
    assert sorted(obj.struct_tagged()) == sorted(csr.struct_tagged())
    assert sorted(obj.seq_items()) == sorted(csr.seq_items())
    assert sorted(obj.input_nets()) == sorted(csr.input_nets())
    assert sorted(obj.const_nets()) == sorted(csr.const_nets())
    assert obj.outputs == list(csr.outputs)
    assert sorted(obj.seq_nets()) == sorted(csr.seq_nets())
    assert sorted(obj.comb_nets()) == sorted(csr.comb_nets())
    assert obj.nets_by_fub() == csr.nets_by_fub()
    assert {k: sorted(v) for k, v in obj.fanout().items()} == {
        k: sorted(v) for k, v in csr.fanout().items()
    }
    assert obj.mems.keys() == csr.mems.keys()
    for name, info in obj.mems.items():
        got = csr.mems[name]
        assert (info.depth, info.width, info.waddr, info.wdata, info.wen) == (
            got.depth, got.width, got.waddr, got.wdata, got.wen
        )
        assert [(p.addr, p.data) for p in info.read_ports] == [
            (p.addr, p.data) for p in got.read_ports
        ]
    for net, node in obj.nodes.items():
        view = csr.nodes[net]
        assert (node.net, node.kind, node.inst, node.cell, node.fub) == (
            view.net, view.kind, view.inst, view.cell, view.fub
        ), net
        assert node.attrs == view.attrs, net
        assert tuple(node.fanin) == tuple(view.fanin), net


class TestEquivalence:
    def test_rich_module_matches_object_path(self, tmp_path):
        obj, csr = _both_graphs(tmp_path)
        _assert_graphs_equal(obj, csr)

    def test_line_iterable_source(self):
        module = _rich_module()
        text = write_exlif(module)
        obj = extract_graph(parse_exlif(text)[module.name])
        csr = stream_graph(text.splitlines())
        _assert_graphs_equal(obj, csr)

    def test_systolic_solves_identically_through_both_paths(self):
        from repro.core.sart import SartConfig, run_sart
        from repro.designs.bigcore.systolic import (
            SystolicConfig,
            build_systolic,
            systolic_exlif_text,
        )

        cfg = SystolicConfig(rows=3, cols=3, data_width=2, acc_width=4,
                             tile=2)
        module = build_systolic(cfg).module
        csr = stream_graph(systolic_exlif_text(cfg).splitlines())
        _assert_graphs_equal(extract_graph(module), csr)
        sart_cfg = SartConfig(engine="compiled")
        assert (
            run_sart(module, config=sart_cfg).node_avfs
            == run_sart(csr, config=sart_cfg).node_avfs
        )

    def test_forward_references_allowed(self):
        # A gate may mention nets driven only later in the file.
        lines = [
            ".model fwd",
            ".inputs a",
            ".gate AND g a0=a a1=later y=g",
            ".latch later d=g q=later init=0",
            ".end",
        ]
        csr = stream_graph(lines)
        assert list(csr.nodes) == ["a", "g", "later"]
        assert tuple(csr.nodes["g"].fanin) == ("a", "later")


class TestErrors:
    def _stream(self, lines):
        return stream_graph(lines)

    def test_undriven_net_rejected(self):
        lines = [".model m", ".inputs a",
                 ".gate AND g a0=a a1=ghost y=g", ".end"]
        with pytest.raises(NetlistError, match="undriven nets.*ghost"):
            self._stream(lines)

    def test_net_driven_twice_rejected(self):
        lines = [".model m", ".inputs a", ".gate BUF g a=a y=g",
                 ".gate NOT g a=a y=g", ".end"]
        with pytest.raises(ExlifParseError, match="driven twice"):
            self._stream(lines)

    def test_subckt_rejected(self):
        lines = [".model m", ".subckt child u1 a=a", ".end"]
        with pytest.raises(ExlifParseError, match="flat module"):
            self._stream(lines)

    def test_second_module_rejected(self):
        lines = [".model m", ".end", ".model n", ".end"]
        with pytest.raises(ExlifParseError, match="single-module"):
            self._stream(lines)

    def test_unterminated_module_rejected(self):
        with pytest.raises(ExlifParseError, match="not terminated"):
            self._stream([".model m", ".inputs a"])

    def test_no_model_rejected(self):
        with pytest.raises(ExlifParseError, match="no .model"):
            self._stream(["# just a comment"])

    def test_unknown_cell_rejected(self):
        lines = [".model m", ".inputs a", ".gate FROB g a=a y=g", ".end"]
        with pytest.raises(ExlifParseError, match="unknown combinational"):
            self._stream(lines)

    def test_latch_missing_q_rejected(self):
        lines = [".model m", ".inputs a", ".latch r d=a init=0", ".end"]
        with pytest.raises(ExlifParseError, match="requires d= and q="):
            self._stream(lines)

    def test_error_carries_line_number(self):
        lines = [".model m", ".inputs a", ".gate FROB g a=a y=g", ".end"]
        with pytest.raises(ExlifParseError) as err:
            self._stream(lines)
        assert err.value.line_number == 3
