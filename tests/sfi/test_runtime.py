"""Fault-tolerant campaign runtime: chaos-driven recovery tests.

Every recovery path is exercised deterministically via the scripted
chaos harness (:mod:`tests.sfi.chaos`): worker crashes respawn the pool
without losing completed passes, raising passes are retried on a
bounded budget, persistent failures become structured records while the
rest of the campaign completes, repeated pool breakage degrades to
serial execution instead of aborting, stragglers are marked ``timeout``
rather than hanging the run, and an interrupted-then-resumed campaign
is bit-identical to an uninterrupted one.
"""

import json
import time
import warnings

import pytest

from repro.errors import CampaignError, CheckpointError
from repro.sfi import plan_campaign, run_sfi_campaign
from repro.sfi.parallel import parallel_map
from repro.sfi.results import CRASH, TIMEOUT, PassFailure
from repro.sfi.runtime import (
    DegradedExecutionWarning,
    RuntimeOptions,
    backoff_delay,
    campaign_fingerprint,
    load_checkpoint,
    run_passes,
)
from tests.sfi.chaos import ChaosPlan, attempts_of, chaos_init, chaos_worker

pytestmark = pytest.mark.slow  # chaos recovery paths spin real worker pools

EXPECT = [i * i for i in range(6)]


def _chaos(tmp_path, **kwargs) -> ChaosPlan:
    scratch = tmp_path / "chaos"
    scratch.mkdir(exist_ok=True)
    return ChaosPlan(scratch=str(scratch), **kwargs)


class TestRetry:
    def test_transient_raise_is_retried_to_success(self, tmp_path):
        plan = _chaos(tmp_path, raises={1: 2})
        report = run_passes(chaos_worker, chaos_init, plan, list(range(6)),
                            workers=2, options=RuntimeOptions(max_retries=3))
        assert report.results == EXPECT
        assert report.ok and not report.degraded
        assert attempts_of(plan, 1) == 3  # two scripted failures + the success

    def test_persistent_raise_becomes_structured_failure(self, tmp_path):
        plan = _chaos(tmp_path, raises={4: 99})
        report = run_passes(chaos_worker, chaos_init, plan, list(range(6)),
                            workers=2, options=RuntimeOptions(max_retries=2))
        assert report.results == EXPECT[:4] + [None, 25]
        [failure] = report.failures
        assert failure == PassFailure(index=4, kind=CRASH,
                                      error=failure.error, attempts=2)
        assert "item 4" in failure.error
        assert attempts_of(plan, 4) == 2  # the bounded budget, no more

    def test_serial_mode_retries_too(self, tmp_path):
        plan = _chaos(tmp_path, raises={0: 1})
        report = run_passes(chaos_worker, chaos_init, plan, list(range(3)),
                            workers=1, options=RuntimeOptions(max_retries=2))
        assert report.results == [0, 1, 4]
        assert report.ok


class TestWorkerLoss:
    def test_crash_respawns_pool_and_loses_nothing(self, tmp_path):
        plan = _chaos(tmp_path, crash={2: 1})
        report = run_passes(chaos_worker, chaos_init, plan, list(range(6)),
                            workers=2, options=RuntimeOptions(max_retries=3))
        assert report.results == EXPECT
        assert report.ok
        assert report.pool_restarts >= 1
        assert not report.degraded

    def test_repeated_breakage_degrades_to_serial(self, tmp_path):
        plan = _chaos(tmp_path, crash={3: 99})
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = run_passes(
                chaos_worker, chaos_init, plan, list(range(6)), workers=2,
                options=RuntimeOptions(max_retries=2, max_pool_restarts=1),
            )
        assert report.degraded
        assert any(isinstance(w.message, DegradedExecutionWarning)
                   for w in caught)
        # The crasher resolves in-process: recorded with its attempt count...
        [failure] = report.failures
        assert failure.index == 3 and failure.kind == CRASH
        assert failure.attempts == 2
        assert "ChaosCrash" in failure.error
        # ...while every other pass still completed.
        assert report.results == EXPECT[:3] + [None, 16, 25]

    def test_parallel_map_contract_raises_on_permanent_failure(self, tmp_path):
        plan = _chaos(tmp_path, raises={1: 99})
        with pytest.raises(CampaignError, match="failed permanently"):
            parallel_map(chaos_worker, chaos_init, plan, list(range(4)),
                         workers=2, max_retries=2)

    def test_parallel_map_survives_one_crash(self, tmp_path):
        # The previously `pragma: no cover` BrokenProcessPool path: a dead
        # worker no longer aborts the map, it respawns and recomputes.
        plan = _chaos(tmp_path, crash={0: 1})
        assert parallel_map(chaos_worker, chaos_init, plan, list(range(4)),
                            workers=2) == [0, 1, 4, 9]


class TestTimeouts:
    def test_straggler_marked_timeout_not_hung(self, tmp_path):
        plan = _chaos(tmp_path, hang={1: 1}, hang_seconds=4.0)
        started = time.monotonic()
        report = run_passes(
            chaos_worker, chaos_init, plan, list(range(6)), workers=2,
            options=RuntimeOptions(pass_timeout=0.4),
        )
        elapsed = time.monotonic() - started
        assert elapsed < 4.0, "campaign waited for the straggler"
        [failure] = report.failures
        assert failure.index == 1 and failure.kind == TIMEOUT
        assert failure.attempts == 1  # stragglers are not retried
        assert report.results == [0, None, 4, 9, 16, 25]

    def test_all_workers_wedged_recycles_pool(self, tmp_path):
        plan = _chaos(tmp_path, hang={0: 1, 1: 1}, hang_seconds=4.0)
        started = time.monotonic()
        report = run_passes(
            chaos_worker, chaos_init, plan, list(range(6)), workers=2,
            options=RuntimeOptions(pass_timeout=0.4),
        )
        assert time.monotonic() - started < 4.0
        assert {f.index for f in report.failures} == {0, 1}
        assert all(f.kind == TIMEOUT for f in report.failures)
        assert report.results[2:] == EXPECT[2:]
        assert report.pool_restarts >= 1  # hung workers were terminated
        assert not report.degraded        # wedges don't trigger serial fallback


class TestCheckpoint:
    FP = campaign_fingerprint("unit", 6)

    def _run(self, tmp_path, plan, **opts):
        return run_passes(chaos_worker, chaos_init, plan, list(range(6)),
                          workers=2,
                          options=RuntimeOptions(**opts), fingerprint=self.FP)

    def test_resume_skips_completed_passes(self, tmp_path):
        plan = _chaos(tmp_path)
        ck = str(tmp_path / "ck.jsonl")
        first = self._run(tmp_path, plan, checkpoint=ck)
        assert first.results == EXPECT
        # Chop the last three records: a campaign killed mid-run.
        lines = open(ck).read().splitlines(True)
        open(ck, "w").writelines(lines[:-3])
        resumed = self._run(tmp_path, plan, checkpoint=ck, resume=ck)
        assert resumed.results == EXPECT
        assert resumed.resumed == 3 and resumed.executed == 3
        # The resumed passes were NOT re-executed (attempt counters stand).
        total_runs = sum(attempts_of(plan, i) for i in range(6))
        assert total_runs == 9

    def test_torn_final_record_is_tolerated(self, tmp_path):
        plan = _chaos(tmp_path)
        ck = str(tmp_path / "ck.jsonl")
        self._run(tmp_path, plan, checkpoint=ck)
        with open(ck) as handle:
            content = handle.read()
        open(ck, "w").write(content[:-9])  # SIGKILL mid-write
        resumed = self._run(tmp_path, plan, checkpoint=ck, resume=ck)
        assert resumed.results == EXPECT
        assert resumed.resumed == 5  # the torn record is simply redone

    def test_missing_resume_file_raises(self, tmp_path):
        plan = _chaos(tmp_path)
        with pytest.raises(CheckpointError, match="does not exist"):
            self._run(tmp_path, plan, resume=str(tmp_path / "nope.jsonl"))

    def test_fingerprint_mismatch_raises(self, tmp_path):
        plan = _chaos(tmp_path)
        ck = str(tmp_path / "ck.jsonl")
        self._run(tmp_path, plan, checkpoint=ck)
        with pytest.raises(CheckpointError, match="different campaign"):
            run_passes(chaos_worker, chaos_init, plan, list(range(6)),
                       options=RuntimeOptions(resume=ck),
                       fingerprint=campaign_fingerprint("other", 6))

    def test_unsupported_version_raises(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        ck.write_text(json.dumps({
            "format": "repro-campaign-checkpoint", "version": 99,
            "fingerprint": self.FP, "passes": 6,
        }) + "\n")
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(ck), self.FP, 6)

    def test_refuses_to_overwrite_existing_checkpoint(self, tmp_path):
        plan = _chaos(tmp_path)
        ck = str(tmp_path / "ck.jsonl")
        self._run(tmp_path, plan, checkpoint=ck)
        with pytest.raises(CheckpointError, match="already exists"):
            self._run(tmp_path, plan, checkpoint=ck)

    def test_checkpoint_flushed_per_pass(self, tmp_path):
        # Records must be durable the moment a pass completes — that is
        # what a KeyboardInterrupt or SIGKILL leaves behind.
        plan = _chaos(tmp_path, raises={5: 99})
        ck = str(tmp_path / "ck.jsonl")
        self._run(tmp_path, plan, checkpoint=ck, max_retries=1)
        lines = [json.loads(line) for line in open(ck)]
        assert lines[0]["version"] == 1
        assert sorted(rec["pass"] for rec in lines[1:]) == [0, 1, 2, 3, 4]


class TestCampaignResumeEquivalence:
    """Acceptance: interrupted+resumed campaigns match uninterrupted ones."""

    @pytest.fixture(scope="class")
    def fib_campaign(self):
        from repro.designs.tinycore.core import build_tinycore
        from repro.designs.tinycore.harness import run_gate_level
        from repro.designs.tinycore.programs import default_dmem, program
        from repro.netlist.graph import extract_graph

        words, dmem = program("fib"), default_dmem("fib")
        netlist = build_tinycore(words, dmem)
        golden = run_gate_level(words, dmem, netlist=netlist)
        seqs = extract_graph(netlist.module).seq_nets()
        plans = plan_campaign(seqs, golden.cycles - 2, 40, seed=11)
        return words, dmem, netlist, plans

    @staticmethod
    def _sig(campaign):
        return [(o.plan.net, o.plan.cycle, o.outcome) for o in campaign.outcomes]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sfi_resume_bit_identical(self, tmp_path, fib_campaign, workers):
        words, dmem, netlist, plans = fib_campaign
        baseline = run_sfi_campaign(words, dmem, plans, netlist=netlist,
                                    lanes_per_pass=10, workers=workers)
        ck = str(tmp_path / f"sfi_{workers}.jsonl")
        full = run_sfi_campaign(words, dmem, plans, netlist=netlist,
                                lanes_per_pass=10, workers=workers,
                                runtime=RuntimeOptions(checkpoint=ck))
        lines = open(ck).read().splitlines(True)
        open(ck, "w").writelines(lines[:3])  # keep header + two passes
        resumed = run_sfi_campaign(words, dmem, plans, netlist=netlist,
                                   lanes_per_pass=10, workers=workers,
                                   runtime=RuntimeOptions(checkpoint=ck,
                                                          resume=ck))
        assert self._sig(baseline) == self._sig(full) == self._sig(resumed)
        assert baseline.counts() == resumed.counts()
        assert resumed.resumed_passes == 2
        assert resumed.passes == baseline.passes == 4

    def test_beam_resume_bit_identical(self, tmp_path, fib_campaign):
        from repro.ser.beam import BeamConfig, run_beam_test

        words, dmem, _netlist, _plans = fib_campaign
        config = BeamConfig(flux=5e-5, exposures=24, seed=9, lanes_per_pass=8)
        baseline = run_beam_test(words, dmem, config, workers=2)
        ck = str(tmp_path / "beam.jsonl")
        run_beam_test(words, dmem, config, workers=2,
                      runtime=RuntimeOptions(checkpoint=ck))
        lines = open(ck).read().splitlines(True)
        open(ck, "w").writelines(lines[:2])
        resumed = run_beam_test(words, dmem, config, workers=2,
                                runtime=RuntimeOptions(checkpoint=ck, resume=ck))
        assert (baseline.sdc_events, baseline.due_events, baseline.exposures) \
            == (resumed.sdc_events, resumed.due_events, resumed.exposures)
        assert resumed.resumed_passes == 1

    def test_sfi_persistent_crasher_records_failure(self, tmp_path, fib_campaign):
        # Acceptance: a persistently-crashing pass is recorded with its
        # attempt count while the rest of the campaign completes.
        import repro.sfi.injector as injector

        words, dmem, netlist, plans = fib_campaign
        original = injector._run_sfi_batch

        # Deterministic: the worker blows up on the second batch only
        # (workers=1 keeps it in-process, no pickling of the closure).
        def crashy(batch):
            if batch[0] in plans[10:20]:  # the second 10-plan batch
                raise RuntimeError("injected batch failure")
            return original(batch)

        injector._run_sfi_batch = crashy
        try:
            result = run_sfi_campaign(words, dmem, plans, netlist=netlist,
                                      lanes_per_pass=10, workers=1,
                                      runtime=RuntimeOptions(max_retries=2))
        finally:
            injector._run_sfi_batch = original
        [failure] = result.failures
        assert failure.index == 1 and failure.attempts == 2
        assert result.passes == 3               # the other three completed
        assert len(result.outcomes) == 30       # their outcomes survive


class TestRetryBackoff:
    def test_first_attempt_and_zero_base_never_wait(self):
        assert backoff_delay(0, 1, base=0.5) == 0.0
        assert backoff_delay(3, 5, base=0.0) == 0.0
        assert backoff_delay(3, 5, base=-1.0) == 0.0

    def test_deterministic_for_seeded_inputs(self):
        first = [backoff_delay(i, a, base=0.1, seed=42)
                 for i in range(4) for a in range(2, 6)]
        second = [backoff_delay(i, a, base=0.1, seed=42)
                  for i in range(4) for a in range(2, 6)]
        assert first == second

    def test_jitter_window_and_exponential_growth(self):
        for attempt in range(2, 8):
            nominal = min(2.0, 0.1 * 2 ** (attempt - 2))
            delay = backoff_delay(7, attempt, base=0.1, cap=2.0, seed=3)
            assert 0.5 * nominal <= delay < nominal

    def test_cap_bounds_the_schedule(self):
        assert backoff_delay(0, 50, base=1.0, cap=0.25) < 0.25

    def test_passes_dephase(self):
        delays = {backoff_delay(i, 2, base=1.0, seed=0) for i in range(16)}
        assert len(delays) > 1  # jitter separates concurrent retriers

    def test_retries_still_converge_with_backoff(self, tmp_path):
        plan = _chaos(tmp_path, raises={1: 1})
        t0 = time.monotonic()
        report = run_passes(
            chaos_worker, chaos_init, plan, list(range(3)),
            workers=1,
            options=RuntimeOptions(max_retries=3, retry_backoff=0.2),
        )
        elapsed = time.monotonic() - t0
        assert report.results == [0, 1, 4]
        assert report.ok
        # Attempt 2 of pass 1 waited at least the jitter floor (0.5x).
        assert elapsed >= 0.09

    def test_pool_path_applies_backoff_between_attempts(self, tmp_path):
        plan = _chaos(tmp_path, raises={2: 2})
        t0 = time.monotonic()
        report = run_passes(
            chaos_worker, chaos_init, plan, list(range(6)),
            workers=2,
            options=RuntimeOptions(max_retries=3, retry_backoff=0.2),
        )
        elapsed = time.monotonic() - t0
        assert report.results == EXPECT
        assert attempts_of(plan, 2) == 3
        # Two backoff waits (attempts 2 and 3): floors 0.1 + 0.2.
        assert elapsed >= 0.25
