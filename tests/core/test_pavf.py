"""The pAVF set algebra: union, TOP absorption, environment lookup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pavf import (
    READ,
    TOP,
    TOP_SET,
    WRITE,
    Atom,
    PavfEnv,
    capped_sum,
    collapse_if_large,
    format_set,
    union,
    value_of,
)

A = Atom(READ, "S1", 0)
B = Atom(READ, "S2", 0)
C = Atom(WRITE, "S3", 1)


def _env(**kv):
    env = PavfEnv(unbound_default=1.0)
    for atom, v in kv.pop("binds", []):
        env.bind(atom, v)
    return env


def test_union_is_idempotent():
    # The Figure 7 simplification: pAVF_1 U (pAVF_1 U pAVF_2) = pAVF_1 U pAVF_2
    s1 = frozenset((A,))
    s12 = union(s1, frozenset((B,)))
    assert union(s1, s12) == s12


def test_union_absorbs_top():
    assert union(frozenset((A,)), TOP_SET) == TOP_SET
    assert union(TOP_SET) == TOP_SET


def test_value_of_sums_and_caps():
    env = PavfEnv()
    env.bind(A, 0.10)
    env.bind(B, 0.02)
    env.bind(C, 0.95)
    assert value_of(frozenset((A, B)), env) == pytest.approx(0.12)
    assert value_of(frozenset((A, B, C)), env) == 1.0
    assert value_of(TOP_SET, env) == 1.0
    assert value_of(frozenset(), env) == 0.0


def test_env_lookup_precedence():
    env = PavfEnv(unbound_default=0.7)
    env.bind_kind(READ, 0.5)
    env.bind(A, 0.1)
    assert env.lookup(A) == 0.1           # exact binding
    assert env.lookup(B) == 0.5           # kind default
    assert env.lookup(C) == 0.7           # global default
    assert env.lookup(TOP) == 1.0         # TOP is always 1


def test_env_rejects_out_of_range():
    env = PavfEnv()
    with pytest.raises(ValueError):
        env.bind(A, 1.5)
    with pytest.raises(ValueError):
        env.bind_kind(READ, -0.1)


def test_env_copy_is_independent():
    env = PavfEnv()
    env.bind(A, 0.2)
    clone = env.copy()
    clone.bind(A, 0.9)
    assert env.lookup(A) == 0.2


def test_capped_sum():
    assert capped_sum([0.4, 0.3]) == pytest.approx(0.7)
    assert capped_sum([0.8, 0.8]) == 1.0
    assert capped_sum([]) == 0.0


def test_collapse_if_large():
    atoms = frozenset(Atom(READ, f"S{i}", 0) for i in range(10))
    assert collapse_if_large(atoms, 5) == TOP_SET
    assert collapse_if_large(atoms, 0) == atoms  # 0 disables
    assert collapse_if_large(atoms, 20) == atoms


def test_format_set_stable():
    assert format_set(frozenset()) == "0"
    text = format_set(frozenset((B, A)))
    assert text == "pR(S1.0) + pR(S2.0)"
    assert format_set(TOP_SET) == "TOP"


atoms_strategy = st.sets(
    st.builds(
        Atom,
        kind=st.sampled_from([READ, WRITE]),
        name=st.sampled_from(["S1", "S2", "S3"]),
        bit=st.integers(0, 3),
    ),
    max_size=6,
).map(frozenset)


@settings(max_examples=100)
@given(atoms_strategy, atoms_strategy, atoms_strategy)
def test_union_laws(x, y, z):
    # commutative, associative, idempotent
    assert union(x, y) == union(y, x)
    assert union(union(x, y), z) == union(x, union(y, z))
    assert union(x, x) == x


@settings(max_examples=100)
@given(atoms_strategy, atoms_strategy)
def test_value_monotone_in_union(x, y):
    env = PavfEnv(unbound_default=0.3)
    merged = union(x, y)
    assert value_of(merged, env) >= value_of(x, env) - 1e-12
    assert value_of(merged, env) >= value_of(y, env) - 1e-12
    assert 0.0 <= value_of(merged, env) <= 1.0


@settings(max_examples=100)
@given(atoms_strategy)
def test_value_bounded(x):
    env = PavfEnv(unbound_default=0.9)
    assert 0.0 <= value_of(x, env) <= 1.0
