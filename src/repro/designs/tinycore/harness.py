"""Gate-level execution harness for tinycore.

Runs a program on the gate-level simulator, collects the architectural
observation points (output-port stream, final data memory, final register
file, PC trajectory), and checks them against the ISA-level golden model.
These observation points are exactly the paper's SDC observability
surface: "for SDC, the observability points are at the program outputs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.tinycore.archsim import ArchSim, run_program
from repro.designs.tinycore.core import TinycoreNetlist, build_tinycore
from repro.errors import SimulationError
from repro.rtlsim.simulator import DEFAULT_BACKEND, BaseSimulator, Simulator, make_simulator


@dataclass
class GateLevelRun:
    """Result of one gate-level program run (per lane)."""

    netlist: TinycoreNetlist
    sim: BaseSimulator
    cycles: int
    outputs: dict[int, list[int]]          # lane -> output stream
    halted_lanes: set[int] = field(default_factory=set)

    def dmem_words(self, lane: int, count: int = 64) -> list[int]:
        mem = self.sim.mems["u_dmem"]
        return [mem.lane_word(lane, a) for a in range(count)]

    def regfile_words(self, lane: int) -> list[int]:
        mem = self.sim.mems["u_rf"]
        return [mem.lane_word(lane, r) for r in range(8)]

    def architectural_state(self, lane: int) -> tuple:
        """(outputs, regfile, dmem) — the SDC comparison surface."""
        return (
            tuple(self.outputs.get(lane, ())),
            tuple(self.regfile_words(lane)),
            tuple(self.dmem_words(lane, 256)),
        )


def run_gate_level(
    program: list[int],
    dmem_init: list[int] | None = None,
    *,
    lanes: int = 1,
    max_cycles: int = 100_000,
    netlist: TinycoreNetlist | None = None,
    sim: BaseSimulator | None = None,
    backend: str = DEFAULT_BACKEND,
    on_cycle=None,
) -> GateLevelRun:
    """Run *program* to HALT on the gate-level core.

    Pass a prebuilt *netlist*/*sim* to amortize construction across runs
    (the SFI campaign reuses one simulator and just resets it); *backend*
    selects the simulation backend when no *sim* is supplied. The run
    ends when **lane 0** halts; other lanes may have diverged (that is the
    point of fault injection) and their outputs are whatever they emitted
    by then. *on_cycle(sim, cycle)* is invoked once per cycle before the
    clock edge — the fault-injection hook.
    """
    if netlist is None:
        netlist = build_tinycore(program, dmem_init)
    if sim is None:
        sim = make_simulator(netlist.module, lanes=lanes, backend=backend)
    else:
        sim.reset()

    outputs: dict[int, list[int]] = {lane: [] for lane in range(sim.lanes)}
    halted_lanes: set[int] = set()
    cycle = 0
    while cycle < max_cycles:
        valid_bits = sim.peek(netlist.out_valid)
        if valid_bits:
            for lane in range(sim.lanes):
                if (valid_bits >> lane) & 1:
                    outputs[lane].append(sim.peek_word(netlist.out_val, lane))
        halted_bits = sim.peek(netlist.halted)
        if halted_bits:
            for lane in range(sim.lanes):
                if (halted_bits >> lane) & 1:
                    halted_lanes.add(lane)
            if halted_bits & 1:
                break
        if on_cycle is not None:
            on_cycle(sim, cycle)
        sim.step()
        cycle += 1
    else:
        raise SimulationError(f"tinycore did not halt within {max_cycles} cycles")

    return GateLevelRun(
        netlist=netlist, sim=sim, cycles=cycle, outputs=outputs, halted_lanes=halted_lanes
    )


def verify_against_archsim(
    program: list[int], dmem_init: list[int] | None = None, max_cycles: int = 100_000
) -> tuple[GateLevelRun, ArchSim]:
    """Run both models and raise on any architectural mismatch."""
    gate = run_gate_level(program, dmem_init, max_cycles=max_cycles)
    arch = run_program(program, dmem_init)
    gate_out = gate.outputs[0]
    arch_out = [v for _, v in arch.outputs]
    if gate_out != arch_out:
        raise SimulationError(
            f"output mismatch: gate={gate_out[:8]}... arch={arch_out[:8]}..."
        )
    if gate.regfile_words(0)[1:] != [v & 0xFFFF for v in arch.regs[1:]]:
        raise SimulationError(
            f"regfile mismatch: gate={gate.regfile_words(0)} arch={arch.regs}"
        )
    if gate.dmem_words(0, 256) != [v & 0xFFFF for v in arch.dmem]:
        raise SimulationError("data-memory mismatch")
    return gate, arch
