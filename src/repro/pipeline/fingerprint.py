"""Stable content fingerprints for pipeline artifacts.

Every stage artifact carries a sha256 fingerprint of *everything that
determines its value*: the design configuration (or raw netlist text),
the program/workload inputs, the stage-relevant knobs, and a stage code
version. Two runs that would compute the same artifact produce the same
fingerprint, so the on-disk store (:mod:`repro.pipeline.store`) can hand
back the cached object; any input change — a different program, a new
bigcore scale, a bumped stage implementation — changes the fingerprint
and transparently invalidates the cache.

The encoding is deliberately boring: inputs are canonicalized to a JSON
document (sorted keys, no whitespace) and hashed. Only JSON-safe scalars,
sequences, and mappings are accepted; anything else must be reduced by
the caller first. That keeps fingerprints reproducible across processes
and Python versions — ``hash()`` randomization, ``repr`` drift, and
pickle protocol changes never leak in.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import repro

# Bump a stage's version whenever its implementation changes in a way
# that affects the *content* of the artifact it produces. This is the
# "stage code version" component of every cache key: bumping it orphans
# all previously cached artifacts of that stage (and of downstream
# stages, whose keys chain the upstream fingerprints).
STAGE_VERSIONS: dict[str, int] = {
    "design": 1,
    "golden": 1,
    "ports": 2,  # v2: error-reporting deadline summaries ride on PortEnv
    "ace": 2,    # v2: suite-pooled deadline summaries in the cached suite
    "plan": 2,   # v2: shm-transportable plans + batched kernels (PLAN_FORMAT)
    "sart": 1,
    "sfi": 1,
    "beam": 1,
    # Logic-derating analysis (combinational masking per flop).
    "derating": 1,
    # Per-(FUB, direction) converged sub-solutions (ECO mode). Bump when
    # the per-FUB structural fingerprint scheme or the FubSolution layout
    # changes (repro.pipeline.delta).
    "fubsol": 1,
}


def stage_token(stage: str) -> str:
    """The code-version component of *stage*'s cache keys."""
    try:
        version = STAGE_VERSIONS[stage]
    except KeyError:
        raise ValueError(f"unknown pipeline stage {stage!r}; "
                         f"have {sorted(STAGE_VERSIONS)}") from None
    return f"{stage}.v{version}+repro-{repro.__version__}"


def _canonical(value: Any) -> Any:
    """Reduce *value* to a deterministic JSON-serializable form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips exactly and is stable across platforms.
        return f"f:{value!r}"
    if isinstance(value, bytes):
        return f"b:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = sorted(json.dumps(_canonical(v), sort_keys=True) for v in value)
        return {"__set__": items}
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                key = json.dumps(_canonical(key), sort_keys=True)
            out[key] = _canonical(val)
        return out
    raise TypeError(
        f"cannot fingerprint {type(value).__name__!r}; reduce it to "
        "JSON-safe scalars/sequences/mappings first"
    )


def fingerprint(*parts: Any) -> str:
    """sha256 hex digest of the canonical encoding of *parts*."""
    doc = json.dumps([_canonical(p) for p in parts],
                     sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


def stage_fingerprint(stage: str, *parts: Any) -> str:
    """Fingerprint for one *stage* artifact: code version + inputs."""
    return fingerprint(stage_token(stage), *parts)
