"""ACE lifetime analysis unit tests (Eq 3 semantics) and deadline
accumulator properties (permutation invariance, merge == one-shot,
conservation)."""

import pytest
from hypothesis import given, strategies as st

from repro.ace.lifetime import (
    AceLifetimeAnalyzer,
    DeadlineDistribution,
    merge_deadline_summaries,
)
from repro.errors import AceError


def _analyzer(entries=4, bits=8, **kw):
    a = AceLifetimeAnalyzer()
    a.register("s", entries, bits, **kw)
    return a


def test_write_read_evict_residency():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, cycle=10, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 0, cycle=30, ace=True)
    a.on_release("s", 0, cycle=50, consumed=True)
    stats = a.finish(100)["s"]
    # ACE residency runs write(10) -> last read(30): 20 cycles x 8 bits.
    assert stats.ace_bit_cycles == 20 * 8
    assert stats.avf() == pytest.approx(20 * 8 / (8 * 100))


def test_unread_value_is_unace():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=8)
    a.on_release("s", 0, 40, consumed=False)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 0
    assert stats.avf() == 0.0


def test_consumed_without_read_counts_full_span():
    # e.g. store buffer drain: release IS the consumption.
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 10, ace=True, ace_bits=None, bits=8)
    a.on_release("s", 0, 25, consumed=True)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 15 * 8


def test_open_segment_counts_as_unknown():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 60, ace=True, ace_bits=None, bits=8)
    stats = a.finish(100)["s"]
    assert stats.unknown_bit_cycles == 40 * 8
    assert stats.avf() == pytest.approx(40 * 8 / (8 * 100))


def test_unace_write_contributes_nothing():
    a = _analyzer(entries=1, bits=8)
    a.on_write("s", 0, 0, ace=False, ace_bits=None, bits=8)
    a.on_read("s", 0, 50, ace=False)
    a.on_release("s", 0, 60, consumed=True)
    stats = a.finish(100)["s"]
    assert stats.ace_bit_cycles == 0
    assert stats.ace_reads == 0


def test_bitfield_weighting():
    a = _analyzer(entries=1, bits=10)
    a.on_write("s", 0, 0, ace=True, ace_bits=3, bits=10)  # 3 of 10 bits ACE
    a.on_read("s", 0, 10, ace=True)
    a.on_release("s", 0, 20, consumed=True)
    stats = a.finish(10)["s"]
    assert stats.ace_bit_cycles == 10 * 3
    assert stats.pavf_r_bitwise() == pytest.approx(3 / (10 * 10))
    assert stats.pavf_r() == pytest.approx(1 / 10)


def test_overwrite_closes_previous_segment():
    a = _analyzer(entries=1, bits=4)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=4)
    a.on_read("s", 0, 5, ace=True)
    a.on_write("s", 0, 9, ace=True, ace_bits=None, bits=4)  # overwrite
    a.on_read("s", 0, 12, ace=True)
    a.on_release("s", 0, 20, consumed=True)
    stats = a.finish(20)["s"]
    assert stats.ace_bit_cycles == (5 - 0) * 4 + (12 - 9) * 4


def test_port_rates_normalized_by_ports():
    a = _analyzer(entries=4, bits=8, nread=2, nwrite=2)
    for entry in range(4):
        a.on_write("s", entry, entry, ace=True, ace_bits=None, bits=8)
        a.on_read("s", entry, entry + 1, ace=True)
        a.on_release("s", entry, entry + 2, consumed=True)
    stats = a.finish(10)["s"]
    assert stats.pavf_r() == pytest.approx(4 / (10 * 2))
    assert stats.pavf_w() == pytest.approx(4 / (10 * 2))


def test_event_errors():
    a = _analyzer()
    with pytest.raises(AceError, match="unregistered"):
        a.on_write("ghost", 0, 0, True, None, 8)
    with pytest.raises(AceError, match="read before write"):
        a.on_read("s", 0, 0, True)
    with pytest.raises(AceError, match="release before write"):
        a.on_release("s", 0, 0, True)
    with pytest.raises(AceError, match="twice"):
        a.register("s", 4, 8)
    a.finish(1)
    with pytest.raises(AceError, match="twice"):
        a.finish(1)


def test_mean_ace_latency_and_throughput():
    a = _analyzer(entries=2, bits=8)
    a.on_write("s", 0, 0, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 0, 10, ace=True)
    a.on_release("s", 0, 10, consumed=True)
    a.on_write("s", 1, 0, ace=True, ace_bits=None, bits=8)
    a.on_read("s", 1, 30, ace=True)
    a.on_release("s", 1, 30, consumed=True)
    stats = a.finish(100)["s"]
    assert a.mean_ace_latency("s") == pytest.approx(20.0)
    assert stats.ace_throughput() == pytest.approx(2 / 100)


def test_littles_law_relationship():
    """AVF ~ latency x throughput / bits-normalization (paper Section 4).

    With every write ACE and full-entry widths, ACE bit-cycles equal
    (sum of residencies) x bits, so AVF == mean_latency x throughput / entries.
    """
    a = _analyzer(entries=4, bits=16)
    spans = [(0, 10), (5, 25), (40, 90), (50, 60)]
    for entry, (start, end) in enumerate(spans):
        a.on_write("s", entry, start, ace=True, ace_bits=None, bits=16)
        a.on_read("s", entry, end, ace=True)
        a.on_release("s", entry, end, consumed=True)
    cycles = 100
    stats = a.finish(cycles)["s"]
    latency = a.mean_ace_latency("s")
    throughput = stats.ace_throughput()
    little = latency * throughput / stats.entries
    assert stats.avf() == pytest.approx(little)


# ----------------------------------------------------------------------
# error-reporting deadline distribution properties
# ----------------------------------------------------------------------

# One generated lifetime: (start, read offsets, release tail, ace bits,
# consumed-at-release). Each segment gets its own entry, so per-entry
# event order (write < reads < release) holds by construction and only
# the cross-entry interleaving is up for grabs.
SEGMENT = st.tuples(
    st.integers(0, 40),
    st.lists(st.integers(1, 20), max_size=3),
    st.integers(0, 10),
    st.integers(0, 8),
    st.booleans(),
)
SEGMENTS = st.lists(SEGMENT, max_size=8)
CYCLES = 128  # past every generated event cycle


def _events_of(segments):
    """Flatten segments into (cycle, entry, seq, kind, args) events."""
    events = []
    for entry, (start, offsets, tail, ace_bits, consumed) in enumerate(segments):
        seq = 0
        events.append((start, entry, seq, "write", ace_bits))
        cycle = start
        for offset in offsets:
            cycle += offset
            seq += 1
            events.append((cycle, entry, seq, "read", None))
        events.append((cycle + tail, entry, seq + 1, "release", consumed))
    return events


def _feed(events, order_key):
    """Run one interleaving of the event stream through a fresh analyzer.

    *order_key* may reorder events across entries freely but must keep
    each entry's own (cycle, seq) order — the validity constraint the
    recorder interface imposes.
    """
    a = AceLifetimeAnalyzer()
    a.register("s", entries=max(1, len({e[1] for e in events}) or 1), bits_per_entry=8)
    for cycle, entry, _seq, kind, arg in sorted(events, key=order_key):
        if kind == "write":
            a.on_write("s", entry, cycle, ace=arg > 0, ace_bits=arg, bits=8)
        elif kind == "read":
            a.on_read("s", entry, cycle, ace=True)
        else:
            a.on_release("s", entry, cycle, consumed=arg)
    return a.finish(CYCLES)["s"]


@given(SEGMENTS)
def test_deadline_permutation_invariance_within_cycle(segments):
    """Cross-entry event order within a cycle cannot move the histogram."""
    events = _events_of(segments)
    forward = _feed(events, lambda e: (e[0], e[1], e[2]))
    reverse = _feed(events, lambda e: (e[0], -e[1], e[2]))
    assert forward.deadlines.histogram == reverse.deadlines.histogram
    assert forward.deadlines.events == reverse.deadlines.events
    assert forward.ace_bit_cycles == reverse.ace_bit_cycles


@given(SEGMENTS)
def test_deadline_mass_conservation(segments):
    """Histogram mass == ACE bit-cycles and quantiles are monotone."""
    stats = _feed(_events_of(segments), lambda e: (e[0], e[1], e[2]))
    summary = stats.deadline_summary()
    assert summary["mass_cycles"] == pytest.approx(stats.ace_bit_cycles, abs=1e-9)
    assert summary["p50"] <= summary["p95"] <= summary["max"] <= CYCLES
    if summary["events"]:
        assert summary["mean"] <= summary["max"] + 1e-9


@given(SEGMENTS)
def test_deadline_merge_equals_one_shot(segments):
    """Partitioned accumulation + merge reproduces one-shot exactly."""
    events = _events_of(segments)
    one_shot = _feed(events, lambda e: (e[0], e[1], e[2])).deadline_summary()
    parts = []
    for parity in (0, 1):
        subset = [s for i, s in enumerate(segments) if i % 2 == parity]
        parts.append(_feed(_events_of(subset),
                           lambda e: (e[0], e[1], e[2])).deadline_summary())
    merged = merge_deadline_summaries(parts)
    assert merged["histogram"] == one_shot["histogram"]
    assert merged["events"] == one_shot["events"]
    assert merged["mass_cycles"] == pytest.approx(one_shot["mass_cycles"])
    # Conservation survives the merge: pooled mass == pooled ACE cycles.
    assert merged["mass_cycles"] == pytest.approx(merged["ace_bit_cycles"])


@given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 9)), max_size=12))
def test_deadline_quantiles_cover_the_mass(entries):
    dist = DeadlineDistribution()
    for deadline, weight in entries:
        dist.record(deadline, float(weight))
    assert dist.quantile(0.0) <= dist.quantile(0.5) <= dist.quantile(1.0)
    assert dist.quantile(1.0) == dist.max_deadline()
    assert dist.total_weight() == pytest.approx(sum(w for _, w in entries))
    # Round-trip through the JSON summary is lossless.
    again = DeadlineDistribution.from_summary(dist.to_summary())
    assert again.histogram == dist.histogram and again.events == dist.events


def test_deadline_degenerate_inputs():
    # Zero-ACE structure: no events, zero mass, zero AVF.
    a = AceLifetimeAnalyzer()
    a.register("s", 2, 8)
    a.on_write("s", 0, 0, ace=False, ace_bits=None, bits=8)
    a.on_read("s", 0, 5, ace=False)
    a.on_release("s", 0, 9, consumed=True)
    stats = a.finish(50)["s"]
    assert stats.deadlines.events == 0
    assert stats.deadline_summary()["mass_cycles"] == 0.0

    # Never-consumed write: architecturally masked, no deadline event.
    b = AceLifetimeAnalyzer()
    b.register("s", 1, 8)
    b.on_write("s", 0, 0, ace=True, ace_bits=None, bits=8)
    b.on_release("s", 0, 30, consumed=False)
    stats = b.finish(50)["s"]
    assert stats.deadlines.events == 0
    assert stats.ace_bit_cycles == 0.0

    # Empty structure: all-zero summary, merge of nothing is empty.
    c = AceLifetimeAnalyzer()
    c.register("s", 1, 8)
    summary = c.finish(10)["s"].deadline_summary()
    assert summary["events"] == 0 and summary["max"] == 0
    assert merge_deadline_summaries([])["events"] == 0

    # Same-cycle write+consume: a zero-cycle deadline is a real event.
    d = AceLifetimeAnalyzer()
    d.register("s", 1, 8)
    d.on_write("s", 0, 7, ace=True, ace_bits=None, bits=8)
    d.on_read("s", 0, 7, ace=True)
    d.on_release("s", 0, 7, consumed=True)
    stats = d.finish(10)["s"]
    assert stats.deadlines.events == 1
    assert stats.deadlines.histogram == {0: 8.0}


# ----------------------------------------------------------------------
# resume/merge under the fault-tolerant runtime (chaos harness)
# ----------------------------------------------------------------------

# A fixed workload for the chaos test: the module-level constant keeps
# the chunk worker picklable and every attempt bit-identical.
_CHAOS_SEGMENTS = [
    (0, [3, 4], 2, 8, True),
    (5, [], 0, 8, True),      # consumed at release without a read
    (9, [10], 1, 0, True),    # zero-ACE
    (12, [1], 0, 5, False),   # never consumed
    (20, [2, 2, 2], 4, 3, True),
    (31, [7], 0, 6, True),
    (40, [], 3, 2, False),
    (44, [1], 1, 1, True),
]
_N_CHUNKS = 4


def _deadline_chunk_worker(item: int) -> dict:
    """One partition's deadline summary, with scripted chaos misbehaviour."""
    import tests.sfi.chaos as chaos_mod

    plan = chaos_mod._PLAN
    if plan is not None:
        attempt = chaos_mod._bump_attempt(plan, item)
        if attempt <= plan.raises.get(item, 0):
            raise ValueError(f"chunk {item} scripted failure "
                             f"(attempt {attempt})")
    a = AceLifetimeAnalyzer()
    a.register("s", len(_CHAOS_SEGMENTS), 8)
    for entry, (start, offsets, tail, ace_bits, consumed) in enumerate(
            _CHAOS_SEGMENTS):
        if entry % _N_CHUNKS != item:
            continue
        a.on_write("s", entry, start, ace=ace_bits > 0,
                   ace_bits=ace_bits, bits=8)
        cycle = start
        for offset in offsets:
            cycle += offset
            a.on_read("s", entry, cycle, ace=True)
        a.on_release("s", entry, cycle + tail, consumed=consumed)
    return a.finish(CYCLES)["s"].deadline_summary()


def test_deadline_chaos_resume_merge_equals_one_shot(tmp_path):
    """Partitioned deadline accumulation through the fault-tolerant
    runtime — with scripted failures, retries, and a checkpoint resume —
    merges to exactly the one-shot distribution."""
    from repro.sfi.runtime import RuntimeOptions, run_passes
    from tests.sfi.chaos import ChaosPlan, chaos_init

    one_shot = _feed(_events_of(_CHAOS_SEGMENTS),
                     lambda e: (e[0], e[1], e[2])).deadline_summary()

    scratch = tmp_path / "chaos"
    scratch.mkdir()
    ck = str(tmp_path / "deadlines.jsonl")
    plan = ChaosPlan(scratch=str(scratch), raises={1: 2})
    report = run_passes(
        _deadline_chunk_worker, chaos_init, plan, list(range(_N_CHUNKS)),
        workers=1, options=RuntimeOptions(max_retries=3, checkpoint=ck),
        fingerprint="deadline-chaos",
    )
    assert not report.failures
    merged = merge_deadline_summaries(report.results)
    assert merged["histogram"] == one_shot["histogram"]
    assert merged["events"] == one_shot["events"]
    assert merged["mass_cycles"] == pytest.approx(one_shot["mass_cycles"])

    # Resume from the checkpoint: every pass loads, none re-executes,
    # and the merged distribution is bit-identical again.
    resumed = run_passes(
        _deadline_chunk_worker, chaos_init,
        ChaosPlan(scratch=str(scratch)), list(range(_N_CHUNKS)),
        workers=1, options=RuntimeOptions(checkpoint=ck, resume=ck),
        fingerprint="deadline-chaos",
    )
    assert resumed.resumed == _N_CHUNKS
    remerged = merge_deadline_summaries(resumed.results)
    assert remerged["histogram"] == merged["histogram"]
    assert remerged["mass_cycles"] == merged["mass_cycles"]
