"""Crash-recovery tests: journal replay, torn writes, kill -9 + restart.

The subprocess test is the chaos acceptance check: a real ``repro-sart
serve`` process is SIGKILLed mid-campaign, restarted on the same state
directory, and must resume the job from its checkpoint and produce a
result whose deterministic core is bit-identical to an undisturbed
in-process execution of the same spec.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import loadgen
from repro.serve.jobs import DONE, stable_result
from repro.serve.scheduler import JobScheduler

SPEC = {"design": "tinycore:fib", "sart": {"monolithic": True}}


def _ok_worker(task):
    return {"ok": True, "fingerprint-echo": task["spec"]["design"]}


def test_completed_job_reserved_byte_identically_after_restart(tmp_path):
    state = str(tmp_path / "state")
    first = JobScheduler(state, worker=_ok_worker)
    first.start()
    job, _ = first.submit(dict(SPEC))
    assert job.await_terminal(timeout=30) and job.state == DONE
    result = job.result
    first.drain(grace=5)

    second = JobScheduler(state, worker=_ok_worker)
    second.start()
    try:
        recovered = second.index.get(job.id)
        assert recovered is not None and recovered.recovered
        assert recovered.state == DONE
        assert recovered.result == result           # byte-identical replay
        assert second.counters.snapshot()["recovered"] == 1
        assert second.counters.snapshot()["resumed"] == 0
        # ...and resubmitting the same spec is a pure dedup hit.
        again, created = second.submit(dict(SPEC))
        assert again is recovered and not created
        assert second.counters.snapshot()["executions"] == 0
    finally:
        second.drain(grace=5)


def test_unfinished_job_reexecutes_after_restart(tmp_path):
    state = str(tmp_path / "state")
    # Simulate a crash after admission but before execution: journal the
    # submission, then fall over without running anything.
    first = JobScheduler(state, worker=_ok_worker)
    job, _ = first.submit(dict(SPEC))
    first.journal.close()                            # never started

    second = JobScheduler(state, worker=_ok_worker)
    second.start()
    try:
        recovered = second.index.get(job.id)
        assert recovered is not None and recovered.recovered
        assert recovered.await_terminal(timeout=30)
        assert recovered.state == DONE
        counters = second.counters.snapshot()
        assert counters["recovered"] == 1
        assert counters["resumed"] == 1
        assert counters["executions"] == 1
    finally:
        second.drain(grace=5)


def test_restart_tolerates_torn_final_journal_record(tmp_path):
    state = tmp_path / "state"
    first = JobScheduler(str(state), worker=_ok_worker)
    first.start()
    job, _ = first.submit(dict(SPEC))
    assert job.await_terminal(timeout=30)
    first.drain(grace=5)
    with open(state / "jobs.jsonl", "a") as handle:
        handle.write('{"event": "submitted", "job": "job-torn", "spe')

    second = JobScheduler(str(state), worker=_ok_worker)
    second.start()
    try:
        assert second.index.get(job.id).state == DONE
        assert second.index.get("job-torn") is None
    finally:
        second.drain(grace=5)


# -- the full kill -9 acceptance test --------------------------------------

SFI_SPEC = {
    "design": "tinycore:fib",
    "sfi": {"injections": 160, "seed": 7},
    # One fault lane per pass: many short passes, so the checkpoint
    # gains records quickly and SIGKILL reliably lands mid-campaign.
    "campaign": {"backend": "python", "lanes_per_pass": 1},
}


def _spawn_server(state_dir, cache_dir):
    repo_src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--cache-dir", str(cache_dir),
         "--heartbeat", "0.5"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited early (rc={proc.poll()})")
        if "serving on " in line:
            url = line.strip().split("serving on ", 1)[1]
            break
    assert url, "server never announced its port"
    return proc, url


@pytest.mark.slow
def test_kill9_restart_resumes_job_bit_identically(tmp_path):
    state, cache = tmp_path / "state", tmp_path / "cache"
    proc, url = _spawn_server(state, cache)
    job_id = None
    try:
        status, doc = loadgen.post_json(f"{url}/jobs", SFI_SPEC)
        assert status == 201
        job_id = doc["id"]
        checkpoint = state / "checkpoints" / f"{job_id}.jsonl"

        # Wait for real progress: header + at least two completed passes.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if checkpoint.exists() and len(
                    checkpoint.read_text().splitlines()) >= 3:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("campaign never checkpointed progress")

        proc.kill()                                  # SIGKILL, no cleanup
        proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # Restart on the same state dir: the job must recover and resume.
    proc2, url2 = _spawn_server(state, cache)
    try:
        final = loadgen.await_job(url2, job_id, timeout=120)
        assert final["state"] == "done"
        assert final["recovered"] is True
        # The resumed campaign really loaded checkpointed passes...
        assert final["result"]["sfi"]["resumed_passes"] >= 2

        # ...and its deterministic core matches an undisturbed run of
        # the same normalized spec executed directly in this process.
        from repro.pipeline.spec import spec_from_mapping
        from repro.serve.scheduler import job_worker

        undisturbed = job_worker({
            "spec": spec_from_mapping(SFI_SPEC).to_mapping(),
            "checkpoint": None,
            "cache_dir": None,
        })
        assert stable_result(final["result"]) == stable_result(undisturbed)

        # Graceful shutdown path: SIGTERM drains and exits 143.
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=60)
        assert proc2.returncode == 143
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=10)
