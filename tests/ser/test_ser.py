"""FIT model, simulated beam, and correlation-experiment tests."""

import pytest

from repro.designs.tinycore.programs import default_dmem, program
from repro.errors import CampaignError, ReproError
from repro.ser.beam import BeamConfig, run_beam_test
from repro.ser.correlation import TINYCORE_LOOP_PAVF, correlate_workloads, model_rates
from repro.ser.fit import FitModel, sdc_rate_per_cycle

pytestmark = pytest.mark.slow  # end-to-end beam + SART correlation runs


class TestFitModel:
    def test_eq1(self):
        m = FitModel(intrinsic_fit_per_bit=2.0)
        m.add("seq", avf=0.5, bits=10)
        assert m.total_fit() == pytest.approx(0.5 * 10 * 2.0)
        assert m.groups["seq"].bits == 10

    def test_groups_accumulate(self):
        m = FitModel()
        m.add("a", 0.1, bits=4)
        m.add("a", 0.3, bits=4)
        m.add("b", 1.0, bits=1)
        assert m.group_fit("a") == pytest.approx((0.1 + 0.3) * 4 * m.intrinsic_fit_per_bit)
        assert m.total_bits() == 9
        assert m.group_fit("missing") == 0.0

    def test_normalization(self):
        m = FitModel()
        m.add("a", 0.5, bits=2)
        m.add("b", 0.5, bits=2)
        norm = m.normalized()
        assert norm["a"] == pytest.approx(0.5)
        assert norm["TOTAL"] == pytest.approx(1.0)

    def test_validation(self):
        m = FitModel()
        with pytest.raises(ReproError):
            m.add("a", 1.5)
        with pytest.raises(ReproError):
            m.add("a", 0.5, bits=-1)

    def test_derating_and_rate(self):
        m = FitModel(intrinsic_fit_per_bit=1e-5)
        m.add("seq", 1.0, bits=100, derating=0.5)
        assert sdc_rate_per_cycle(m, flux_scale=2.0) == pytest.approx(1e-3)

    def test_average_avf(self):
        m = FitModel(intrinsic_fit_per_bit=1.0)
        m.add("seq", 0.25, bits=8)
        assert m.groups["seq"].average_avf(1.0) == pytest.approx(0.25)


class TestBeam:
    @pytest.fixture(scope="class")
    def beam(self):
        words, dmem = program("fib"), default_dmem("fib")
        return run_beam_test(
            words, dmem, BeamConfig(flux=5e-5, exposures=126, seed=9)
        )

    def test_counts_and_rate(self, beam):
        assert beam.exposures == 126
        assert beam.strikes > 0
        assert 0 <= beam.sdc_events <= beam.exposures
        lo, hi = beam.rate_interval()
        assert lo <= beam.sdc_rate_per_cycle <= hi

    def test_zero_flux_rejected(self):
        with pytest.raises(CampaignError):
            run_beam_test(program("fib"), None, BeamConfig(flux=0.0))

    def test_higher_flux_more_events(self):
        words = program("fib")
        low = run_beam_test(words, None, BeamConfig(flux=1e-5, exposures=63, seed=1))
        high = run_beam_test(words, None, BeamConfig(flux=2e-4, exposures=63, seed=1))
        assert high.sdc_events > low.sdc_events

    def test_determinism(self):
        words = program("fib")
        cfg = BeamConfig(flux=5e-5, exposures=63, seed=5)
        a = run_beam_test(words, None, cfg)
        b = run_beam_test(words, None, cfg)
        assert a.sdc_events == b.sdc_events and a.strikes == b.strikes


class TestCorrelation:
    @pytest.fixture(scope="class")
    def rows(self):
        return correlate_workloads(
            ("lattice2d", "md5mix"),
            beam_config=BeamConfig(flux=1e-5, exposures=189, seed=77),
        )

    def test_proxy_overpredicts(self, rows):
        # The paper's pre-sequential-AVF state: modeled SER well above
        # measured ("off by nearly 100%" — here 2-3x).
        for row in rows:
            assert row.normalized()["proxy"] > 1.5

    def test_sart_improves_correlation(self, rows):
        for row in rows:
            norm = row.normalized()
            assert norm["sart"] < norm["proxy"]
            assert row.correlation_improvement > 0.2
        mean_improvement = sum(r.correlation_improvement for r in rows) / len(rows)
        assert mean_improvement > 0.4  # paper: ~66 %

    def test_sart_stays_conservative(self, rows):
        for row in rows:
            assert row.modeled_sart >= row.measured_rate * 0.95

    def test_sequential_avf_reduction(self, rows):
        for row in rows:
            assert row.seq_avf_sart < row.seq_avf_proxy
            assert row.sequential_avf_reduction > 0.15  # paper: 63 %

    def test_model_rates_components(self):
        proxy, sart, proxy_avf, sart_avf, result = model_rates(
            "fib", flux=1e-5, include_arrays=False
        )
        assert proxy > 0 and sart > 0
        assert 0 < sart_avf < 1 and 0 < proxy_avf <= 1
        assert result.config.loop_pavf == TINYCORE_LOOP_PAVF
