"""Artifact store: roundtrip, miss, corruption, and counter semantics."""

import pytest

from repro.pipeline.store import ArtifactStore, NullStore

FP = "ab" * 32


def test_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("golden", FP, {"cycles": 166})
    assert store.load("golden", FP) == {"cycles": 166}
    assert store.entries() == [("golden", FP)]


def test_miss_returns_none(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load("golden", FP) is None


def test_corrupt_entry_is_a_miss_and_is_dropped(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.path("plan", FP)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"this is not a pickle")
    assert store.load("plan", FP) is None
    assert not path.exists()  # corrupt blob removed


def test_fetch_counts_hits_and_misses(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return [1, 2, 3]

    obj, hit = store.fetch("ace", FP, compute)
    assert (obj, hit, len(calls)) == ([1, 2, 3], False, 1)
    obj, hit = store.fetch("ace", FP, compute)
    assert (obj, hit, len(calls)) == ([1, 2, 3], True, 1)
    assert (store.hits, store.misses) == (1, 1)


def test_metadata_sidecar(tmp_path):
    import json

    store = ArtifactStore(tmp_path)
    path = store.save("sfi", FP, "payload")
    meta = json.loads(path.with_suffix(".json").read_text())
    assert meta["stage"] == "sfi"
    assert meta["fingerprint"] == FP
    assert meta["bytes"] == path.stat().st_size


def test_rejects_unsafe_keys(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        store.path("../evil", FP)
    with pytest.raises(ValueError):
        store.path("golden", "../../etc/passwd")


def test_null_store_never_caches():
    store = NullStore()
    obj, hit = store.fetch("golden", FP, lambda: 42)
    assert (obj, hit) == (42, False)
    store.save("golden", FP, 42)
    assert store.load("golden", FP) is None
    assert store.entries() == []
    assert (store.hits, store.misses) == (0, 1)
