"""Batched multi-workload evaluation: one matrix pass, W workloads.

The batched path must be indistinguishable from running the per-point
compiled flow once per environment — same per-node AVFs, same Figure-9
reports — with and without numpy. These tests pin that equivalence on a
design that exercises every resolution mode: measured structures
(Table 1 row 2), injected control/loop atoms (row 3), and plain MIN
(row 1).
"""

import pytest

from repro.core.batched import (
    HAVE_NUMPY,
    BatchedEvaluator,
    solve_batched,
    sweep_batched,
)
from repro.core.compiled import SetEvaluator
from repro.core.graphmodel import StructurePorts
from repro.core.report import fub_report
from repro.core.sart import SartConfig, build_env, build_plan, run_sart
from repro.designs.bigcore.systolic import SystolicConfig, build_systolic

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

# Two measured structures, two left to conservative defaults: both
# branches of the structure override run in every batched pass.
STRUCTS = {
    "WBUF_T0_0": StructurePorts("WBUF_T0_0", pavf_r=0.3, pavf_w=0.1, avf=0.45),
    "WBUF_T1_1": StructurePorts("WBUF_T1_1", pavf_r=0.6, pavf_w=0.0, avf=0.2),
}

SWEEP = [0.0, 0.25, 0.5, 1.0]


@pytest.fixture(scope="module")
def module():
    cfg = SystolicConfig(rows=4, cols=4, data_width=2, acc_width=4, tile=2)
    return build_systolic(cfg).module


@pytest.fixture(scope="module")
def plan(module):
    return build_plan(module, STRUCTS)


def _per_point_reports(module, plan):
    reports = []
    loop_bits = len(plan.model.loop_nets)
    ctrl_bits = len(plan.model.ctrl_nets)
    for value in SWEEP:
        cfg = SartConfig(
            engine="compiled", partition_by_fub=False, loop_pavf=value
        )
        result = run_sart(module, STRUCTS, cfg, plan=plan)
        reports.append(
            fub_report(
                result.node_avfs, loop_bits=loop_bits, ctrl_bits=ctrl_bits
            )
        )
    return reports


class TestSweepEquivalence:
    def test_reports_match_per_point_flow(self, module, plan):
        batched = sweep_batched(
            plan, SWEEP, SartConfig(engine="compiled", partition_by_fub=False)
        )
        expected = _per_point_reports(module, plan)
        assert batched.width == len(SWEEP)
        for w in range(batched.width):
            got, want = batched.report(w), expected[w]
            assert got.fubs == want.fubs, SWEEP[w]
            assert got.weighted_seq_avf == want.weighted_seq_avf, SWEEP[w]

    def test_node_avfs_hook_matches_run_sart(self, module, plan):
        batched = sweep_batched(
            plan, SWEEP, SartConfig(engine="compiled", partition_by_fub=False)
        )
        for w, value in enumerate(SWEEP):
            cfg = SartConfig(
                engine="compiled", partition_by_fub=False, loop_pavf=value
            )
            result = run_sart(module, STRUCTS, cfg, plan=plan)
            assert batched.node_avfs(w) == result.node_avfs, value

    @needs_numpy
    def test_fallback_path_identical_to_numpy_path(self, plan):
        cfg = SartConfig(engine="compiled", partition_by_fub=False)
        fast = sweep_batched(plan, SWEEP, cfg, use_numpy=True)
        slow = sweep_batched(plan, SWEEP, cfg, use_numpy=False)
        for w in range(len(SWEEP)):
            assert fast.report(w).fubs == slow.report(w).fubs
            assert (
                fast.report(w).weighted_seq_avf
                == slow.report(w).weighted_seq_avf
            )

    def test_empty_environment_list(self, plan):
        result = solve_batched(plan, [])
        assert result.width == 0
        assert result.reports == []


class TestBatchedEvaluator:
    @pytest.fixture(scope="class")
    def envs(self, plan):
        return [
            build_env(plan.model, SartConfig(loop_pavf=value))
            for value in SWEEP
        ]

    @needs_numpy
    def test_matrix_columns_bitwise_match_scalar_evaluator(self, plan, envs):
        # Warm the interner with the solve's sets, then compare every id.
        f_ids, b_ids = plan.solve_monolithic(0, "unace")
        sids = sorted({int(s) for s in list(f_ids) + list(b_ids) if s >= 0})
        bev = BatchedEvaluator(plan.interner, envs)
        grid = bev.matrix(sids)
        for w, env in enumerate(envs):
            scalar = SetEvaluator(plan.interner, env)
            for i, sid in enumerate(sids):
                assert grid[i, w] == scalar.value(sid), (sid, w)
                assert bev.value(sid, w) == scalar.value(sid)

    def test_scalar_fallback_matches_per_env_evaluator(self, plan, envs):
        bev = BatchedEvaluator(plan.interner, envs, use_numpy=False)
        assert not bev.use_numpy or not HAVE_NUMPY
        for sid in range(min(len(plan.interner), 64)):
            for w, env in enumerate(envs):
                assert bev.value(sid, w) == SetEvaluator(
                    plan.interner, env, use_numpy=False
                ).value(sid)

    @needs_numpy
    def test_unvisited_ids_evaluate_to_one(self, plan, envs):
        bev = BatchedEvaluator(plan.interner, envs)
        assert bev.value(-1, 0) == 1.0
        assert (bev.matrix([-1, -5]) == 1.0).all()
