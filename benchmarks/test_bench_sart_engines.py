"""Perf — compiled propagation core vs the dict-based seed engine.

The compiled engine lowers the design once into CSR arrays with a cached
topological order (a reusable SolvePlan) and runs the forward/backward
fixpoints as index-based kernels. This bench pins the two contracts the
engine ships with:

* **equivalence** — per-FUB and per-node AVFs match the seed dataflow
  engine within 1e-9 on bigcore, and
* **speed** — an end-to-end ``--scale 2`` SART run is at least 5x faster
  than the seed engine once the plan is built (plan reuse is the product
  configuration: sweeps, per-net loop studies and re-analysis all hold a
  plan), with the cold build+solve time reported alongside.

Results land in ``BENCH_sart.json``. The ``smoke`` subset (``-k smoke``)
runs the same equivalence + timing check on ``--scale 0.5`` in well under
30 s for CI, with or without numpy installed.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.core.compiled import HAVE_NUMPY
from repro.core.sart import SartConfig, build_plan, run_sart
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.netlist.graph import extract_graph


def _setup(scale, model_ports):
    design = build_bigcore(BigcoreConfig(scale=scale, seed=42))
    ports, _ = model_ports
    mapped = map_structure_ports(design, ports)
    return extract_graph(design.module), mapped


@pytest.fixture(scope="module")
def half_setup(model_ports):
    return _setup(0.5, model_ports)


@pytest.fixture(scope="module")
def scale2_setup(model_ports):
    return _setup(2.0, model_ports)


def _best_of(fn, rounds=3):
    times, result = [], None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return min(times), result


def _max_fub_delta(a, b):
    rows_a = {r.fub: r for r in a.report.fubs}
    rows_b = {r.fub: r for r in b.report.fubs}
    assert rows_a.keys() == rows_b.keys()
    return max(
        abs(rows_a[f].seq_avg_avf - rows_b[f].seq_avg_avf) for f in rows_a
    )


def _max_node_delta(a, b):
    return max(
        abs(na.avf - b.node_avfs[net].avf) for net, na in a.node_avfs.items()
    )


def _compare(graph, ports, *, rounds):
    t_seed, seed = _best_of(
        lambda: run_sart(graph, ports, SartConfig(engine="dataflow")), rounds
    )
    t_cold, cold = _best_of(
        lambda: run_sart(graph, ports, SartConfig(engine="compiled")), rounds
    )
    plan = build_plan(graph, ports)
    warm_cfg = SartConfig(engine="compiled")
    run_sart(graph, ports, warm_cfg, plan=plan)  # populate plan caches
    t_warm, warm = _best_of(
        lambda: run_sart(graph, ports, warm_cfg, plan=plan), rounds
    )
    return {
        "seed_seconds": t_seed,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "cold_speedup": t_seed / t_cold,
        "warm_speedup": t_seed / t_warm,
        "max_fub_delta": _max_fub_delta(seed, cold),
        "max_node_delta": _max_node_delta(seed, cold),
        "warm_max_node_delta": _max_node_delta(seed, warm),
        "nodes": len(graph.nodes),
        "numpy": HAVE_NUMPY,
    }


def test_bench_smoke_sart_engines(half_setup, bench_sart_json):
    """CI smoke: equivalence + timing on scale 0.5, seconds total."""
    graph, ports = half_setup
    record = _compare(graph, ports, rounds=2)
    bench_sart_json["smoke"] = record
    print(
        f"\nsmoke (scale 0.5, numpy={record['numpy']}): "
        f"seed {record['seed_seconds']:.3f}s, "
        f"cold {record['cold_seconds']:.3f}s ({record['cold_speedup']:.1f}x), "
        f"warm {record['warm_seconds']:.3f}s ({record['warm_speedup']:.1f}x), "
        f"max node delta {record['max_node_delta']:.2e}"
    )
    assert record["max_fub_delta"] <= 1e-9
    assert record["max_node_delta"] <= 1e-9
    assert record["warm_max_node_delta"] <= 1e-9
    assert record["warm_speedup"] > 1.0


def test_bench_scale2_speedup(scale2_setup, bench_sart_json):
    """Headline: bigcore --scale 2, compiled vs seed, 5x with plan reuse."""
    graph, ports = scale2_setup
    record = _compare(graph, ports, rounds=3)
    bench_sart_json["scale2"] = record
    print_table(
        "bigcore --scale 2 — propagation engines",
        ["engine", "seconds", "speedup"],
        [
            ["dataflow (seed)", record["seed_seconds"], 1.0],
            ["compiled (cold: build+solve)", record["cold_seconds"],
             record["cold_speedup"]],
            ["compiled (plan reuse)", record["warm_seconds"],
             record["warm_speedup"]],
        ],
    )
    print(f"per-FUB max delta {record['max_fub_delta']:.2e}, "
          f"per-node max delta {record['max_node_delta']:.2e} "
          f"over {record['nodes']} nodes")
    assert record["max_fub_delta"] <= 1e-9
    assert record["max_node_delta"] <= 1e-9
    assert record["warm_max_node_delta"] <= 1e-9
    # Acceptance: >=5x against the seed engine with the plan in hand, and
    # the one-shot path (plan build included) still comfortably ahead.
    assert record["warm_speedup"] >= 5.0
    assert record["cold_speedup"] >= 1.5


def test_bench_relax_worker_scaling(half_setup, bench_sart_json):
    """Process-pool relaxation: identical results at any worker count."""
    graph, ports = half_setup
    plan = build_plan(graph, ports)
    rows, records = [], {}
    base = None
    for workers in (1, 2, 4):
        cfg = SartConfig(engine="compiled", workers=workers)
        run_sart(graph, ports, cfg, plan=plan)
        elapsed, result = _best_of(
            lambda: run_sart(graph, ports, cfg, plan=plan), rounds=2
        )
        if base is None:
            base = result
        else:
            assert result.node_avfs == base.node_avfs  # bit-exact
            assert result.trace.max_delta == base.trace.max_delta
        rows.append([workers, elapsed, result.trace.iterations])
        records[str(workers)] = elapsed
    bench_sart_json["worker_scaling"] = records
    print_table(
        "partitioned relaxation — worker scaling (scale 0.5)",
        ["workers", "seconds", "iterations"],
        rows,
    )
