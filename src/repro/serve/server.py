"""The stdlib HTTP/JSON front end of the AVF job server.

Routes (all JSON unless noted)::

    POST /jobs               submit a run-spec document
                             201 created / 200 deduplicated onto an
                             existing job / 400 invalid spec /
                             429 + Retry-After backpressure /
                             503 draining
    GET  /jobs               all known jobs (snapshots)
    GET  /jobs/<id>          one job's snapshot (?spec=1 embeds the
                             normalized spec)
    GET  /jobs/<id>/result   200 result when done, 202 still pending,
                             500 the job failed permanently
    GET  /jobs/<id>/events   SSE progress stream (text/event-stream):
                             a ``state`` event per transition,
                             ``: heartbeat`` comments while idle, one
                             final ``end`` event at a terminal state
    GET  /healthz            liveness + worker-pool degradation
    GET  /readyz             200 accepting / 503 draining or saturated
    GET  /stats              queue, dedup counters, pool, artifact store

Built on ``http.server.ThreadingHTTPServer`` — one thread per
connection, which is exactly what SSE needs and costs no dependencies.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import QueueFullError, ServerDrainingError, SpecError
from repro.serve.jobs import DONE, FAILED, TERMINAL_STATES, Job
from repro.serve.scheduler import JobScheduler, job_initializer, job_worker


class JobHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app reference for handlers."""

    daemon_threads = True
    allow_reuse_address = True
    app: "ServeApp"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: JobHTTPServer

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self.server.app.log(f"{self.address_string()} {format % args}")

    def _json(self, code: int, payload: dict,
              headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            doc = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise SpecError("request body must be a JSON object (a run-spec)")
        return doc

    # -- routes --------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        app = self.server.app
        if urlparse(self.path).path != "/jobs":
            self._json(404, {"error": f"no such route: POST {self.path}"})
            return
        try:
            document = self._read_body()
            job, created = app.scheduler.submit(document)
        except SpecError as exc:
            self._json(400, {"error": str(exc)})
        except QueueFullError as exc:
            self._json(429, {"error": str(exc)},
                       {"Retry-After": str(int(max(1, exc.retry_after)))})
        except ServerDrainingError as exc:
            self._json(503, {"error": str(exc)})
        else:
            doc = job.snapshot()
            doc["deduplicated"] = not created
            self._json(201 if created else 200, doc)

    def do_GET(self) -> None:  # noqa: N802
        app = self.server.app
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]

        if url.path == "/healthz":
            self._json(200, app.health())
        elif url.path == "/readyz":
            ready, why = app.readiness()
            self._json(200 if ready else 503, {"ready": ready, "reason": why})
        elif url.path == "/stats":
            self._json(200, app.stats())
        elif url.path == "/jobs":
            self._json(200, {"jobs": [job.snapshot()
                                      for job in app.scheduler.index.jobs()]})
        elif len(parts) >= 2 and parts[0] == "jobs":
            job = app.scheduler.index.get(parts[1])
            if job is None:
                self._json(404, {"error": f"unknown job {parts[1]!r}"})
            elif len(parts) == 2:
                include_spec = parse_qs(url.query).get("spec") == ["1"]
                self._json(200, job.snapshot(include_spec=include_spec))
            elif parts[2] == "result":
                self._result(job)
            elif parts[2] == "events":
                self._events(job)
            else:
                self._json(404, {"error": f"no such route: GET {self.path}"})
        else:
            self._json(404, {"error": f"no such route: GET {self.path}"})

    def _result(self, job: Job) -> None:
        snap = job.snapshot()
        if snap["state"] == DONE:
            self._json(200, snap)
        elif snap["state"] == FAILED:
            self._json(500, snap)
        else:
            self._json(202, snap)

    def _events(self, job: Job) -> None:
        """SSE progress stream with heartbeats (chunked until done)."""
        app = self.server.app
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        last = -1
        try:
            while True:
                with job.cond:
                    if (job.version == last
                            and job.state not in TERMINAL_STATES):
                        job.cond.wait(app.heartbeat)
                    version = job.version
                    state = job.state
                    snap = job.snapshot()
                if version != last:
                    last = version
                    data = json.dumps(snap, sort_keys=True)
                    self.wfile.write(
                        f"event: state\ndata: {data}\n\n".encode())
                else:
                    self.wfile.write(b": heartbeat\n\n")
                self.wfile.flush()
                if state in TERMINAL_STATES:
                    self.wfile.write(b"event: end\ndata: {}\n\n")
                    self.wfile.flush()
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass
        self.close_connection = True


class ServeApp:
    """The assembled job server: scheduler + HTTP front end.

    ``start()`` recovers the journal and binds the socket;
    ``serve_forever()`` blocks (the CLI foreground path) while
    ``start_background()`` runs the HTTP loop on a thread (tests, load
    generation). ``drain()`` is the one shutdown path: stop admitting,
    finish in-flight jobs within the grace budget, then close the
    socket, pool, and journal.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        workers: int = 1,
        queue_limit: int = 32,
        job_timeout: float | None = None,
        max_retries: int = 2,
        heartbeat: float = 5.0,
        drain_grace: float = 30.0,
        worker=job_worker,
        initializer=job_initializer,
        echo=None,
    ):
        self.host = host
        self.port = port
        self.heartbeat = max(0.1, heartbeat)
        self.drain_grace = drain_grace
        self._echo = echo
        self.started_at = time.time()
        self.scheduler = JobScheduler(
            state_dir,
            cache_dir=cache_dir,
            workers=workers,
            queue_limit=queue_limit,
            job_timeout=job_timeout,
            max_retries=max_retries,
            worker=worker,
            initializer=initializer,
        )
        self.httpd: JobHTTPServer | None = None
        self._http_thread: threading.Thread | None = None

    # -- logging -------------------------------------------------------
    def log(self, message: str) -> None:
        if self._echo is not None:
            self._echo(message)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServeApp":
        self.scheduler.start()
        self.httpd = JobHTTPServer((self.host, self.port), _Handler)
        self.httpd.app = self
        self.port = self.httpd.server_address[1]
        self.log(f"serving on http://{self.host}:{self.port}")
        return self

    def serve_forever(self) -> None:
        assert self.httpd is not None, "call start() first"
        self.httpd.serve_forever(poll_interval=0.2)

    def start_background(self) -> "ServeApp":
        if self.httpd is None:
            self.start()
        self._http_thread = threading.Thread(
            target=self.serve_forever, name="serve-http", daemon=True
        )
        self._http_thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def drain(self) -> bool:
        """Graceful shutdown; returns True when no work was abandoned."""
        self.log("draining: no new jobs accepted")
        clean = self.scheduler.drain(self.drain_grace)
        if self.httpd is not None:
            self.httpd.shutdown()
            self.httpd.server_close()
            self.httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        self.log("drained" if clean else
                 "drain grace expired with work still pending "
                 "(journaled for the next boot)")
        return clean

    # -- health --------------------------------------------------------
    def health(self) -> dict:
        pool = self.scheduler.pool
        return {
            "status": "degraded" if pool.degraded else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "pool": {
                "workers": pool.workers,
                "restarts": pool.restarts,
                "degraded": pool.degraded,
            },
        }

    def readiness(self) -> tuple[bool, str]:
        if self.scheduler.draining:
            return False, "draining"
        pending, limit = self.scheduler.pressure()
        if pending >= limit:
            return False, f"queue full ({pending}/{limit})"
        return True, f"accepting ({pending}/{limit} pending)"

    def stats(self) -> dict:
        doc = self.scheduler.stats()
        doc["uptime_seconds"] = round(time.time() - self.started_at, 3)
        if self.scheduler.cache_dir:
            from repro.pipeline.store import ArtifactStore
            doc["store"] = ArtifactStore(self.scheduler.cache_dir).stats()
        return doc
