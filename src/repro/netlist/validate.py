"""Structural netlist validation (lint).

Run after flattening and before simulation or AVF analysis. Checks:

* every net has exactly one driver (primary input, or one instance output);
* every instance pin connects to a known net;
* primary outputs are driven;
* no combinational cycles (cycles must be cut by DFFs — the paper's
  one-cycle-latency model, and a hard requirement of the cycle-based
  simulator);
* MEM parameters are sane.

:func:`validate_module` raises :class:`~repro.errors.ValidationError` with
all problems listed, or returns simple statistics when clean.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter

from repro.errors import NetlistError, ValidationError
from repro.netlist.cells import CELLS
from repro.netlist.netlist import INPUT, Module


def validate_module(module: Module, require_flat: bool = True) -> dict[str, int]:
    """Validate *module*; raise :class:`ValidationError` on any problem."""
    problems: list[str] = []

    for inst in module.instances.values():
        if inst.kind not in CELLS:
            if require_flat:
                problems.append(f"instance {inst.name!r}: non-primitive kind {inst.kind!r}")
            continue
        spec = CELLS[inst.kind]
        if spec.name == "MEM":
            depth = inst.params.get("depth", 0)
            width = inst.params.get("width", 0)
            if depth < 2 or width < 1:
                problems.append(f"MEM {inst.name!r}: bad depth/width {depth}x{width}")
        if spec.name == "DFF" and "d" not in inst.conn:
            problems.append(f"DFF {inst.name!r}: no data input")
        if not spec.variadic and spec.name not in ("MEM",):
            for pin in spec.outputs:
                if pin not in inst.conn:
                    problems.append(f"instance {inst.name!r}: output pin {pin!r} unconnected")

    try:
        drivers = module.drivers()
    except NetlistError as exc:  # multiply driven; programming errors propagate
        raise ValidationError(str(exc)) from exc

    primary_inputs = set(module.input_ports())
    for inst in module.instances.values():
        if inst.kind not in CELLS:
            continue
        for pin in inst.input_pins():
            net = inst.conn[pin]
            if net not in drivers and net not in primary_inputs:
                problems.append(f"instance {inst.name!r} pin {pin!r}: net {net!r} undriven")

    for out in module.output_ports():
        if out not in drivers and out not in primary_inputs:
            problems.append(f"primary output {out!r} undriven")

    comb_cycle = find_combinational_cycle(module)
    if comb_cycle:
        problems.append("combinational cycle through nets: " + " -> ".join(comb_cycle[:12]))

    if problems:
        raise ValidationError(
            f"module {module.name!r}: {len(problems)} problem(s):\n  " + "\n  ".join(problems)
        )
    return module.stats()


def find_combinational_cycle(module: Module) -> list[str] | None:
    """Return a list of nets on a combinational cycle, or None when acyclic.

    Only combinational cells propagate dependencies; DFF and MEM outputs
    are cycle-breaking (their outputs depend on *previous*-cycle inputs —
    MEM reads are asynchronous in *data* but the stored word was written at
    an earlier edge, so the read-address-to-read-data arc is the only
    combinational arc through a MEM).
    """
    deps: dict[str, set[str]] = {}
    for inst in module.instances.values():
        if inst.kind not in CELLS:
            continue
        spec = CELLS[inst.kind]
        if spec.name == "DFF":
            continue
        if spec.name == "MEM":
            # Read data depends combinationally on the read address only.
            nread = inst.params.get("nread", 1)
            for port in range(nread):
                addr_nets = [n for p, n in inst.conn.items() if p.startswith(f"raddr{port}_")]
                for pin, net in inst.conn.items():
                    if pin.startswith(f"rdata{port}_"):
                        deps.setdefault(net, set()).update(addr_nets)
            continue
        out = inst.conn[spec.outputs[0]] if spec.outputs else None
        if out is None:
            continue
        ins = {inst.conn[p] for p in inst.input_pins()}
        deps.setdefault(out, set()).update(ins)

    sorter = TopologicalSorter(deps)
    try:
        sorter.prepare()
    except CycleError as exc:
        cycle = exc.args[1] if len(exc.args) > 1 else []
        return list(cycle)
    return None
