"""Partitioned relaxation (Section 5.2) and closed-form re-evaluation."""

import pytest

from repro.core.graphmodel import StructurePorts
from repro.core.partition import partition_by_fub
from repro.core.relaxation import relax
from repro.core.sart import SartConfig, build_env, run_sart
from repro.core import controlregs, loops
from repro.core.graphmodel import build_model
from repro.netlist.builder import ModuleBuilder
from repro.netlist.graph import extract_graph


def _chain_of_fubs(n_fubs=4, stages_per_fub=2):
    """Source structure in the first FUB, sink in the last, pipeline between.

    Returns (module, per-FUB stage nets).
    """
    b = ModuleBuilder("chain")
    tie = b.input("tie_in")
    cur = b.dff(tie, name="src", attrs={"struct": "SRC", "bit": "0", "fub": "FUB0"})
    fub_nets: dict[str, list[str]] = {}
    for f in range(n_fubs):
        fub = f"FUB{f}"
        nets = []
        for s in range(stages_per_fub):
            cur = b.dff(cur, name=f"f{f}s{s}", attrs={"fub": fub})
            nets.append(cur)
        fub_nets[fub] = nets
    b.dff(cur, name="snk", attrs={"struct": "SNK", "bit": "0", "fub": f"FUB{n_fubs-1}"})
    return b.done(), fub_nets


STRUCTS = {
    "SRC": StructurePorts("SRC", pavf_r=0.3, pavf_w=0.0, avf=0.5),
    "SNK": StructurePorts("SNK", pavf_r=0.0, pavf_w=0.1, avf=0.5),
}


def test_partition_by_fub_splits_and_finds_exports():
    module, fub_nets = _chain_of_fubs()
    g = extract_graph(module)
    model = build_model(g, STRUCTS, loop_nets=(), ctrl_nets=())
    part = partition_by_fub(model)
    assert set(part.fubs) >= {"FUB0", "FUB1", "FUB2", "FUB3"}
    # Each FUB boundary contributes one forward and one backward export.
    assert len(part.forward_exports) >= 3
    assert len(part.backward_exports) >= 3


def test_relaxation_matches_monolithic():
    module, fub_nets = _chain_of_fubs()
    mono = run_sart(module, STRUCTS, SartConfig(partition_by_fub=False))
    part = run_sart(module, STRUCTS, SartConfig(partition_by_fub=True, iterations=20))
    for nets in fub_nets.values():
        for net in nets:
            assert part.avf(net) == pytest.approx(mono.avf(net)), net
            assert part.avf(net) == pytest.approx(0.1)  # min(0.3, 0.1)


def test_value_crosses_one_partition_per_iteration():
    # "any walk can only cross one partition during each iteration"
    module, fub_nets = _chain_of_fubs(n_fubs=4)
    g = extract_graph(module)
    model = build_model(g, STRUCTS, loop_nets=(), ctrl_nets=())
    env = build_env(model, SartConfig())
    # After 1 iteration, FUB3 has not yet seen SRC's forward value: its
    # forward estimate is the conservative TOP (1.0).
    one = relax(model, env, iterations=1)
    from repro.core.pavf import value_of, TOP_SET

    f3 = one.f_sets[fub_nets["FUB3"][0]]
    assert value_of(f3, env) == 1.0
    # After enough iterations it has converged to 0.3.
    full = relax(model, env, iterations=20)
    f3 = full.f_sets[fub_nets["FUB3"][0]]
    assert value_of(f3, env) == pytest.approx(0.3)
    assert full.trace.converged


def test_convergence_trace_monotone_flattening():
    module, _ = _chain_of_fubs(n_fubs=5)
    res = run_sart(module, STRUCTS, SartConfig(partition_by_fub=True, iterations=20))
    trace = res.trace
    assert trace is not None
    assert trace.converged
    # max delta shrinks to zero
    assert trace.max_delta[-1] <= 1e-9
    # per-FUB averages are recorded for every iteration
    for series in trace.fub_avg.values():
        assert len(series) == trace.iterations


def test_iteration_budget_respected():
    module, _ = _chain_of_fubs(n_fubs=6)
    res = run_sart(module, STRUCTS, SartConfig(partition_by_fub=True, iterations=2))
    assert res.trace.iterations == 2
    assert not res.trace.converged


class TestClosedForm:
    def test_reevaluation_matches_full_run(self):
        module, fub_nets = _chain_of_fubs()
        base = run_sart(module, STRUCTS, SartConfig(partition_by_fub=False))
        cf = base.closed_form()

        new_structs = {
            "SRC": StructurePorts("SRC", pavf_r=0.05, pavf_w=0.0, avf=0.5),
            "SNK": StructurePorts("SNK", pavf_r=0.0, pavf_w=0.9, avf=0.5),
        }
        module2, fub_nets2 = _chain_of_fubs()
        fresh = run_sart(module2, new_structs, SartConfig(partition_by_fub=False))
        reevaluated = cf.evaluate(new_structs)
        for nets in fub_nets.values():
            for net in nets:
                assert reevaluated[net].avf == pytest.approx(fresh.avf(net)), net
                assert reevaluated[net].avf == pytest.approx(0.05)

    def test_equation_rendering(self, fig7):
        module, nets, structs = fig7
        res = run_sart(module, structs, SartConfig(partition_by_fub=False))
        cf = res.closed_form()
        eq = cf.equation_for(nets["g2"])
        assert "pR(S1.0) + pR(S2.0)" in eq
        assert eq.startswith("AVF(")
        assert cf.term_count() > 0

    def test_structure_avf_override(self, fig7):
        module, nets, structs = fig7
        res = run_sart(module, structs, SartConfig(partition_by_fub=False))
        cf = res.closed_form()
        new = dict(structs)
        new["S1"] = StructurePorts("S1", pavf_r=0.10, pavf_w=0.0, avf=0.77)
        out = cf.evaluate(new)
        assert out[nets["s1"]].avf == pytest.approx(0.77)


def test_report_weighting(fig7):
    module, nets, structs = fig7
    res = run_sart(module, structs, SartConfig(partition_by_fub=False))
    rep = res.report
    # structure bits excluded from sequential aggregate
    assert rep.seq_count == 5  # q1a q2a q1b q3a q3b (structure bits excluded)
    assert 0.0 < rep.weighted_seq_avf < 1.0
    text = rep.table()
    assert "WEIGHTED AVG" in text
    assert rep.visited_fraction > 0.9
