"""The verify loop: budgeted fuzzing, oracle dispatch, shrink-on-fail.

``run_verify`` is the engine behind ``repro-sart verify``. One
invocation does, in order:

1. golden-corpus check (once),
2. global oracles (the budgeted SFI-vs-analytical tinycore check, once),
3. a seeded fuzz loop alternating design cases and circuit cases until
   the wall-clock budget expires, running every applicable oracle over
   each case.

Any violation triggers greedy shrinking
(:func:`repro.verify.shrink.shrink`) against the specific oracle that
fired, and the minimal reproducer spec is written to ``out_dir`` as
JSON; ``--replay`` feeds such a file straight back into the same oracle.

The ``defect`` parameter injects one seeded defect from
:mod:`repro.verify.defects` through the matching oracle seam — used by
the mutation-kill tests and the CI must-fail check to prove the
harness actually catches what it claims to catch.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.verify.cases import (
    CaseSpec,
    CircuitSpec,
    build_case,
    random_circuit_spec,
    random_spec,
)
from repro.verify.corpus import check_corpus, update_corpus
from repro.verify.defects import Defect
from repro.verify.oracles import (
    CaseContext,
    CrossBackendOracle,
    DeadlineSanityOracle,
    DeratedSerOracle,
    Oracle,
    SCOPE_CIRCUIT,
    SCOPE_DESIGN,
    SCOPE_GLOBAL,
    SfiConsistencyOracle,
    Violation,
    default_oracles,
)
from repro.verify.shrink import shrink

MAX_REPRODUCERS = 5


@dataclass
class VerifyOptions:
    """Knobs for one ``run_verify`` invocation."""

    budget: float = 60.0        # fuzz wall-clock budget, seconds
    seed: int = 0
    out_dir: Path = Path("verify-failures")
    corpus_dir: Path | None = None      # None = shipped corpus
    oracle_names: tuple[str, ...] = ()  # empty = all
    skip_global: bool = False   # skip the SFI consistency oracle
    skip_corpus: bool = False
    sfi_injections: int = 192
    max_cases: int | None = None        # cap fuzz cases (tests)
    shrink_attempts: int = 48


@dataclass
class VerifyReport:
    """What one verify invocation did and found."""

    seed: int
    budget: float
    design_cases: int = 0
    circuit_cases: int = 0
    corpus_entries: int = 0
    violations: list[Violation] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "design_cases": self.design_cases,
            "circuit_cases": self.circuit_cases,
            "corpus_entries": self.corpus_entries,
            "elapsed": round(self.elapsed, 3),
            "ok": self.ok,
            "violations": [
                {"oracle": v.oracle, "case": v.case, "message": v.message}
                for v in self.violations
            ],
            "reproducers": [str(p) for p in self.reproducers],
        }


def build_oracles(options: VerifyOptions,
                  defect: Defect | None = None) -> list[Oracle]:
    """The oracle set for this run, with defect seams wired in."""
    oracles: list[Oracle] = []
    for oracle in default_oracles():
        if options.oracle_names and oracle.name not in options.oracle_names:
            continue
        if isinstance(oracle, CrossBackendOracle):
            if defect is not None and defect.make_sim is not None:
                oracle = CrossBackendOracle(make_sim=defect.make_sim)
            if not oracle.available():
                continue
        if isinstance(oracle, SfiConsistencyOracle):
            if options.skip_global:
                continue
            analytic = defect.analytic if defect is not None else None
            oracle = SfiConsistencyOracle(
                injections=options.sfi_injections,
                seed=options.seed + 7,
                analytic=analytic,
            )
        if isinstance(oracle, DeratedSerOracle):
            # Campaign-backed like the SFI check, so the same skip flag
            # (--no-sfi) turns off both budgeted statistical oracles.
            if options.skip_global:
                continue
            derated = defect.derated if defect is not None else None
            oracle = DeratedSerOracle(derated=derated)
        if isinstance(oracle, DeadlineSanityOracle):
            corrupt = (defect.corrupt_deadlines
                       if defect is not None else None)
            if corrupt is not None:
                oracle = DeadlineSanityOracle(corrupt=corrupt)
        oracles.append(oracle)
    return oracles


def run_verify(options: VerifyOptions,
               defect: Defect | None = None,
               log=None) -> VerifyReport:
    """Run the full verification pass. Never raises on violations."""
    say = log or (lambda _msg: None)
    start = time.monotonic()
    report = VerifyReport(seed=options.seed, budget=options.budget)
    oracles = build_oracles(options, defect)
    design_oracles = [o for o in oracles if o.scope == SCOPE_DESIGN]
    circuit_oracles = [o for o in oracles if o.scope == SCOPE_CIRCUIT]
    global_oracles = [o for o in oracles if o.scope == SCOPE_GLOBAL]
    mutate = defect.mutate_sart if defect is not None else None
    corrupt = defect.corrupt_corpus if defect is not None else None

    # 1. Golden corpus (once).
    if not options.skip_corpus:
        corpus_violations, checked = check_corpus(
            options.corpus_dir, corrupt=corrupt)
        report.corpus_entries = checked
        report.violations.extend(corpus_violations)
        say(f"corpus: {checked} goldens, "
            f"{len(corpus_violations)} violation(s)")

    # 2. Global oracles (once).
    for oracle in global_oracles:
        found = oracle.check(None)
        report.violations.extend(found)
        say(f"{oracle.name}: {len(found)} violation(s)")

    # 3. The fuzz loop.
    rng = random.Random(options.seed)
    while time.monotonic() - start < options.budget:
        total = report.design_cases + report.circuit_cases
        if options.max_cases is not None and total >= options.max_cases:
            break
        if len(report.reproducers) >= MAX_REPRODUCERS:
            say(f"stopping early: {MAX_REPRODUCERS} reproducers written")
            break
        if total % 2 == 0 and design_oracles:
            report.design_cases += 1
            spec = random_spec(rng)
            report.violations.extend(
                _run_design_case(spec, design_oracles, mutate,
                                 options, report, say))
        elif circuit_oracles:
            report.circuit_cases += 1
            spec = random_circuit_spec(rng)
            report.violations.extend(
                _run_circuit_case(spec, circuit_oracles,
                                  options, report, say))
        elif not design_oracles:
            break  # nothing fuzzable selected

    report.elapsed = time.monotonic() - start
    say(f"verify: {report.design_cases} design + {report.circuit_cases} "
        f"circuit cases in {report.elapsed:.1f}s, "
        f"{len(report.violations)} violation(s)")
    return report


def replay(path: Path, options: VerifyOptions,
           defect: Defect | None = None, log=None) -> VerifyReport:
    """Re-run the oracles recorded in a reproducer file."""
    say = log or (lambda _msg: None)
    start = time.monotonic()
    data = json.loads(Path(path).read_text())
    report = VerifyReport(seed=options.seed, budget=0.0)
    oracles = build_oracles(options, defect)
    wanted = data.get("oracle")
    if wanted:
        oracles = [o for o in oracles if o.name == wanted] or oracles
    mutate = defect.mutate_sart if defect is not None else None
    if data["kind"] == "design":
        spec = CaseSpec.from_json(data["spec"])
        report.design_cases = 1
        design_oracles = [o for o in oracles if o.scope == SCOPE_DESIGN]
        case = build_case(spec)
        ctx = CaseContext(case, mutate=mutate)
        for oracle in design_oracles:
            found = oracle.check(case, ctx)
            report.violations.extend(found)
            say(f"{oracle.name}: {len(found)} violation(s)")
    elif data["kind"] == "circuit":
        spec = CircuitSpec.from_json(data["spec"])
        report.circuit_cases = 1
        for oracle in oracles:
            if oracle.scope != SCOPE_CIRCUIT:
                continue
            found = oracle.check(spec)
            report.violations.extend(found)
            say(f"{oracle.name}: {len(found)} violation(s)")
    else:
        raise ValueError(f"unknown reproducer kind {data.get('kind')!r}")
    report.elapsed = time.monotonic() - start
    return report


def bless_goldens(options: VerifyOptions, log=None) -> list[Path]:
    """Regenerate the golden corpus (the --update-goldens path)."""
    say = log or (lambda _msg: None)
    paths = update_corpus(options.corpus_dir)
    for path in paths:
        say(f"blessed {path}")
    return paths


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _run_design_case(spec, design_oracles, mutate, options,
                     report, say) -> list[Violation]:
    try:
        case = build_case(spec)
    except Exception as exc:  # generator bug: report, don't crash the loop
        return [Violation("case-builder", f"spec({spec.to_json()})",
                          f"build_case raised {type(exc).__name__}: {exc}")]
    ctx = CaseContext(case, mutate=mutate)
    out: list[Violation] = []
    for oracle in design_oracles:
        try:
            found = oracle.check(case, ctx)
        except Exception as exc:
            found = [Violation(oracle.name, case.describe(),
                               f"oracle crashed: {type(exc).__name__}: {exc}")]
        if found:
            out.extend(found)
            _shrink_and_save(
                "design", spec, oracle, found[0],
                lambda s, o=oracle: _design_fails(s, o, mutate),
                options, report, say)
    return out


def _run_circuit_case(spec, circuit_oracles, options,
                      report, say) -> list[Violation]:
    out: list[Violation] = []
    for oracle in circuit_oracles:
        try:
            found = oracle.check(spec)
        except Exception as exc:
            found = [Violation(oracle.name, f"circuit({spec.to_json()})",
                               f"oracle crashed: {type(exc).__name__}: {exc}")]
        if found:
            out.extend(found)
            _shrink_and_save(
                "circuit", spec, oracle, found[0],
                lambda s, o=oracle: bool(o.check(s)),
                options, report, say)
    return out


def _design_fails(spec, oracle, mutate) -> bool:
    case = build_case(spec)
    ctx = CaseContext(case, mutate=mutate)
    return bool(oracle.check(case, ctx))


def _shrink_and_save(kind, spec, oracle, violation, still_fails,
                     options, report, say) -> None:
    if len(report.reproducers) >= MAX_REPRODUCERS:
        return
    say(f"VIOLATION [{oracle.name}] {violation.message}; shrinking...")
    small, attempts = shrink(spec, still_fails,
                             max_attempts=options.shrink_attempts)
    out_dir = Path(options.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{oracle.name}-{kind}-seed{spec.seed}.json"
    path.write_text(json.dumps({
        "kind": kind,
        "oracle": oracle.name,
        "spec": small.to_json(),
        "original_spec": spec.to_json(),
        "shrink_attempts": attempts,
        "message": violation.message,
        "replay": f"repro-sart verify --replay {path}",
    }, indent=2, sort_keys=True) + "\n")
    report.reproducers.append(path)
    say(f"reproducer written to {path} "
        f"(shrunk in {attempts} attempt(s))")
