"""Ablation — the paper's three loop-handling solutions (Section 4.3).

The paper lists three ways to handle loop-boundary nodes and picks
solution 3; this bench compares all the implementable ones against SFI
ground truth on tinycore (the loop-heavy design, where the choice
matters most):

* solution 2 — per-node pass rates measured from one golden RTL run
  (:mod:`repro.core.loopchar`);
* solution 3 — a single static injected value, at the paper's 0.3, at
  the tinycore-calibrated 0.45, and at the fully conservative 1.0.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core.loopchar import summarize_rates, tinycore_loop_rates
from repro.core.report import average_seq_avf
from repro.core.sart import SartConfig, run_sart
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import default_dmem, program
from repro.netlist.graph import extract_graph
from repro.sfi import overall_avf, plan_campaign, run_sfi_campaign

PROGRAM = "lattice2d"


@pytest.fixture(scope="module")
def setup():
    words, dmem = program(PROGRAM), default_dmem(PROGRAM)
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    ports, _, _ = tinycore_structure_ports(PROGRAM, words, dmem, gate_cycles=golden.cycles)
    return words, dmem, netlist, golden, ports


def test_bench_loop_solutions(benchmark, setup):
    words, dmem, netlist, golden, ports = setup

    base = run_sart(netlist.module, ports, SartConfig(partition_by_fub=False))
    loop_nets = base.model.loop_nets

    def characterize():
        return tinycore_loop_rates(words, dmem, loop_nets)

    rates = benchmark.pedantic(characterize, rounds=1, iterations=1)
    stats = summarize_rates(rates)
    print(f"\nsolution-2 characterization: {int(stats['count'])} loop nodes, "
          f"pass-rate mean {stats['mean']:.2f}, median {stats['p50']:.2f}, "
          f"max {stats['max']:.2f}")

    variants = {
        "solution 3 @ 0.3 (paper)": SartConfig(partition_by_fub=False, loop_pavf=0.3),
        "solution 3 @ 0.45 (calibrated)": SartConfig(partition_by_fub=False, loop_pavf=0.45),
        "solution 3 @ 1.0 (conservative)": SartConfig(partition_by_fub=False, loop_pavf=1.0),
        "solution 2 (measured rates)": SartConfig(
            partition_by_fub=False, loop_pavf_per_net=rates
        ),
    }

    seqs = extract_graph(netlist.module).seq_nets()
    plans = plan_campaign(seqs, golden.cycles - 2, 378, seed=41)
    campaign = run_sfi_campaign(words, dmem, plans, netlist=netlist)
    sfi_avf, (lo, hi) = overall_avf(campaign.outcomes)

    rows = []
    for label, config in variants.items():
        result = run_sart(netlist.module, ports, config)
        avg = average_seq_avf(result.node_avfs)
        rows.append([label, avg, avg - sfi_avf,
                     "conservative" if avg >= lo else "below-CI"])
    rows.append(["SFI ground truth", sfi_avf, 0.0, f"CI [{lo:.3f},{hi:.3f}]"])
    print_table(
        f"Loop-handling solutions vs SFI ({PROGRAM}, design-average)",
        ["variant", "avg seq AVF", "vs SFI", "verdict"],
        rows,
    )

    avg_paper = average_seq_avf(
        run_sart(netlist.module, ports, SartConfig(partition_by_fub=False, loop_pavf=0.3)).node_avfs
    )
    avg_cons = average_seq_avf(
        run_sart(netlist.module, ports, SartConfig(partition_by_fub=False, loop_pavf=1.0)).node_avfs
    )
    avg_meas = average_seq_avf(
        run_sart(netlist.module, ports,
                 SartConfig(partition_by_fub=False, loop_pavf_per_net=rates)).node_avfs
    )
    # The fully conservative static value bounds SFI from above; the
    # measured rates produce the tightest (lowest) estimate. On a
    # loop-dominated design the data-rate interpretation (solution 2)
    # under-weighs control importance — visible here, worth knowing.
    assert avg_cons >= hi
    assert avg_meas < avg_paper < avg_cons
