"""Fingerprint scheme: stability, sensitivity, and stage versioning."""

import pytest

from repro.pipeline.fingerprint import (
    STAGE_VERSIONS,
    fingerprint,
    stage_fingerprint,
    stage_token,
)


def test_fingerprint_is_stable():
    a = fingerprint("design", {"scale": 2.0, "seed": 42}, [1, 2, 3])
    b = fingerprint("design", {"seed": 42, "scale": 2.0}, [1, 2, 3])
    assert a == b  # dict ordering must not matter
    assert len(a) == 64 and all(c in "0123456789abcdef" for c in a)


def test_fingerprint_sensitivity():
    base = fingerprint("golden", 166, "fib")
    assert fingerprint("golden", 167, "fib") != base
    assert fingerprint("golden", "fib", 166) != base  # order matters
    assert fingerprint("golden", 166, "fib", None) != base


def test_fingerprint_distinguishes_types():
    # 1 vs 1.0 vs "1" must not collide: floats are tagged f:{repr}.
    assert fingerprint(1) != fingerprint(1.0)
    assert fingerprint(1) != fingerprint("1")
    assert fingerprint(0.1) == fingerprint(0.1)


def test_fingerprint_handles_containers():
    assert fingerprint((1, 2)) == fingerprint([1, 2])
    assert fingerprint({1, 2, 3}) == fingerprint({3, 2, 1})
    assert fingerprint(b"abc") == fingerprint(b"abc")
    assert fingerprint(b"abc") != fingerprint("abc")


def test_fingerprint_rejects_opaque_objects():
    with pytest.raises(TypeError, match="cannot fingerprint"):
        fingerprint(object())


def test_stage_token_includes_version():
    token = stage_token("golden")
    assert token.startswith("golden.v")
    assert "+repro-" in token
    with pytest.raises(ValueError, match="unknown pipeline stage"):
        stage_token("nonsense")


def test_stage_version_bump_invalidates(monkeypatch):
    before = stage_fingerprint("plan", "x")
    monkeypatch.setitem(STAGE_VERSIONS, "plan", STAGE_VERSIONS["plan"] + 1)
    assert stage_fingerprint("plan", "x") != before


def test_stage_fingerprints_never_collide_across_stages():
    assert stage_fingerprint("sfi", 1) != stage_fingerprint("beam", 1)
