"""repro.pipeline — the staged analysis pipeline behind every flow.

The paper's method is inherently staged: perf-model trace -> ACE
lifetime -> port pAVFs -> netlist graph -> SART propagation -> report.
This package makes the stages explicit and reusable:

* :mod:`~repro.pipeline.artifacts` — typed, fingerprinted stage
  artifacts (:class:`DesignArtifact`, :class:`GoldenRun`,
  :class:`PortEnv`, :class:`PlanArtifact`, :class:`SartOutcome`,
  :class:`CampaignOutcome`);
* :mod:`~repro.pipeline.registry` — one :class:`DesignProvider`
  protocol behind ``tinycore:<program>``, ``bigcore@scale=...``, and
  external EXLIF netlists;
* :mod:`~repro.pipeline.store` — a content-addressed on-disk artifact
  cache (``--cache-dir``) keyed on sha256 fingerprints of design config
  + program + workload suite + stage code version;
* :mod:`~repro.pipeline.spec` / :mod:`~repro.pipeline.runner` — a
  declarative run-spec (TOML/JSON) and the executor that runs any
  composition of stages from it;
* :mod:`~repro.pipeline.emit` — the shared result-emission layer
  (tables, export files, machine-readable campaign summaries).

See ``docs/ARCHITECTURE.md`` for the stage DAG, the fingerprint/cache
key scheme, and the run-spec format.
"""

from repro.pipeline.artifacts import (
    CampaignOutcome,
    DeratingArtifact,
    DesignArtifact,
    GoldenRun,
    PlanArtifact,
    PortEnv,
    SartOutcome,
)
from repro.pipeline.fingerprint import fingerprint, stage_fingerprint
from repro.pipeline.registry import DesignProvider, register_scheme, resolve_design
from repro.pipeline.runner import RunOutcome, SweepPoint, execute, sart_config
from repro.pipeline.spec import (
    BeamSpec,
    CampaignSpec,
    DeratingSpec,
    ExportSpec,
    RunSpec,
    SartSpec,
    SfiSpec,
    SweepSpec,
    WorkloadsSpec,
    load_spec,
    spec_from_mapping,
)
from repro.pipeline.stages import PipelineContext, StageEvent
from repro.pipeline.store import ArtifactStore, NullStore

__all__ = [
    "ArtifactStore",
    "BeamSpec",
    "CampaignOutcome",
    "CampaignSpec",
    "DeratingArtifact",
    "DeratingSpec",
    "DesignArtifact",
    "DesignProvider",
    "ExportSpec",
    "GoldenRun",
    "NullStore",
    "PipelineContext",
    "PlanArtifact",
    "PortEnv",
    "RunOutcome",
    "RunSpec",
    "SartOutcome",
    "SartSpec",
    "SfiSpec",
    "StageEvent",
    "SweepPoint",
    "SweepSpec",
    "WorkloadsSpec",
    "execute",
    "fingerprint",
    "load_spec",
    "register_scheme",
    "resolve_design",
    "sart_config",
    "spec_from_mapping",
    "stage_fingerprint",
]
