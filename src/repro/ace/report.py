"""Per-structure ACE reporting (the performance-model side's tables).

Renders structure AVFs and port AVFs — per workload and suite-aggregated
— the way AVF teams review them: one row per structure with the Eq 3
AVF, the port rates, occupancy, and the Little's-law decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.ace.lifetime import StructureAvf
from repro.perfmodel.machine import PerfResult


@dataclass(frozen=True)
class StructureRow:
    """One structure's summary across a set of runs."""

    name: str
    entries: int
    bits: int
    avf: float
    pavf_r: float
    pavf_w: float
    mean_occupancy: float
    mean_ace_latency: float

    @property
    def latency_dominated(self) -> bool:
        """Paper Section 4: arrays are latency-dominated when the
        residency term (structure AVF) exceeds the throughput term."""
        return self.avf > self.pavf_r


def structure_rows(results: Iterable[PerfResult]) -> list[StructureRow]:
    """Suite-averaged rows, one per structure."""
    results = list(results)
    if not results:
        return []
    names = sorted(results[0].structures)
    rows = []
    for name in names:
        stats = [r.structures[name] for r in results]
        first = stats[0]
        n = len(stats)
        rows.append(
            StructureRow(
                name=name,
                entries=first.entries,
                bits=first.entries * first.bits_per_entry,
                avf=sum(s.avf() for s in stats) / n,
                pavf_r=sum(s.pavf_r_bitwise() for s in stats) / n,
                pavf_w=sum(s.pavf_w_bitwise() for s in stats) / n,
                mean_occupancy=sum(r.occupancy.get(name, 0.0) for r in results) / n,
                mean_ace_latency=sum(
                    r.analyzer.mean_ace_latency(name) for r in results
                ) / n,
            )
        )
    return rows


def structure_table(results: Iterable[PerfResult]) -> str:
    """Fixed-width text table of the suite-averaged structure report."""
    rows = structure_rows(results)
    lines = [
        f"{'structure':<14}{'entries':>8}{'bits':>8}{'AVF':>8}"
        f"{'pAVF_R':>8}{'pAVF_W':>8}{'occ':>8}{'latency':>9}{'regime':>12}"
    ]
    for row in rows:
        regime = "latency" if row.latency_dominated else "throughput"
        lines.append(
            f"{row.name:<14}{row.entries:>8}{row.bits:>8}{row.avf:>8.3f}"
            f"{row.pavf_r:>8.3f}{row.pavf_w:>8.3f}{row.mean_occupancy:>8.1f}"
            f"{row.mean_ace_latency:>9.1f}{regime:>12}"
        )
    return "\n".join(lines)


def per_workload_avfs(
    results: Iterable[PerfResult], structure: str
) -> dict[str, float]:
    """One structure's AVF per workload (variation across the suite)."""
    return {r.workload: r.structures[structure].avf() for r in results}
