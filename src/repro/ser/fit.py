"""Eq 1: SER FIT = AVF_bit x #bits x intrinsic error rate.

The :class:`FitModel` accumulates components (a component being any set
of bits sharing an AVF — a node, a structure, or a whole group) and
reports SDC FIT by group and in normalized arbitrary units (the paper
normalizes "due to the sensitive nature of the actual FIT values").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class GroupFit:
    """Accumulated FIT of one component group (e.g. 'sequentials')."""

    group: str
    bits: int = 0
    fit: float = 0.0

    def average_avf(self, intrinsic: float) -> float:
        denom = self.bits * intrinsic
        return self.fit / denom if denom else 0.0


@dataclass
class FitModel:
    """Eq 1 accumulator.

    ``intrinsic_fit_per_bit`` is the per-bit raw rate (process dependent;
    any positive constant works since results are reported normalized).
    """

    intrinsic_fit_per_bit: float = 1.0e-3
    groups: dict[str, GroupFit] = field(default_factory=dict)

    def add(self, group: str, avf: float, bits: int = 1, derating: float = 1.0) -> None:
        """Add a component: FIT += avf x bits x intrinsic x derating."""
        if not 0.0 <= avf <= 1.0:
            raise ReproError(f"AVF out of range: {avf}")
        if bits < 0:
            raise ReproError("negative bit count")
        entry = self.groups.setdefault(group, GroupFit(group=group))
        entry.bits += bits
        entry.fit += avf * bits * self.intrinsic_fit_per_bit * derating

    def total_fit(self) -> float:
        return sum(g.fit for g in self.groups.values())

    def group_fit(self, group: str) -> float:
        return self.groups[group].fit if group in self.groups else 0.0

    def total_bits(self) -> int:
        return sum(g.bits for g in self.groups.values())

    def normalized(self, reference: float | None = None) -> dict[str, float]:
        """FIT per group in arbitrary units (reference defaults to total)."""
        ref = reference if reference is not None else self.total_fit()
        if ref <= 0:
            return {g: 0.0 for g in self.groups}
        out = {g: entry.fit / ref for g, entry in self.groups.items()}
        out["TOTAL"] = self.total_fit() / ref
        return out


def sdc_rate_per_cycle(model: FitModel, flux_scale: float = 1.0) -> float:
    """Expected SDC events per simulated cycle under a given flux.

    Under the beam substitution, a strike hits a given bit with
    probability ``intrinsic x flux_scale`` per cycle and upsets the
    program with probability AVF, so the expected event rate is simply
    the accumulated FIT times the flux scale. This is the quantity the
    measured beam rate is correlated against.
    """
    return model.total_fit() * flux_scale
