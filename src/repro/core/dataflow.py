"""Fixpoint propagation engine.

Solves the forward (pAVF_R, "down") and backward (pAVF_W, "up") systems of
the paper with one topological pass each. After loop breaking, every
cyclic dependency runs through a fixed node (structure bit, loop boundary,
control register, constant, primary input), so the dependency graph seen
by each direction is acyclic and a single pass reaches the fixpoint the
paper's iterated walks converge to. The faithful walk-by-walk
implementation lives in :mod:`repro.core.walker`; equivalence of the two
engines is asserted in the test suite and benchmarked as an ablation.

Both solvers accept a *subset* of nets plus boundary values, which is how
the per-FUB partitioned mode (paper Section 5.2) reuses them: inside one
relaxation iteration each FUB is solved against the FUBIO values exported
by its neighbours in the previous iteration.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.core.graphmodel import AvfModel
from repro.core.pavf import Atom, SetInterner, TOP_SET, collapse_if_large, union


def shared_interner(interner: SetInterner | None) -> SetInterner:
    """Normalize an optional interner argument (None -> fresh table).

    Both directional solvers intern the sets they produce through this
    helper's result, so passing one :class:`SetInterner` to a forward and a
    backward solve (as :mod:`repro.core.relaxation` does across all FUBs
    and iterations) shares every duplicate annotation set between them.
    """
    return interner if interner is not None else SetInterner()


def solve_forward(
    model: AvfModel,
    *,
    nets: Iterable[str] | None = None,
    boundary: Mapping[str, frozenset[Atom]] | None = None,
    max_terms: int = 0,
    interner: SetInterner | None = None,
) -> dict[str, frozenset[Atom]]:
    """Forward propagation: f(n) = union of f over fan-in.

    Fixed nodes (``model.forward_fixed``) keep their source sets. Fan-in
    nets outside *nets* take their value from *boundary*, defaulting to the
    conservative TOP (= pAVF 1.0), which is also every node's initial
    annotation in the paper (Eq 7).
    """
    graph = model.graph
    subset = set(nets) if nets is not None else None
    boundary = boundary or {}
    fixed = model.forward_fixed

    members = subset if subset is not None else graph.nodes.keys()
    out: dict[str, frozenset[Atom]] = {}
    interner = shared_interner(interner)

    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {}
    ready: deque[str] = deque()
    for net in members:
        if net in fixed:
            out[net] = fixed[net]
            ready.append(net)
            indegree[net] = 0
            continue
        deps = [
            d
            for d in graph.nodes[net].fanin
            if (subset is None or d in subset) and d not in fixed
        ]
        indegree[net] = len(deps)
        if not deps:
            ready.append(net)
        for d in deps:
            dependents.setdefault(d, []).append(net)

    def value_for(driver: str) -> frozenset[Atom]:
        if driver in fixed:
            return fixed[driver]
        if subset is not None and driver not in subset:
            return boundary.get(driver, TOP_SET)
        return out[driver]

    processed = 0
    while ready:
        net = ready.popleft()
        processed += 1
        if net not in out:  # not fixed: compute from fan-in
            fanin = graph.nodes[net].fanin
            if not fanin:
                out[net] = frozenset()
            elif len(fanin) == 1:
                out[net] = value_for(fanin[0])
            else:
                merged = collapse_if_large(union(*(value_for(d) for d in fanin)), max_terms)
                out[net] = interner.canon(merged)
        for dep in dependents.get(net, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)

    if processed != len(indegree):
        stuck = [n for n, d in indegree.items() if d > 0][:8]
        raise RuntimeError(f"forward solve: cyclic dependencies remain at {stuck}")
    return out


def solve_backward(
    model: AvfModel,
    *,
    nets: Iterable[str] | None = None,
    boundary: Mapping[str, frozenset[Atom]] | None = None,
    max_terms: int = 0,
    dangling: str = "unace",
    interner: SetInterner | None = None,
) -> dict[str, frozenset[Atom]]:
    """Backward propagation: b(n) = union of what each consumer passes up.

    A consumer with a fixed through-set (structure write bit, loop node,
    control register) contributes that set; an ordinary consumer
    contributes its own computed b; static sinks (memory write pins, port
    addresses, primary outputs) contribute their atoms. Consumers outside
    *nets* contribute the *boundary* value (default TOP).

    ``dangling`` controls nodes with no consumers at all: ``"unace"``
    resolves them to the empty set (a value nobody reads is un-ACE — a
    refinement the walk engine cannot express), ``"top"`` keeps the
    paper's conservative 1.0 so the two engines match exactly.
    """
    graph = model.graph
    subset = set(nets) if nets is not None else None
    boundary = boundary or {}
    through_fixed = model.contrib_through
    fanout = graph.fanout()

    members = subset if subset is not None else graph.nodes.keys()
    out: dict[str, frozenset[Atom]] = {}
    interner = shared_interner(interner)

    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {}
    ready: deque[str] = deque()
    for net in members:
        deps = [
            m
            for m in fanout.get(net, ())
            if (subset is None or m in subset) and m not in through_fixed
        ]
        indegree[net] = len(deps)
        if not deps:
            ready.append(net)
        for m in deps:
            dependents.setdefault(m, []).append(net)

    def through(consumer: str) -> frozenset[Atom]:
        if consumer in through_fixed:
            return through_fixed[consumer]
        if subset is not None and consumer not in subset:
            return boundary.get(consumer, TOP_SET)
        return out[consumer]

    processed = 0
    while ready:
        net = ready.popleft()
        processed += 1
        pieces = [through(m) for m in fanout.get(net, ())]
        sinks = model.static_sinks.get(net)
        if sinks:
            pieces.append(frozenset(sinks))
        if not pieces:
            out[net] = frozenset() if dangling == "unace" else TOP_SET
        elif len(pieces) == 1:
            out[net] = pieces[0]
        else:
            merged = collapse_if_large(union(*pieces), max_terms)
            out[net] = interner.canon(merged)
        for dep in dependents.get(net, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)

    if processed != len(indegree):
        stuck = [n for n, d in indegree.items() if d > 0][:8]
        raise RuntimeError(f"backward solve: cyclic dependencies remain at {stuck}")
    return out
