"""SFI campaign execution on tinycore.

One simulator pass carries the golden lane plus up to 63 fault lanes;
each fault lane gets its planned bit flip at its planned cycle. After
lane 0 halts, every fault lane is classified against the golden lane.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.designs.tinycore.core import TinycoreNetlist, build_tinycore
from repro.designs.tinycore.harness import GateLevelRun, run_gate_level
from repro.errors import CampaignError
from repro.rtlsim.simulator import Simulator
from repro.sfi.campaign import (
    DUE,
    MASKED,
    SDC,
    UNKNOWN,
    FaultPlan,
    InjectionOutcome,
    batches,
)


@dataclass
class CampaignResult:
    """All outcomes of one SFI campaign plus bookkeeping."""

    outcomes: list[InjectionOutcome] = field(default_factory=list)
    passes: int = 0
    simulated_cycles: int = 0
    elapsed_seconds: float = 0.0

    def counts(self) -> dict[str, int]:
        out = {MASKED: 0, SDC: 0, UNKNOWN: 0, DUE: 0}
        for o in self.outcomes:
            out[o.outcome] += 1
        return out

    def due_avf(self) -> float:
        """Detected-error AVF (observation point: the detection logic)."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.is_due) / len(self.outcomes)

    def avf(self) -> float:
        """Eq 2: (errors + unknown) / injected."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.counts_as_error) / len(self.outcomes)


def run_sfi_campaign(
    program: list[int],
    dmem_init: list[int] | None,
    plans: Sequence[FaultPlan],
    *,
    max_cycles: int = 100_000,
    lanes_per_pass: int = 63,
    netlist: TinycoreNetlist | None = None,
) -> CampaignResult:
    """Execute every planned injection and classify the outcomes."""
    started = time.perf_counter()
    if netlist is None:
        netlist = build_tinycore(program, dmem_init)
    known = netlist.module.nets
    for plan in plans:
        if plan.net not in known:
            raise CampaignError(f"fault plan targets unknown net {plan.net!r}")

    result = CampaignResult()
    sim: Simulator | None = None
    for batch in batches(plans, lanes_per_pass):
        lanes = len(batch) + 1
        if sim is None or sim.lanes != lanes:
            sim = Simulator(netlist.module, lanes=lanes)
        by_cycle: dict[int, list[tuple[str, int]]] = {}
        for lane_offset, plan in enumerate(batch):
            by_cycle.setdefault(plan.cycle, []).append((plan.net, 1 << (lane_offset + 1)))

        def inject(simulator: Simulator, cycle: int) -> None:
            for net, lane_mask in by_cycle.get(cycle, ()):
                simulator.flip(net, lane_mask)

        run = run_gate_level(
            program, dmem_init, max_cycles=max_cycles,
            netlist=netlist, sim=sim, on_cycle=inject,
        )
        result.passes += 1
        result.simulated_cycles += run.cycles
        result.outcomes.extend(_classify_batch(run, batch))
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _classify_batch(run: GateLevelRun, batch: Sequence[FaultPlan]) -> list[InjectionOutcome]:
    golden_arch = run.architectural_state(0)
    latent_lanes = run.sim.lanes_differing_from(0)
    due_net = run.netlist.due
    due_bits = run.sim.peek(due_net) if due_net is not None else 0
    outcomes = []
    for lane_offset, plan in enumerate(batch):
        lane = lane_offset + 1
        arch = run.architectural_state(lane)
        halted_matches = (lane in run.halted_lanes) == (0 in run.halted_lanes)
        if due_net is not None and (due_bits >> lane) & 1 and not (due_bits & 1):
            # Detection fired in this replica (and not in the golden run):
            # the machine signals the error — detected, not silent.
            outcome = DUE
        elif arch[0] != golden_arch[0] or not halted_matches:
            outcome = SDC  # visible at the program outputs
        elif arch[1:] != golden_arch[1:]:
            outcome = UNKNOWN  # architectural state still corrupted
        elif lane in latent_lanes:
            outcome = UNKNOWN  # microarchitectural state still corrupted
        else:
            outcome = MASKED
        outcomes.append(InjectionOutcome(plan=plan, outcome=outcome))
    return outcomes
