"""Gate-level tinycore: a 5-stage pipelined 16-bit CPU.

Stages: IF (fetch), DE (decode + register read + bypass), EX (ALU +
branch resolve), ME (data memory + output port), WB (register write).
Structurally it contains every topology the paper's methodology handles:

* simple pipelines — the stage latches;
* logical joins — bypass muxes, the ALU result mux, the PC redirect mux;
* distribution splits — the decoded fields fanning into control and data;
* loops — the PC update loop, the stall hold loops on IF/DE, and the
  sticky ``halted`` flag (all found automatically by SCC detection);
* ACE structures — register file (``rf``), data memory (``dmem``) and
  instruction ROM (``irom``), tagged with ``struct`` attributes so SART
  maps port AVFs onto them (paper step 4).

Hazards: EX/ME/WB -> DE bypass network; one-cycle load-use stall;
two-cycle taken-branch flush (branches resolve in EX).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.tinycore.isa import DMEM_DEPTH, IMEM_DEPTH, OPCODES, PC_BITS
from repro.errors import NetlistError
from repro.netlist import wordlib as wl
from repro.netlist.builder import ModuleBuilder
from repro.netlist.netlist import Module
from repro.netlist.validate import validate_module

WORD = 16
NOP_WORD = OPCODES["NOP"] << 12


def _parity_of(word: int) -> int:
    return bin(word & 0xFFFF).count("1") & 1


@dataclass
class TinycoreNetlist:
    """The built core plus the net names the harness needs."""

    module: Module
    out_val: list[str]
    out_valid: str
    halted: str
    pc: list[str]
    due: str | None = None  # DUE detection output (parity variant only)
    # Structure instance names for mapping/diagnostics.
    rf_inst: str = "u_rf"
    dmem_inst: str = "u_dmem"
    irom_inst: str = "u_irom"


def build_tinycore(
    program: list[int], dmem_init: list[int] | None = None, *, parity: bool = False
) -> TinycoreNetlist:
    """Build the flattened tinycore netlist with *program* in its ROM.

    ``parity=True`` builds the protected variant: the register file and
    data memory store an extra even-parity bit, checked on every read;
    a mismatch sets the sticky ``due_o`` output. This is the DUE
    (detected uncorrectable error) observability point of paper
    Section 3.1 — faults in protected arrays are *detected* rather than
    silently corrupting data.
    """
    if len(program) > IMEM_DEPTH:
        raise NetlistError(f"program too large ({len(program)} words)")
    b = ModuleBuilder("tinycore")

    def fub(name: str) -> dict[str, str]:
        return {"fub": name}

    zero = b.const0(attrs=fub("IF"))
    one = b.const1(attrs=fub("IF"))
    z16 = [zero] * WORD

    # ==================================================================
    # Cross-stage nets declared up front (feedback / bypass paths).
    # ==================================================================
    m = b.module
    predeclared = {}
    for name, width in [
        ("stall", 1), ("ex_taken", 1), ("halted_q", 1),
        ("redirect", PC_BITS), ("ex_result", WORD),
        ("me_value", WORD), ("wb_value", WORD),
        ("ex_rd", 3), ("me_rd", 3), ("wb_rd", 3),
        ("ex_valid", 1), ("me_valid", 1), ("wb_valid", 1),
        ("ex_wreg", 1), ("me_wreg", 1), ("wb_wreg", 1),
        ("ex_is_ld", 1),
    ]:
        nets = [f"{name}[{i}]" for i in range(width)] if width > 1 else [name]
        for net in nets:
            m.add_net(net)
        predeclared[name] = nets if width > 1 else nets[0]

    stall = predeclared["stall"]
    ex_taken = predeclared["ex_taken"]
    halted_q = predeclared["halted_q"]
    redirect = predeclared["redirect"]
    ex_result = predeclared["ex_result"]
    me_value = predeclared["me_value"]
    wb_value = predeclared["wb_value"]

    # ==================================================================
    # IF: program counter, instruction ROM
    # ==================================================================
    atIF = fub("IF")
    b.default_attrs = dict(atIF)
    pc_nets = [f"pc[{i}]" for i in range(PC_BITS)]
    for net in pc_nets:
        m.add_net(net)
    pc1 = wl.increment(b, pc_nets)
    pc_redirected = wl.word_mux2(b, pc1, redirect, ex_taken)
    hold = b.or_(stall, halted_q, attrs=atIF)
    pc_next = wl.word_mux2(b, pc_redirected, pc_nets, hold)
    for i in range(PC_BITS):
        b.dff(pc_next[i], q=pc_nets[i], name=f"pc_r[{i}]", attrs=atIF)

    irom_init = list(program) + [NOP_WORD] * (IMEM_DEPTH - len(program))
    wen0 = zero
    instr_f = b.mem(
        IMEM_DEPTH, WORD, [pc_nets], [zero] * PC_BITS, z16, wen0,
        name="u_irom", init=irom_init, attrs={"fub": "IF", "struct": "irom"},
    )[0]

    # IF/DE latch: holds on stall; squashed on taken branch.
    en_if = b.not_(stall, attrs=atIF)
    atDE = fub("DE")
    b.default_attrs = dict(atDE)
    d_instr = b.dff_bus(instr_f, en=en_if, name="d_instr", attrs=atDE)
    d_pc1 = b.dff_bus(pc1, en=en_if, name="d_pc1", attrs=atDE)
    fetch_ok = b.nor_(ex_taken, halted_q, attrs=atIF)
    d_valid = b.dff(fetch_ok, en=en_if, name="d_valid", attrs=atDE)

    # ==================================================================
    # DE: decode, register read, bypass, hazard detection
    # ==================================================================
    op = d_instr[12:16]
    f_rd = d_instr[9:12]
    f_rs = d_instr[6:9]
    f_rt = d_instr[3:6]

    def is_op(name: str) -> str:
        return wl.word_eq_const(b, op, OPCODES[name])

    is_add = is_op("ADD"); is_sub = is_op("SUB"); is_and = is_op("AND")
    is_or = is_op("OR"); is_xor = is_op("XOR"); is_shift = is_op("SHIFT")
    is_addi = is_op("ADDI"); is_ldi = is_op("LDI"); is_ld = is_op("LD")
    is_st = is_op("ST"); is_beq = is_op("BEQ"); is_bne = is_op("BNE")
    is_jmp = is_op("JMP"); is_out = is_op("OUT"); is_halt = is_op("HALT")

    is_rrr = b.or_(is_add, is_sub, is_and, is_or, is_xor, attrs=atDE)
    is_br = b.or_(is_beq, is_bne, attrs=atDE)
    # Port A register: BEQ/BNE/OUT encode their first register in [11:9].
    a_hi = b.or_(is_br, is_out, attrs=atDE)
    raddr_a = wl.word_mux2(b, f_rs, f_rd, a_hi)
    # Port B register: branches use [8:6]; ST's data register is [11:9].
    raddr_b = wl.word_mux2(b, wl.word_mux2(b, f_rt, f_rd, is_st), f_rs, is_br)

    # Register file (2R1W): written from WB below. In the parity
    # variant a 17th even-parity bit is stored and checked on read.
    rf_wen = b.and_(predeclared["wb_valid"], predeclared["wb_wreg"], attrs=fub("WB"))
    rf_width = WORD + 1 if parity else WORD
    rf_wdata = list(wb_value)
    if parity:
        rf_wdata = rf_wdata + [wl.parity(b, wb_value)]
    rf_rdata = b.mem(
        8, rf_width, [raddr_a, raddr_b], predeclared["wb_rd"], rf_wdata, rf_wen,
        name="u_rf", attrs={"fub": "DE", "struct": "rf"},
    )
    va_raw, vb_raw = rf_rdata[0][:WORD], rf_rdata[1][:WORD]
    parity_errors: list[str] = []
    if parity:
        # Even parity: the XOR over data+parity bits is 0 when intact.
        parity_errors.append(b.xor_(*rf_rdata[0], attrs=atDE))
        parity_errors.append(b.xor_(*rf_rdata[1], attrs=atDE))

    # Bypass network: priority EX (ALU results only) > ME > WB > RF.
    def bypass(raddr: list[str], raw: list[str]) -> list[str]:
        ex_hit = b.and_(
            predeclared["ex_valid"], predeclared["ex_wreg"],
            b.not_(predeclared["ex_is_ld"], attrs=atDE),
            wl.word_eq(b, raddr, predeclared["ex_rd"]), attrs=atDE,
        )
        me_hit = b.and_(
            predeclared["me_valid"], predeclared["me_wreg"],
            wl.word_eq(b, raddr, predeclared["me_rd"]), attrs=atDE,
        )
        wb_hit = b.and_(
            predeclared["wb_valid"], predeclared["wb_wreg"],
            wl.word_eq(b, raddr, predeclared["wb_rd"]), attrs=atDE,
        )
        value = wl.word_mux2(b, raw, wb_value, wb_hit)
        value = wl.word_mux2(b, value, me_value, me_hit)
        value = wl.word_mux2(b, value, ex_result, ex_hit)
        return value

    va = bypass(raddr_a, va_raw)
    vb_reg = bypass(raddr_b, vb_raw)

    # Immediates.
    imm6 = d_instr[0:6] + [zero] * 10
    imm8 = d_instr[0:8] + [zero] * 8
    use_imm6 = b.or_(is_addi, is_ld, is_st, attrs=atDE)
    imm_ext = wl.word_mux2(b, imm8, imm6, use_imm6)
    use_imm = b.or_(use_imm6, is_ldi, attrs=atDE)
    vb = wl.word_mux2(b, vb_reg, imm_ext, use_imm)

    # Branch offset (6-bit signed -> PC_BITS) and jump target.
    sign = d_instr[5]
    broff = d_instr[0:6] + [sign] * (PC_BITS - 6)
    jt = d_instr[0:PC_BITS]

    # Hazard: load-use stall (consumer in DE, load in EX).
    atCT = fub("CTRL")
    b.default_attrs = dict(atCT)
    reads_a = b.or_(is_rrr, is_shift, is_addi, is_ld, is_st, is_br, is_out, attrs=atCT)
    reads_b = b.or_(is_rrr, is_st, is_br, attrs=atCT)
    conflict_a = b.and_(reads_a, wl.word_eq(b, raddr_a, predeclared["ex_rd"]), attrs=atCT)
    conflict_b = b.and_(reads_b, wl.word_eq(b, raddr_b, predeclared["ex_rd"]), attrs=atCT)
    b.gate(
        "AND",
        [d_valid, predeclared["ex_valid"], predeclared["ex_is_ld"],
         predeclared["ex_wreg"], b.or_(conflict_a, conflict_b, attrs=atCT)],
        out=stall, attrs=atCT,
    )

    # Destination-write control: rd != 0 for writer ops.
    b.default_attrs = dict(atDE)
    writes = b.or_(is_rrr, is_shift, is_addi, is_ldi, is_ld, attrs=atDE)
    rd_nonzero = b.or_(*f_rd, attrs=atDE)
    de_wreg = b.and_(writes, rd_nonzero, attrs=atDE)

    # ==================================================================
    # DE/EX latch (bubble on stall or taken branch)
    # ==================================================================
    atEX = fub("EX")
    b.default_attrs = dict(atEX)
    issue = b.and_(
        d_valid, b.not_(stall, attrs=atDE), b.not_(ex_taken, attrs=atDE),
        b.not_(halted_q, attrs=atDE), attrs=atDE,
    )
    b.dff(issue, q=predeclared["ex_valid"], name="ex_valid_r", attrs=atEX)

    def exlatch(sig, name):
        if isinstance(sig, list):
            return b.dff_bus(sig, name=name, attrs=atEX)
        return b.dff(sig, name=name, attrs=atEX)

    # ALU op one-hots (LD/ST/LDI routed onto adder / pass-B).
    alu_add = b.or_(is_add, is_addi, is_ld, is_st, attrs=atDE)
    ex_add = exlatch(alu_add, "ex_add")
    ex_sub = exlatch(is_sub, "ex_sub")
    ex_and = exlatch(is_and, "ex_and")
    ex_or = exlatch(is_or, "ex_or")
    ex_xor = exlatch(is_xor, "ex_xor")
    ex_shift = exlatch(is_shift, "ex_shift")
    ex_passb = exlatch(is_ldi, "ex_passb")
    ex_shmode = exlatch(f_rt, "ex_shmode")

    b.dff(is_ld, q=predeclared["ex_is_ld"], name="ex_is_ld_r", attrs=atEX)
    ex_is_st = exlatch(is_st, "ex_is_st")
    ex_is_beq = exlatch(is_beq, "ex_is_beq")
    ex_is_bne = exlatch(is_bne, "ex_is_bne")
    ex_is_jmp = exlatch(is_jmp, "ex_is_jmp")
    ex_is_out = exlatch(is_out, "ex_is_out")
    ex_is_halt = exlatch(is_halt, "ex_is_halt")
    b.dff(de_wreg, q=predeclared["ex_wreg"], name="ex_wreg_r", attrs=atEX)
    for i in range(3):
        b.dff(f_rd[i], q=predeclared["ex_rd"][i], name=f"ex_rd_r[{i}]", attrs=atEX)
    ex_va = exlatch(va, "ex_va")
    ex_vb = exlatch(vb, "ex_vb")
    ex_st_data = exlatch(vb_reg, "ex_st_data")
    ex_pc1 = exlatch(d_pc1, "ex_pc1")
    ex_broff = exlatch(broff, "ex_broff")
    ex_jt = exlatch(jt, "ex_jt")

    # ==================================================================
    # EX: ALU, branch resolution, PC redirect
    # ==================================================================
    add_out, _ = wl.ripple_add(b, ex_va, ex_vb)
    sub_out, _ = wl.ripple_sub(b, ex_va, ex_vb)
    and_out = wl.word_and(b, ex_va, ex_vb)
    or_out = wl.word_or(b, ex_va, ex_vb)
    xor_out = wl.word_xor(b, ex_va, ex_vb)
    shl_out = wl.shift_left_const(b, ex_va, 1)
    shr_out = wl.shift_right_const(b, ex_va, 1)
    rol_out = wl.rotate_left_const(b, ex_va, 1)
    sh_mode0 = wl.word_eq_const(b, ex_shmode, 0)
    sh_mode1 = wl.word_eq_const(b, ex_shmode, 1)
    shift_out = wl.word_mux2(b, rol_out, shr_out, sh_mode1)
    shift_out = wl.word_mux2(b, shift_out, shl_out, sh_mode0)

    for i in range(WORD):
        terms = [
            b.and_(ex_add, add_out[i], attrs=atEX),
            b.and_(ex_sub, sub_out[i], attrs=atEX),
            b.and_(ex_and, and_out[i], attrs=atEX),
            b.and_(ex_or, or_out[i], attrs=atEX),
            b.and_(ex_xor, xor_out[i], attrs=atEX),
            b.and_(ex_shift, shift_out[i], attrs=atEX),
            b.and_(ex_passb, ex_vb[i], attrs=atEX),
        ]
        b.gate("OR", terms, out=ex_result[i], attrs=atEX)

    eq = wl.word_eq(b, ex_va, ex_vb)
    taken_beq = b.and_(ex_is_beq, eq, attrs=atEX)
    taken_bne = b.and_(ex_is_bne, b.not_(eq, attrs=atEX), attrs=atEX)
    b.gate(
        "AND",
        [predeclared["ex_valid"], b.or_(taken_beq, taken_bne, ex_is_jmp, attrs=atEX)],
        out=ex_taken, attrs=atEX,
    )
    btarget, _ = wl.ripple_add(b, ex_pc1, ex_broff)
    rtarget = wl.word_mux2(b, btarget, ex_jt, ex_is_jmp)
    for i in range(PC_BITS):
        b.gate("BUF", [rtarget[i]], out=redirect[i], attrs=atEX)

    # ==================================================================
    # EX/ME latch
    # ==================================================================
    atME = fub("ME")
    b.default_attrs = dict(atME)
    b.dff(predeclared["ex_valid"], q=predeclared["me_valid"], name="me_valid_r", attrs=atME)
    me_result = b.dff_bus(ex_result, name="me_result", attrs=atME)
    me_is_ld = b.dff(predeclared["ex_is_ld"], name="me_is_ld", attrs=atME)
    me_is_st = b.dff(ex_is_st, name="me_is_st", attrs=atME)
    me_is_out = b.dff(ex_is_out, name="me_is_out", attrs=atME)
    me_is_halt = b.dff(ex_is_halt, name="me_is_halt", attrs=atME)
    b.dff(predeclared["ex_wreg"], q=predeclared["me_wreg"], name="me_wreg_r", attrs=atME)
    for i in range(3):
        b.dff(predeclared["ex_rd"][i], q=predeclared["me_rd"][i], name=f"me_rd_r[{i}]", attrs=atME)
    me_st_data = b.dff_bus(ex_st_data, name="me_st_data", attrs=atME)
    me_va = b.dff_bus(ex_va, name="me_va", attrs=atME)

    # ==================================================================
    # ME: data memory, output port, halt flag
    # ==================================================================
    dmem_addr = me_result[0:8]
    dmem_wen = b.and_(predeclared["me_valid"], me_is_st, attrs=atME)
    dmem_width = WORD + 1 if parity else WORD
    dmem_wdata = list(me_st_data)
    dmem_image = list(dmem_init or [])
    if parity:
        dmem_wdata = dmem_wdata + [wl.parity(b, me_st_data)]
        # The preloaded image must carry correct parity bits too.
        dmem_image = [w | (_parity_of(w) << WORD) for w in dmem_image]
    dmem_rdata = b.mem(
        DMEM_DEPTH, dmem_width, [dmem_addr], dmem_addr, dmem_wdata, dmem_wen,
        name="u_dmem", init=dmem_image, attrs={"fub": "ME", "struct": "dmem"},
    )[0]
    if parity:
        # Only loads consume data memory; qualify the check accordingly.
        dmem_err = b.and_(
            predeclared["me_valid"], me_is_ld,
            b.xor_(*dmem_rdata, attrs=atME), attrs=atME,
        )
        parity_errors.append(dmem_err)
    for i in range(WORD):
        b.gate("BUF", [b.mux2(me_result[i], dmem_rdata[i], me_is_ld, attrs=atME)],
               out=me_value[i], attrs=atME)

    do_out = b.and_(predeclared["me_valid"], me_is_out, attrs=atME)
    out_val = b.dff_bus(me_va, en=do_out, name="out_val", attrs=atME)
    out_valid = b.dff(do_out, name="out_valid", attrs=atME)
    do_halt = b.and_(predeclared["me_valid"], me_is_halt, attrs=atME)
    b.dff(b.or_(halted_q, do_halt, attrs=atME), q=halted_q, name="halted_r", attrs=atME)

    due_q = None
    if parity:
        m.add_net("due_q")
        due_q = "due_q"
        b.dff(b.or_(due_q, *parity_errors, attrs=atME), q=due_q,
              name="due_r", attrs=atME)

    # ==================================================================
    # ME/WB latch + WB
    # ==================================================================
    atWB = fub("WB")
    b.default_attrs = dict(atWB)
    b.dff(predeclared["me_valid"], q=predeclared["wb_valid"], name="wb_valid_r", attrs=atWB)
    for i in range(WORD):
        b.dff(me_value[i], q=wb_value[i], name=f"wb_value_r[{i}]", attrs=atWB)
    b.dff(predeclared["me_wreg"], q=predeclared["wb_wreg"], name="wb_wreg_r", attrs=atWB)
    for i in range(3):
        b.dff(predeclared["me_rd"][i], q=predeclared["wb_rd"][i], name=f"wb_rd_r[{i}]", attrs=atWB)

    # ==================================================================
    # Primary outputs (architectural observation points)
    # ==================================================================
    b.default_attrs = dict(atME)
    for i in range(WORD):
        b.output(f"out_val_o[{i}]")
        b.gate("BUF", [out_val[i]], out=f"out_val_o[{i}]", attrs=atME)
    b.output("out_valid_o")
    b.gate("BUF", [out_valid], out="out_valid_o", attrs=atME)
    b.output("halted_o")
    b.gate("BUF", [halted_q], out="halted_o", attrs=atME)
    if parity:
        b.output("due_o")
        b.gate("BUF", [due_q], out="due_o", attrs=atME)

    module = b.done()
    validate_module(module)
    return TinycoreNetlist(
        module=module,
        out_val=[f"out_val_o[{i}]" for i in range(WORD)],
        out_valid="out_valid_o",
        halted="halted_o",
        pc=pc_nets,
        due="due_o" if parity else None,
    )
