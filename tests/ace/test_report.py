"""ACE structure report tests."""

import pytest

from repro.ace.report import per_workload_avfs, structure_rows, structure_table
from repro.perfmodel.machine import run_workload
from repro.workloads.generator import WorkloadSpec, generate_trace


@pytest.fixture(scope="module")
def results():
    return [
        run_workload(generate_trace(WorkloadSpec(name=f"w{i}", length=1500, seed=i)))
        for i in range(3)
    ]


def test_rows_cover_all_structures(results):
    rows = structure_rows(results)
    assert {r.name for r in rows} == set(results[0].structures)
    for row in rows:
        assert 0.0 <= row.avf <= 1.0
        assert 0.0 <= row.pavf_r <= 1.0
        assert row.bits == row.entries * results[0].structures[row.name].bits_per_entry


def test_latency_domination_flag(results):
    rows = {r.name: r for r in structure_rows(results)}
    assert rows["rob"].latency_dominated
    assert rows["fetch_buffer"].latency_dominated


def test_table_renders(results):
    text = structure_table(results)
    assert "structure" in text and "regime" in text
    assert "rob" in text
    assert text.count("\n") == len(results[0].structures)


def test_per_workload_variation(results):
    avfs = per_workload_avfs(results, "rob")
    assert set(avfs) == {"w0", "w1", "w2"}
    assert all(0.0 <= v <= 1.0 for v in avfs.values())


def test_empty_results():
    assert structure_rows([]) == []
