"""Shared result-emission layer: human tables and machine summaries.

Every flow renders its results through these helpers — the CLI
subcommands, the ``run`` spec executor, and tests all use the same code,
so SART reports, campaign summaries, and ``--export-*`` files are
emitted identically no matter which entry point produced them. Campaign
flows gain machine-readable ``--export-json`` here (backed by the
``to_summary()`` methods on :class:`~repro.sfi.injector.CampaignResult`
and :class:`~repro.ser.beam.BeamResult`).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping


def write_json(path: str, payload: Mapping[str, Any]) -> None:
    """Write a JSON document with stable formatting."""
    with open(path, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True))
        handle.write("\n")


def print_stats(result, echo: Callable[[str], None] = print) -> None:
    """The one-line run statistics footer of a SART report."""
    s = result.stats
    echo(
        f"nodes={int(s['nodes'])} sequentials={int(s['sequentials'])} "
        f"loops={int(s['loop_bits'])} ctrl={int(s['ctrl_bits'])} "
        f"visited={s['visited_fraction']:.1%} elapsed={result.elapsed_seconds:.2f}s"
    )
    if result.trace is not None:
        echo(
            f"relaxation: {result.trace.iterations} iterations, "
            f"converged={result.trace.converged}"
        )
    if s.get("warm"):
        total = int(s["warm_fubs"] + s["dirty_fubs"])
        echo(
            f"eco: warm start, re-solved {int(s['resolved_fubs'])}/{total} "
            f"FUBs (dirty={int(s['dirty_fubs'])})"
        )


def export_sart(
    result,
    *,
    export_csv: str | None = None,
    export_fubs: str | None = None,
    export_json: str | None = None,
    echo: Callable[[str], None] = print,
) -> None:
    """Write the per-node/per-FUB/summary export files a flow asked for."""
    from repro.core.export import fub_report_csv, node_avfs_csv, summary_json

    if export_csv:
        with open(export_csv, "w") as handle:
            handle.write(node_avfs_csv(result))
        echo(f"wrote per-node AVFs to {export_csv}")
    if export_fubs:
        with open(export_fubs, "w") as handle:
            handle.write(fub_report_csv(result))
        echo(f"wrote per-FUB report to {export_fubs}")
    if export_json:
        with open(export_json, "w") as handle:
            handle.write(summary_json(result))
        echo(f"wrote summary to {export_json}")


def print_deadlines(
    deadlines: Mapping[str, Mapping[str, Any]],
    echo: Callable[[str], None] = print,
) -> None:
    """Render the per-structure error-reporting deadline table.

    One row per structure: how many consumption events were observed and
    the p50/p95/max/mean cycles an error detector has before a corrupted
    value in that structure is architecturally consumed.
    """
    header = (f"{'structure':<16} {'events':>8} {'p50':>7} {'p95':>7} "
              f"{'max':>7} {'mean':>9}")
    echo(header)
    echo("-" * len(header))
    for name in sorted(deadlines):
        s = deadlines[name]
        echo(
            f"{name:<16} {int(s.get('events', 0)):>8} "
            f"{int(s.get('p50', 0)):>7} {int(s.get('p95', 0)):>7} "
            f"{int(s.get('max', 0)):>7} {float(s.get('mean', 0.0)):>9.2f}"
        )


def deadline_payload(deadlines: Mapping[str, Mapping[str, Any]]) -> dict:
    """JSON-safe per-structure deadline section for run summaries.

    Quantiles and the conservation context only — the raw histograms
    stay on the PortEnv artifact (they can hold one bucket per distinct
    lifetime on big designs).
    """
    out: dict = {}
    for name, s in deadlines.items():
        out[name] = {
            "events": int(s.get("events", 0)),
            "p50": int(s.get("p50", 0)),
            "p95": int(s.get("p95", 0)),
            "max": int(s.get("max", 0)),
            "mean": float(s.get("mean", 0.0)),
            "mass_cycles": float(s.get("mass_cycles", 0.0)),
            "ace_bit_cycles": float(s.get("ace_bit_cycles", 0.0)),
            "cycles": int(s.get("cycles", 0)),
        }
    return out


def print_derating(
    artifact,
    echo: Callable[[str], None] = print,
) -> None:
    """Render the logic-derating population summary of one run."""
    s = artifact.summary
    echo(
        f"logic derating: {int(s.get('flops', 0))} flops  "
        f"mean={float(s.get('mean', 0.0)):.4f}  "
        f"min={float(s.get('min', 0.0)):.4f}  "
        f"p50={float(s.get('p50', 0.0)):.4f}  "
        f"max={float(s.get('max', 0.0)):.4f}"
    )
    if artifact.derated_seq_avf is not None:
        echo(f"derated sequential AVF (mean avf x derating): "
             f"{artifact.derated_seq_avf:.4f}")
    if artifact.mc:
        mc = artifact.mc
        echo(
            f"MC masking validation: {int(mc.get('trials', 0))} trials, "
            f"propagation rate {float(mc.get('rate', 0.0)):.4f} "
            f"(analytic mean {float(s.get('mean', 0.0)):.4f})"
        )


def derating_payload(artifact) -> dict:
    """JSON-safe derating section for run summaries.

    Population summary and the derated sequential AVF only — the
    per-flop factor table stays on the artifact (it has one entry per
    flop, six-figure designs included).
    """
    out: dict = {"summary": dict(artifact.summary)}
    if artifact.derated_seq_avf is not None:
        out["derated_seq_avf"] = float(artifact.derated_seq_avf)
    if artifact.mc:
        out["mc"] = dict(artifact.mc)
    return out


def campaign_summary(outcome, *, program: str | None = None) -> dict:
    """Machine-readable summary of a CampaignOutcome (sfi or beam)."""
    payload = dict(outcome.result.to_summary())
    payload["fingerprint"] = outcome.fingerprint
    payload["cached"] = outcome.cached
    if program is not None:
        payload["program"] = program
    if outcome.kind == "sfi":
        payload["planned_injections"] = outcome.injections
        payload["golden_cycles"] = outcome.golden_cycles
    return payload


def run_summary(outcome, *, program: str | None = None) -> dict:
    """JSON-safe summary of one executed run-spec.

    The one document every front end serves: ``repro-sart run
    --export-json`` writes it and the job server returns it as the job
    result, so a spec executed over HTTP and the same spec executed
    locally produce byte-identical summaries.
    """
    payload: dict = {
        "design": outcome.design.ref,
        "stages": [e.stage for e in outcome.events],
        "cached_stages": sorted({e.stage for e in outcome.events if e.cached}),
    }
    if outcome.sart is not None:
        payload["weighted_seq_avf"] = outcome.sart.result.report.weighted_seq_avf
        sart = outcome.sart
        if sart.warm or sart.fub_hits or sart.fub_misses:
            trace = sart.result.trace
            payload["eco"] = {
                "warm": sart.warm,
                "fub_hits": sart.fub_hits,
                "fub_misses": sart.fub_misses,
                "dirty_fubs": list(sart.dirty_fubs),
                "resolved_fubs": trace.resolved_fubs if trace else 0,
            }
    if outcome.port_env is not None and outcome.port_env.deadlines:
        payload["deadlines"] = deadline_payload(outcome.port_env.deadlines)
    if outcome.derating is not None:
        payload["derating"] = derating_payload(outcome.derating)
    if outcome.sweep:
        payload["sweep"] = [
            {"loop_pavf": p.value,
             "weighted_seq_avf": p.result.report.weighted_seq_avf}
            for p in outcome.sweep
        ]
    if outcome.sfi is not None:
        payload["sfi"] = campaign_summary(outcome.sfi, program=program)
    if outcome.beam is not None:
        payload["beam"] = campaign_summary(outcome.beam, program=program)
    if outcome.export_path:
        payload["export"] = outcome.export_path
    return payload


def export_campaign_json(
    outcome,
    path: str,
    *,
    program: str | None = None,
    echo: Callable[[str], None] = print,
) -> None:
    """``--export-json`` for campaign flows (shared sfi/beam emitter)."""
    write_json(path, campaign_summary(outcome, program=program))
    echo(f"wrote {outcome.kind} summary to {path}")


def print_runtime_summary(
    failures, pool_restarts, degraded, resumed,
    echo: Callable[[str], None] = print,
) -> None:
    """Fault-tolerant-runtime footer shared by the campaign flows."""
    if resumed:
        echo(f"  resumed: {resumed} pass(es) loaded from checkpoint")
    if pool_restarts or degraded:
        note = f"  runtime: worker pool respawned {pool_restarts} time(s)"
        if degraded:
            note += "; degraded to serial execution"
        echo(note)
    if failures:
        echo(f"  WARNING: {len(failures)} pass(es) failed permanently:")
        for f in failures[:5]:
            echo(f"    pass {f.index}: {f.kind} after {f.attempts} "
                 f"attempt(s): {f.error}")
        if len(failures) > 5:
            echo(f"    ... and {len(failures) - 5} more")


def cache_note(outcome_events, echo: Callable[[str], None] = print) -> None:
    """One-line warm-cache note listing which stages were reused."""
    cached = [e.stage for e in outcome_events if e.cached]
    if cached:
        echo(f"cache: reused {', '.join(sorted(set(cached)))} artifact(s)")
