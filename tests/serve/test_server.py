"""HTTP front-end tests: routes, status codes, SSE, health, drain."""

import json
import threading
import urllib.error
import urllib.request

from repro.serve import loadgen
from repro.serve.loadgen import get_json, percentile, post_json
from repro.serve.server import ServeApp

SPEC = {"design": "tinycore:fib", "sart": {"monolithic": True}}
OTHER_SPEC = {"design": "tinycore:fib", "sart": {"monolithic": False}}
GATED_SPEC = {"design": "tinycore:fib",
              "sart": {"monolithic": True, "loop_pavf": 0.9}}

_GATE = threading.Event()


def _worker(task):
    if task["spec"].get("sart", {}).get("loop_pavf") == 0.9:
        _GATE.wait(timeout=30)
    return {"ok": True, "design": task["spec"]["design"]}


def _app(tmp_path, **kwargs):
    kwargs.setdefault("worker", _worker)
    kwargs.setdefault("heartbeat", 0.05)
    return ServeApp(str(tmp_path / "state"), **kwargs).start_background()


def test_submit_status_result_and_dedup_codes(tmp_path):
    app = _app(tmp_path)
    try:
        status, doc = post_json(f"{app.url}/jobs", SPEC)
        assert status == 201 and not doc["deduplicated"]
        job_id = doc["id"]

        final = loadgen.await_job(app.url, job_id, timeout=30)
        assert final["state"] == "done"
        assert final["result"]["ok"] is True

        status, doc = post_json(f"{app.url}/jobs", SPEC)
        assert status == 200 and doc["deduplicated"]
        assert doc["id"] == job_id and doc["state"] == "done"

        status, doc = get_json(f"{app.url}/jobs/{job_id}?spec=1")
        assert status == 200 and doc["spec"]["design"] == "tinycore:fib"

        status, doc = get_json(f"{app.url}/jobs")
        assert status == 200 and len(doc["jobs"]) == 1
    finally:
        app.drain()


def test_error_codes(tmp_path):
    app = _app(tmp_path)
    try:
        status, doc = post_json(f"{app.url}/jobs",
                                {"design": "tinycore:fib", "bogus": {}})
        assert status == 400 and "bogus" in doc["error"]

        request = urllib.request.Request(
            f"{app.url}/jobs", data=b"not json", method="POST")
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400

        status, _ = get_json(f"{app.url}/jobs/job-doesnotexist00/result")
        assert status == 404
        status, _ = get_json(f"{app.url}/nope")
        assert status == 404
        status, _ = post_json(f"{app.url}/nope", {})
        assert status == 404
    finally:
        app.drain()


def test_backpressure_returns_429_with_retry_after(tmp_path):
    _GATE.clear()
    app = _app(tmp_path, queue_limit=1, job_timeout=3.0)
    try:
        status, doc = post_json(f"{app.url}/jobs", GATED_SPEC)
        assert status == 201

        request = urllib.request.Request(
            f"{app.url}/jobs", data=json.dumps(OTHER_SPEC).encode(),
            method="POST", headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected HTTP 429")
        except urllib.error.HTTPError as exc:
            assert exc.code == 429
            assert int(exc.headers["Retry-After"]) >= 1

        status, ready = get_json(f"{app.url}/readyz")
        assert status == 503 and not ready["ready"]
        _GATE.set()
        loadgen.await_job(app.url, doc["id"], timeout=30)
        status, ready = get_json(f"{app.url}/readyz")
        assert status == 200 and ready["ready"]
    finally:
        _GATE.set()
        app.drain()


def test_healthz_and_stats(tmp_path):
    app = _app(tmp_path, cache_dir=str(tmp_path / "cache"))
    try:
        status, health = get_json(f"{app.url}/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["pool"]["degraded"] is False

        status, doc = post_json(f"{app.url}/jobs", SPEC)
        loadgen.await_job(app.url, doc["id"], timeout=30)

        status, stats = get_json(f"{app.url}/stats")
        assert status == 200
        assert stats["counters"]["completed"] == 1
        assert stats["counters"]["executions"] == 1
        assert stats["jobs"]["done"] == 1
        assert stats["store"]["root"] == str(tmp_path / "cache")
    finally:
        app.drain()


def test_sse_stream_emits_states_heartbeats_and_end(tmp_path):
    _GATE.clear()
    app = _app(tmp_path, heartbeat=0.05)
    try:
        _, doc = post_json(f"{app.url}/jobs", GATED_SPEC)
        lines = []
        release = threading.Timer(0.4, _GATE.set)
        release.start()
        with urllib.request.urlopen(
                f"{app.url}/jobs/{doc['id']}/events", timeout=30) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            for raw in resp:
                line = raw.decode().rstrip("\n")
                lines.append(line)
                if line == "event: end":
                    break
        release.cancel()
        states = [json.loads(line[6:])["state"] for line in lines
                  if line.startswith("data: ") and line != "data: {}"]
        assert states[-1] == "done"
        assert ": heartbeat" in lines      # idle gap produced heartbeats
        assert lines[-1] == "event: end"
    finally:
        _GATE.set()
        app.drain()


def test_sse_on_finished_job_replays_final_state(tmp_path):
    app = _app(tmp_path)
    try:
        _, doc = post_json(f"{app.url}/jobs", SPEC)
        loadgen.await_job(app.url, doc["id"], timeout=30)
        with urllib.request.urlopen(
                f"{app.url}/jobs/{doc['id']}/events", timeout=10) as resp:
            body = []
            for raw in resp:
                body.append(raw.decode().rstrip("\n"))
                if body[-1] == "event: end":
                    break
        assert any('"state": "done"' in line for line in body)
    finally:
        app.drain()


def test_draining_server_rejects_submissions_with_503(tmp_path):
    _GATE.clear()
    app = _app(tmp_path, drain_grace=30)
    drained = []
    try:
        _, doc = post_json(f"{app.url}/jobs", GATED_SPEC)
        drainer = threading.Thread(target=lambda: drained.append(app.drain()))
        drainer.start()
        for _ in range(200):
            if app.scheduler.draining:
                break
            threading.Event().wait(0.02)
        status, body = post_json(f"{app.url}/jobs", OTHER_SPEC)
        assert status == 503 and "draining" in body["error"]
        status, ready = get_json(f"{app.url}/readyz")
        assert status == 503 and ready["reason"] == "draining"
    finally:
        _GATE.set()
    drainer.join(timeout=30)
    assert drained == [True]


def test_percentile_interpolates():
    values = [0.1, 0.2, 0.3, 0.4]
    assert percentile(values, 0.0) == 0.1
    assert percentile(values, 1.0) == 0.4
    assert abs(percentile(values, 0.5) - 0.25) < 1e-12
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
