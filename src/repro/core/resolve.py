"""Final resolution phase (paper Section 4.2, Table 1).

"After completing both the 'up' and 'down' walks, most nodes are annotated
with two pAVF values. For the nodes that have pAVF values computed by the
ACE model, the estimate value is discarded in favor of the computed value.
For the remaining nodes, the smaller of the two estimates can be used
since both values are obtained conservatively."
"""

from __future__ import annotations

from typing import Mapping, NamedTuple

from repro.core.graphmodel import AvfModel
from repro.core.pavf import Atom, CTRL, LOOP, PavfEnv, TOP, value_of
from repro.netlist.graph import NodeKind

# Node roles in the final report.
ROLE_LOGIC = "logic"
ROLE_STRUCT = "struct"
ROLE_CTRL = "ctrl"
ROLE_LOOP = "loop"
ROLE_CONST = "const"
ROLE_INPUT = "input"
ROLE_MEM = "mem"


class NodeAvf(NamedTuple):
    """Resolved AVF of one node.

    A NamedTuple rather than a dataclass: the resolution phase builds one
    per node and frozen-dataclass construction is the dominant cost of
    that loop on large designs.
    """

    net: str
    kind: str          # NodeKind constant
    fub: str
    role: str
    avf: float
    forward: float     # numeric value of the forward (pAVF_R) estimate
    backward: float    # numeric value of the backward (pAVF_W) estimate
    visited: bool      # False when both estimates stayed at the initial TOP


def resolve(
    model: AvfModel,
    f_sets: Mapping[str, frozenset[Atom]],
    b_sets: Mapping[str, frozenset[Atom]],
    env: PavfEnv,
    structures=None,
) -> dict[str, NodeAvf]:
    """Compute the final per-node AVF from the two directional estimates.

    *structures* optionally overrides ``model.structures`` when looking up
    measured structure AVFs (used by closed-form re-evaluation).
    """
    structures = structures if structures is not None else model.structures
    out: dict[str, NodeAvf] = {}
    for net, node in model.graph.nodes.items():
        f_set = f_sets.get(net)
        b_set = b_sets.get(net)
        f_val = value_of(f_set, env) if f_set is not None else 1.0
        b_val = value_of(b_set, env) if b_set is not None else 1.0
        visited = not (
            (f_set is None or TOP in f_set) and (b_set is None or TOP in b_set)
        )

        if net in model.struct_nodes:
            role = ROLE_STRUCT
            sname, _bit = model.struct_nodes[net]
            ports = structures.get(sname)
            measured = ports.avf if ports is not None else None
            avf = measured if measured is not None else min(f_val, b_val)
            visited = True
        elif net in model.loop_nets:
            role = ROLE_LOOP
            avf = env.lookup(Atom(LOOP, net))
            visited = True
        elif net in model.ctrl_nets:
            # Control registers are structure-like: their AVF is the
            # injected read-port value (100 % by default), not an estimate.
            role = ROLE_CTRL
            avf = env.lookup(Atom(CTRL, net))
            visited = True
        elif node.kind == NodeKind.CONST:
            role = ROLE_CONST
            avf = min(f_val, b_val)
        elif node.kind == NodeKind.INPUT:
            role = ROLE_INPUT
            avf = min(f_val, b_val)
        elif node.kind == NodeKind.MEM_RDATA:
            role = ROLE_MEM
            avf = min(f_val, b_val)
            visited = True
        else:
            role = ROLE_LOGIC
            avf = min(f_val, b_val)

        out[net] = NodeAvf(
            net=net,
            kind=node.kind,
            fub=node.fub,
            role=role,
            avf=avf,
            forward=f_val,
            backward=b_val,
            visited=visited,
        )
    return out
