"""Shrinker: minimality, crash handling, attempt budget."""

from __future__ import annotations

import pytest

from repro.verify.cases import CaseSpec, CircuitSpec
from repro.verify.shrink import shrink


def test_shrinks_to_floor_when_everything_fails():
    spec = CaseSpec(seed=1, n_fubs=4, flops_per_fub=12, struct_width=3,
                    fsm_loops=2, stall_loops=2, pointer_loops=1,
                    ctrl_regs=2, env_seed=99)
    small, attempts = shrink(spec, lambda s: True)
    assert small == CaseSpec(seed=1, n_fubs=1, flops_per_fub=1,
                             struct_width=0, fsm_loops=0, stall_loops=0,
                             pointer_loops=0, ctrl_regs=0, env_seed=0)
    assert attempts > 0


def test_preserves_failure_relevant_field():
    # Failure depends only on having >= 2 FUBs: everything else shrinks.
    spec = CaseSpec(seed=1, n_fubs=4, flops_per_fub=10, fsm_loops=2,
                    ctrl_regs=2)
    small, _ = shrink(spec, lambda s: s.n_fubs >= 2)
    assert small.n_fubs == 2
    assert small.flops_per_fub == 1
    assert small.fsm_loops == 0
    assert small.ctrl_regs == 0


def test_circuit_spec_shrinks_with_bool_field():
    spec = CircuitSpec(seed=3, n_gates=40, n_dffs=8, with_mem=True,
                       lanes=9, cycles=16, n_faults=4, stim_seed=5)
    small, _ = shrink(spec, lambda s: True)
    assert small.with_mem is False
    assert small.n_gates == 1
    assert small.lanes == 2
    assert small.n_faults == 0


def test_crashing_predicate_counts_as_failing():
    spec = CaseSpec(seed=1, flops_per_fub=8)

    def boom(s):
        raise RuntimeError("builder exploded")

    small, _ = shrink(spec, boom)
    assert small.flops_per_fub == 1  # crash preserved all the way down


def test_attempt_budget_is_respected():
    spec = CaseSpec(seed=1, n_fubs=4, flops_per_fub=12, fsm_loops=2,
                    stall_loops=2, ctrl_regs=2, env_seed=50)
    calls = []

    def predicate(s):
        calls.append(s)
        return True

    _, attempts = shrink(spec, predicate, max_attempts=3)
    assert attempts == 3
    assert len(calls) == 3


def test_already_minimal_spec_needs_no_attempts():
    spec = CaseSpec(seed=1, n_fubs=1, flops_per_fub=1, struct_width=0,
                    fsm_loops=0, stall_loops=0, pointer_loops=0,
                    ctrl_regs=0, env_seed=0)
    small, attempts = shrink(spec, lambda s: True)
    assert small == spec
    assert attempts == 0


def test_unshrinkable_type_rejected():
    with pytest.raises(TypeError):
        shrink(object(), lambda s: True)  # type: ignore[arg-type]
