"""Lane-parallel cycle-based gate-level simulator.

A net value is a Python integer: bit ``k`` is the net's boolean value in
lane ``k``; ``lanes`` independent simulations advance together. The
simulator compiles the netlist into straight-line Python (one statement
per gate) with :func:`exec`, which is roughly an order of magnitude faster
than interpreting the netlist gate by gate.

Memory primitives use a golden-base-plus-per-lane-overlay representation:
writes whose enable, address and data are identical in every lane update
the shared base array; diverged lanes keep a sparse ``{addr: word}``
overlay. In fault-injection workloads almost all lanes track the golden
lane almost everywhere, so this keeps memory cost near the fault-free cost.

Simulation contract (single implicit clock):

1. ``poke`` primary inputs for the cycle,
2. observation (``peek``) sees settled combinational values,
3. ``step()`` commits the clock edge (flop/memory update) and advances
   ``cycle``.

Fault injection uses :meth:`Simulator.flip` on a flop output between steps,
which is exactly the paper's SFI fault model ("artificially flipping a
random bit at a random timestep").
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.netlist.cells import CELLS, mem_addr_bits
from repro.netlist.netlist import Instance, Module
from repro.rtlsim.levelize import GATE, MEM_READ, levelize

_CHUNK = 4000  # generated statements per compiled function


def _compile_chunks(tag: str, lines: list[str], args: str) -> list:
    """Compile statement lines into chunked functions ``f(args)``.

    Chunking keeps each generated function below CPython's practical
    limits for very large netlists and keeps compile times linear.
    """
    fns = []
    for start in range(0, len(lines), _CHUNK):
        body = "\n    ".join(lines[start:start + _CHUNK]) or "pass"
        src = f"def _{tag}_{start}({args}):\n    {body}\n"
        namespace: dict = {}
        exec(src, namespace)  # noqa: S102 - trusted, self-generated code
        fns.append(namespace[f"_{tag}_{start}"])
    return fns


class MemState:
    """State and lane-parallel access logic of one MEM instance."""

    def __init__(self, inst: Instance, index: dict[str, int], lanes: int):
        self.inst = inst
        self.depth: int = inst.params["depth"]
        self.width: int = inst.params["width"]
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        abits = mem_addr_bits(self.depth)
        self.abits = abits
        self._init = list(inst.params.get("init", []))
        nread = inst.params.get("nread", 1)
        self.raddr = [
            [index[inst.conn[f"raddr{p}_{i}"]] for i in range(abits)] for p in range(nread)
        ]
        self.rdata = [
            [index[inst.conn[f"rdata{p}_{i}"]] for i in range(self.width)] for p in range(nread)
        ]
        self.waddr = [index[inst.conn[f"waddr_{i}"]] for i in range(abits)]
        self.wdata = [index[inst.conn[f"wdata_{i}"]] for i in range(self.width)]
        self.wen = index[inst.conn["wen"]]
        self.base: list[int] = []
        self.overlays: dict[int, dict[int, int]] = {}
        self.reset()

    def reset(self) -> None:
        self.base = [0] * self.depth
        for addr, word in enumerate(self._init[: self.depth]):
            self.base[addr] = word & ((1 << self.width) - 1)
        self.overlays = {}

    # -- helpers -----------------------------------------------------------
    def _uniform(self, value: int) -> bool:
        return value == 0 or value == self.mask

    def _gather(self, v: list[int], idxs: list[int], lane: int) -> int:
        word = 0
        for i, idx in enumerate(idxs):
            word |= ((v[idx] >> lane) & 1) << i
        return word

    def lane_word(self, lane: int, addr: int) -> int:
        """Stored word at *addr* as seen by *lane*."""
        overlay = self.overlays.get(lane)
        if overlay is not None and addr in overlay:
            return overlay[addr]
        return self.base[addr]

    # -- simulation --------------------------------------------------------
    def read(self, v: list[int], port: int) -> None:
        addr_vals = [v[i] for i in self.raddr[port]]
        out_idx = self.rdata[port]
        if all(self._uniform(a) for a in addr_vals):
            addr = 0
            for i, a in enumerate(addr_vals):
                if a:
                    addr |= 1 << i
            word = self.base[addr % self.depth]
            outs = [(self.mask if (word >> i) & 1 else 0) for i in range(self.width)]
            for lane, overlay in self.overlays.items():
                w = overlay.get(addr % self.depth)
                if w is None or w == word:
                    continue
                diff = w ^ word
                bit = 1 << lane
                for i in range(self.width):
                    if (diff >> i) & 1:
                        outs[i] ^= bit
        else:
            outs = [0] * self.width
            for lane in range(self.lanes):
                addr = self._gather(v, self.raddr[port], lane) % self.depth
                word = self.lane_word(lane, addr)
                bit = 1 << lane
                for i in range(self.width):
                    if (word >> i) & 1:
                        outs[i] |= bit
        for i, idx in enumerate(out_idx):
            v[idx] = outs[i]

    def write(self, v: list[int]) -> None:
        wen = v[self.wen]
        if wen == 0:
            return
        addr_vals = [v[i] for i in self.waddr]
        data_vals = [v[i] for i in self.wdata]
        uniform = (
            wen == self.mask
            and all(self._uniform(a) for a in addr_vals)
            and all(self._uniform(d) for d in data_vals)
        )
        if uniform:
            addr = 0
            for i, a in enumerate(addr_vals):
                if a:
                    addr |= 1 << i
            addr %= self.depth
            word = 0
            for i, d in enumerate(data_vals):
                if d:
                    word |= 1 << i
            self.base[addr] = word
            for overlay in self.overlays.values():
                overlay.pop(addr, None)
            return
        for lane in range(self.lanes):
            if not (wen >> lane) & 1:
                continue
            addr = self._gather(v, self.waddr, lane) % self.depth
            word = self._gather(v, self.wdata, lane)
            overlay = self.overlays.setdefault(lane, {})
            if word == self.base[addr]:
                overlay.pop(addr, None)
            else:
                overlay[addr] = word

    def flip_bit(self, lane: int, addr: int, bit: int) -> None:
        """Invert one stored bit in one lane (particle strike model)."""
        addr %= self.depth
        word = self.lane_word(lane, addr) ^ (1 << (bit % self.width))
        overlay = self.overlays.setdefault(lane, {})
        if word == self.base[addr]:
            overlay.pop(addr, None)
        else:
            overlay[addr] = word

    def diverged_lanes(self) -> set[int]:
        """Lanes whose memory contents differ from the shared base."""
        return {lane for lane, overlay in self.overlays.items() if overlay}


class Simulator:
    """Compile and simulate a flattened module, ``lanes`` runs at a time."""

    def __init__(self, module: Module, lanes: int = 1):
        if lanes < 1:
            raise SimulationError("lanes must be >= 1")
        self.module = module
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self.cycle = 0

        self.index: dict[str, int] = {}
        for net in sorted(module.nets):
            self.index[net] = len(self.index)
        self.values: list[int] = [0] * len(self.index)
        self._next: list[int] = [0] * len(self.index)

        self.mems: dict[str, MemState] = {}
        self._dffs: list[Instance] = []
        self._consts: list[tuple[int, int]] = []
        for inst in module.instances.values():
            if inst.kind == "MEM":
                self.mems[inst.name] = MemState(inst, self.index, lanes)
            elif inst.kind == "DFF":
                self._dffs.append(inst)
            elif inst.kind == "CONST0":
                self._consts.append((self.index[inst.conn["y"]], 0))
            elif inst.kind == "CONST1":
                self._consts.append((self.index[inst.conn["y"]], self.mask))

        self._dff_q_index = {i.name: self.index[i.conn["q"]] for i in self._dffs}
        self._comb_fns, self._seq_fns, self._commit_pairs = self._compile()
        self._dirty = True
        self.reset()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _gate_expr(self, inst: Instance) -> str:
        conn = inst.conn
        idx = self.index
        kind = inst.kind
        mask = self.mask

        def pin(name: str) -> str:
            return f"v[{idx[conn[name]]}]"

        if kind == "BUF":
            return pin("a")
        if kind == "NOT":
            return f"{mask} ^ {pin('a')}"
        if kind in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR"):
            op = {"AND": " & ", "NAND": " & ", "OR": " | ", "NOR": " | ",
                  "XOR": " ^ ", "XNOR": " ^ "}[kind]
            terms = op.join(f"v[{idx[n]}]" for n in (conn[p] for p in inst.input_pins()))
            if kind in ("NAND", "NOR", "XNOR"):
                return f"{mask} ^ ({terms})"
            return terms
        if kind == "MUX2":
            a, b, s = pin("a"), pin("b"), pin("s")
            return f"({a} & ({mask} ^ {s})) | ({b} & {s})"
        raise SimulationError(f"no expression for cell {kind!r}")

    def _compile(self):
        # Combinational pass: one statement per gate / one call per mem read.
        comb_lines: list[str] = []
        mem_readers: list = []
        for kind, inst, port in levelize(self.module):
            if kind == MEM_READ:
                reader = self.mems[inst.name]
                comb_lines.append(f"mr[{len(mem_readers)}](v, {port})")
                mem_readers.append(reader.read)
            elif kind == GATE:
                if inst.kind in ("CONST0", "CONST1"):
                    continue  # set once at reset
                out = self.index[inst.conn["y"]]
                comb_lines.append(f"v[{out}] = {self._gate_expr(inst)}")

        # Sequential pass: compute every next-state into nv, commit after.
        seq_lines: list[str] = []
        commit_pairs: list[tuple[int, int]] = []
        for inst in self._dffs:
            q = self.index[inst.conn["q"]]
            d = self.index[inst.conn["d"]]
            if "en" in inst.conn:
                en = self.index[inst.conn["en"]]
                expr = f"(v[{d}] & v[{en}]) | (v[{q}] & ({self.mask} ^ v[{en}]))"
            else:
                expr = f"v[{d}]"
            seq_lines.append(f"nv[{q}] = {expr}")
            commit_pairs.append((q, q))

        comb_fns = _compile_chunks("comb", comb_lines, "v, mr")
        seq_fns = _compile_chunks("seq", seq_lines, "v, nv")
        self._mem_readers = mem_readers
        return comb_fns, seq_fns, [q for q, _ in commit_pairs]

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Power-on reset: flop init values, memory init images, inputs 0."""
        self.cycle = 0
        self.values = [0] * len(self.index)
        for idx, val in self._consts:
            self.values[idx] = val
        for inst in self._dffs:
            init = inst.params.get("init", 0)
            self.values[self.index[inst.conn["q"]]] = self.mask if init else 0
        for mem in self.mems.values():
            mem.reset()
        self._dirty = True

    def settle(self) -> None:
        """Evaluate combinational logic for the current cycle."""
        if not self._dirty:
            return
        v = self.values
        mr = self._mem_readers
        for fn in self._comb_fns:
            fn(v, mr)
        self._dirty = False

    def step(self, n: int = 1) -> None:
        """Advance *n* clock cycles (settle + edge commit per cycle)."""
        for _ in range(n):
            self.settle()
            v = self.values
            nv = self._next
            for fn in self._seq_fns:
                fn(v, nv)
            for mem in self.mems.values():
                mem.write(v)
            for q in self._commit_pairs:
                v[q] = nv[q]
            self.cycle += 1
            self._dirty = True

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def poke(self, net: str, value: int) -> None:
        """Set a primary-input net (lane-parallel value)."""
        self.values[self.index[net]] = value & self.mask
        self._dirty = True

    def poke_all_lanes(self, net: str, bit: int) -> None:
        """Set a primary input to the same boolean in every lane."""
        self.poke(net, self.mask if bit else 0)

    def poke_word(self, nets: list[str], word: int) -> None:
        """Drive a bus with the same word in every lane (LSB first)."""
        for i, net in enumerate(nets):
            self.poke_all_lanes(net, (word >> i) & 1)

    def peek(self, net: str) -> int:
        """Lane-parallel value of a net (settles combinational logic)."""
        self.settle()
        return self.values[self.index[net]]

    def peek_lane(self, net: str, lane: int) -> int:
        return (self.peek(net) >> lane) & 1

    def peek_word(self, nets: list[str], lane: int) -> int:
        self.settle()
        v = self.values
        idx = self.index
        word = 0
        for i, net in enumerate(nets):
            word |= ((v[idx[net]] >> lane) & 1) << i
        return word

    def flip(self, net: str, lane_mask: int) -> None:
        """Invert a state bit in the lanes selected by *lane_mask*.

        Intended for flop outputs between clock edges (the SFI fault
        model); flipping a combinational net would be overwritten by the
        next settle.
        """
        self.values[self.index[net]] ^= lane_mask & self.mask
        self._dirty = True

    def seq_state(self, lane: int) -> tuple[int, ...]:
        """All flop values of one lane, in a stable order."""
        v = self.values
        return tuple((v[q] >> lane) & 1 for q in self._commit_pairs)

    def lanes_differing_from(self, reference_lane: int = 0) -> set[int]:
        """Lanes whose architectural state differs from *reference_lane*.

        Compares every flop bit and every memory word; used by the SFI
        classifier to detect still-latent (unknown) faults.
        """
        diffs: set[int] = set()
        v = self.values
        ref_bit = 1 << reference_lane
        for q in self._commit_pairs:
            val = v[q]
            ref = 1 if val & ref_bit else 0
            pattern = self.mask if ref else 0
            mism = val ^ pattern
            lane_bits = mism & self.mask
            while lane_bits:
                low = lane_bits & -lane_bits
                diffs.add(low.bit_length() - 1)
                lane_bits ^= low
        for mem in self.mems.values():
            ref_overlay = mem.overlays.get(reference_lane, {})
            lanes_to_check = set(mem.overlays)
            if ref_overlay:
                lanes_to_check.update(range(self.lanes))
            for lane in lanes_to_check:
                if lane != reference_lane and mem.overlays.get(lane, {}) != ref_overlay:
                    diffs.add(lane)
        diffs.discard(reference_lane)
        return diffs
