"""Design registry: reference grammar, providers, and fingerprints."""

import pytest

from repro.errors import DesignRefError
from repro.pipeline.registry import (
    DesignProvider,
    ExlifProvider,
    register_scheme,
    resolve_design,
)
from repro.pipeline.registry import _SCHEMES


def test_tinycore_ref():
    provider = resolve_design("tinycore:fib")
    assert isinstance(provider, DesignProvider)
    assert provider.ref == "tinycore:fib"
    artifact = provider.build()
    assert artifact.kind == "tinycore"
    assert artifact.program_name == "fib"
    assert artifact.netlist is not None
    assert artifact.fingerprint == provider.fingerprint()


def test_tinycore_parity_ref():
    plain = resolve_design("tinycore:fib")
    parity = resolve_design("tinycore:fib@parity=1")
    assert plain.fingerprint() != parity.fingerprint()
    assert parity.build().netlist.due is not None


def test_bigcore_ref_params():
    provider = resolve_design("bigcore@scale=0.2,seed=7")
    assert provider.config.scale == 0.2
    assert provider.config.seed == 7
    base = resolve_design("bigcore")
    assert provider.fingerprint() != base.fingerprint()
    # same config, same fingerprint
    assert (resolve_design("bigcore@seed=7,scale=0.2").fingerprint()
            == provider.fingerprint())


def test_overrides_win_over_ref_params():
    provider = resolve_design("bigcore@scale=0.5", scale="0.2")
    assert provider.config.scale == 0.2


def test_exlif_ref(tmp_path):
    from repro.netlist.exlif import write_exlif
    from tests.conftest import make_fig7

    module, _ = make_fig7()
    path = tmp_path / "fig7.exlif"
    path.write_text(write_exlif(module))
    provider = resolve_design(f"exlif:{path}")
    assert isinstance(provider, ExlifProvider)
    artifact = provider.build()
    assert artifact.kind == "exlif"
    assert artifact.module.name == "fig7"
    # content-addressed: editing the file changes the fingerprint
    before = provider.fingerprint()
    path.write_text(path.read_text() + "\n# comment\n")
    assert provider.fingerprint() != before


def test_exlif_path_with_at_sign(tmp_path):
    from repro.netlist.exlif import write_exlif
    from tests.conftest import make_fig7

    module, _ = make_fig7()
    path = tmp_path / "net@2.exlif"
    path.write_text(write_exlif(module))
    provider = resolve_design(f"exlif:{path}")
    assert provider.path == str(path)
    provider = resolve_design(f"exlif:{path}@top=fig7")
    assert provider.path == str(path)
    assert provider.top == "fig7"


def test_bad_refs():
    with pytest.raises(DesignRefError, match="unknown design scheme"):
        resolve_design("mystery:thing")
    with pytest.raises(DesignRefError, match="needs a program"):
        resolve_design("tinycore")
    with pytest.raises(DesignRefError, match="unknown design parameter"):
        resolve_design("bigcore@warp=9")
    with pytest.raises(DesignRefError, match="is not float"):
        resolve_design("bigcore@scale=fast")
    with pytest.raises(DesignRefError, match="unknown program"):
        resolve_design("tinycore:quux").build()


def test_register_scheme():
    class Fake:
        ref = "fake:x"

        def fingerprint(self):
            return "0" * 64

        def build(self):
            raise NotImplementedError

    register_scheme("fake", lambda body, params, ref: Fake())
    try:
        assert isinstance(resolve_design("fake:x"), Fake)
    finally:
        _SCHEMES.pop("fake", None)
