"""The oracle library: independent cross-checks run over generated cases.

Each oracle answers one question about a case and returns a list of
:class:`Violation` records (empty = clean). Three scopes exist:

``design``
    Runs against a :class:`~repro.verify.cases.DesignCase` through a
    shared :class:`CaseContext` that caches SART results per
    (engine, knobs) so five oracles don't pay for five solves.
``circuit``
    Runs against a :class:`~repro.verify.cases.CircuitSpec`:
    lane-for-lane bit-exact agreement between simulation backends.
``global``
    Design-independent statistical checks (the budgeted SFI-vs-
    analytical consistency check on tinycore); run once per verify
    invocation rather than once per case.

Every oracle reads its inputs through the context's seams, and the
defect registry (:mod:`repro.verify.defects`) can corrupt exactly one
seam at a time. That is what makes the harness *testable for
sensitivity*: ``tests/verify/test_mutation_kill.py`` proves each oracle
fails on its seeded defect, so a silent oracle is a real pass, not a
check that quietly stopped looking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.report import average_seq_avf
from repro.core.resolve import NodeAvf, ROLE_CTRL, ROLE_LOOP, ROLE_STRUCT
from repro.core.sart import SartConfig, SartResult, run_sart
from repro.verify.cases import (
    CircuitSpec,
    DesignCase,
    build_circuit,
    circuit_schedule,
)

SCOPE_DESIGN = "design"
SCOPE_CIRCUIT = "circuit"
SCOPE_GLOBAL = "global"


@dataclass(frozen=True)
class Violation:
    """One oracle failure on one case."""

    oracle: str
    case: str           # human-readable case description
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.oracle}] {self.case}: {self.message}"


class CaseContext:
    """Shared, memoized computation layer for design-case oracles.

    Oracles request SART results through :meth:`sart` instead of calling
    the engine directly. This (a) de-duplicates solves across oracles —
    the range, MIN-resolution, control-pin, and cross-engine checks all
    share the default compiled run — and (b) provides the seam the
    defect registry corrupts for mutation-kill testing: ``mutate`` sees
    every result on its way out, exactly as a buggy engine would present
    it.
    """

    def __init__(self, case: DesignCase,
                 mutate: Callable[[str, SartResult], SartResult] | None = None):
        self.case = case
        self.mutate = mutate
        self._cache: dict[tuple, SartResult] = {}

    def sart(self, *, engine: str = "compiled", loop_pavf: float | None = None,
             partition: bool = True) -> SartResult:
        loop = self.case.spec.loop_pavf if loop_pavf is None else loop_pavf
        key = (engine, loop, partition)
        found = self._cache.get(key)
        if found is None:
            config = SartConfig(engine=engine, loop_pavf=loop,
                                partition_by_fub=partition)
            found = run_sart(self.case.module, self.case.structures, config)
            if self.mutate is not None:
                found = self.mutate(engine, found)
            self._cache[key] = found
        return found


class Oracle:
    """Base class: a named check over one scope."""

    name: str = "oracle"
    scope: str = SCOPE_DESIGN

    def check(self, subject, ctx=None) -> list[Violation]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# design-scope oracles
# ----------------------------------------------------------------------

class RangeOracle(Oracle):
    """Every resolved AVF and both directional estimates lie in [0, 1]."""

    name = "range"

    def check(self, case: DesignCase, ctx: CaseContext) -> list[Violation]:
        result = ctx.sart()
        out = []
        for node in result.node_avfs.values():
            for label, value in (("avf", node.avf), ("forward", node.forward),
                                 ("backward", node.backward)):
                if not (0.0 <= value <= 1.0) or math.isnan(value):
                    out.append(Violation(
                        self.name, case.describe(),
                        f"{node.net}: {label}={value!r} outside [0, 1]"))
        return out


class MinResolutionOracle(Oracle):
    """Final AVF never exceeds either walk (Table 1: AVF = MIN(f, b)).

    Structure, loop, and control nodes are exempt: their AVF is the
    measured/injected value, not the MIN of the walks.
    """

    name = "min-resolution"
    _exempt = (ROLE_STRUCT, ROLE_LOOP, ROLE_CTRL)

    def check(self, case: DesignCase, ctx: CaseContext) -> list[Violation]:
        result = ctx.sart()
        out = []
        for node in result.node_avfs.values():
            if node.role in self._exempt:
                continue
            bound = min(node.forward, node.backward)
            if node.avf > bound + 1e-12:
                out.append(Violation(
                    self.name, case.describe(),
                    f"{node.net}: avf={node.avf:.12f} exceeds "
                    f"min(f={node.forward:.12f}, b={node.backward:.12f})"))
        return out


class CtrlPinnedOracle(Oracle):
    """Control-register nodes resolve to the injected pAVF_R (1.0)."""

    name = "ctrl-pinned"

    def check(self, case: DesignCase, ctx: CaseContext) -> list[Violation]:
        result = ctx.sart()
        out = []
        expected = result.config.ctrl_pavf
        for net in case.ctrl_names:
            node = result.node_avfs.get(net)
            if node is None:
                out.append(Violation(self.name, case.describe(),
                                     f"generated control register {net} "
                                     "missing from the node graph"))
                continue
            if node.role != ROLE_CTRL:
                out.append(Violation(
                    self.name, case.describe(),
                    f"{net}: classified as {node.role!r}, not a control "
                    "register (pattern matcher regressed?)"))
            elif abs(node.avf - expected) > 1e-12:
                out.append(Violation(
                    self.name, case.describe(),
                    f"{net}: control register avf={node.avf!r}, expected "
                    f"pinned pAVF_R={expected!r}"))
        return out


class CrossEngineOracle(Oracle):
    """Compiled and dataflow engines resolve identically (<= tol).

    Both the monolithic fixpoint and the partitioned relaxation paths
    are compared — they take different code routes through both engines.
    """

    name = "cross-engine"

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    def check(self, case: DesignCase, ctx: CaseContext) -> list[Violation]:
        out = []
        for partition in (False, True):
            compiled = ctx.sart(engine="compiled", partition=partition)
            dataflow = ctx.sart(engine="dataflow", partition=partition)
            mode = "partitioned" if partition else "monolithic"
            if set(compiled.node_avfs) != set(dataflow.node_avfs):
                out.append(Violation(
                    self.name, case.describe(),
                    f"{mode}: engines disagree on the node set"))
                continue
            worst = None
            for net, node in compiled.node_avfs.items():
                delta = abs(node.avf - dataflow.node_avfs[net].avf)
                if delta > self.tol and (worst is None or delta > worst[1]):
                    worst = (net, delta)
            if worst is not None:
                out.append(Violation(
                    self.name, case.describe(),
                    f"{mode}: compiled vs dataflow diverge at {worst[0]} "
                    f"by {worst[1]:.3e} (tol {self.tol:.0e})"))
        return out


class LoopMonotonicityOracle(Oracle):
    """Per-node AVF is monotone in the loop-boundary pAVF (Figure 8).

    Propagation sets are structural; the loop value only enters through
    the environment, and a capped sum is monotone in every term — so
    raising the injected loop pAVF may never lower any node's AVF.
    """

    name = "loop-monotonicity"

    def __init__(self, points: tuple[float, ...] = (0.1, 0.3, 0.6)):
        self.points = tuple(sorted(points))

    def check(self, case: DesignCase, ctx: CaseContext) -> list[Violation]:
        out = []
        prev_result = None
        prev_point = None
        for point in self.points:
            result = ctx.sart(loop_pavf=point)
            if prev_result is not None:
                for net, node in result.node_avfs.items():
                    if node.role == ROLE_STRUCT:
                        continue  # measured AVFs held fixed across points
                    before = prev_result.node_avfs[net].avf
                    if node.avf < before - 1e-9:
                        out.append(Violation(
                            self.name, case.describe(),
                            f"{net}: avf dropped {before:.9f} -> "
                            f"{node.avf:.9f} when loop pAVF rose "
                            f"{prev_point} -> {point}"))
                        break  # one witness per point pair is enough
                before_avg = average_seq_avf(prev_result.node_avfs)
                after_avg = average_seq_avf(result.node_avfs)
                if after_avg < before_avg - 1e-9:
                    out.append(Violation(
                        self.name, case.describe(),
                        f"average seq AVF dropped {before_avg:.9f} -> "
                        f"{after_avg:.9f} when loop pAVF rose "
                        f"{prev_point} -> {point}"))
            prev_result, prev_point = result, point
        return out


# ----------------------------------------------------------------------
# circuit-scope oracle
# ----------------------------------------------------------------------

class CrossBackendOracle(Oracle):
    """python and numpy simulator backends agree bit-for-bit.

    Runs the same circuit, stimulus, and fault schedule on both
    backends and compares every net (not just the outputs) each cycle,
    plus the full memory contents at the end. ``make_sim`` is the
    injectable seam: tests substitute a deliberately corrupted
    simulator factory to prove divergence is caught.
    """

    name = "cross-backend"
    scope = SCOPE_CIRCUIT

    def __init__(self, make_sim=None, reference_backend: str = "python",
                 subject_backend: str = "numpy"):
        from repro.rtlsim.backends import make_simulator

        self.make_sim = make_sim or make_simulator
        self.reference_backend = reference_backend
        self.subject_backend = subject_backend

    def available(self) -> bool:
        from repro.rtlsim.backends import available_backends

        have = available_backends()
        return (self.reference_backend in have
                and self.subject_backend in have)

    def check(self, spec: CircuitSpec, ctx=None) -> list[Violation]:
        module = build_circuit(spec)
        stimulus, faults = circuit_schedule(spec, module)
        ref = self.make_sim(module, lanes=spec.lanes,
                            backend=self.reference_backend)
        sub = self.make_sim(module, lanes=spec.lanes,
                            backend=self.subject_backend)
        case = f"circuit({spec.to_json()})"
        nets = sorted(module.nets)
        by_cycle: dict[int, list[tuple[str, int]]] = {}
        for cycle, net, mask in faults:
            by_cycle.setdefault(cycle, []).append((net, mask))
        for cycle, frame in enumerate(stimulus):
            for sim in (ref, sub):
                for net, bit in frame.items():
                    sim.poke_all_lanes(net, bit)
            for net in nets:
                r, s = ref.peek(net), sub.peek(net)
                if r != s:
                    return [Violation(
                        self.name, case,
                        f"cycle {cycle}: {net} differs "
                        f"({self.reference_backend}={r:#x}, "
                        f"{self.subject_backend}={s:#x})")]
            for net, mask in by_cycle.get(cycle, ()):
                ref.flip(net, mask)
                sub.flip(net, mask)
            ref.step()
            sub.step()
        for mem_name, ref_mem in ref.mems.items():
            sub_mem = sub.mems[mem_name]
            for lane in range(spec.lanes):
                for addr in range(ref_mem.depth):
                    r = ref_mem.lane_word(lane, addr)
                    s = sub_mem.lane_word(lane, addr)
                    if r != s:
                        return [Violation(
                            self.name, case,
                            f"final mem {mem_name}[{addr}] lane {lane} "
                            f"differs ({r:#x} vs {s:#x})")]
        return []


# ----------------------------------------------------------------------
# global-scope oracle
# ----------------------------------------------------------------------

class SfiConsistencyOracle(Oracle):
    """Budgeted statistical consistency: analytical SART vs SFI ground
    truth on tinycore.

    The paper's conservatism contract: the analytical estimate tracks
    but does not *undershoot* measurement. We inject ``injections``
    faults uniformly into tinycore's sequential nodes, form the SFI SDC
    AVF with its Wilson interval, and predict the same quantity from
    SART as the mean sequential AVF over the injectable nodes. The check
    fails when the analytical prediction drops below the interval's
    lower bound minus ``slack`` (model optimistic: the paper's Figure 10
    contract is broken) or exceeds 1.0 trivially capped territory.

    ``analytic`` and ``measure`` are injectable seams for mutation-kill
    tests (a corrupted analytic model must be caught).
    """

    name = "sfi-consistency"
    scope = SCOPE_GLOBAL

    def __init__(self, program: str = "fib", injections: int = 192,
                 slack: float = 0.05, seed: int = 7,
                 analytic: Callable[..., float] | None = None,
                 measure: Callable[..., tuple[float, float, float]] | None = None):
        self.program = program
        self.injections = injections
        self.slack = slack
        self.seed = seed
        self._analytic = analytic
        self._measure = measure

    def check(self, subject=None, ctx=None) -> list[Violation]:
        predicted = (self._analytic or self._default_analytic)(self.program)
        avf, lo, hi = (self._measure or self._default_measure)(
            self.program, self.injections, self.seed)
        case = (f"tinycore:{self.program} x{self.injections} "
                f"(seed {self.seed})")
        if predicted < lo - self.slack:
            return [Violation(
                self.name, case,
                f"analytical sequential AVF {predicted:.3f} undershoots "
                f"the SFI interval [{lo:.3f}, {hi:.3f}] (measured "
                f"{avf:.3f}) by more than slack={self.slack}")]
        return []

    def _default_analytic(self, program: str) -> float:
        from repro.designs.tinycore.archsim import tinycore_structure_ports
        from repro.designs.tinycore.core import build_tinycore
        from repro.designs.tinycore.harness import run_gate_level
        from repro.designs.tinycore.programs import default_dmem, program as prog
        from repro.ser.correlation import TINYCORE_LOOP_PAVF

        words, dmem = prog(program), default_dmem(program)
        netlist = build_tinycore(words, dmem)
        golden = run_gate_level(words, dmem, netlist=netlist)
        ports, _trace, _sim = tinycore_structure_ports(
            program, words, dmem, gate_cycles=golden.cycles)
        result = run_sart(netlist.module, ports,
                          SartConfig(loop_pavf=TINYCORE_LOOP_PAVF))
        return average_seq_avf(result.node_avfs)

    def _default_measure(self, program: str, injections: int,
                         seed: int) -> tuple[float, float, float]:
        from repro.designs.tinycore.core import build_tinycore
        from repro.designs.tinycore.programs import default_dmem, program as prog
        from repro.designs.tinycore.harness import run_gate_level
        from repro.core.resolve import ROLE_STRUCT as _RS  # noqa: F401
        from repro.sfi import overall_avf, plan_campaign, run_sfi_campaign

        words, dmem = prog(program), default_dmem(program)
        netlist = build_tinycore(words, dmem)
        golden = run_gate_level(words, dmem, netlist=netlist)
        seq_nets = sorted(
            inst.conn["q"] for inst in netlist.module.instances.values()
            if inst.kind == "DFF" and "struct" not in inst.attrs
        )
        plans = plan_campaign(seq_nets, golden.cycles, injections, seed=seed)
        campaign = run_sfi_campaign(words, dmem, plans, netlist=netlist)
        avf, (lo, hi) = overall_avf(campaign.outcomes)
        return avf, lo, hi


class DeadlineSanityOracle(Oracle):
    """Structural sanity of the error-reporting deadline distributions.

    Runs the ACE lifetime analysis on a tinycore program and checks
    every per-structure deadline summary for the invariants the
    accumulator guarantees by construction:

    * quantile monotonicity — ``p50 <= p95 <= max`` and ``mean <= max``;
    * bounded support — no deadline can exceed the traced campaign
      window (``max <= cycles``);
    * mass conservation — the histogram's total cycle mass equals the
      structure's ACE bit-cycles exactly: every ACE cycle belongs to
      exactly one consumed segment, so a histogram that gained or lost
      a bin weight no longer sums to the ACE total.

    ``analysis`` is the injectable seam (program -> per-structure
    summaries); ``corrupt`` post-processes its output the way the
    seeded defect does, proving the conservation check actually reads
    the histogram mass.
    """

    name = "deadline-sanity"
    scope = SCOPE_GLOBAL

    def __init__(self, program: str = "fib",
                 analysis: Callable[[str], Mapping[str, Mapping]] | None = None,
                 corrupt: Callable[[Mapping], Mapping] | None = None):
        self.program = program
        self._analysis = analysis
        self._corrupt = corrupt

    def check(self, subject=None, ctx=None) -> list[Violation]:
        summaries = (self._analysis or self._default_analysis)(self.program)
        if self._corrupt is not None:
            summaries = self._corrupt(summaries)
        case = f"tinycore:{self.program} deadlines"
        out: list[Violation] = []
        for name in sorted(summaries):
            s = summaries[name]
            events = int(s.get("events", 0))
            p50, p95 = int(s.get("p50", 0)), int(s.get("p95", 0))
            peak, mean = int(s.get("max", 0)), float(s.get("mean", 0.0))
            cycles = int(s.get("cycles", 0))
            mass = float(s.get("mass_cycles", 0.0))
            ace = float(s.get("ace_bit_cycles", 0.0))
            if not (p50 <= p95 <= peak):
                out.append(Violation(
                    self.name, case,
                    f"{name}: quantiles not monotone "
                    f"(p50={p50}, p95={p95}, max={peak})"))
            if events and mean > peak + 1e-9:
                out.append(Violation(
                    self.name, case,
                    f"{name}: mean {mean:.3f} exceeds max {peak}"))
            if peak > cycles:
                out.append(Violation(
                    self.name, case,
                    f"{name}: max deadline {peak} exceeds the "
                    f"{cycles}-cycle campaign window"))
            if abs(mass - ace) > 1e-6 * max(1.0, ace):
                out.append(Violation(
                    self.name, case,
                    f"{name}: histogram mass {mass:.6f} != ACE "
                    f"bit-cycles {ace:.6f} (conservation broken)"))
        return out

    def _default_analysis(self, program: str) -> Mapping[str, Mapping]:
        from repro.designs.tinycore.archsim import tinycore_structure_ports
        from repro.designs.tinycore.core import build_tinycore
        from repro.designs.tinycore.harness import run_gate_level
        from repro.designs.tinycore.programs import default_dmem, program as prog

        words, dmem = prog(program), default_dmem(program)
        netlist = build_tinycore(words, dmem)
        golden = run_gate_level(words, dmem, netlist=netlist)
        ports, _trace, _sim = tinycore_structure_ports(
            program, words, dmem, gate_cycles=golden.cycles)
        return {
            name: port.deadlines
            for name, port in ports.items()
            if getattr(port, "deadlines", None)
        }


class DeratedSerOracle(Oracle):
    """Budgeted statistical consistency: logic-derated SER vs the beam.

    The derating companion of :class:`SfiConsistencyOracle`: the
    logic-derated model rate (per-flop ``AVF x intrinsic x derating``
    plus undarated array bits) must land inside the simulated beam
    test's Poisson interval, widened by a fractional ``slack`` on both
    sides. Derating removes the combinational-masking conservatism the
    architectural model carries, so unlike the SFI check this one is
    two-sided: a rate *below* the widened interval means the masking
    model derates too aggressively, *above* means it stopped derating.

    ``derated`` and ``measure`` are injectable seams for mutation-kill
    tests.
    """

    name = "derated-ser"
    scope = SCOPE_GLOBAL

    def __init__(self, program: str = "fib", exposures: int = 252,
                 slack: float = 0.25, seed: int = 2024,
                 derated: Callable[[str], float] | None = None,
                 measure: Callable[..., tuple[float, float, float]] | None = None):
        self.program = program
        self.exposures = exposures
        self.slack = slack
        self.seed = seed
        self._derated = derated
        self._measure = measure

    def check(self, subject=None, ctx=None) -> list[Violation]:
        predicted = (self._derated or self._default_derated)(self.program)
        rate, lo, hi = (self._measure or self._default_measure)(
            self.program, self.exposures, self.seed)
        case = (f"tinycore:{self.program} x{self.exposures} exposures "
                f"(seed {self.seed})")
        floor, ceiling = lo * (1.0 - self.slack), hi * (1.0 + self.slack)
        if not (floor <= predicted <= ceiling):
            return [Violation(
                self.name, case,
                f"derated SER {predicted:.3e}/cycle outside the widened "
                f"beam interval [{floor:.3e}, {ceiling:.3e}] (measured "
                f"{rate:.3e} in [{lo:.3e}, {hi:.3e}], slack "
                f"{self.slack:.0%})")]
        return []

    def _default_derated(self, program: str) -> float:
        from repro.designs.tinycore.archsim import tinycore_structure_ports
        from repro.designs.tinycore.core import build_tinycore
        from repro.designs.tinycore.harness import run_gate_level
        from repro.designs.tinycore.programs import default_dmem, program as prog
        from repro.ser.beam import BeamConfig
        from repro.ser.correlation import TINYCORE_LOOP_PAVF, derated_rate

        words, dmem = prog(program), default_dmem(program)
        netlist = build_tinycore(words, dmem)
        golden = run_gate_level(words, dmem, netlist=netlist)
        ports, _trace, _sim = tinycore_structure_ports(
            program, words, dmem, gate_cycles=golden.cycles)
        result = run_sart(netlist.module, ports,
                          SartConfig(loop_pavf=TINYCORE_LOOP_PAVF))
        config = BeamConfig()
        rate, _derating = derated_rate(
            result, flux=config.flux, include_arrays=config.include_arrays)
        return rate

    def _default_measure(self, program: str, exposures: int,
                         seed: int) -> tuple[float, float, float]:
        from repro.designs.tinycore.programs import default_dmem, program as prog
        from repro.ser.beam import BeamConfig, run_beam_test

        words, dmem = prog(program), default_dmem(program)
        result = run_beam_test(
            words, dmem, BeamConfig(exposures=exposures, seed=seed))
        lo, hi = result.rate_interval()
        return result.sdc_rate_per_cycle, lo, hi


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def default_oracles() -> list[Oracle]:
    """The shipped oracle library, in execution order."""
    return [
        RangeOracle(),
        MinResolutionOracle(),
        CtrlPinnedOracle(),
        CrossEngineOracle(),
        LoopMonotonicityOracle(),
        CrossBackendOracle(),
        SfiConsistencyOracle(),
        DeadlineSanityOracle(),
        DeratedSerOracle(),
    ]


def oracles_by_name(oracles: list[Oracle] | None = None) -> Mapping[str, Oracle]:
    return {o.name: o for o in (oracles or default_oracles())}
