"""Machine-level driver: run one workload through the ACE-instrumented
pipeline and collect results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ace.lifetime import AceLifetimeAnalyzer, StructureAvf
from repro.perfmodel.pipeline import Pipeline, PipelineConfig, PipelineStats
from repro.perfmodel.trace import Trace, mark_ace

# Re-exported alias: the machine configuration IS the pipeline configuration.
MachineConfig = PipelineConfig


@dataclass
class PerfResult:
    """Outcome of one ACE-instrumented performance-model run."""

    workload: str
    stats: PipelineStats
    structures: dict[str, StructureAvf]
    analyzer: AceLifetimeAnalyzer
    occupancy: dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def run_workload(
    trace: Trace, config: MachineConfig | None = None, *, auto_mark: bool = True
) -> PerfResult:
    """Simulate *trace* with ACE instrumentation attached.

    The trace is ACE-marked in place when needed (``auto_mark``). Returns
    structure AVFs (Eq 3) and the event counters that
    :func:`repro.ace.portavf.ports_from_analysis` turns into pAVFs.
    """
    config = config or MachineConfig()
    if auto_mark and any(inst.ace is None for inst in trace.insts):
        mark_ace(trace)
    analyzer = AceLifetimeAnalyzer()
    pipeline = Pipeline(trace, config, recorder=analyzer)
    for structure in pipeline.structures:
        analyzer.register(
            structure.name,
            structure.entries,
            structure.bits_per_entry,
            nread=structure.nread,
            nwrite=structure.nwrite,
        )
    stats = pipeline.run()
    structures = analyzer.finish(stats.cycles)
    occupancy = {s.name: s.mean_occupancy() for s in pipeline.structures}
    return PerfResult(
        workload=trace.name,
        stats=stats,
        structures=structures,
        analyzer=analyzer,
        occupancy=occupancy,
    )
