"""Golden corpus: content addressing, staleness detection, blessing."""

from __future__ import annotations

import json

from repro.verify.cases import CaseSpec
from repro.verify.corpus import (
    CORPUS_VERSION,
    check_corpus,
    load_entries,
    make_entry,
    spec_fingerprint,
    update_corpus,
    write_entry,
)

SPEC = CaseSpec(seed=77, n_fubs=2, flops_per_fub=5, struct_width=1,
                fsm_loops=1, stall_loops=0, pointer_loops=0,
                ctrl_regs=1, env_seed=3)


def test_shipped_corpus_is_green():
    violations, checked = check_corpus()
    assert checked >= 5
    assert violations == []


def test_entry_roundtrip(tmp_path):
    entry = make_entry("tiny", SPEC)
    write_entry(tmp_path, entry)
    violations, checked = check_corpus(tmp_path)
    assert checked == 1
    assert violations == []


def test_fingerprint_tracks_spec_not_expectations():
    entry = make_entry("tiny", SPEC)
    assert entry["fingerprint"] == spec_fingerprint(SPEC)
    other = make_entry("tiny", CaseSpec(seed=78))
    assert other["fingerprint"] != entry["fingerprint"]


def test_hand_edited_spec_flagged_stale(tmp_path):
    entry = make_entry("tiny", SPEC)
    entry["spec"]["flops_per_fub"] = 6  # edit without re-blessing
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations and "stale fingerprint" in violations[0].message


def test_version_mismatch_flagged(tmp_path):
    entry = make_entry("tiny", SPEC)
    entry["corpus_version"] = CORPUS_VERSION + 1
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations and "corpus_version" in violations[0].message


def test_previous_format_version_flagged_stale(tmp_path):
    # A golden blessed before avg_logic_derating existed (version 1)
    # must be rejected as stale, not silently compared field-by-field.
    entry = make_entry("tiny", SPEC)
    entry["corpus_version"] = 1
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations and "--update-goldens" in violations[0].message


def test_goldens_carry_logic_derating():
    for entry in load_entries():
        derating = entry["expected"]["avg_logic_derating"]
        assert 0.0 < derating <= 1.0, entry["name"]


def test_drifted_derating_flagged(tmp_path):
    entry = make_entry("tiny", SPEC)
    entry["expected"]["avg_logic_derating"] += 0.01
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations and "avg_logic_derating" in violations[0].message


def test_drifted_value_flagged_with_update_hint(tmp_path):
    entry = make_entry("tiny", SPEC)
    entry["expected"]["weighted_seq_avf"] += 0.01
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations
    assert "--update-goldens" in violations[0].message


def test_tolerance_is_honored(tmp_path):
    entry = make_entry("tiny", SPEC, tolerance=0.5)
    entry["expected"]["weighted_seq_avf"] += 0.01
    write_entry(tmp_path, entry)
    violations, _ = check_corpus(tmp_path)
    assert violations == []


def test_update_corpus_rebenches_existing_entries(tmp_path):
    entry = make_entry("tiny", SPEC)
    entry["expected"]["weighted_seq_avf"] += 0.2  # drift
    write_entry(tmp_path, entry)
    assert check_corpus(tmp_path)[0]  # red before blessing
    paths = update_corpus(tmp_path)
    assert [p.name for p in paths] == ["tiny.json"]
    assert check_corpus(tmp_path)[0] == []  # green after


def test_update_corpus_seeds_default_set_when_empty(tmp_path):
    paths = update_corpus(tmp_path)
    assert len(paths) >= 5
    assert check_corpus(tmp_path)[0] == []


def test_missing_directory_is_empty_not_error(tmp_path):
    violations, checked = check_corpus(tmp_path / "nope")
    assert (violations, checked) == ([], 0)
    assert load_entries(tmp_path / "nope") == []


def test_entries_are_stable_json(tmp_path):
    path = write_entry(tmp_path, make_entry("tiny", SPEC))
    first = path.read_text()
    write_entry(tmp_path, make_entry("tiny", SPEC))
    assert path.read_text() == first
    json.loads(first)  # valid JSON
