"""The paper's primary contribution: sequential AVF via pAVF propagation.

Pipeline (paper Section 5, "Implementation and Tool Flow"):

1. ACE analysis on a performance model produces per-structure *port AVFs*
   (:mod:`repro.ace.portavf`).
2. The RTL is compiled/flattened and its node graph extracted
   (:mod:`repro.netlist`).
3. Structure bits are mapped onto RTL bits (instance attributes or an
   explicit binding, :mod:`repro.core.graphmodel`).
4. SART — the Sequential AVF Resolution Tool — walks pAVF values through
   the node graph: forward from read ports, backward from write ports,
   with loop breaking, control-register injection and per-FUB relaxation
   (:mod:`repro.core.sart`).
5. Every node is annotated with ``AVF = MIN(forward, backward)``
   (:mod:`repro.core.resolve`), and per-FUB reports are produced
   (:mod:`repro.core.report`).
"""

from repro.core.pavf import TOP, Atom, PavfEnv, union, value_of
from repro.core.graphmodel import AvfModel, StructurePorts, build_model
from repro.core.sart import SartConfig, SartResult, run_sart
from repro.core.report import FubReport, fub_report
from repro.core.symbolic import ClosedForm
from repro.core.loopchar import characterize_loops, tinycore_loop_rates
from repro.core.export import (
    closed_form_text,
    fub_report_csv,
    node_avfs_csv,
    summary_json,
    worst_nodes,
)

__all__ = [
    "Atom",
    "characterize_loops",
    "closed_form_text",
    "fub_report_csv",
    "node_avfs_csv",
    "summary_json",
    "tinycore_loop_rates",
    "worst_nodes",
    "AvfModel",
    "ClosedForm",
    "FubReport",
    "PavfEnv",
    "SartConfig",
    "SartResult",
    "StructurePorts",
    "TOP",
    "build_model",
    "fub_report",
    "run_sart",
    "union",
    "value_of",
]
