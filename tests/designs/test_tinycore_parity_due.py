"""The parity-protected tinycore variant and DUE classification."""

import pytest

from repro.designs.tinycore.archsim import run_program
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import all_programs, default_dmem, program
from repro.rtlsim.simulator import Simulator
from repro.ser.beam import BeamConfig, run_beam_test
from repro.sfi import plan_campaign, run_sfi_campaign

pytestmark = pytest.mark.slow  # full beam campaigns on both core variants


@pytest.fixture(scope="module")
def parity_core():
    words, dmem = program("lattice2d"), default_dmem("lattice2d")
    return words, dmem, build_tinycore(words, dmem, parity=True)


class TestParityCore:
    @pytest.mark.parametrize("name", [n for n, _, _ in all_programs()])
    def test_architecturally_transparent(self, name):
        # Parity must not change what the program computes.
        words, dmem = program(name), default_dmem(name)
        netlist = build_tinycore(words, dmem, parity=True)
        gate = run_gate_level(words, dmem, netlist=netlist)
        arch = run_program(words, dmem)
        assert gate.outputs[0] == [v for _, v in arch.outputs]
        assert gate.sim.peek_lane("due_o", 0) == 0  # no false positives

    def test_rf_strike_detected(self, parity_core):
        words, dmem, netlist = parity_core
        sim = Simulator(netlist.module, lanes=2)

        def strike(s, cycle):
            if cycle == 30:
                s.mems["u_rf"].flip_bit(1, 1, 9)

        run = run_gate_level(words, dmem, netlist=netlist, sim=sim, on_cycle=strike)
        assert run.sim.peek_lane("due_o", 0) == 0
        assert run.sim.peek_lane("due_o", 1) == 1

    def test_parity_bit_strike_also_detected(self, parity_core):
        words, dmem, netlist = parity_core
        sim = Simulator(netlist.module, lanes=2)

        def strike(s, cycle):
            if cycle == 30:
                s.mems["u_rf"].flip_bit(1, 2, 16)  # the parity bit itself

        run = run_gate_level(words, dmem, netlist=netlist, sim=sim, on_cycle=strike)
        assert run.sim.peek_lane("due_o", 1) == 1

    def test_dmem_strike_detected_on_load(self, parity_core):
        words, dmem, netlist = parity_core
        sim = Simulator(netlist.module, lanes=2)

        def strike(s, cycle):
            if cycle == 5:
                s.mems["u_dmem"].flip_bit(1, 3, 4)  # pos[3], read by the loop

        run = run_gate_level(words, dmem, netlist=netlist, sim=sim, on_cycle=strike)
        assert run.sim.peek_lane("due_o", 1) == 1

    def test_unprotected_core_has_no_due_output(self):
        netlist = build_tinycore(program("fib"))
        assert netlist.due is None
        assert "due_o" not in netlist.module.ports


class TestSfiDue:
    def test_flop_faults_mostly_not_due(self, parity_core):
        # Parity protects the arrays, not the pipeline flops: injecting
        # into flops must classify mostly as SDC/masked, rarely DUE
        # (a corrupted value can be *stored* and later detected... no:
        # stores write fresh parity, so flop faults stay undetected).
        from repro.netlist.graph import extract_graph

        words, dmem, netlist = parity_core
        golden = run_gate_level(words, dmem, netlist=netlist)
        seqs = extract_graph(netlist.module).seq_nets()
        plans = plan_campaign(seqs, golden.cycles - 2, 126, seed=9)
        res = run_sfi_campaign(words, dmem, plans, netlist=netlist)
        counts = res.counts()
        assert counts["sdc"] > 0
        assert counts["due"] <= counts["sdc"]
        assert res.due_avf() == pytest.approx(counts["due"] / 126)

    def test_counts_include_due_key(self, parity_core):
        words, dmem, netlist = parity_core
        golden = run_gate_level(words, dmem, netlist=netlist)
        plans = plan_campaign([netlist.pc[0]], golden.cycles // 2, 5, seed=2)
        res = run_sfi_campaign(words, dmem, plans, netlist=netlist)
        assert "due" in res.counts()


class TestBeamDue:
    def test_protection_converts_sdc_to_due(self):
        words, dmem = program("lattice2d"), default_dmem("lattice2d")
        base = BeamConfig(flux=2e-5, exposures=126, seed=4, include_arrays=True)
        plain = run_beam_test(words, dmem, base)
        prot = run_beam_test(
            words, dmem,
            BeamConfig(flux=2e-5, exposures=126, seed=4,
                       include_arrays=True, parity=True),
        )
        assert plain.due_events == 0
        assert prot.due_events > 0
        assert prot.sdc_events < plain.sdc_events
        assert prot.due_rate_per_cycle > 0
