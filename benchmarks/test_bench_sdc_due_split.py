"""Extension bench — the SDC/DUE split (paper Sections 1 and 3.1).

"In a typical modern microprocessor from Intel, about half of the
processor's total SDC SER comes from sequentials. In addition, as more
and more register files and arrays are protected by techniques such as
parity and ECC, the relative SDC SER contribution of sequentials will
continue to increase even as the absolute SDC SER of the entire part
decreases."

We measure exactly that mechanism on tinycore: under the same beam, the
parity-protected variant converts array strikes from silent corruption
into detected errors, the absolute SDC rate drops, and the share of the
remaining SDC attributable to sequentials rises toward 100 %.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.designs.tinycore.programs import default_dmem, program
from repro.ser.beam import BeamConfig, run_beam_test

WORKLOAD = "lattice2d"


def test_bench_sdc_due_split(benchmark):
    words, dmem = program(WORKLOAD), default_dmem(WORKLOAD)

    def run_pair():
        plain = run_beam_test(words, dmem, BeamConfig(
            flux=2e-5, exposures=189, seed=4, include_arrays=True))
        protected = run_beam_test(words, dmem, BeamConfig(
            flux=2e-5, exposures=189, seed=4, include_arrays=True, parity=True))
        flops_only = run_beam_test(words, dmem, BeamConfig(
            flux=2e-5, exposures=189, seed=4, include_arrays=False))
        return plain, protected, flops_only

    plain, protected, flops_only = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = [
        ["arrays unprotected", plain.sdc_events, plain.due_events, plain.strikes],
        ["arrays parity-protected", protected.sdc_events, protected.due_events,
         protected.strikes],
        ["flop strikes only (reference)", flops_only.sdc_events,
         flops_only.due_events, flops_only.strikes],
    ]
    print_table(
        f"SDC vs DUE under the beam ({WORKLOAD}, arrays included)",
        ["configuration", "SDC events", "DUE events", "strikes"],
        rows,
    )
    conv = protected.due_events / max(1, protected.due_events + protected.sdc_events)
    print(f"protection converts {conv:.0%} of faulted exposures to detected "
          f"errors; residual SDC approaches the sequential-only rate "
          f"({protected.sdc_events} vs {flops_only.sdc_events}) — the paper's "
          f"'sequentials dominate the remaining SDC' mechanism")

    # Claims: detection fires only in the protected variant; absolute SDC
    # drops; remaining SDC is in the same regime as flop-only strikes.
    assert plain.due_events == 0
    assert protected.due_events > protected.sdc_events
    assert protected.sdc_events < plain.sdc_events * 0.5
    assert protected.sdc_events <= flops_only.sdc_events * 1.5
