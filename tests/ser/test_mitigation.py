"""Mitigation-selection tests (the paper's motivating application)."""

import pytest

from repro.core.graphmodel import StructurePorts
from repro.core.sart import SartConfig, run_sart
from repro.errors import ReproError
from repro.netlist.builder import ModuleBuilder
from repro.ser.mitigation import (
    BISER,
    SEUT,
    HardeningOption,
    candidate_flops,
    compare_selections,
    select_cells,
)


@pytest.fixture(scope="module")
def result():
    """A design with a wide AVF spread: hot path at 0.8, cold at 0.05."""
    b = ModuleBuilder("mix")
    tie = b.input("tie_in")
    hot_src = b.dff(tie, name="hs", attrs={"struct": "H", "bit": "0"})
    cold_src = b.dff(tie, name="cs", attrs={"struct": "C", "bit": "0"})
    cur = hot_src
    for i in range(5):
        cur = b.dff(cur, name=f"hot{i}")
    b.dff(cur, name="hk", attrs={"struct": "HK", "bit": "0"})
    cur = cold_src
    for i in range(15):
        cur = b.dff(cur, name=f"cold{i}")
    b.dff(cur, name="ck", attrs={"struct": "CK", "bit": "0"})
    structs = {
        "H": StructurePorts("H", pavf_r=0.8, pavf_w=0.0, avf=0.8),
        "C": StructurePorts("C", pavf_r=0.05, pavf_w=0.0, avf=0.05),
        "HK": StructurePorts("HK", pavf_r=0.0, pavf_w=1.0, avf=0.8),
        "CK": StructurePorts("CK", pavf_r=0.0, pavf_w=1.0, avf=0.05),
    }
    return run_sart(b.done(), structs, SartConfig(partition_by_fub=False))


def test_candidates_exclude_structures(result):
    flops = candidate_flops(result)
    assert len(flops) == 20  # 5 hot + 15 cold; struct bits excluded
    assert all(n.role != "struct" for n in flops)


def test_greedy_picks_hot_path_first(result):
    plan = select_cells(result, target_reduction=0.5, option=SEUT)
    assert plan.met_target
    # The greedy order exhausts hot flops before touching any cold one,
    # and stops as soon as the target falls (4 hot cells suffice here).
    assert all(n.avf > 0.5 for n in plan.selected)
    assert len(plan.selected) <= 5
    assert plan.reduction >= 0.5
    assert plan.total_cost == pytest.approx(len(plan.selected) * SEUT.area_cost)


def test_stronger_option_needs_fewer_cells(result):
    weak = select_cells(result, target_reduction=0.6,
                        option=HardeningOption("weak", residual=0.3))
    strong = select_cells(result, target_reduction=0.6, option=BISER)
    assert len(strong.selected) <= len(weak.selected)


def test_infeasible_target_raises(result):
    with pytest.raises(ReproError, match="unreachable"):
        select_cells(result, target_reduction=0.99,
                     option=HardeningOption("weak", residual=0.6))
    with pytest.raises(ReproError, match="unreachable"):
        select_cells(result, target_reduction=0.8, option=SEUT, max_cells=2)


def test_target_validation(result):
    with pytest.raises(ReproError):
        select_cells(result, target_reduction=0.0)
    with pytest.raises(ReproError):
        select_cells(result, target_reduction=1.0)


def test_option_validation():
    with pytest.raises(ReproError):
        HardeningOption("bad", residual=1.0)
    with pytest.raises(ReproError):
        HardeningOption("bad", residual=0.1, area_cost=0)


def test_sart_beats_flat_proxy(result):
    # The whole point: per-node AVFs concentrate hardening on the few
    # flops that matter; a flat proxy must harden proportionally many.
    plan, proxy_cells = compare_selections(
        result, flat_avf=0.8, target_reduction=0.5, option=SEUT
    )
    assert len(plan.selected) < proxy_cells
