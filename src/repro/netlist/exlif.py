"""EXLIF: the textual netlist interchange format.

The paper's flow compiles RTL into "intermediate-format RTL files (called
EXLIF files)". We define a BLIF-inspired line format that round-trips the
:class:`~repro.netlist.netlist.Module` model:

.. code-block:: text

    # comment
    .model ieu
    .inputs a[0] a[1]
    .outputs y[0]
    .gate AND g1 a0=a[0] a1=a[1] y=n$1 @fub=IEU
    .latch q1 d=n$1 q=y[0] en=stall init=0 @struct=rob @bit=3
    .mem rf depth=8 width=16 nread=2 wen=we waddr_0=wa0 ... init=0,0,...
    .subckt adder u_add a=x[0] b=y[0] s=s[0]
    .end

* Tokens never contain whitespace; ``pin=net`` binds pins, ``@key=value``
  sets instance attributes, ``key=value`` before ``@`` tokens are pins or
  parameters depending on the directive.
* A file may contain several ``.model`` blocks; :func:`parse_exlif`
  returns them in file order as a name->Module dict.
"""

from __future__ import annotations

import io

from repro.errors import ExlifParseError
from repro.netlist.cells import CELLS
from repro.netlist.netlist import INPUT, OUTPUT, Instance, Module

_FORMAT_VERSION = "exlif-1"


def write_exlif(modules: Module | dict[str, Module] | list[Module]) -> str:
    """Serialize one or more modules to EXLIF text."""
    if isinstance(modules, Module):
        modules = [modules]
    elif isinstance(modules, dict):
        modules = list(modules.values())
    out = io.StringIO()
    out.write(f"# {_FORMAT_VERSION}\n")
    for module in modules:
        _write_module(out, module)
    return out.getvalue()


def _write_module(out: io.StringIO, module: Module) -> None:
    out.write(f".model {module.name}\n")
    inputs = module.input_ports()
    outputs = module.output_ports()
    if inputs:
        out.write(".inputs " + " ".join(inputs) + "\n")
    if outputs:
        out.write(".outputs " + " ".join(outputs) + "\n")
    for inst in module.instances.values():
        attrs = "".join(f" @{k}={v}" for k, v in sorted(inst.attrs.items()))
        if inst.kind == "DFF":
            fields = [f"d={inst.conn['d']}", f"q={inst.conn['q']}"]
            if "en" in inst.conn:
                fields.append(f"en={inst.conn['en']}")
            fields.append(f"init={inst.params.get('init', 0)}")
            out.write(f".latch {inst.name} " + " ".join(fields) + attrs + "\n")
        elif inst.kind == "MEM":
            fields = [
                f"depth={inst.params['depth']}",
                f"width={inst.params['width']}",
                f"nread={inst.params.get('nread', 1)}",
            ]
            fields += [f"{pin}={net}" for pin, net in sorted(inst.conn.items())]
            if "init" in inst.params:
                fields.append("init=" + ",".join(str(v) for v in inst.params["init"]))
            out.write(f".mem {inst.name} " + " ".join(fields) + attrs + "\n")
        elif inst.kind in CELLS:
            fields = [f"{pin}={net}" for pin, net in sorted(inst.conn.items())]
            out.write(f".gate {inst.kind} {inst.name} " + " ".join(fields) + attrs + "\n")
        else:
            fields = [f"{pin}={net}" for pin, net in sorted(inst.conn.items())]
            out.write(f".subckt {inst.kind} {inst.name} " + " ".join(fields) + attrs + "\n")
    out.write(".end\n")


def parse_exlif(text: str) -> dict[str, Module]:
    """Parse EXLIF text into name -> :class:`Module` (file order preserved)."""
    modules: dict[str, Module] = {}
    current: Module | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if current is not None:
                raise ExlifParseError("nested .model (missing .end?)", lineno)
            if len(tokens) != 2:
                raise ExlifParseError(".model needs exactly one name", lineno)
            if tokens[1] in modules:
                raise ExlifParseError(f"duplicate module {tokens[1]!r}", lineno)
            current = Module(tokens[1])
            continue
        if current is None:
            raise ExlifParseError(f"directive {directive!r} outside .model", lineno)
        if directive == ".end":
            modules[current.name] = current
            current = None
        elif directive == ".inputs":
            for name in tokens[1:]:
                current.add_port(name, INPUT)
        elif directive == ".outputs":
            for name in tokens[1:]:
                current.add_port(name, OUTPUT)
        elif directive == ".gate":
            _parse_gate(current, tokens, lineno)
        elif directive == ".latch":
            _parse_latch(current, tokens, lineno)
        elif directive == ".mem":
            _parse_mem(current, tokens, lineno)
        elif directive == ".subckt":
            _parse_subckt(current, tokens, lineno)
        else:
            raise ExlifParseError(f"unknown directive {directive!r}", lineno)
    if current is not None:
        raise ExlifParseError(f"module {current.name!r} not terminated by .end")
    return modules


def _split_fields(tokens: list[str], lineno: int) -> tuple[dict[str, str], dict[str, str]]:
    """Split remaining tokens into ``pin=net`` fields and ``@key=value`` attrs."""
    fields: dict[str, str] = {}
    attrs: dict[str, str] = {}
    for token in tokens:
        target = attrs if token.startswith("@") else fields
        body = token[1:] if token.startswith("@") else token
        if "=" not in body:
            raise ExlifParseError(f"malformed field {token!r}", lineno)
        key, value = body.split("=", 1)
        if key in target:
            raise ExlifParseError(f"duplicate field {key!r}", lineno)
        target[key] = value
    return fields, attrs


def _parse_gate(module: Module, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 4:
        raise ExlifParseError(".gate needs KIND NAME and pins", lineno)
    kind, name = tokens[1], tokens[2]
    if kind not in CELLS or CELLS[kind].is_sequential:
        raise ExlifParseError(f"unknown combinational cell {kind!r}", lineno)
    conn, attrs = _split_fields(tokens[3:], lineno)
    module.add_instance(Instance(name, kind, conn, attrs=attrs))


def _parse_latch(module: Module, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 3:
        raise ExlifParseError(".latch needs NAME and pins", lineno)
    name = tokens[1]
    fields, attrs = _split_fields(tokens[2:], lineno)
    init = int(fields.pop("init", "0"))
    if "d" not in fields or "q" not in fields:
        raise ExlifParseError(".latch requires d= and q=", lineno)
    module.add_instance(Instance(name, "DFF", fields, params={"init": init}, attrs=attrs))


def _parse_mem(module: Module, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 3:
        raise ExlifParseError(".mem needs NAME and fields", lineno)
    name = tokens[1]
    fields, attrs = _split_fields(tokens[2:], lineno)
    try:
        params: dict = {
            "depth": int(fields.pop("depth")),
            "width": int(fields.pop("width")),
            "nread": int(fields.pop("nread", "1")),
        }
    except KeyError as exc:
        raise ExlifParseError(f".mem missing parameter {exc}", lineno) from exc
    if "init" in fields:
        params["init"] = [int(v) for v in fields.pop("init").split(",") if v]
    module.add_instance(Instance(name, "MEM", fields, params=params, attrs=attrs))


def _parse_subckt(module: Module, tokens: list[str], lineno: int) -> None:
    if len(tokens) < 3:
        raise ExlifParseError(".subckt needs MODULE NAME and pins", lineno)
    kind, name = tokens[1], tokens[2]
    conn, attrs = _split_fields(tokens[3:], lineno)
    module.add_instance(Instance(name, kind, conn, attrs=attrs))
