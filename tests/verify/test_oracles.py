"""Oracle library: clean cases stay clean, context memoizes, seams work."""

from __future__ import annotations

import random

import pytest

from repro.verify.cases import (
    CaseSpec,
    CircuitSpec,
    build_case,
    random_circuit_spec,
    random_spec,
)
from repro.verify.oracles import (
    CaseContext,
    CrossBackendOracle,
    CrossEngineOracle,
    CtrlPinnedOracle,
    LoopMonotonicityOracle,
    MinResolutionOracle,
    RangeOracle,
    SCOPE_CIRCUIT,
    SCOPE_DESIGN,
    SfiConsistencyOracle,
    default_oracles,
    oracles_by_name,
)

DESIGN_ORACLES = [o for o in default_oracles() if o.scope == SCOPE_DESIGN]


@pytest.fixture(scope="module")
def loopy_case():
    return build_case(CaseSpec(seed=42, n_fubs=3, struct_width=2,
                               fsm_loops=1, stall_loops=1, pointer_loops=1,
                               ctrl_regs=2, env_seed=5))


def test_design_oracles_clean_on_fixed_case(loopy_case):
    ctx = CaseContext(loopy_case)
    for oracle in DESIGN_ORACLES:
        assert oracle.check(loopy_case, ctx) == [], oracle.name


@pytest.mark.parametrize("seed", range(8))
def test_design_oracles_clean_on_random_cases(seed):
    case = build_case(random_spec(random.Random(seed)))
    ctx = CaseContext(case)
    for oracle in DESIGN_ORACLES:
        assert oracle.check(case, ctx) == [], oracle.name


def test_context_memoizes_sart_runs(loopy_case):
    calls = []

    def counting_mutate(engine, result):
        calls.append(engine)
        return result

    ctx = CaseContext(loopy_case, mutate=counting_mutate)
    first = ctx.sart()
    again = ctx.sart()
    assert first is again
    assert calls == ["compiled"]
    ctx.sart(engine="dataflow")
    assert calls == ["compiled", "dataflow"]


def test_ctrl_oracle_reports_missing_register(loopy_case):
    case = build_case(CaseSpec(seed=42, ctrl_regs=0))
    case.ctrl_names.append("F0/cfg_phantom")
    violations = CtrlPinnedOracle().check(case, CaseContext(case))
    assert violations and "missing" in violations[0].message


def test_cross_backend_oracle_clean_on_random_circuits():
    oracle = CrossBackendOracle()
    if not oracle.available():
        pytest.skip("numpy backend unavailable")
    rng = random.Random(9)
    for _ in range(5):
        assert oracle.check(random_circuit_spec(rng)) == []


def test_cross_backend_oracle_reports_backend_pair():
    oracle = CrossBackendOracle()
    if not oracle.available():
        pytest.skip("numpy backend unavailable")
    # A mem-bearing circuit exercises the final memory sweep too.
    assert oracle.check(CircuitSpec(seed=2, with_mem=True, n_faults=2)) == []


def test_sfi_oracle_seams_drive_verdict():
    clean = SfiConsistencyOracle(
        analytic=lambda program: 0.5,
        measure=lambda program, injections, seed: (0.4, 0.3, 0.5))
    assert clean.check(None) == []
    optimistic = SfiConsistencyOracle(
        analytic=lambda program: 0.1,
        measure=lambda program, injections, seed: (0.4, 0.3, 0.5))
    violations = optimistic.check(None)
    assert violations and "undershoots" in violations[0].message


def test_sfi_oracle_slack_tolerates_boundary():
    oracle = SfiConsistencyOracle(
        slack=0.05,
        analytic=lambda program: 0.26,
        measure=lambda program, injections, seed: (0.4, 0.3, 0.5))
    assert oracle.check(None) == []


def test_registry_names_unique_and_complete():
    named = oracles_by_name()
    assert len(named) == len(default_oracles())
    assert {"range", "min-resolution", "ctrl-pinned", "cross-engine",
            "loop-monotonicity", "cross-backend",
            "sfi-consistency", "deadline-sanity",
            "derated-ser"} == set(named)


def test_loop_monotonicity_points_sorted():
    oracle = LoopMonotonicityOracle(points=(0.6, 0.1, 0.3))
    assert oracle.points == (0.1, 0.3, 0.6)


@pytest.mark.fuzz
def test_design_oracles_clean_on_many_random_cases():
    rng = random.Random(1234)
    for _ in range(40):
        case = build_case(random_spec(rng))
        ctx = CaseContext(case)
        for oracle in DESIGN_ORACLES:
            assert oracle.check(case, ctx) == [], (oracle.name,
                                                   case.spec.to_json())


@pytest.mark.fuzz
def test_cross_backend_clean_on_many_random_circuits():
    oracle = CrossBackendOracle()
    if not oracle.available():
        pytest.skip("numpy backend unavailable")
    rng = random.Random(4321)
    for _ in range(40):
        spec = random_circuit_spec(rng)
        assert oracle.check(spec) == [], spec.to_json()


@pytest.mark.fuzz
def test_sfi_consistency_default_paths():
    assert SfiConsistencyOracle(injections=96).check(None) == []
