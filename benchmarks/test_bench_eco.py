"""ECO-mode benchmark — incremental re-solve vs cold solve on a 1-FUB edit.

The acceptance story of the per-FUB incremental subsystem: a one-FUB
ECO (``edit=LSU``, a numerically neutral re-buffering inside the LSU)
on bigcore must warm-start from the unedited baseline, re-solve a
strict subset of the FUBs, land bit-identically on the cold solution,
and do so in a fraction of the cold wall time. The smoke rung (CI)
runs at scale 0.3; the full rung pins the headline ratio at scale 4.

Records per rung in ``BENCH_eco.json``: node/FUB counts, the static
dirty set vs the dynamic re-solve front, cold/warm wall seconds, and
the per-(FUB, direction) store hit rate a second run enjoys.
"""

from __future__ import annotations

import time

from conftest import print_table
from repro.core.sart import SartConfig, build_plan, run_sart
from repro.designs.bigcore import BigcoreConfig, build_bigcore, map_structure_ports
from repro.pipeline.delta import (
    diff_plans,
    eco_context_fingerprint,
    fub_solution_keys,
    save_fub_solutions,
    warm_start_from_result,
    warm_start_from_store,
)
from repro.pipeline.store import ArtifactStore

CFG = SartConfig(partition_by_fub=True, iterations=20)


def _eco_rung(scale: float, ports, store_dir) -> dict:
    base = build_bigcore(BigcoreConfig(scale=scale, seed=42))
    edit = build_bigcore(BigcoreConfig(scale=scale, seed=42, edit="LSU"))
    base_ports = map_structure_ports(base, ports)
    edit_ports = map_structure_ports(edit, ports)
    plan_a = build_plan(base.module, base_ports, CFG)
    plan_b = build_plan(edit.module, edit_ports, CFG)

    baseline = run_sart(base.module, base_ports, CFG, plan=plan_a)
    delta = diff_plans(plan_a, plan_b)
    assert delta.touched == {"LSU"}
    warm_start = warm_start_from_result(plan_b, delta.touched, baseline)

    started = time.perf_counter()
    cold = run_sart(edit.module, edit_ports, CFG, plan=plan_b)
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    warm = run_sart(edit.module, edit_ports, CFG, plan=plan_b,
                    warm_start=warm_start)
    warm_s = time.perf_counter() - started

    # Bit-identical, not approximately equal.
    assert warm.node_avfs == cold.node_avfs
    assert warm.f_sets == cold.f_sets
    assert warm.b_sets == cold.b_sets
    assert warm.report == cold.report
    # The dynamic re-solve front is a strict subset of the FUBs.
    assert warm.trace.warm and warm.trace.converged
    assert 0 < warm.trace.resolved_fubs < plan_b.n_fubs
    assert warm_s < cold_s

    # Store discipline: the baseline's per-(FUB, direction) entries
    # must serve every sub-solution the edit cannot reach.
    store = ArtifactStore(store_dir)
    ctx = eco_context_fingerprint(CFG, None)
    save_fub_solutions(store, plan_a, baseline,
                       fub_solution_keys(plan_a, ctx))
    _, hits, misses, _ = warm_start_from_store(
        store, plan_b, fub_solution_keys(plan_b, ctx)
    )
    assert hits > 0 and misses > 0

    return {
        "scale": scale,
        "nodes": plan_b.n,
        "fubs": plan_b.n_fubs,
        "static_dirty_fubs": len(delta.dirty),
        "resolved_fubs": int(warm.trace.resolved_fubs),
        "warm_iterations": int(warm.trace.iterations),
        "cold_iterations": int(cold.trace.iterations),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_over_cold": round(warm_s / cold_s, 4),
        "fub_store_hits": hits,
        "fub_store_misses": misses,
        "fub_store_hit_rate": round(hits / (hits + misses), 4),
    }


def _report(title: str, record: dict) -> None:
    print_table(
        title,
        ["nodes", "FUBs", "re-solved", "cold s", "warm s", "ratio",
         "store hit rate"],
        [[record["nodes"], record["fubs"], record["resolved_fubs"],
          record["cold_seconds"], record["warm_seconds"],
          record["warm_over_cold"], record["fub_store_hit_rate"]]],
    )


def test_bench_eco_smoke(bench_eco_json, model_ports, tmp_path):
    ports, _ = model_ports
    record = _eco_rung(0.3, ports, tmp_path / "store")
    _report("ECO re-solve, 1-FUB edit at scale 0.3 (CI smoke)", record)
    bench_eco_json["eco_smoke"] = record


def test_bench_eco_full_scale4(bench_eco_json, model_ports, tmp_path):
    ports, _ = model_ports
    record = _eco_rung(4.0, ports, tmp_path / "store")
    _report("ECO re-solve, 1-FUB edit at scale 4", record)
    # The headline acceptance: warm wall time at most 0.35x cold.
    assert record["warm_over_cold"] <= 0.35
    bench_eco_json["eco_scale4"] = record
