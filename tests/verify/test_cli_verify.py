"""``repro-sart verify`` subcommand (direct main() invocation)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.verify.corpus import update_corpus


def test_list_oracles(capsys):
    rc = main(["verify", "--list-oracles"])
    out = capsys.readouterr().out
    assert rc == 0
    for name in ("range", "cross-engine", "cross-backend",
                 "sfi-consistency"):
        assert name in out


def test_clean_short_run_exits_zero(capsys, tmp_path):
    rc = main(["verify", "--budget", "1", "--seed", "0",
               "--out", str(tmp_path / "fail"),
               "--no-sfi", "--no-corpus"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all oracles clean" in out


def test_injected_defect_exits_nonzero(capsys, tmp_path):
    rc = main(["verify", "--budget", "5", "--seed", "0",
               "--out", str(tmp_path / "fail"),
               "--inject-defect", "range", "--no-sfi", "--no-corpus"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "injecting defect 'range'" in captured.out
    assert "violation" in captured.err
    repros = list((tmp_path / "fail").glob("*.json"))
    assert repros, "expected shrunk reproducers on disk"
    payload = json.loads(repros[0].read_text())
    assert payload["oracle"] in ("range", "cross-engine")


def test_replay_round_trip(capsys, tmp_path):
    rc = main(["verify", "--budget", "5", "--seed", "0",
               "--out", str(tmp_path / "fail"),
               "--inject-defect", "cross-engine", "--no-sfi", "--no-corpus"])
    assert rc == 1
    capsys.readouterr()
    repro_file = sorted((tmp_path / "fail").glob("cross-engine-*.json"))[0]
    rc = main(["verify", "--replay", str(repro_file),
               "--inject-defect", "cross-engine",
               "--no-sfi", "--no-corpus",
               "--out", str(tmp_path / "fail2")])
    assert rc == 1
    capsys.readouterr()
    rc = main(["verify", "--replay", str(repro_file),
               "--no-sfi", "--no-corpus",
               "--out", str(tmp_path / "fail3")])
    assert rc == 0


def test_corpus_dir_override_and_update_goldens(capsys, tmp_path):
    corpus = tmp_path / "corpus"
    rc = main(["verify", "--update-goldens", "--corpus", str(corpus)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "blessed" in out
    assert sorted(corpus.glob("*.json"))
    rc = main(["verify", "--budget", "0", "--no-sfi",
               "--corpus", str(corpus),
               "--out", str(tmp_path / "fail")])
    assert rc == 0


def test_corrupted_custom_corpus_fails(capsys, tmp_path):
    corpus = tmp_path / "corpus"
    update_corpus(corpus)
    victim = sorted(corpus.glob("*.json"))[0]
    entry = json.loads(victim.read_text())
    entry["expected"]["weighted_seq_avf"] += 0.25
    victim.write_text(json.dumps(entry))
    rc = main(["verify", "--budget", "0", "--no-sfi",
               "--corpus", str(corpus),
               "--out", str(tmp_path / "fail")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "golden-corpus" in captured.err


def test_unknown_defect_is_an_error(tmp_path):
    with pytest.raises(ValueError, match="available"):
        main(["verify", "--budget", "0", "--inject-defect", "bogus",
              "--out", str(tmp_path / "fail")])


def test_oracle_filter(capsys, tmp_path):
    rc = main(["verify", "--budget", "1", "--oracle", "range",
               "--no-sfi", "--no-corpus",
               "--out", str(tmp_path / "fail")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "all oracles clean" in out
