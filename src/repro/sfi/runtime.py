"""Fault-tolerant campaign runtime: checkpoint/resume, retry, timeouts.

SFI and beam campaigns run thousands of independent passes; at that scale
the campaign infrastructure itself becomes the dominant failure mode —
worker processes die, single passes hang, and a multi-hour run that
aborts on the first straggler loses everything it already computed. This
module hardens the fan-out layer that :mod:`repro.sfi.parallel` exposes:

* **Durable checkpointing** — every completed pass is appended to a
  versioned JSONL checkpoint file and flushed immediately, so an
  interrupted campaign resumes with ``resume=<path>`` and reproduces
  bit-identical final results (passes are pure functions of their plan;
  replaying the missing ones in index order cannot differ from an
  uninterrupted run).
* **Per-pass retry** — a pass that raises is retried up to a bounded
  attempt budget; a persistently-failing pass becomes a structured
  :class:`~repro.sfi.results.PassFailure` record instead of aborting the
  campaign.
* **Worker-loss recovery** — a :class:`BrokenProcessPool` respawns the
  pool and requeues only the in-flight passes (completed work is never
  redone); after the restart budget is exhausted the runtime degrades
  gracefully to serial in-process execution with a
  :class:`DegradedExecutionWarning` instead of raising.
* **Soft pass timeouts** — a straggler past ``pass_timeout`` seconds is
  recorded as a ``timeout`` failure and its worker slot is written off;
  when every slot is wedged the pool is recycled (hung workers are
  terminated) so the campaign keeps making progress.

Determinism contract: pass results are folded in submission-index order
no matter which worker finished them when, so for a healthy run the
output is bit-identical at any worker count, with any checkpoint/resume
split, and across pool restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import CampaignError, CheckpointError, PassTimeoutError
from repro.sfi.results import CRASH, TIMEOUT, PassFailure

_ITEM = TypeVar("_ITEM")
_RESULT = TypeVar("_RESULT")

# Ceiling for absurd worker requests: beyond a few processes per CPU the
# pool only adds memory pressure and fork latency, never throughput.
_WORKER_CAP = max(32, 4 * (os.cpu_count() or 1))


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (None/0/negative -> serial).

    Huge requests are clamped to a few processes per CPU — an oversized
    pool cannot run more passes at once than there are cores anyway.
    """
    if workers is None or workers < 1:
        return 1
    return min(workers, _WORKER_CAP)


class DegradedExecutionWarning(UserWarning):
    """The runtime fell back to serial in-process execution."""


def backoff_delay(
    index: int,
    attempt: int,
    *,
    base: float,
    cap: float = 2.0,
    seed: int = 0,
) -> float:
    """Deterministic bounded jittered exponential retry backoff.

    The delay inserted *before* retry *attempt* of pass *index* (attempt
    1 is the first try and never waits): ``base`` seconds doubling per
    attempt, capped at ``cap``, scaled by a jitter factor in [0.5, 1.0)
    derived by hashing ``(seed, index, attempt)``. The schedule is a
    pure function of its inputs — seeded tests see identical delays —
    while different passes de-phase, so a sick pool is not hammered by
    the whole campaign retrying in lockstep.
    """
    if base <= 0.0 or attempt <= 1:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 2)))
    digest = hashlib.sha256(f"{seed}:{index}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return raw * (0.5 + 0.5 * unit)


@dataclass
class RuntimeOptions:
    """Fault-tolerance knobs for a campaign run.

    ``max_retries`` is the *total* attempt budget per pass (1 = no
    retry). ``pass_timeout`` is a soft per-pass deadline in seconds,
    enforced only when a process pool is active (a serial in-process
    pass cannot be preempted — see docs/ROBUSTNESS.md). ``checkpoint``
    appends completed passes to a JSONL file; ``resume`` loads one
    first and skips the passes it already holds. ``max_pool_restarts``
    bounds how many times a broken pool is respawned before the runtime
    degrades to serial execution. ``retry_backoff`` is the base of the
    bounded jittered exponential delay inserted before each retry
    attempt (:func:`backoff_delay`; 0 restores immediate re-queue).
    """

    max_retries: int = 3
    pass_timeout: float | None = None
    checkpoint: str | None = None
    resume: str | None = None
    max_pool_restarts: int = 3
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0
    retry_backoff_seed: int = 0


@dataclass
class RunReport:
    """Everything :func:`run_passes` did, pass by pass.

    ``results[i]`` is pass *i*'s decoded result, or ``None`` when that
    pass failed permanently (its :class:`PassFailure` is in
    ``failures``).
    """

    results: list[Any]
    failures: list[PassFailure] = field(default_factory=list)
    pool_restarts: int = 0
    degraded: bool = False
    resumed: int = 0
    executed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def campaign_fingerprint(*parts: object) -> str:
    """Stable digest identifying one campaign's full configuration.

    Stored in the checkpoint header so a checkpoint can never be
    resumed against a different program/plan/backend combination.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# checkpoint file format (versioned JSONL; see docs/ROBUSTNESS.md)
# ----------------------------------------------------------------------

CHECKPOINT_FORMAT = "repro-campaign-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointWriter:
    """Append-only JSONL checkpoint, flushed after every record."""

    def __init__(self, path: str, fingerprint: str, passes: int, *, fresh: bool):
        self.path = path
        self._fh = open(path, "w" if fresh else "a")
        if fresh:
            header = {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "fingerprint": fingerprint,
                "passes": passes,
            }
            self._fh.write(json.dumps(header) + "\n")
            self._fh.flush()

    def record(self, index: int, payload: object) -> None:
        self._fh.write(json.dumps({"pass": index, "result": payload}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def load_checkpoint(path: str, fingerprint: str, passes: int) -> dict[int, Any]:
    """Read a checkpoint back as ``{pass index: encoded result}``.

    Validates the versioned header against the resuming campaign and
    tolerates exactly one truncated trailing record (the write that a
    crash or SIGKILL interrupted); corruption anywhere else raises
    :class:`CheckpointError`.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint {path!r} does not exist")
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise CheckpointError(f"checkpoint {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path!r}: unreadable header") from exc
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"checkpoint {path!r}: not a campaign checkpoint")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r}: unsupported version {header.get('version')!r} "
            f"(this runtime writes version {CHECKPOINT_VERSION})"
        )
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} belongs to a different campaign "
            f"(fingerprint {header.get('fingerprint')!r}, expected {fingerprint!r})"
        )
    if header.get("passes") != passes:
        raise CheckpointError(
            f"checkpoint {path!r} records a {header.get('passes')}-pass campaign, "
            f"not {passes} passes"
        )
    records: dict[int, Any] = {}
    for lineno, raw in enumerate(lines[1:], start=2):
        if not raw.strip():
            continue
        try:
            rec = json.loads(raw)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):  # torn final write: redo that pass
                break
            raise CheckpointError(f"checkpoint {path!r}: corrupt line {lineno}") from exc
        index = rec.get("pass")
        if not isinstance(index, int) or not 0 <= index < passes:
            raise CheckpointError(
                f"checkpoint {path!r}: line {lineno} has bad pass index {index!r}"
            )
        records[index] = rec.get("result")
    return records


# ----------------------------------------------------------------------
# the self-healing pool
# ----------------------------------------------------------------------

class ResilientPool:
    """A process pool that survives worker loss and wedged workers.

    Wraps :class:`ProcessPoolExecutor` with respawn-on-break, bounded
    per-task retry, soft task timeouts, and a final serial in-process
    fallback. One instance may serve several :meth:`run` calls (the
    relaxation engine reuses it across Jacobi iterations); worker state
    is rebuilt by re-running *initializer* after every respawn, so
    workers must treat it as their only setup channel.
    """

    def __init__(
        self,
        initializer: Callable[[Any], None],
        payload: Any,
        *,
        workers: int | None = 1,
        max_pool_restarts: int = 3,
        label: str = "campaign",
    ):
        self._initializer = initializer
        self._payload = payload
        self.workers = resolve_workers(workers)
        self.max_pool_restarts = max(0, max_pool_restarts)
        self.label = label
        self.restarts = 0          # every pool respawn (broken or wedged)
        self.degraded = False      # fell back to serial due to failures
        self._serial = self.workers <= 1
        self._serial_ready = False
        self._pool: ProcessPoolExecutor | None = None
        self._abandoned = 0        # slots written off to hung workers
        self._broken = 0           # respawns caused by worker death

    # -- pool lifecycle ------------------------------------------------
    def _pool_or_none(self) -> ProcessPoolExecutor | None:
        if self._serial:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=self._initializer,
                    initargs=(self._payload,),
                )
            except (OSError, ValueError) as exc:
                self._degrade(f"could not start worker pool: {exc}")
                return None
        return self._pool

    def _teardown(self, *, kill: bool) -> None:
        pool, self._pool = self._pool, None
        self._abandoned = 0
        if pool is None:
            return
        if kill:
            # ProcessPoolExecutor has no kill API; terminating the worker
            # processes directly is the only way to reclaim a hung pool
            # (shutdown() would join them, i.e. hang right along).
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(self, why: str) -> None:
        self._serial = True
        self.degraded = True
        self._teardown(kill=True)
        warnings.warn(
            f"{self.label}: degrading to serial in-process execution ({why})",
            DegradedExecutionWarning,
            stacklevel=4,
        )

    def _recycle(self, why: str, *, broken: bool) -> None:
        """Respawn the pool; degrade to serial past the restart budget."""
        self.restarts += 1
        self._teardown(kill=True)
        if broken:
            self._broken += 1
            if self._broken > self.max_pool_restarts:
                self._degrade(
                    f"{why}; pool already respawned {self._broken - 1} time(s)"
                )

    def close(self) -> None:
        """Release the pool, terminating any workers still wedged."""
        self._teardown(kill=self._abandoned > 0)

    # -- execution -----------------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        indices: Iterable[int] | None = None,
        max_retries: int = 3,
        timeout: float | None = None,
        on_result: Callable[[int, Any], None] | None = None,
        on_error: str = "record",
        backoff_base: float = 0.0,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
    ) -> list[PassFailure]:
        """Run ``fn(tasks[i])`` for every index, surviving failures.

        *on_result(index, result)* fires as each task completes (the
        checkpoint hook). With ``on_error="record"`` permanent failures
        come back as :class:`PassFailure` records; ``"raise"`` turns the
        first one into :class:`CampaignError` / :class:`PassTimeoutError`
        for callers that need every result (relaxation). A non-zero
        ``backoff_base`` inserts the bounded jittered exponential delay
        of :func:`backoff_delay` before each retry attempt instead of
        re-queueing immediately (requeues caused by a broken pool or a
        cancelled not-yet-started task keep their attempt number and
        never wait — the pool respawn itself is the pause).
        """
        idxs = [i for i in (indices if indices is not None else range(len(tasks)))]
        max_retries = max(1, int(max_retries))
        failures: list[PassFailure] = []
        finished: set[int] = set()
        # Queue entries are (index, attempt, ready_at): a retry under
        # backoff is parked until its monotonic ready time.
        queue: deque[tuple[int, int, float]] = deque((i, 1, 0.0) for i in idxs)
        if not queue:
            return failures

        def retry_ready(index: int, attempt: int) -> float:
            return time.monotonic() + backoff_delay(
                index, attempt,
                base=backoff_base, cap=backoff_cap, seed=backoff_seed,
            )

        def fail(index: int, attempts: int, kind: str, message: str,
                 exc: BaseException | None = None) -> None:
            if on_error == "raise":
                if kind == TIMEOUT:
                    raise PassTimeoutError(
                        f"{self.label} pass {index} exceeded its "
                        f"{timeout:g}s soft timeout"
                    )
                raise CampaignError(
                    f"{self.label} pass {index} failed permanently after "
                    f"{attempts} attempt(s): {message}"
                ) from exc
            failures.append(
                PassFailure(index=index, kind=kind, error=message, attempts=attempts)
            )
            finished.add(index)

        def succeed(index: int, result: Any) -> None:
            finished.add(index)
            if on_result is not None:
                on_result(index, result)

        # Serial is also the single-task fast path: no pool, no pickling.
        if len(idxs) <= 1:
            self._run_serial(fn, tasks, queue, max_retries, finished, fail,
                             succeed, retry_ready)
            return failures

        pending: dict[Future, tuple[int, int, float]] = {}
        while queue or pending:
            pool = self._pool_or_none()
            if pool is None:
                for _fut, (i, att, _t0) in pending.items():
                    if i not in finished:
                        queue.append((i, att, 0.0))
                pending.clear()
                self._run_serial(fn, tasks, queue, max_retries, finished,
                                 fail, succeed, retry_ready)
                break

            # Keep at most one task per live slot in flight so that
            # submit time ~= start time (the soft-timeout clock). Entries
            # still backing off rotate to the back of the queue; the
            # earliest ready time bounds how long the wait below blocks.
            live_slots = self.workers - self._abandoned
            now = time.monotonic()
            backing_off: float | None = None
            for _ in range(len(queue)):
                if len(pending) >= live_slots:
                    break
                i, att, ready = queue.popleft()
                if i in finished:
                    continue
                if ready > now:
                    queue.append((i, att, ready))
                    backing_off = (ready if backing_off is None
                                   else min(backing_off, ready))
                    continue
                pending[pool.submit(fn, tasks[i])] = (i, att, time.monotonic())

            if not pending:
                if backing_off is not None:
                    # Everything left is parked on a retry delay.
                    time.sleep(max(0.0, backing_off - time.monotonic()))
                    continue
                if self._abandoned:
                    # Only wedged workers remain; recycle so queued work
                    # (if any) gets fresh slots, else we are done.
                    self._recycle("all workers wedged past the pass timeout",
                                  broken=False)
                    if not queue:
                        break
                    continue
                break  # queue drained into `finished` duplicates

            tick = self._tick(pending, timeout)
            if backing_off is not None:
                until_ready = max(0.01, backing_off - time.monotonic())
                tick = until_ready if tick is None else min(tick, until_ready)
            done_set, _ = wait(
                list(pending), timeout=tick,
                return_when=FIRST_COMPLETED,
            )
            broke = False
            for fut in done_set:
                i, att, _t0 = pending.pop(fut)
                if i in finished:
                    continue
                try:
                    result = fut.result()
                except BrokenProcessPool:
                    broke = True
                    queue.append((i, att, 0.0))
                except Exception as exc:
                    if att < max_retries:
                        queue.append((i, att + 1, retry_ready(i, att + 1)))
                    else:
                        fail(i, att, CRASH, f"{type(exc).__name__}: {exc}", exc)
                else:
                    succeed(i, result)

            if broke:
                # The whole pool is poisoned: every in-flight future will
                # raise BrokenProcessPool. Requeue them at the *same*
                # attempt (the culprit is unidentifiable, so no pass
                # burns retry budget on a neighbour's crash) and respawn;
                # the restart budget bounds a persistent crasher, after
                # which serial execution resolves it deterministically.
                for _fut, (i, att, _t0) in pending.items():
                    if i not in finished:
                        queue.append((i, att, 0.0))
                pending.clear()
                self._recycle("a worker process died unexpectedly", broken=True)
                continue

            if timeout is not None:
                now = time.monotonic()
                for fut in [f for f, (_i, _a, t0) in pending.items()
                            if now - t0 >= timeout]:
                    i, att, _t0 = pending.pop(fut)
                    if fut.cancel():
                        # Never started — queued behind a slow pass, not a
                        # straggler itself. Requeue without burning budget.
                        queue.append((i, att, 0.0))
                    else:
                        self._abandoned += 1
                        fail(i, att, TIMEOUT,
                             f"still running after the {timeout:g}s soft timeout")
                if self._abandoned >= self.workers:
                    for _fut, (i, att, _t0) in pending.items():
                        if i not in finished:
                            queue.append((i, att, 0.0))
                    pending.clear()
                    self._recycle("every worker wedged past the pass timeout",
                                  broken=False)

        if self._abandoned:
            self._teardown(kill=True)
        return failures

    @staticmethod
    def _tick(pending: dict, timeout: float | None) -> float | None:
        """How long :func:`wait` may block before a timeout sweep is due."""
        if timeout is None:
            return None
        now = time.monotonic()
        deadline = min(t0 + timeout for (_i, _a, t0) in pending.values())
        return max(0.01, deadline - now)

    def _run_serial(self, fn, tasks, queue, max_retries, finished, fail,
                    succeed, retry_ready=None):
        if not queue:
            return
        if not self._serial_ready:
            self._initializer(self._payload)
            self._serial_ready = True
        while queue:
            i, att, ready = queue.popleft()
            if i in finished:
                continue
            while True:
                delay = ready - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    result = fn(tasks[i])
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if att < max_retries:
                        att += 1
                        if retry_ready is not None:
                            ready = retry_ready(i, att)
                        continue
                    fail(i, att, CRASH, f"{type(exc).__name__}: {exc}", exc)
                    break
                else:
                    succeed(i, result)
                    break


# ----------------------------------------------------------------------
# the campaign entry point
# ----------------------------------------------------------------------

def run_passes(
    worker: Callable[[_ITEM], _RESULT],
    initializer: Callable[[Any], None],
    payload: Any,
    items: Iterable[_ITEM],
    *,
    workers: int | None = 1,
    options: RuntimeOptions | None = None,
    fingerprint: str = "",
    encode: Callable[[_RESULT], Any] | None = None,
    decode: Callable[[Any], _RESULT] | None = None,
) -> RunReport:
    """Execute every pass with checkpointing, retry, and timeouts.

    The hardened replacement for :func:`repro.sfi.parallel.parallel_map`:
    instead of a bare result list it returns a :class:`RunReport` whose
    ``results`` are ordered by pass index (``None`` for permanent
    failures). *encode*/*decode* translate one pass result to/from a
    JSON-serializable payload for the checkpoint file; omit them when
    results already are (lists/ints — note JSON round-trips tuples into
    lists, so tuple results need a ``decode``).
    """
    opts = options or RuntimeOptions()
    work = list(items)
    n = len(work)
    report = RunReport(results=[None] * n)
    pending_idx = list(range(n))

    if opts.resume:
        dec = decode if decode is not None else (lambda obj: obj)
        cached = load_checkpoint(opts.resume, fingerprint, n)
        for index, encoded in cached.items():
            report.results[index] = dec(encoded)
        report.resumed = len(cached)
        pending_idx = [i for i in range(n) if i not in cached]

    writer: CheckpointWriter | None = None
    if opts.checkpoint:
        appending = bool(opts.resume) and (
            os.path.abspath(opts.resume) == os.path.abspath(opts.checkpoint)
        )
        if (not appending and os.path.exists(opts.checkpoint)
                and os.path.getsize(opts.checkpoint) > 0):
            raise CheckpointError(
                f"checkpoint {opts.checkpoint!r} already exists; resume from it "
                "(resume=...) or remove it before starting a fresh campaign"
            )
        writer = CheckpointWriter(
            opts.checkpoint, fingerprint, n, fresh=not appending
        )

    enc = encode if encode is not None else (lambda result: result)

    def on_result(index: int, result: Any) -> None:
        report.results[index] = result
        report.executed += 1
        if writer is not None:
            writer.record(index, enc(result))

    pool = ResilientPool(
        initializer, payload,
        workers=min(resolve_workers(workers), max(1, len(pending_idx))),
        max_pool_restarts=opts.max_pool_restarts,
    )
    try:
        report.failures = pool.run(
            worker, work,
            indices=pending_idx,
            max_retries=opts.max_retries,
            timeout=opts.pass_timeout,
            on_result=on_result,
            backoff_base=opts.retry_backoff,
            backoff_cap=opts.retry_backoff_cap,
            backoff_seed=opts.retry_backoff_seed,
        )
    finally:
        # Flush-and-release even on KeyboardInterrupt: whatever completed
        # before the interrupt is already durable in the checkpoint.
        pool.close()
        if writer is not None:
            writer.close()
    report.pool_restarts = pool.restarts
    report.degraded = pool.degraded
    return report
