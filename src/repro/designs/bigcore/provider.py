"""Bigcore design provider for the analysis pipeline.

Adapts the synthetic big-core generator to the uniform
:class:`~repro.pipeline.registry.DesignProvider` protocol. The
fingerprint covers the full :class:`~repro.designs.bigcore.core
.BigcoreConfig` (seed, scale, fub_count, feedback_fubs, edit), so two
runs at the same generator parameters share every downstream cache entry
while any parameter change invalidates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.bigcore.core import BigcoreConfig, build_bigcore
from repro.designs.bigcore.systolic import SystolicConfig, build_systolic
from repro.pipeline.artifacts import DesignArtifact
from repro.pipeline.fingerprint import stage_fingerprint


@dataclass(frozen=True)
class BigcoreProvider:
    """``bigcore[@scale=...,seed=...]`` — the synthetic scale design."""

    config: BigcoreConfig = BigcoreConfig()

    @property
    def ref(self) -> str:
        c = self.config
        parts = [f"scale={c.scale:g}", f"seed={c.seed}"]
        if c.fub_count is not None:
            parts.append(f"fub_count={c.fub_count}")
        if c.feedback_fubs != 3:
            parts.append(f"feedback_fubs={c.feedback_fubs}")
        if c.edit is not None:
            parts.append(f"edit={c.edit}")
        return "bigcore@" + ",".join(parts)

    def fingerprint(self) -> str:
        c = self.config
        return stage_fingerprint(
            "design", "bigcore", c.seed, c.scale, c.fub_count, c.feedback_fubs,
            c.edit,
        )

    def build(self) -> DesignArtifact:
        design = build_bigcore(self.config)
        return DesignArtifact(
            ref=self.ref,
            kind="bigcore",
            fingerprint=self.fingerprint(),
            module=design.module,
            design=design,
        )


@dataclass(frozen=True)
class SystolicProvider:
    """``systolic[@rows=...,cols=...]`` — the MAC-array scale design."""

    config: SystolicConfig = SystolicConfig()

    @property
    def ref(self) -> str:
        c = self.config
        parts = [f"rows={c.rows}", f"cols={c.cols}"]
        if c.data_width != 8:
            parts.append(f"data_width={c.data_width}")
        if c.acc_width != 16:
            parts.append(f"acc_width={c.acc_width}")
        if c.tile != 8:
            parts.append(f"tile={c.tile}")
        return "systolic@" + ",".join(parts)

    def fingerprint(self) -> str:
        c = self.config
        return stage_fingerprint(
            "design", "systolic", c.rows, c.cols, c.data_width, c.acc_width,
            c.tile,
        )

    def build(self) -> DesignArtifact:
        design = build_systolic(self.config)
        return DesignArtifact(
            ref=self.ref,
            kind="systolic",
            fingerprint=self.fingerprint(),
            module=design.module,
            design=design,
        )
