"""Greedy spec shrinking: reduce a failing case to a minimal reproducer.

Because cases are built deterministically from small frozen specs
(:mod:`repro.verify.cases`), shrinking never touches the netlist — it
only moves spec fields toward their floors and re-asks the caller's
predicate whether the reduced case *still fails*. The result is the
lexicographically smallest spec (by total field mass) this greedy pass
can reach within ``max_attempts`` predicate evaluations.

The predicate is expected to rebuild the case and re-run the failing
oracle; a predicate that throws counts as "still fails" (the reproducer
should preserve crashes too, not just wrong answers).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, TypeVar

from repro.verify.cases import CaseSpec, CircuitSpec

SpecT = TypeVar("SpecT", CaseSpec, CircuitSpec)

# (field, floor) in shrink priority order: structure-removing reductions
# first (they delete whole subgraphs), then size halving, then seeds.
_CASE_FIELDS: tuple[tuple[str, int], ...] = (
    ("n_fubs", 1),
    ("fsm_loops", 0),
    ("stall_loops", 0),
    ("pointer_loops", 0),
    ("ctrl_regs", 0),
    ("struct_width", 0),
    ("flops_per_fub", 1),
    ("env_seed", 0),
)

_CIRCUIT_FIELDS: tuple[tuple[str, int], ...] = (
    ("n_faults", 0),
    ("with_mem", 0),
    ("n_gates", 1),
    ("n_dffs", 2),
    ("n_inputs", 2),
    ("cycles", 1),
    ("lanes", 2),
    ("stim_seed", 0),
)


def _fields_for(spec) -> tuple[tuple[str, int], ...]:
    if isinstance(spec, CaseSpec):
        return _CASE_FIELDS
    if isinstance(spec, CircuitSpec):
        return _CIRCUIT_FIELDS
    raise TypeError(f"cannot shrink {type(spec).__name__}")


def _candidates(spec: SpecT) -> list[SpecT]:
    """Reduced variants of *spec*, most aggressive first."""
    out: list[SpecT] = []
    for name, floor in _fields_for(spec):
        value = getattr(spec, name)
        current = int(value)
        if current <= floor:
            continue
        # Jump straight to the floor, then bisect toward it.
        steps = {floor, floor + (current - floor) // 2}
        for target in sorted(steps):
            if target == current:
                continue
            if isinstance(value, bool):
                target = bool(target)
            out.append(dataclasses.replace(spec, **{name: target}))
    return out


def shrink(spec: SpecT,
           still_fails: Callable[[SpecT], bool],
           max_attempts: int = 64) -> tuple[SpecT, int]:
    """Greedily shrink *spec* while ``still_fails`` stays true.

    Returns ``(smallest_failing_spec, attempts_used)``. The input spec
    is assumed failing; the predicate is never called on it.
    """
    attempts = 0
    current = spec
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failing = bool(still_fails(candidate))
            except Exception:
                failing = True  # a crash is a reproducer too
            if failing:
                current = candidate
                improved = True
                break  # restart candidate generation from the new spec
    return current, attempts
