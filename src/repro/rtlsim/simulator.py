"""Lane-parallel cycle-based gate-level simulator (compatibility facade).

The simulator core now lives in :mod:`repro.rtlsim.backends`: a shared
:class:`~repro.rtlsim.backends.base.BaseSimulator` (compile pipeline,
simulation contract, memory semantics, fault injection) with pluggable
lane-parallel value representations. This module keeps the historical
import surface: :class:`Simulator` is the compiled-Python integer
backend, exactly the engine the seed shipped, now with arbitrary lane
counts.

A net value is a Python integer: bit ``k`` is the net's boolean value in
lane ``k``; ``lanes`` independent simulations advance together. Memory
primitives use a golden-base-plus-per-lane-overlay representation, and
every per-lane slow path iterates only the lanes that actually diverge
from the golden lane.

Simulation contract (single implicit clock):

1. ``poke`` primary inputs for the cycle,
2. observation (``peek``) sees settled combinational values,
3. ``step()`` commits the clock edge (flop/memory update) and advances
   ``cycle``.

Fault injection uses :meth:`Simulator.flip` on a flop output between steps,
which is exactly the paper's SFI fault model ("artificially flipping a
random bit at a random timestep").

Use :func:`repro.rtlsim.backends.make_simulator` to pick a backend by
name (``python`` or ``numpy``).
"""

from __future__ import annotations

from repro.rtlsim.backends import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    make_simulator,
    preferred_fault_lanes,
)
from repro.rtlsim.backends.base import _CHUNK, MAX_LANES, BaseSimulator, MemState
from repro.rtlsim.backends.python import PythonSimulator

# Historical name: the default (pure-Python) backend.
Simulator = PythonSimulator

__all__ = [
    "_CHUNK",
    "DEFAULT_BACKEND",
    "MAX_LANES",
    "BaseSimulator",
    "MemState",
    "PythonSimulator",
    "Simulator",
    "available_backends",
    "get_backend",
    "make_simulator",
    "preferred_fault_lanes",
]
