"""Artifact store: roundtrip, miss, corruption, and counter semantics."""

import json

import pytest

from repro.errors import CacheDegradedWarning
from repro.pipeline.store import ArtifactStore, NullStore

FP = "ab" * 32


def test_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save("golden", FP, {"cycles": 166})
    assert store.load("golden", FP) == {"cycles": 166}
    assert store.entries() == [("golden", FP)]


def test_miss_returns_none(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load("golden", FP) is None


def test_corrupt_entry_is_a_miss_and_is_dropped(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.path("plan", FP)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"this is not a pickle")
    with pytest.warns(CacheDegradedWarning, match="unreadable"):
        assert store.load("plan", FP) is None
    assert not path.exists()  # corrupt blob removed


def test_corrupt_sidecar_does_not_poison_the_blob(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.save("golden", FP, {"cycles": 166})
    sidecar = path.with_suffix(".json")
    sidecar.write_text("{not json at all")
    # The sidecar is metadata only: loads still hit, and a re-save
    # rewrites it with valid content.
    assert store.load("golden", FP) == {"cycles": 166}
    obj, hit = store.fetch("golden", FP, lambda: pytest.fail("recomputed"))
    assert (obj, hit) == ({"cycles": 166}, True)
    store.save("golden", FP, {"cycles": 167})
    assert json.loads(sidecar.read_text())["stage"] == "golden"


def test_unwritable_cache_dir_degrades_to_pass_through(tmp_path):
    # A plain file where the store root should be makes every mkdir in
    # save() fail with an OSError (works even when running as root,
    # unlike permission-bit tricks).
    root = tmp_path / "cache"
    root.write_text("i am a file, not a directory")
    store = ArtifactStore(root)
    calls = []

    def compute():
        calls.append(1)
        return {"cycles": 166}

    with pytest.warns(CacheDegradedWarning, match="could not persist"):
        obj, hit = store.fetch("golden", FP, compute)
    assert (obj, hit, len(calls)) == ({"cycles": 166}, False, 1)
    # Nothing was cached, so the next fetch recomputes (and warns) again.
    with pytest.warns(CacheDegradedWarning):
        obj, hit = store.fetch("golden", FP, compute)
    assert (obj, hit, len(calls)) == ({"cycles": 166}, False, 2)


def test_save_raises_on_unwritable_dir_but_fetch_survives(tmp_path):
    root = tmp_path / "cache"
    root.write_text("still a file")
    store = ArtifactStore(root)
    with pytest.raises(OSError):
        store.save("golden", FP, "payload")


def test_fetch_counts_hits_and_misses(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return [1, 2, 3]

    obj, hit = store.fetch("ace", FP, compute)
    assert (obj, hit, len(calls)) == ([1, 2, 3], False, 1)
    obj, hit = store.fetch("ace", FP, compute)
    assert (obj, hit, len(calls)) == ([1, 2, 3], True, 1)
    assert (store.hits, store.misses) == (1, 1)


def test_metadata_sidecar(tmp_path):
    import json

    store = ArtifactStore(tmp_path)
    path = store.save("sfi", FP, "payload")
    meta = json.loads(path.with_suffix(".json").read_text())
    assert meta["stage"] == "sfi"
    assert meta["fingerprint"] == FP
    assert meta["bytes"] == path.stat().st_size


def test_rejects_unsafe_keys(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        store.path("../evil", FP)
    with pytest.raises(ValueError):
        store.path("golden", "../../etc/passwd")


def test_null_store_never_caches():
    store = NullStore()
    obj, hit = store.fetch("golden", FP, lambda: 42)
    assert (obj, hit) == (42, False)
    store.save("golden", FP, 42)
    assert store.load("golden", FP) is None
    assert store.entries() == []
    assert (store.hits, store.misses) == (0, 1)
