"""Instruction-level ACE classification (dynamic dead-code analysis)."""

import pytest

from repro.errors import TraceError
from repro.perfmodel.isa import Inst
from repro.perfmodel.trace import Trace, mark_ace, merge_traces


def _trace(*insts):
    t = Trace(name="t", insts=[Inst(seq=i, **kw) for i, kw in enumerate(insts)])
    t.validate()
    return t


def test_store_and_branch_are_ace_roots():
    t = _trace(
        dict(op="alu", dst=1, srcs=()),
        dict(op="store", srcs=(1, 1), addr=0),
        dict(op="branch", srcs=(1,), taken=True),
    )
    mark_ace(t)
    assert [i.ace for i in t.insts] == [True, True, True]


def test_nop_and_prefetch_never_ace():
    t = _trace(dict(op="nop"), dict(op="prefetch", addr=4))
    mark_ace(t)
    assert [i.ace for i in t.insts] == [False, False]


def test_first_level_dead_code():
    # r1 written then overwritten without a read: the first write is dead —
    # but only if it isn't the live-out value.
    t = _trace(
        dict(op="alu", dst=1, srcs=()),          # dead (overwritten below)
        dict(op="alu", dst=1, srcs=()),          # live-out -> ACE (unknown)
        dict(op="store", srcs=(1,), addr=0),
    )
    mark_ace(t)
    assert t.insts[0].ace is False
    assert t.insts[1].ace is True


def test_transitively_dead_code():
    # r2 = f(r1); r2 never used and overwritten; r1 only feeds r2 -> both dead.
    t = _trace(
        dict(op="alu", dst=1, srcs=()),          # feeds only the dead chain
        dict(op="alu", dst=2, srcs=(1,)),        # dead
        dict(op="alu", dst=2, srcs=()),          # overwrites r2
        dict(op="store", srcs=(2,), addr=0),
        dict(op="alu", dst=1, srcs=()),          # overwrite r1 so 0 isn't live-out
        dict(op="store", srcs=(1,), addr=4),
    )
    mark_ace(t)
    assert t.insts[0].ace is False
    assert t.insts[1].ace is False
    assert t.insts[2].ace is True


def test_live_out_values_conservatively_ace():
    t = _trace(dict(op="alu", dst=5, srcs=()))
    mark_ace(t)
    assert t.insts[0].ace is True  # may be consumed after the window


def test_ace_fraction():
    t = _trace(
        dict(op="nop"),
        dict(op="alu", dst=1, srcs=()),
        dict(op="store", srcs=(1,), addr=0),
        dict(op="alu", dst=1, srcs=()),  # live-out
    )
    mark_ace(t)
    assert t.ace_fraction() == pytest.approx(0.75)


def test_ace_fraction_requires_marking():
    t = _trace(dict(op="nop"))
    with pytest.raises(TraceError):
        t.ace_fraction()


def test_validate_catches_bad_seq_and_missing_fields():
    t = Trace("bad", [Inst(seq=5, op="alu")])
    with pytest.raises(TraceError, match="seq"):
        t.validate()
    t2 = Trace("bad2", [Inst(seq=0, op="load", dst=1)])
    with pytest.raises(TraceError, match="address"):
        t2.validate()
    t3 = Trace("bad3", [Inst(seq=0, op="branch")])
    with pytest.raises(TraceError, match="outcome"):
        t3.validate()


def test_merge_traces_renumbers():
    a = _trace(dict(op="alu", dst=1, srcs=()))
    b = _trace(dict(op="store", srcs=(1,), addr=0))
    merged = merge_traces("ab", [a, b])
    assert [i.seq for i in merged.insts] == [0, 1]
    merged.validate()
