"""tinycore ISA: 16-bit instructions, 8 registers (r0 reads as zero).

Encoding (bit 15 is the MSB)::

    ADD/SUB/AND/OR/XOR  op[15:12] rd[11:9] rs[8:6] rt[5:3] 000
    SHIFT               op[15:12] rd[11:9] rs[8:6] mode[5:3] 000
                        mode: 0=SHL1 1=SHR1 2=ROL1
    ADDI                op[15:12] rd[11:9] rs[8:6] imm6[5:0] (unsigned)
    LDI                 op[15:12] rd[11:9] 0 imm8[7:0]
    LD                  op[15:12] rd[11:9] rs[8:6] imm6[5:0]  rd = mem[rs+imm6]
    ST                  op[15:12] rt[11:9] rs[8:6] imm6[5:0]  mem[rs+imm6] = rt
    BEQ/BNE             op[15:12] rs[11:9] rt[8:6] off6[5:0]  (signed, PC-relative)
    JMP                 op[15:12] addr12[11:0]
    OUT                 op[15:12] rs[11:9] 0...
    HALT/NOP            op[15:12] 0...
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError

WORD = 16
NREGS = 8
PC_BITS = 10
IMEM_DEPTH = 1 << PC_BITS
DMEM_DEPTH = 256

OPCODES = {
    "ADD": 0x0,
    "SUB": 0x1,
    "AND": 0x2,
    "OR": 0x3,
    "XOR": 0x4,
    "SHIFT": 0x5,
    "ADDI": 0x6,
    "LDI": 0x7,
    "LD": 0x8,
    "ST": 0x9,
    "BEQ": 0xA,
    "BNE": 0xB,
    "JMP": 0xC,
    "OUT": 0xD,
    "HALT": 0xE,
    "NOP": 0xF,
}

SHIFT_SHL = 0
SHIFT_SHR = 1
SHIFT_ROL = 2

_RRR = ("ADD", "SUB", "AND", "OR", "XOR")


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction (field view of a 16-bit word)."""

    op: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    def writes_reg(self) -> bool:
        return self.op in _RRR + ("SHIFT", "ADDI", "LDI", "LD") and self.rd != 0

    def reads(self) -> tuple[int, ...]:
        if self.op in _RRR:
            return (self.rs, self.rt)
        if self.op in ("SHIFT", "ADDI", "LD"):
            return (self.rs,)
        if self.op == "ST":
            return (self.rs, self.rt)
        if self.op in ("BEQ", "BNE"):
            return (self.rs, self.rt)
        if self.op == "OUT":
            return (self.rs,)
        return ()


def encode(op: str, rd: int = 0, rs: int = 0, rt: int = 0, imm: int = 0) -> int:
    """Encode one instruction to its 16-bit word."""
    if op not in OPCODES:
        raise AssemblerError(f"unknown opcode {op!r}")
    code = OPCODES[op] << 12
    if op in _RRR or op == "SHIFT":
        return code | (rd << 9) | (rs << 6) | (rt << 3)
    if op in ("ADDI", "LD"):
        _check_unsigned(imm, 6, op)
        return code | (rd << 9) | (rs << 6) | imm
    if op == "ST":
        _check_unsigned(imm, 6, op)
        return code | (rt << 9) | (rs << 6) | imm
    if op == "LDI":
        _check_unsigned(imm, 8, op)
        return code | (rd << 9) | imm
    if op in ("BEQ", "BNE"):
        if not -32 <= imm <= 31:
            raise AssemblerError(f"{op}: branch offset {imm} out of range")
        return code | (rs << 9) | (rt << 6) | (imm & 0x3F)
    if op == "JMP":
        _check_unsigned(imm, 12, op)
        return code | imm
    if op == "OUT":
        return code | (rs << 9)
    return code  # HALT / NOP


def decode(word: int) -> Decoded:
    """Decode a 16-bit word back into fields."""
    opcode = (word >> 12) & 0xF
    names = {v: k for k, v in OPCODES.items()}
    op = names[opcode]
    if op in _RRR or op == "SHIFT":
        return Decoded(op, rd=(word >> 9) & 7, rs=(word >> 6) & 7, rt=(word >> 3) & 7)
    if op in ("ADDI", "LD"):
        return Decoded(op, rd=(word >> 9) & 7, rs=(word >> 6) & 7, imm=word & 0x3F)
    if op == "ST":
        return Decoded(op, rt=(word >> 9) & 7, rs=(word >> 6) & 7, imm=word & 0x3F)
    if op == "LDI":
        return Decoded(op, rd=(word >> 9) & 7, imm=word & 0xFF)
    if op in ("BEQ", "BNE"):
        imm = word & 0x3F
        if imm >= 32:
            imm -= 64
        return Decoded(op, rs=(word >> 9) & 7, rt=(word >> 6) & 7, imm=imm)
    if op == "JMP":
        return Decoded(op, imm=word & 0xFFF)
    if op == "OUT":
        return Decoded(op, rs=(word >> 9) & 7)
    return Decoded(op)


def _check_unsigned(value: int, bits: int, op: str) -> None:
    if not 0 <= value < (1 << bits):
        raise AssemblerError(f"{op}: immediate {value} does not fit in {bits} bits")
