"""ACE lifetime analysis (Mukherjee et al. [1]; paper Eq 3).

The analyzer consumes write/read/release events from the performance
model's structures and integrates, per structure, the number of
bit-cycles during which the structure held ACE (or unknown) state:

* a segment opens at a write with its ACE bit count;
* ACE residency accrues from the write to the **last read** of the
  segment (data read later is needed that long);
* the idle tail between the last read and the overwrite/eviction is
  un-ACE when the release is marked *consumed*, and entirely un-ACE when
  the value was never read and the release says so;
* segments still open when simulation ends are **unknown** and counted as
  ACE, exactly as Eq 3 prescribes ("ACE+unknown bits").

``StructureAvf.avf`` is then ACE bit-cycles divided by (bits x cycles).
The same event stream feeds the port counters used for pAVF extraction
(:mod:`repro.ace.portavf`).

Beyond the AVF integral, every consumed segment also records its
**error-reporting deadline** — the number of cycles between the write
and the (last) consumption of the value, i.e. how long an error-check
has to report a corruption in that value before it is architecturally
consumed (Jaulmes et al.). The per-structure
:class:`DeadlineDistribution` is an exact weighted histogram of those
deadlines, ace-bit-weighted, so its total mass equals the structure's
ACE bit-cycles by construction (the conservation invariant the verify
harness checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import AceError


@dataclass
class _Segment:
    start: int
    ace_bits: int
    last_read: int | None = None
    reads: int = 0


@dataclass
class DeadlineDistribution:
    """Weighted histogram of error-reporting deadlines (cycles).

    One entry per *consumed* ACE segment: the deadline is the segment's
    write-to-consumption span, the weight its ACE bit count. Never-
    consumed writes contribute no event (a corruption there has no
    reporting deadline — it is architecturally masked), and segments
    still open at end of simulation are *unknown*, not part of the
    histogram. Accumulation is commutative, so event order within a
    cycle cannot perturb the distribution, and :meth:`merge` of
    partitioned accumulators equals one-shot accumulation exactly.
    """

    histogram: dict[int, float] = field(default_factory=dict)
    events: int = 0

    def record(self, deadline: int, weight: float) -> None:
        if weight <= 0:
            return
        self.histogram[deadline] = self.histogram.get(deadline, 0.0) + weight
        self.events += 1

    def merge(self, other: "DeadlineDistribution") -> None:
        for deadline, weight in other.histogram.items():
            self.histogram[deadline] = self.histogram.get(deadline, 0.0) + weight
        self.events += other.events

    def total_weight(self) -> float:
        return sum(self.histogram.values())

    def weighted_cycles(self) -> float:
        """Total deadline x weight mass — equals the ACE bit-cycles
        contributed by consumed segments (the conservation invariant)."""
        return sum(d * w for d, w in self.histogram.items())

    def quantile(self, q: float) -> int:
        """Smallest deadline covering fraction *q* of the ACE-bit mass."""
        total = self.total_weight()
        if total <= 0:
            return 0
        acc = 0.0
        for deadline in sorted(self.histogram):
            acc += self.histogram[deadline]
            if acc >= q * total - 1e-12:
                return deadline
        return self.max_deadline()

    def max_deadline(self) -> int:
        return max(self.histogram) if self.histogram else 0

    def mean(self) -> float:
        total = self.total_weight()
        return self.weighted_cycles() / total if total > 0 else 0.0

    def to_summary(self) -> dict:
        """JSON-safe form (string histogram keys round-trip)."""
        return {
            "events": self.events,
            "total_weight": self.total_weight(),
            "mass_cycles": self.weighted_cycles(),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max_deadline(),
            "mean": self.mean(),
            "histogram": {str(d): w for d, w in sorted(self.histogram.items())},
        }

    @classmethod
    def from_summary(cls, summary: Mapping) -> "DeadlineDistribution":
        out = cls()
        out.events = int(summary.get("events", 0))
        out.histogram = {
            int(d): float(w) for d, w in summary.get("histogram", {}).items()
        }
        return out

    @classmethod
    def merged(cls, parts: Iterable["DeadlineDistribution"]) -> "DeadlineDistribution":
        out = cls()
        for part in parts:
            out.merge(part)
        return out


@dataclass
class StructureAvf:
    """Per-structure accumulators and derived metrics."""

    name: str
    entries: int
    bits_per_entry: int
    nread: int = 1
    nwrite: int = 1
    ace_bit_cycles: float = 0.0
    unknown_bit_cycles: float = 0.0
    total_reads: int = 0
    ace_reads: int = 0
    total_writes: int = 0
    ace_writes: int = 0
    ace_read_bitsum: float = 0.0   # sum of ace_bits over segments, per read
    ace_write_bitsum: float = 0.0  # sum of ace_bits over writes
    cycles: int = 0
    deadlines: DeadlineDistribution = field(default_factory=DeadlineDistribution)

    def avf(self) -> float:
        """Structure AVF per Eq 3 (unknown counted as ACE)."""
        denom = self.entries * self.bits_per_entry * max(1, self.cycles)
        return min(1.0, (self.ace_bit_cycles + self.unknown_bit_cycles) / denom)

    def pavf_r(self) -> float:
        """Read-port pAVF: ACE reads per simulated cycle (per port)."""
        return min(1.0, self.ace_reads / (max(1, self.cycles) * self.nread))

    def pavf_w(self) -> float:
        """Write-port pAVF: ACE writes per simulated cycle (per port)."""
        return min(1.0, self.ace_writes / (max(1, self.cycles) * self.nwrite))

    def pavf_r_bitwise(self) -> float:
        """Bit-weighted read pAVF (bit-field refinement).

        Weights each ACE read by the fraction of the entry's bits that
        were ACE, so control structures with sparse ACE fields get the
        "much less conservative" value of Section 5.1.
        """
        denom = max(1, self.cycles) * self.nread * self.bits_per_entry
        return min(1.0, self.ace_read_bitsum / denom)

    def pavf_w_bitwise(self) -> float:
        denom = max(1, self.cycles) * self.nwrite * self.bits_per_entry
        return min(1.0, self.ace_write_bitsum / denom)

    def ace_throughput(self) -> float:
        """ACE values entering per cycle (Little's-law throughput term)."""
        return self.ace_writes / max(1, self.cycles)

    def deadline_summary(self) -> dict:
        """JSON-safe deadline distribution with its conservation context.

        ``mass_cycles`` must equal ``ace_bit_cycles`` (every consumed
        segment's span x ace_bits lands in both), ``max`` never exceeds
        ``cycles`` — the invariants the deadline-sanity oracle checks.
        """
        summary = self.deadlines.to_summary()
        summary["ace_bit_cycles"] = self.ace_bit_cycles
        summary["unknown_bit_cycles"] = self.unknown_bit_cycles
        summary["cycles"] = self.cycles
        return summary


class AceLifetimeAnalyzer:
    """Implements the :class:`~repro.perfmodel.structures.EventRecorder`."""

    def __init__(self) -> None:
        self.structures: dict[str, StructureAvf] = {}
        self._open: dict[tuple[str, int], _Segment] = {}
        self._latency_sum: dict[str, float] = {}
        self._latency_count: dict[str, int] = {}
        self._finished = False

    def register(
        self, name: str, entries: int, bits_per_entry: int, nread: int = 1, nwrite: int = 1
    ) -> None:
        if name in self.structures:
            raise AceError(f"structure {name!r} registered twice")
        self.structures[name] = StructureAvf(
            name=name, entries=entries, bits_per_entry=bits_per_entry,
            nread=nread, nwrite=nwrite,
        )

    def _require(self, struct: str) -> StructureAvf:
        found = self.structures.get(struct)
        if found is None:
            raise AceError(f"events for unregistered structure {struct!r}")
        return found

    # ------------------------------------------------------------------
    # EventRecorder interface
    # ------------------------------------------------------------------
    def on_write(
        self, struct: str, entry: int, cycle: int, ace: bool, ace_bits: int | None, bits: int
    ) -> None:
        stats = self._require(struct)
        key = (struct, entry)
        previous = self._open.pop(key, None)
        if previous is not None:
            self._close_segment(stats, previous, cycle, consumed=previous.reads > 0)
        effective_bits = ace_bits if ace_bits is not None else (bits if ace else 0)
        self._open[key] = _Segment(start=cycle, ace_bits=effective_bits)
        stats.total_writes += 1
        if effective_bits > 0:
            stats.ace_writes += 1
            stats.ace_write_bitsum += effective_bits

    def on_read(self, struct: str, entry: int, cycle: int, ace: bool) -> None:
        stats = self._require(struct)
        segment = self._open.get((struct, entry))
        if segment is None:
            raise AceError(f"{struct}[{entry}]: read before write")
        segment.last_read = cycle
        segment.reads += 1
        stats.total_reads += 1
        if ace and segment.ace_bits > 0:
            stats.ace_reads += 1
            stats.ace_read_bitsum += segment.ace_bits

    def on_release(self, struct: str, entry: int, cycle: int, consumed: bool) -> None:
        stats = self._require(struct)
        segment = self._open.pop((struct, entry), None)
        if segment is None:
            raise AceError(f"{struct}[{entry}]: release before write")
        self._close_segment(stats, segment, cycle, consumed=consumed)

    # ------------------------------------------------------------------
    def _close_segment(
        self, stats: StructureAvf, segment: _Segment, end: int, consumed: bool
    ) -> None:
        if segment.ace_bits <= 0:
            return
        if segment.last_read is not None:
            span = max(0, segment.last_read - segment.start)
        elif consumed:
            # Consumed at release without an explicit read event
            # (e.g. drained): the whole residency mattered.
            span = max(0, end - segment.start)
        else:
            span = 0  # written, never needed: un-ACE residency
        stats.ace_bit_cycles += span * segment.ace_bits
        if segment.last_read is not None or consumed:
            # A consumption event: the span is the error-reporting
            # deadline for this value. Never-consumed segments record
            # nothing (and contribute 0 bit-cycles above), which keeps
            # histogram mass == ace_bit_cycles exact.
            stats.deadlines.record(span, segment.ace_bits)
        self._latency_sum[stats.name] = self._latency_sum.get(stats.name, 0.0) + span
        self._latency_count[stats.name] = self._latency_count.get(stats.name, 0) + 1

    def finish(self, cycles: int) -> dict[str, StructureAvf]:
        """Close the analysis window; open segments become 'unknown'."""
        if self._finished:
            raise AceError("finish() called twice")
        self._finished = True
        for (struct, _entry), segment in self._open.items():
            if segment.ace_bits > 0:
                stats = self.structures[struct]
                stats.unknown_bit_cycles += max(0, cycles - segment.start) * segment.ace_bits
        self._open.clear()
        for stats in self.structures.values():
            stats.cycles = cycles
        return self.structures

    def mean_ace_latency(self, struct: str) -> float:
        """Average ACE residency per value (Little's-law latency term)."""
        count = self._latency_count.get(struct, 0)
        return self._latency_sum.get(struct, 0.0) / count if count else 0.0


def merge_deadline_summaries(summaries: Iterable[Mapping]) -> dict:
    """Pool per-workload deadline summaries into one suite-level summary.

    Deadlines pool by union (a suite's distribution is every workload's
    consumption events together, not an average), and the conservation
    context — ACE bit-cycles and the observation window — adds up, so
    the merged summary satisfies the same mass invariant the per-workload
    ones do.
    """
    summaries = list(summaries)
    merged = DeadlineDistribution.merged(
        DeadlineDistribution.from_summary(s) for s in summaries
    )
    out = merged.to_summary()
    out["ace_bit_cycles"] = sum(float(s.get("ace_bit_cycles", 0.0)) for s in summaries)
    out["unknown_bit_cycles"] = sum(
        float(s.get("unknown_bit_cycles", 0.0)) for s in summaries
    )
    out["cycles"] = sum(int(s.get("cycles", 0)) for s in summaries)
    return out
