"""Fault-plan construction and outcome records."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import CampaignError

# Outcome classes.
MASKED = "masked"
SDC = "sdc"
UNKNOWN = "unknown"
DUE = "due"  # detected (parity fired): an error, but not silent


@dataclass(frozen=True)
class FaultPlan:
    """One planned injection: flip *net* just before the edge of *cycle*."""

    net: str
    cycle: int


@dataclass(frozen=True)
class InjectionOutcome:
    """Classified result of one injection."""

    plan: FaultPlan
    outcome: str  # MASKED / SDC / UNKNOWN / DUE

    @property
    def counts_as_error(self) -> bool:
        """Eq 2 numerator for the *SDC* AVF: silent errors + unknown.

        Detected errors (DUE) have their own AVF — the paper computes
        SDC and DUE AVFs separately because their observation points
        differ (Section 3.1).
        """
        return self.outcome in (SDC, UNKNOWN)

    @property
    def is_due(self) -> bool:
        return self.outcome == DUE


def plan_campaign(
    nets: Sequence[str],
    max_cycle: int,
    n_faults: int,
    seed: int = 1,
    *,
    per_node: bool = False,
) -> list[FaultPlan]:
    """Sample (node, cycle) injection points.

    ``per_node=False`` samples uniformly over the node x cycle space (the
    paper's whole-design campaign). ``per_node=True`` spreads ``n_faults``
    injections over *each* net at random cycles — the mode used to
    estimate per-node AVFs for the accuracy comparison.
    """
    if not nets:
        raise CampaignError("no nets to inject into")
    if max_cycle < 1:
        raise CampaignError("max_cycle must be >= 1")
    rng = random.Random(seed)
    plans: list[FaultPlan] = []
    if per_node:
        for net in nets:
            for _ in range(n_faults):
                plans.append(FaultPlan(net=net, cycle=rng.randrange(max_cycle)))
    else:
        for _ in range(n_faults):
            plans.append(
                FaultPlan(net=rng.choice(nets), cycle=rng.randrange(max_cycle))
            )
    return plans


def resolve_lanes_per_pass(lanes_per_pass: int | None, backend: str | None = None) -> int:
    """Validate the campaign batch width against the chosen backend.

    ``None`` resolves to the backend's preferred fault-lane count (the
    seed's historical 63 for the ``python`` backend, 255 for ``numpy``).
    Raises :class:`CampaignError` on misuse: a non-positive width, an
    unknown backend, or a width exceeding the simulator's per-pass cap
    (one golden lane rides along in every pass).
    """
    from repro.rtlsim.backends import MAX_LANES, get_backend

    try:
        cls = get_backend(backend)
    except Exception as exc:
        raise CampaignError(f"cannot batch for backend {backend!r}: {exc}") from exc
    if lanes_per_pass is None:
        return cls.preferred_fault_lanes
    if lanes_per_pass < 1:
        raise CampaignError("need at least one fault lane per pass")
    if lanes_per_pass + 1 > MAX_LANES:
        raise CampaignError(
            f"lanes_per_pass={lanes_per_pass} exceeds the {cls.backend_name} "
            f"backend's per-pass cap of {MAX_LANES - 1} fault lanes "
            "(the golden lane occupies one slot); split into more passes"
        )
    return lanes_per_pass


def batches(
    plans: Iterable[FaultPlan],
    lanes_per_pass: int | None = 63,
    *,
    backend: str | None = None,
) -> list[list[FaultPlan]]:
    """Split plans into simulator passes (lane 0 stays golden).

    The batch width is validated against *backend* (default: the
    ``python`` backend's limits); pass ``lanes_per_pass=None`` to use the
    backend's preferred width.
    """
    lanes_per_pass = resolve_lanes_per_pass(lanes_per_pass, backend)
    plans = list(plans)
    return [
        plans[i:i + lanes_per_pass] for i in range(0, len(plans), lanes_per_pass)
    ]
