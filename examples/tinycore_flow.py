"""The complete paper flow on a real (simulable) CPU.

For one tinycore benchmark this script runs all five steps of Section 5:

1. the "performance model" (tinycore's architectural simulator) with ACE
   analysis -> structure port AVFs,
2. the RTL side: build + flatten the gate-level core,
3. structure-bit mapping (via ``struct`` attributes on the netlist),
4. SART pAVF walks with loop breaking and relaxation,
5. the per-FUB report — then validates the result against a statistical
   fault-injection campaign on the same netlist.

Run:  python examples/tinycore_flow.py [program] [injections]
"""

import sys

from repro import SartConfig, run_sart
from repro.core.report import average_seq_avf
from repro.designs.tinycore.archsim import tinycore_structure_ports
from repro.designs.tinycore.core import build_tinycore
from repro.designs.tinycore.harness import run_gate_level
from repro.designs.tinycore.programs import PROGRAMS, default_dmem, program
from repro.netlist.graph import extract_graph
from repro.ser.correlation import TINYCORE_LOOP_PAVF
from repro.sfi import overall_avf, plan_campaign, run_sfi_campaign


def main(name: str = "lattice2d", injections: int = 378):
    if name not in PROGRAMS:
        raise SystemExit(f"unknown program {name!r}; choose from {sorted(PROGRAMS)}")
    words, dmem = program(name), default_dmem(name)

    print(f"== step 2-3: build RTL, run golden simulation ({name}) ==")
    netlist = build_tinycore(words, dmem)
    golden = run_gate_level(words, dmem, netlist=netlist)
    print(f"   {len(netlist.module.instances)} instances, "
          f"{len(netlist.module.sequential_instances())} flops, "
          f"{golden.cycles} cycles, outputs {golden.outputs[0][:6]}...")

    print("== step 1: ACE analysis on the architectural model ==")
    ports, trace, _ = tinycore_structure_ports(name, words, dmem,
                                               gate_cycles=golden.cycles)
    print(f"   ACE instruction fraction: {trace.ace_fraction():.2f}")
    for sname, p in sorted(ports.items()):
        print(f"   {sname:6s} pAVF_R={p.pavf_r:.3f} pAVF_W={p.pavf_w:.3f} "
              f"AVF={p.avf:.3f}")

    print("== steps 4-5: SART walks + resolution ==")
    config = SartConfig(loop_pavf=TINYCORE_LOOP_PAVF)
    result = run_sart(netlist.module, ports, config)
    print(result.report.table())
    print(f"   loops: {int(result.stats['loop_bits'])} bits, "
          f"visited {result.report.visited_fraction:.1%}, "
          f"{result.elapsed_seconds:.2f}s")
    sart_avf = average_seq_avf(result.node_avfs)
    print(f"   average sequential AVF: {sart_avf:.3f}")

    print(f"== validation: SFI campaign ({injections} injections) ==")
    seqs = extract_graph(netlist.module).seq_nets()
    plans = plan_campaign(seqs, golden.cycles - 2, injections, seed=1)
    campaign = run_sfi_campaign(words, dmem, plans, netlist=netlist)
    avf, (lo, hi) = overall_avf(campaign.outcomes)
    print(f"   SFI AVF = {avf:.3f} [{lo:.3f}, {hi:.3f}]  "
          f"counts={campaign.counts()}  ({campaign.elapsed_seconds:.1f}s)")
    verdict = "conservative" if sart_avf >= lo else "NOT conservative"
    print(f"   SART {sart_avf:.3f} vs SFI interval -> {verdict}")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "lattice2d",
        int(sys.argv[2]) if len(sys.argv) > 2 else 378,
    )
