"""E3 + E6 — Figure 9 and the Section 6.1 statistics.

Reproduces the per-FUB plot (average sequential AVF and average node AVF
per RTL module after the final relaxation iteration, with
sequential-count-weighted overall averages) and the run statistics the
paper reports alongside it:

* weighted average sequential AVF ~14 % over the workload suite;
* >98 % of RTL nodes visited;
* control-register and loop-bit inventories;
* ~10 % reduction in modeled SDC FIT versus the structure-AVF proxy;
* little per-FUB correlation between node AVF and sequential AVF.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core.sart import SartConfig, run_sart
from repro.ser.fit import FitModel


def test_bench_fig9_per_fub_avf(benchmark, bigcore_design, bigcore_ports):
    def run():
        return run_sart(
            bigcore_design.module, bigcore_ports,
            SartConfig(partition_by_fub=True, iterations=20),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report

    rows = [
        [r.fub, r.seq_count, r.seq_avg_avf, r.node_count, r.node_avg_avf]
        for r in report.fubs
    ]
    rows.append(["WEIGHTED", report.seq_count, report.weighted_seq_avf,
                 report.node_count, report.weighted_node_avf])
    print_table(
        "Figure 9 — per-FUB average AVF after final iteration",
        ["FUB", "#seq", "seq AVF", "#node", "node AVF"],
        rows,
    )
    print(f"paper: avg sequential AVF 14% | measured {report.weighted_seq_avf:.1%}")
    print(f"paper: >98% nodes visited | measured {report.visited_fraction:.1%}")
    print(f"loops: {report.loop_bits} bits, control regs: {report.ctrl_bits} bits")

    # Headline: the suite-average sequential AVF lands in the paper's band.
    assert 0.05 < report.weighted_seq_avf < 0.25
    assert report.visited_fraction > 0.98
    assert report.ctrl_bits > 0

    # "For any individual FUB, there is little correlation between the
    # total average node AVF and the average sequential node AVF":
    # the per-FUB rank orders must differ.
    seq_rank = sorted(range(len(report.fubs)), key=lambda i: report.fubs[i].seq_avg_avf)
    node_rank = sorted(range(len(report.fubs)), key=lambda i: report.fubs[i].node_avg_avf)
    assert seq_rank != node_rank


def test_bench_section61_fit_reduction(bigcore_design, bigcore_ports, model_ports):
    """~10 % modeled SDC FIT reduction vs the structure-AVF proxy."""
    ports, _ = model_ports
    result = run_sart(bigcore_design.module, bigcore_ports,
                      SartConfig(partition_by_fub=True, iterations=20))

    # Whole-core FIT: arrays keep their ACE AVFs in both models; only the
    # sequential component changes (proxy vs per-node sequential AVFs).
    struct_avfs = [p.avf for p in ports.values() if p.avf is not None]
    proxy_avf = sum(struct_avfs) / len(struct_avfs)

    array_bits = sum(
        len([1 for n in result.model.struct_nodes.values() if n[0] == array])
        for array in {s for s, _ in result.model.struct_nodes.values()}
    )

    def build(seq_avf_lookup):
        model = FitModel()
        for net, node in result.node_avfs.items():
            if node.kind != "seq":
                continue
            if net in result.model.struct_nodes:
                model.add("arrays", node.avf, bits=1)
            else:
                model.add("sequentials", seq_avf_lookup(net), bits=1)
        return model

    proxy_model = build(lambda net: proxy_avf)
    seq_model = build(lambda net: result.avf(net))
    reduction = 1.0 - seq_model.total_fit() / proxy_model.total_fit()
    print(f"\nmodeled SDC FIT: proxy={proxy_model.total_fit():.3f} "
          f"sequential-AVF={seq_model.total_fit():.3f} reduction={reduction:.1%} "
          f"(paper: ~10% whole-part; sequential component ~63% lower)")
    assert reduction > 0.05
    seq_only = 1.0 - seq_model.group_fit("sequentials") / proxy_model.group_fit("sequentials")
    print(f"sequential component reduction: {seq_only:.1%}")
    assert seq_only > 0.3
