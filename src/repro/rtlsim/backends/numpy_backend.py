"""NumPy word-sliced backend.

A net value is a NumPy array of ``ceil(lanes/64)`` ``uint64`` words: word
``w`` holds lanes ``64w .. 64w+63``, LSB first. Each levelized gate
compiles to one or a few vectorized bitwise ufunc calls operating on the
whole word vector, so the per-gate Python overhead is constant in the
lane count — one pass can carry 256, 1024 or more fault lanes and the
cost per gate barely moves. The crossover against the bigint backend
therefore sits at wide passes: below a few hundred lanes the fixed ufunc
dispatch cost dominates and the Python backend is faster (see
docs/PERFORMANCE.md for measured numbers).

Canonical-form invariant: bits at positions >= ``lanes`` in the top word
are always zero. Inversions go through the partial mask vector ``M``
(not ``~``), which preserves the invariant, so converting a value to a
lane-parallel Python int is a straight little-endian byte read.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import SimulationError
from repro.netlist.netlist import Instance
from repro.rtlsim.backends.base import BaseSimulator

_WORD = 64
_BYTEORDER = sys.byteorder


class NumpySimulator(BaseSimulator):
    """Vectorized uint64 word-sliced lane-parallel simulator."""

    backend_name = "numpy"
    # Wide passes are the point: 4 words of fault lanes plus the golden
    # lane per pass keeps the constant ufunc overhead well amortized.
    preferred_fault_lanes = 255

    # ------------------------------------------------------------------
    # state + codec
    # ------------------------------------------------------------------
    def _alloc_state(self) -> None:
        n = len(self.index)
        self.words = (self.lanes + _WORD - 1) // _WORD
        self._nbytes = self.words * 8
        self._storage = np.zeros((n, self.words), dtype=np.uint64)
        self.values = list(self._storage)  # per-net row views

        mask_words = [0xFFFF_FFFF_FFFF_FFFF] * self.words
        rem = self.lanes - _WORD * (self.words - 1)
        if rem < _WORD:
            mask_words[-1] = (1 << rem) - 1
        self._maskarr = np.array(mask_words, dtype=np.uint64)
        self._t0 = np.zeros(self.words, dtype=np.uint64)
        self._t1 = np.zeros(self.words, dtype=np.uint64)

        qs = [self.index[inst.conn["q"]] for inst in self._dffs]
        self._q_rows = np.array(qs, dtype=np.intp)
        self._next_storage = np.zeros((len(qs), self.words), dtype=np.uint64)
        self._next: list = [None] * n
        for j, q in enumerate(qs):
            self._next[q] = self._next_storage[j]

    def _clear_state(self) -> None:
        self._storage[:] = 0
        self._next_storage[:] = 0

    def _set_uniform(self, idx: int, bit: int) -> None:
        row = self.values[idx]
        if bit:
            np.copyto(row, self._maskarr)
        else:
            row[:] = 0

    def _commit(self) -> None:
        # One fancy-indexed copy commits every flop at once.
        self._storage[self._q_rows] = self._next_storage

    def value_int(self, v, idx: int) -> int:
        return int.from_bytes(v[idx].tobytes(), _BYTEORDER)

    def set_value_int(self, v, idx: int, value: int) -> None:
        v[idx][:] = np.frombuffer(value.to_bytes(self._nbytes, _BYTEORDER), dtype=np.uint64)

    def lane_bit(self, v, idx: int, lane: int) -> int:
        return (int(v[idx][lane >> 6]) >> (lane & 63)) & 1

    # ------------------------------------------------------------------
    # code generation
    # ------------------------------------------------------------------
    _UFUNC = {"AND": "AND", "NAND": "AND", "OR": "OR", "NOR": "OR",
              "XOR": "XOR", "XNOR": "XOR"}

    def _codegen_namespace(self) -> dict:
        return {
            "AND": np.bitwise_and,
            "OR": np.bitwise_or,
            "XOR": np.bitwise_xor,
            "CPY": np.copyto,
            "M": self._maskarr,
            "T0": self._t0,
            "T1": self._t1,
        }

    def _gate_lines(self, inst: Instance) -> list[str]:
        conn = inst.conn
        idx = self.index
        kind = inst.kind
        y = idx[conn["y"]]
        if kind == "BUF":
            return [f"CPY(v[{y}], v[{idx[conn['a']]}])"]
        if kind == "NOT":
            return [f"XOR(v[{idx[conn['a']]}], M, v[{y}])"]
        if kind in self._UFUNC:
            fn = self._UFUNC[kind]
            ins = [idx[conn[p]] for p in inst.input_pins()]
            if len(ins) == 1:
                lines = [f"CPY(v[{y}], v[{ins[0]}])"]
            else:
                lines = [f"{fn}(v[{ins[0]}], v[{ins[1]}], v[{y}])"]
                lines += [f"{fn}(v[{y}], v[{i}], v[{y}])" for i in ins[2:]]
            if kind in ("NAND", "NOR", "XNOR"):
                lines.append(f"XOR(v[{y}], M, v[{y}])")
            return lines
        if kind == "MUX2":
            a, b, s = idx[conn["a"]], idx[conn["b"]], idx[conn["s"]]
            return [
                f"XOR(v[{s}], M, T0)",
                f"AND(v[{a}], T0, T0)",
                f"AND(v[{b}], v[{s}], T1)",
                f"OR(T0, T1, v[{y}])",
            ]
        raise SimulationError(f"no expression for cell {kind!r}")

    def _dff_lines(self, inst: Instance) -> list[str]:
        q = self.index[inst.conn["q"]]
        d = self.index[inst.conn["d"]]
        if "en" in inst.conn:
            en = self.index[inst.conn["en"]]
            return [
                f"XOR(v[{en}], M, T0)",
                f"AND(v[{q}], T0, T0)",
                f"AND(v[{d}], v[{en}], T1)",
                f"OR(T0, T1, nv[{q}])",
            ]
        return [f"CPY(nv[{q}], v[{d}])"]
